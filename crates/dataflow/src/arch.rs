//! Accelerator micro-architecture configuration.

use tia_accel::{MacKind, MacUnit};

/// A concrete accelerator instance: MAC array + memory hierarchy.
///
/// Comparisons in the paper hold the MAC-array area and memory area equal
/// across designs (§4.1.2), so configs are built from an *area budget*: the
/// unit count is whatever the design's MAC unit area affords.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchConfig {
    /// MAC-unit model.
    pub mac: MacUnit,
    /// Number of MAC units in the array.
    pub units: usize,
    /// Global buffer capacity in bytes.
    pub gb_bytes: usize,
    /// Per-PE register-file capacity in bytes.
    pub rf_bytes: usize,
    /// DRAM bandwidth, bytes/cycle.
    pub dram_bw: f64,
    /// Global-buffer bandwidth, bytes/cycle.
    pub gb_bw: f64,
    /// NoC aggregate bandwidth, bytes/cycle.
    pub noc_bw: f64,
    /// Clock frequency in GHz (28 nm designs in this class run ~1 GHz).
    pub freq_ghz: f64,
}

impl ArchConfig {
    /// Builds a config whose MAC array fills `area_budget` (normalized
    /// units; a standard 8-bit MAC = 1.0) with the given design, and default
    /// Bit-Fusion-class memory parameters (512 KiB global buffer, 512 B RF,
    /// 16 B/cycle DRAM).
    pub fn with_mac_area_budget(kind: MacKind, area_budget: f64) -> Self {
        let mac = MacUnit::new(kind);
        let units = (area_budget / mac.area()).floor().max(1.0) as usize;
        // On-chip bandwidths scale with the array: the global buffer is
        // banked and the NoC wire count grows with the PE count, so a design
        // that affords more (smaller) units also affords wider distribution.
        Self {
            mac,
            units,
            gb_bytes: 512 * 1024,
            rf_bytes: 512,
            dram_bw: 64.0,
            gb_bw: (units as f64 / 8.0).max(128.0),
            noc_bw: (units as f64 / 4.0).max(256.0),
            freq_ghz: 1.0,
        }
    }

    /// The paper's default comparison budget: the area of a 1024-unit Bit
    /// Fusion array (4.4 × 1024 normalized units).
    pub fn paper_budget(kind: MacKind) -> Self {
        Self::with_mac_area_budget(kind, 4.4 * 1024.0)
    }

    /// Total MAC-array area actually used.
    pub fn mac_array_area(&self) -> f64 {
        self.units as f64 * self.mac.area()
    }

    /// Overrides the global buffer size (micro-architecture search).
    pub fn with_gb_bytes(mut self, bytes: usize) -> Self {
        self.gb_bytes = bytes;
        self
    }

    /// Overrides the unit count (micro-architecture search).
    pub fn with_units(mut self, units: usize) -> Self {
        self.units = units.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_divides_by_unit_area() {
        let bf = ArchConfig::paper_budget(MacKind::Spatial);
        assert_eq!(bf.units, 1024);
        let ours = ArchConfig::paper_budget(MacKind::spatial_temporal());
        // Smaller unit -> more units under the same budget.
        assert!(ours.units > 8000 && ours.units < 10000, "{}", ours.units);
        let st = ArchConfig::paper_budget(MacKind::Temporal);
        assert!(st.units > bf.units);
    }

    #[test]
    fn areas_match_within_one_unit() {
        for kind in [
            MacKind::Spatial,
            MacKind::Temporal,
            MacKind::spatial_temporal(),
        ] {
            let cfg = ArchConfig::paper_budget(kind);
            let budget = 4.4 * 1024.0;
            assert!(cfg.mac_array_area() <= budget);
            assert!(cfg.mac_array_area() >= budget - cfg.mac.area());
        }
    }
}
