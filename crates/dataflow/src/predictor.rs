//! Analytical performance predictor (DNN-Chip-Predictor style, paper §3.3).

use crate::arch::ArchConfig;
use crate::loopnest::{Dataflow, Dim, DIMS, NOC_LEVEL, TEMPORAL_LEVELS};
use tia_accel::{mem_energy_per_bit, MemLevel, PrecisionPair};
use tia_nn::workload::{LayerKind, LayerSpec};

/// One layer workload at one execution precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Workload {
    /// Loop bounds `(N, K, C, R, S, Y, X)`.
    pub bounds: [usize; 7],
    /// Convolution stride (1 for FC).
    pub stride: usize,
    /// Execution precision.
    pub precision: PrecisionPair,
    /// True MAC count (unpadded).
    pub macs: u64,
}

impl Workload {
    /// Builds a workload from a layer spec and precision.
    pub fn new(layer: &LayerSpec, precision: PrecisionPair) -> Self {
        let stride = match layer.kind {
            LayerKind::Conv { stride, .. } => stride,
            LayerKind::Fc { .. } => 1,
        };
        Self {
            bounds: layer.loop_bounds(),
            stride,
            precision,
            macs: layer.macs(),
        }
    }
}

/// Predicted performance of one (workload, dataflow) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfReport {
    /// Total cycles (compute/memory overlapped, double-buffered).
    pub total_cycles: f64,
    /// Pure compute cycles.
    pub compute_cycles: f64,
    /// Memory stall cycles (total − compute).
    pub stall_cycles: f64,
    /// Bits moved at each level `[DRAM, SRAM, NoC, RF]`.
    pub bits_moved: [f64; 4],
    /// Energy per level `[DRAM, SRAM, NoC, RF]` (normalized units).
    pub mem_energy: [f64; 4],
    /// MAC energy.
    pub mac_energy: f64,
    /// PE-array spatial utilization in `[0, 1]`.
    pub utilization: f64,
}

impl PerfReport {
    /// Total energy.
    pub fn total_energy(&self) -> f64 {
        self.mem_energy.iter().sum::<f64>() + self.mac_energy
    }

    /// Energy-delay product (the optimizer's default objective).
    pub fn edp(&self) -> f64 {
        self.total_energy() * self.total_cycles
    }
}

/// Tensor roles in the loop nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TensorRole {
    Weights,
    Inputs,
    Outputs,
}

const TENSORS: [TensorRole; 3] = [TensorRole::Weights, TensorRole::Inputs, TensorRole::Outputs];

impl TensorRole {
    fn relevant(self, d: Dim) -> bool {
        match self {
            TensorRole::Weights => d.weight_relevant(),
            TensorRole::Inputs => d.input_relevant(),
            TensorRole::Outputs => d.output_relevant(),
        }
    }

    fn word_bits(self, p: PrecisionPair) -> f64 {
        match self {
            TensorRole::Weights => p.w as f64,
            TensorRole::Inputs => p.a as f64,
            // Partial sums accumulate at full width.
            TensorRole::Outputs => 16.0,
        }
    }
}

/// Footprint (elements) of a tensor's tile spanning levels `level..`.
fn tile_elems(t: TensorRole, df: &Dataflow, wl: &Workload, level: usize) -> f64 {
    let span = |d: Dim| df.tiling.tile_span(level, d.index()) as f64;
    match t {
        TensorRole::Weights => span(Dim::K) * span(Dim::C) * span(Dim::R) * span(Dim::S),
        TensorRole::Inputs => {
            // Sliding-window halo: extent = (ty-1)*stride + tr.
            let ext_y = (span(Dim::Y) - 1.0) * wl.stride as f64 + span(Dim::R);
            let ext_x = (span(Dim::X) - 1.0) * wl.stride as f64 + span(Dim::S);
            span(Dim::N) * span(Dim::C) * ext_y * ext_x
        }
        TensorRole::Outputs => span(Dim::N) * span(Dim::K) * span(Dim::Y) * span(Dim::X),
    }
}

/// Refill multiplier contributed by one temporal level: iterations of
/// relevant dims always multiply; iterations of irrelevant dims only
/// multiply when some relevant dim sits *inside* them in the loop order
/// (otherwise the tile below is reused across them).
fn temporal_multiplier(t: TensorRole, df: &Dataflow, level_pos: usize) -> f64 {
    let level = TEMPORAL_LEVELS[level_pos];
    let order = &df.orders[level_pos];
    let mut mult = 1.0;
    for (pos, &d) in order.iter().enumerate() {
        let f = df.tiling.factors[level][d.index()] as f64;
        if f <= 1.0 {
            continue;
        }
        if t.relevant(d) {
            mult *= f;
        } else {
            // Irrelevant: multiplies only if a relevant dim with >1 iteration
            // is strictly inside (higher position index = more inner).
            let relevant_inside = order[pos + 1..]
                .iter()
                .any(|&inner| t.relevant(inner) && df.tiling.factors[level][inner.index()] > 1);
            if relevant_inside {
                mult *= f;
            }
        }
    }
    mult
}

/// Spatial (NoC) fan-out for a tensor: PEs holding *distinct* data multiply
/// the GB→RF traffic; PEs along irrelevant spatial dims share via multicast.
fn spatial_fanout(t: TensorRole, df: &Dataflow) -> f64 {
    DIMS.iter()
        .filter(|&&d| t.relevant(d))
        .map(|&d| df.tiling.factors[NOC_LEVEL][d.index()] as f64)
        .product()
}

/// Evaluates a dataflow on an architecture; returns `None` when the mapping
/// is invalid (buffer overflow or spatial tile exceeding the array).
pub fn predict(arch: &ArchConfig, wl: &Workload, df: &Dataflow) -> Option<PerfReport> {
    if !df.tiling.is_valid(wl.bounds) {
        return None;
    }
    let p = wl.precision;
    // --- Validity: spatial tile fits the array; tiles fit their buffers.
    let spatial: usize = (0..7).map(|d| df.tiling.factors[NOC_LEVEL][d]).product();
    if spatial > arch.units {
        return None;
    }
    // Global buffer holds the level-1 tiles of all tensors, double-buffered.
    let gb_bits: f64 = TENSORS
        .iter()
        .map(|&t| tile_elems(t, df, wl, 1) * t.word_bits(p))
        .sum::<f64>()
        * 2.0;
    if gb_bits / 8.0 > arch.gb_bytes as f64 {
        return None;
    }
    // RF holds the per-PE (level-3) tiles, double-buffered.
    let rf_bits: f64 = TENSORS
        .iter()
        .map(|&t| tile_elems(t, df, wl, 3) * t.word_bits(p))
        .sum::<f64>()
        * 2.0;
    if rf_bits / 8.0 > arch.rf_bytes as f64 {
        return None;
    }

    // --- Traffic per level.
    // DRAM -> GB: level-1 tile refilled by DRAM-level loops.
    // GB -> PEs (NoC, counted once) -> RF: level-3 tile refilled by DRAM+GB
    // loops and fanned out spatially.
    // RF -> MAC: every MAC reads each operand once (outputs written once per
    // MAC into the accumulator, charged on the output stream).
    let mut bits = [0.0f64; 4];
    for &t in &TENSORS {
        let out_rw = if t == TensorRole::Outputs { 2.0 } else { 1.0 }; // psum read+write
        let dram_traffic =
            tile_elems(t, df, wl, 1) * temporal_multiplier(t, df, 0) * t.word_bits(p) * out_rw;
        let rf_refills =
            temporal_multiplier(t, df, 0) * temporal_multiplier(t, df, 1) * spatial_fanout(t, df);
        let gb_traffic = tile_elems(t, df, wl, 3) * rf_refills * t.word_bits(p) * out_rw;
        bits[0] += dram_traffic;
        bits[1] += gb_traffic;
        bits[2] += gb_traffic; // NoC carries the GB->RF stream
        bits[3] += wl.macs as f64 * t.word_bits(p); // RF->MAC operand reads
    }

    // --- Cycles.
    let padded_macs: f64 = (0..7).map(|d| df.tiling.coverage(d) as f64).product();
    let ppc = arch.mac.products_per_cycle(p);
    let compute_cycles = padded_macs / (spatial as f64 * ppc);
    let dram_cycles = bits[0] / 8.0 / arch.dram_bw;
    let gb_cycles = bits[1] / 8.0 / arch.gb_bw;
    let noc_cycles = bits[2] / 8.0 / arch.noc_bw;
    let total_cycles = compute_cycles
        .max(dram_cycles)
        .max(gb_cycles)
        .max(noc_cycles);

    // --- Energy.
    let levels = [
        MemLevel::Dram,
        MemLevel::GlobalBuffer,
        MemLevel::Noc,
        MemLevel::Rf,
    ];
    let mut mem_energy = [0.0f64; 4];
    for i in 0..4 {
        mem_energy[i] = bits[i] * mem_energy_per_bit(levels[i]);
    }
    let mac_energy = wl.macs as f64 * arch.mac.energy_per_mac(p);

    Some(PerfReport {
        total_cycles,
        compute_cycles,
        stall_cycles: total_cycles - compute_cycles,
        bits_moved: bits,
        mem_energy,
        mac_energy,
        utilization: spatial as f64 / arch.units as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopnest::Dataflow;
    use tia_accel::MacKind;
    use tia_tensor::SeededRng;

    fn layer() -> LayerSpec {
        LayerSpec::conv("conv", 32, 64, 3, 1, 1, 16, 16)
    }

    fn arch() -> ArchConfig {
        ArchConfig::with_mac_area_budget(MacKind::spatial_temporal(), 256.0)
    }

    #[test]
    fn canonical_dataflow_predicts() {
        let wl = Workload::new(&layer(), PrecisionPair::symmetric(8));
        let df = Dataflow::canonical(wl.bounds);
        let perf = predict(&arch(), &wl, &df).expect("canonical must be valid");
        assert!(perf.total_cycles > 0.0);
        assert!(perf.compute_cycles > 0.0);
        assert!(perf.stall_cycles >= 0.0);
        assert!(perf.total_energy() > 0.0);
        assert!(perf.utilization > 0.0 && perf.utilization <= 1.0);
    }

    #[test]
    fn lower_precision_never_slower_ours() {
        let a = arch();

        let wl8 = Workload::new(&layer(), PrecisionPair::symmetric(8));
        let wl4 = Workload::new(&layer(), PrecisionPair::symmetric(4));
        let df8 = Dataflow::canonical(wl8.bounds);
        let df4 = Dataflow::canonical(wl4.bounds);
        let p8 = predict(&a, &wl8, &df8).unwrap();
        let p4 = predict(&a, &wl4, &df4).unwrap();
        assert!(
            p4.total_cycles <= p8.total_cycles,
            "{} vs {}",
            p4.total_cycles,
            p8.total_cycles
        );
        assert!(p4.total_energy() < p8.total_energy());
    }

    #[test]
    fn oversized_spatial_tile_rejected() {
        let wl = Workload::new(&layer(), PrecisionPair::symmetric(8));
        let mut df = Dataflow::canonical(wl.bounds);
        // Blow up the NoC tile beyond the array size.
        df.tiling.factors[2] = [1, 64, 32, 1, 1, 16, 1];
        df.tiling.factors[0] = [1, 1, 1, 3, 3, 1, 16];
        df.tiling.factors[1] = [1; 7];
        df.tiling.factors[3] = [1; 7];
        assert!(predict(&arch(), &wl, &df).is_none());
    }

    #[test]
    fn weight_stationary_order_reduces_weight_traffic() {
        // With K/C/R/S loops outermost at DRAM (weights change every
        // iteration) vs innermost (weights reused), DRAM traffic must drop.
        let wl = Workload::new(&layer(), PrecisionPair::symmetric(8));
        let mut df_bad = Dataflow::canonical(wl.bounds);
        let mut df_good = df_bad.clone();
        // Put Y (weight-irrelevant) iterations at DRAM level.
        df_bad.tiling.factors[0][5] = 16;
        df_bad.tiling.factors[2][5] = 1;
        df_good.tiling.factors[0][5] = 16;
        df_good.tiling.factors[2][5] = 1;
        // bad: Y outermost with K inside -> weights refetched per Y iter.
        df_bad.orders[0] = [Dim::Y, Dim::K, Dim::C, Dim::R, Dim::S, Dim::N, Dim::X];
        // good: Y innermost -> weight tile reused across Y.
        df_good.orders[0] = [Dim::K, Dim::C, Dim::R, Dim::S, Dim::N, Dim::X, Dim::Y];
        let a = arch();
        let pb = predict(&a, &wl, &df_bad).unwrap();
        let pg = predict(&a, &wl, &df_good).unwrap();
        assert!(
            pg.bits_moved[0] < pb.bits_moved[0],
            "weight-stationary order should cut DRAM traffic: {} vs {}",
            pg.bits_moved[0],
            pb.bits_moved[0]
        );
    }

    #[test]
    fn mac_energy_uses_true_not_padded_macs() {
        let l = layer();
        let wl = Workload::new(&l, PrecisionPair::symmetric(8));
        let df = Dataflow::canonical(wl.bounds);
        let perf = predict(&arch(), &wl, &df).unwrap();
        let per_mac = arch().mac.energy_per_mac(PrecisionPair::symmetric(8));
        assert!((perf.mac_energy - l.macs() as f64 * per_mac).abs() < 1e-6);
    }

    #[test]
    fn random_dataflows_mostly_predict_or_reject_cleanly() {
        let wl = Workload::new(&layer(), PrecisionPair::symmetric(8));
        let mut rng = SeededRng::new(5);
        let mut valid = 0;
        for _ in 0..50 {
            let df = Dataflow::random(wl.bounds, &mut rng);
            if let Some(p) = predict(&arch(), &wl, &df) {
                valid += 1;
                assert!(p.total_cycles.is_finite());
                assert!(p.total_energy().is_finite());
            }
        }
        assert!(valid > 0, "at least some random dataflows must be valid");
    }
}
