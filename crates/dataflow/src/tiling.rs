//! Per-level tiling factors.

use crate::loopnest::LEVELS;
use tia_tensor::SeededRng;

/// Tiling factors: `factors[level][dim]` iterations of `dim` at `level`.
/// The product across levels must cover the loop bound (allowing imperfect
/// factorization: the product may exceed the bound, modelling padding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tiling {
    /// `factors[level][dim]`, levels outermost (DRAM) first.
    pub factors: [[usize; 7]; LEVELS],
}

impl Tiling {
    /// Canonical tiling assuming a 256-PE array.
    pub fn canonical(bounds: [usize; 7]) -> Self {
        Self::canonical_for_array(bounds, 256)
    }

    /// Canonical tiling: everything at the innermost (RF) level except K/Y
    /// spread over the NoC (sized to fit `max_units` PEs), C/X in the global
    /// buffer, and the remainder at DRAM. A serviceable fixed dataflow in
    /// the spirit of the baselines' NoC mappings.
    pub fn canonical_for_array(bounds: [usize; 7], max_units: usize) -> Self {
        Self::canonical_with_caps(bounds, max_units, 64)
    }

    /// Canonical tiling with explicit caps on the global-buffer and RF C/X
    /// factors. Wide layers at high precisions need smaller tiles to fit
    /// their buffers; fixed-dataflow baselines walk a ladder of caps.
    pub fn canonical_with_caps(bounds: [usize; 7], max_units: usize, gb_cap: usize) -> Self {
        Self::canonical_with_caps_rf(bounds, max_units, gb_cap, 4)
    }

    /// [`Tiling::canonical_with_caps`] with an additional RF tile cap.
    pub fn canonical_with_caps_rf(
        bounds: [usize; 7],
        max_units: usize,
        gb_cap: usize,
        rf_cap: usize,
    ) -> Self {
        let max_units = max_units.max(1);
        // Split the array budget between the K and Y NoC axes, then pack
        // remaining PEs with input channels (C) to fill large arrays.
        // Prefer divisors to avoid padding waste on non-power-of-two dims.
        let side = (max_units as f64).sqrt().floor().max(1.0) as usize;
        let k_noc = best_spatial_factor(bounds[1], side);
        let y_noc = best_spatial_factor(bounds[5], max_units / k_noc);
        let c_noc = best_spatial_factor(bounds[2], max_units / (k_noc * y_noc));
        let mut factors = [[1usize; 7]; LEVELS];
        for d in 0..7 {
            let b = bounds[d];
            match d {
                1 => {
                    factors[2][d] = k_noc;
                    factors[0][d] = div_ceil(b, k_noc);
                }
                5 => {
                    factors[2][d] = y_noc;
                    factors[0][d] = div_ceil(b, y_noc);
                }
                // C: spatial share first, then RF/GB/DRAM splits.
                2 => {
                    factors[2][d] = c_noc;
                    let rem = div_ceil(b, c_noc);
                    let rf = rem.min(rf_cap.max(1));
                    let gb = div_ceil(rem, rf).min(gb_cap.max(1));
                    factors[3][d] = rf;
                    factors[1][d] = gb;
                    factors[0][d] = div_ceil(rem, rf * gb);
                }
                // X iterates in the global-buffer tile, bounded so GB tiles
                // of wide layers (e.g. 9216-deep FC) still fit.
                6 => {
                    let rf = b.min(rf_cap.max(1));
                    let gb = div_ceil(b, rf).min(gb_cap.max(1));
                    factors[3][d] = rf;
                    factors[1][d] = gb;
                    factors[0][d] = div_ceil(b, rf * gb);
                }
                // R and S: up to 3 taps in the RF, the rest iterated from
                // the global buffer (11x11 stems would overflow a 512 B RF).
                3 | 4 => {
                    let rf = b.min(3).min(rf_cap.max(1));
                    factors[3][d] = rf;
                    factors[1][d] = div_ceil(b, rf);
                }
                // N at RF.
                _ => factors[3][d] = b,
            }
        }
        Self { factors }
    }

    /// Random valid tiling: each dimension's bound is split into four
    /// factors via random divisor-ish splits.
    pub fn random(bounds: [usize; 7], rng: &mut SeededRng) -> Self {
        let mut t = Self {
            factors: [[1; 7]; LEVELS],
        };
        #[allow(clippy::needless_range_loop)] // d indexes both t and bounds
        for d in 0..7 {
            t.resplit_dim(d, bounds[d], rng);
        }
        t
    }

    /// Re-randomizes the split of one dimension across levels.
    pub fn resplit_dim(&mut self, dim: usize, bound: usize, rng: &mut SeededRng) {
        let mut remaining = bound.max(1);
        let mut split = [1usize; LEVELS];
        // Choose factors for three levels; the last absorbs the remainder.
        let mut order: Vec<usize> = (0..LEVELS).collect();
        rng.shuffle(&mut order);
        for (i, &lev) in order.iter().enumerate() {
            if i == LEVELS - 1 {
                split[lev] = remaining;
            } else {
                let f = random_divisor(remaining, rng);
                split[lev] = f;
                remaining = div_ceil(remaining, f);
            }
        }
        for (lev, &f) in split.iter().enumerate() {
            self.factors[lev][dim] = f;
        }
    }

    /// Product of the factors of a dimension across all levels.
    pub fn coverage(&self, dim: usize) -> usize {
        (0..LEVELS).map(|l| self.factors[l][dim]).product()
    }

    /// Whether every dimension's coverage reaches its bound without gross
    /// over-padding (≤2× keeps the search space sane).
    pub fn is_valid(&self, bounds: [usize; 7]) -> bool {
        (0..7).all(|d| {
            let c = self.coverage(d);
            c >= bounds[d] && c <= bounds[d].max(1) * 2
        })
    }

    /// Tile size of dimension `dim` *at and below* `level` (how many
    /// iterations of the dim one `level`-tile spans).
    pub fn tile_span(&self, level: usize, dim: usize) -> usize {
        (level..LEVELS).map(|l| self.factors[l][dim]).product()
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b.max(1))
}

/// Largest divisor of `bound` not exceeding `cap`; falls back to `cap`
/// itself (accepting padding) when every divisor <= cap is below cap/2.
fn best_spatial_factor(bound: usize, cap: usize) -> usize {
    let cap = cap.max(1).min(bound.max(1) * 2);
    let best_div = (1..=cap.min(bound))
        .rev()
        .find(|d| bound.is_multiple_of(*d))
        .unwrap_or(1);
    if best_div * 2 >= cap || cap > bound {
        best_div.max(1)
    } else {
        cap
    }
}

fn random_divisor(n: usize, rng: &mut SeededRng) -> usize {
    if n <= 1 {
        return 1;
    }
    let divisors: Vec<usize> = (1..=n).filter(|d| n.is_multiple_of(*d)).collect();
    *rng.choose(&divisors)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_covers_bounds() {
        let bounds = [1, 100, 37, 3, 3, 55, 55];
        let t = Tiling::canonical(bounds);
        assert!(t.is_valid(bounds), "{:?}", t);
    }

    #[test]
    fn random_always_valid() {
        let bounds = [1, 64, 3, 11, 11, 55, 55];
        let mut rng = SeededRng::new(9);
        for _ in 0..100 {
            let t = Tiling::random(bounds, &mut rng);
            assert!(t.is_valid(bounds));
        }
    }

    #[test]
    fn tile_span_nested_products() {
        let mut t = Tiling {
            factors: [[1; 7]; LEVELS],
        };
        t.factors[0][1] = 2;
        t.factors[1][1] = 3;
        t.factors[2][1] = 5;
        t.factors[3][1] = 7;
        assert_eq!(t.tile_span(0, 1), 210);
        assert_eq!(t.tile_span(1, 1), 105);
        assert_eq!(t.tile_span(3, 1), 7);
        assert_eq!(t.coverage(1), 210);
    }

    #[test]
    fn resplit_keeps_coverage() {
        let mut rng = SeededRng::new(4);
        let mut t = Tiling::canonical([1, 64, 32, 3, 3, 16, 16]);
        for _ in 0..50 {
            t.resplit_dim(1, 64, &mut rng);
            assert!(t.coverage(1) >= 64 && t.coverage(1) <= 128);
        }
    }
}
