//! # tia-dataflow
//!
//! Dataflow representation, analytical performance predictor and the
//! evolutionary accelerator optimizer (paper §3.3, Alg. 2).
//!
//! A *dataflow* here is, as in Eyeriss/DNN-Chip Predictor, a tiling of the
//! 7-dimensional convolution loop nest `(N, K, C, R, S, Y, X)` across the
//! memory hierarchy (DRAM → global buffer → NoC/PE array → register file)
//! plus a loop order per temporal level. The predictor counts per-level
//! tile refills — honouring temporal reuse when loops irrelevant to a tensor
//! sit innermost — and turns them into cycles (compute vs. per-level
//! bandwidth, double-buffered) and energy (per-bit access costs + per-MAC
//! energy from `tia-accel`).
//!
//! The optimizer implements Alg. 2: a population of random valid dataflows
//! evolved by crossover (swap one level's loop order / one dimension's
//! tiling between parents) and mutation, keeping the top 30 % each cycle.
//! A second mode searches micro-architectures (array size / buffer sizes)
//! under an area budget, optimizing the dataflow for each candidate.
//!
//! # Example
//!
//! ```
//! use tia_accel::{MacKind, PrecisionPair};
//! use tia_dataflow::{ArchConfig, EvoSearch, Workload};
//! use tia_nn::workload::LayerSpec;
//! use tia_tensor::SeededRng;
//!
//! let layer = LayerSpec::conv("conv", 64, 64, 3, 1, 1, 16, 16);
//! let arch = ArchConfig::with_mac_area_budget(MacKind::spatial_temporal(), 512.0);
//! let wl = Workload::new(&layer, PrecisionPair::symmetric(8));
//! let mut rng = SeededRng::new(0);
//! let best = EvoSearch::default().run(&arch, &wl, &mut rng);
//! assert!(best.perf.total_cycles > 0.0);
//! ```

#![deny(missing_docs)]

mod arch;
mod loopnest;
mod predictor;
mod search;
mod tiling;

pub use arch::ArchConfig;
pub use loopnest::{Dataflow, Dim, DIMS, TEMPORAL_LEVELS};
pub use predictor::{predict, PerfReport, Workload};
pub use search::{ArchSearch, EvoSearch, SearchMode, SearchResult};
pub use tiling::Tiling;
