//! Loop dimensions and the dataflow (tiling + loop orders) type.

use crate::tiling::Tiling;
use tia_tensor::SeededRng;

/// The seven convolution loop dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dim {
    /// Batch.
    N,
    /// Output channels.
    K,
    /// Input channels.
    C,
    /// Kernel rows.
    R,
    /// Kernel columns.
    S,
    /// Output rows.
    Y,
    /// Output columns.
    X,
}

/// All dimensions in canonical order (matching `LayerSpec::loop_bounds`).
pub const DIMS: [Dim; 7] = [Dim::N, Dim::K, Dim::C, Dim::R, Dim::S, Dim::Y, Dim::X];

impl Dim {
    /// Canonical index of the dimension.
    pub fn index(self) -> usize {
        DIMS.iter().position(|&d| d == self).expect("dim in DIMS")
    }

    /// Whether the weight tensor depends on this dimension.
    pub fn weight_relevant(self) -> bool {
        matches!(self, Dim::K | Dim::C | Dim::R | Dim::S)
    }

    /// Whether the input tensor depends on this dimension (sliding-window
    /// halo makes inputs depend on R/S too).
    pub fn input_relevant(self) -> bool {
        matches!(self, Dim::N | Dim::C | Dim::Y | Dim::X | Dim::R | Dim::S)
    }

    /// Whether the output tensor depends on this dimension.
    pub fn output_relevant(self) -> bool {
        matches!(self, Dim::N | Dim::K | Dim::Y | Dim::X)
    }
}

/// Number of storage levels: DRAM, global buffer, NoC (spatial), RF.
pub const LEVELS: usize = 4;
/// Index of the spatial (NoC) level within the tiling.
pub const NOC_LEVEL: usize = 2;
/// Temporal levels that carry a loop order (DRAM, global buffer, RF).
pub const TEMPORAL_LEVELS: [usize; 3] = [0, 1, 3];

/// A complete dataflow: per-level tiling factors plus a loop order for each
/// temporal level (outermost dimension first).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataflow {
    /// Tiling factors per level per dim.
    pub tiling: Tiling,
    /// Loop orders for DRAM / global buffer / RF (indexed 0..3 in the order
    /// of [`TEMPORAL_LEVELS`]).
    pub orders: [[Dim; 7]; 3],
}

impl Dataflow {
    /// A canonical (output-stationary-ish) dataflow for the given loop
    /// bounds: useful as the *fixed* dataflow of baseline accelerators that
    /// do not search (paper §3.1.3). Assumes a 256-PE array; use
    /// [`Dataflow::canonical_for_array`] for other sizes.
    pub fn canonical(bounds: [usize; 7]) -> Self {
        Self::canonical_for_array(bounds, 256)
    }

    /// Canonical dataflow whose NoC tile fits an array of `max_units` PEs.
    pub fn canonical_for_array(bounds: [usize; 7], max_units: usize) -> Self {
        Self {
            tiling: Tiling::canonical_for_array(bounds, max_units),
            orders: [DIMS, DIMS, DIMS],
        }
    }

    /// Canonical dataflow with explicit global-buffer / RF C/X tile caps
    /// (see [`Tiling::canonical_with_caps_rf`]).
    pub fn canonical_with_caps(
        bounds: [usize; 7],
        max_units: usize,
        gb_cap: usize,
        rf_cap: usize,
    ) -> Self {
        Self {
            tiling: Tiling::canonical_with_caps_rf(bounds, max_units, gb_cap, rf_cap),
            orders: [DIMS, DIMS, DIMS],
        }
    }

    /// A degenerate always-valid dataflow: every loop at DRAM level, one
    /// element at a time below. Terrible performance, guaranteed to map —
    /// the search's fallback of last resort.
    pub fn minimal(bounds: [usize; 7]) -> Self {
        let mut factors = [[1usize; 7]; LEVELS];
        factors[0] = bounds;
        Self {
            tiling: Tiling { factors },
            orders: [DIMS, DIMS, DIMS],
        }
    }

    /// Random valid dataflow for the bounds.
    pub fn random(bounds: [usize; 7], rng: &mut SeededRng) -> Self {
        let tiling = Tiling::random(bounds, rng);
        let mut orders = [DIMS, DIMS, DIMS];
        for o in &mut orders {
            rng.shuffle(o);
        }
        Self { tiling, orders }
    }

    /// Mutates in place: re-splits one dimension's tiling or permutes one
    /// level's loop order (Alg. 2's mutation operator).
    pub fn mutate(&mut self, bounds: [usize; 7], rng: &mut SeededRng) {
        if rng.uniform() < 0.5 {
            let d = rng.below(7);
            self.tiling.resplit_dim(d, bounds[d], rng);
        } else {
            let l = rng.below(3);
            rng.shuffle(&mut self.orders[l]);
        }
    }

    /// Crossover: take one level's loop order or one dimension's tiling from
    /// `other` (Alg. 2's crossover operator).
    pub fn crossover(&self, other: &Dataflow, rng: &mut SeededRng) -> Dataflow {
        let mut child = self.clone();
        if rng.uniform() < 0.5 {
            let l = rng.below(3);
            child.orders[l] = other.orders[l];
        } else {
            let d = rng.below(7);
            for lev in 0..LEVELS {
                child.tiling.factors[lev][d] = other.tiling.factors[lev][d];
            }
        }
        child
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relevance_tables() {
        assert!(Dim::K.weight_relevant());
        assert!(!Dim::K.input_relevant());
        assert!(Dim::K.output_relevant());
        assert!(Dim::C.weight_relevant());
        assert!(Dim::C.input_relevant());
        assert!(!Dim::C.output_relevant());
        assert!(Dim::R.input_relevant(), "halo makes inputs depend on R");
    }

    #[test]
    fn canonical_is_valid() {
        let bounds = [1, 64, 32, 3, 3, 16, 16];
        let df = Dataflow::canonical(bounds);
        assert!(df.tiling.is_valid(bounds));
    }

    #[test]
    fn random_is_valid_and_varies() {
        let bounds = [1, 64, 32, 3, 3, 16, 16];
        let mut rng = SeededRng::new(1);
        let a = Dataflow::random(bounds, &mut rng);
        let b = Dataflow::random(bounds, &mut rng);
        assert!(a.tiling.is_valid(bounds));
        assert!(b.tiling.is_valid(bounds));
        assert_ne!(a, b, "two random dataflows should differ");
    }

    #[test]
    fn mutation_preserves_validity() {
        let bounds = [1, 48, 24, 3, 3, 8, 8];
        let mut rng = SeededRng::new(2);
        let mut df = Dataflow::random(bounds, &mut rng);
        for _ in 0..50 {
            df.mutate(bounds, &mut rng);
            assert!(df.tiling.is_valid(bounds));
        }
    }

    #[test]
    fn crossover_preserves_validity() {
        let bounds = [1, 48, 24, 3, 3, 8, 8];
        let mut rng = SeededRng::new(3);
        let a = Dataflow::random(bounds, &mut rng);
        let b = Dataflow::random(bounds, &mut rng);
        for _ in 0..20 {
            let c = a.crossover(&b, &mut rng);
            assert!(c.tiling.is_valid(bounds));
        }
    }
}
