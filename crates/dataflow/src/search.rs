//! Evolutionary dataflow / micro-architecture search (paper Alg. 2).

use crate::arch::ArchConfig;
use crate::loopnest::Dataflow;
use crate::predictor::{predict, PerfReport, Workload};
use tia_tensor::SeededRng;

/// What the search optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Full search: loop orders and tiling factors at every level (ours and
    /// the Stripes baseline, which the paper also optimizes).
    Full,
    /// Bit Fusion's published optimizer only explores the global-buffer loop
    /// order, keeping the NoC mapping fixed (§3.1.3).
    GbOrderOnly,
}

/// Evolutionary dataflow search configuration.
#[derive(Debug, Clone, Copy)]
pub struct EvoSearch {
    /// Population size.
    pub population: usize,
    /// Evolution cycles.
    pub cycles: usize,
    /// Search mode.
    pub mode: SearchMode,
}

impl Default for EvoSearch {
    fn default() -> Self {
        Self {
            population: 24,
            cycles: 10,
            mode: SearchMode::Full,
        }
    }
}

/// (global-buffer cap, RF cap) ladder tried for canonical (fixed-style)
/// dataflows: large tiles first, shrinking until buffers fit.
const CAP_LADDER: [(usize, usize); 7] = [(64, 4), (16, 4), (4, 4), (16, 2), (4, 2), (2, 2), (1, 1)];

/// A found dataflow with its predicted performance.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best dataflow.
    pub dataflow: Dataflow,
    /// Its predicted performance.
    pub perf: PerfReport,
}

impl EvoSearch {
    /// Restricts the search as a baseline optimizer would.
    pub fn with_mode(mut self, mode: SearchMode) -> Self {
        self.mode = mode;
        self
    }

    /// Runs Alg. 2 for one workload, returning the best valid dataflow by
    /// energy-delay product. Falls back to the canonical dataflow when no
    /// random candidate validates (tiny layers).
    pub fn run(&self, arch: &ArchConfig, wl: &Workload, rng: &mut SeededRng) -> SearchResult {
        let bounds = wl.bounds;
        let mut population: Vec<(Dataflow, PerfReport)> = Vec::new();
        // Seed with the cap ladder of canonical dataflows; wide layers at
        // high precision only validate with small global-buffer tiles.
        for (gb_cap, rf_cap) in CAP_LADDER {
            let seed_df = Dataflow::canonical_with_caps(bounds, arch.units, gb_cap, rf_cap);
            if let Some(p) = predict(arch, wl, &seed_df) {
                population.push((seed_df, p));
            }
        }
        // Initial random population (Alg. 2 line 1).
        let mut attempts = 0;
        while population.len() < self.population && attempts < self.population * 20 {
            attempts += 1;
            let df = self.random_candidate(bounds, arch.units, rng);
            if let Some(p) = predict(arch, wl, &df) {
                population.push((df, p));
            }
        }
        if population.is_empty() {
            // Even canonical failed (e.g. a very wide FC tile on a tiny
            // buffer): fall back to the degenerate all-at-DRAM mapping,
            // which always validates.
            let df = Dataflow::minimal(bounds);
            let p = predict(arch, wl, &df).expect("minimal dataflow must always be valid");
            population.push((df, p));
        }
        for _cycle in 0..self.cycles {
            // Select top 30% (Alg. 2 line 3).
            population.sort_by(|a, b| a.1.edp().total_cmp(&b.1.edp()));
            let keep = (population.len() * 3 / 10).max(2).min(population.len());
            population.truncate(keep);
            // Refill with crossover + mutation (lines 4-7).
            let mut guard = 0;
            while population.len() < self.population && guard < self.population * 30 {
                guard += 1;
                let df = if rng.uniform() < 0.5 && population.len() >= 2 {
                    let a = rng.below(keep.min(population.len()));
                    let b = rng.below(keep.min(population.len()));
                    let child = population[a].0.crossover(&population[b].0, rng);
                    self.constrain(child, bounds, arch.units)
                } else {
                    let a = rng.below(keep.min(population.len()));
                    let mut child = population[a].0.clone();
                    child.mutate(bounds, rng);
                    self.constrain(child, bounds, arch.units)
                };
                if let Some(p) = predict(arch, wl, &df) {
                    population.push((df, p));
                }
            }
        }
        population.sort_by(|a, b| a.1.edp().total_cmp(&b.1.edp()));
        let (dataflow, perf) = population.swap_remove(0);
        SearchResult { dataflow, perf }
    }

    fn random_candidate(&self, bounds: [usize; 7], units: usize, rng: &mut SeededRng) -> Dataflow {
        match self.mode {
            SearchMode::Full => Dataflow::random(bounds, rng),
            SearchMode::GbOrderOnly => {
                let (gb_cap, rf_cap) = CAP_LADDER[rng.below(CAP_LADDER.len())];
                let mut df = Dataflow::canonical_with_caps(bounds, units, gb_cap, rf_cap);
                rng.shuffle(&mut df.orders[1]);
                df
            }
        }
    }

    /// Re-applies the mode's restriction after crossover/mutation: the
    /// restricted baseline keeps a canonical tiling (any ladder cap) and only
    /// carries over the global-buffer loop order.
    fn constrain(&self, mut df: Dataflow, bounds: [usize; 7], units: usize) -> Dataflow {
        if self.mode == SearchMode::GbOrderOnly {
            let orders = df.orders;
            df = Dataflow::canonical_with_caps(bounds, units, 64, 4);
            df.orders[1] = orders[1];
        }
        df
    }
}

/// Mode-2 search (paper §3.3): explore micro-architectures under an area
/// budget, optimizing the dataflow for each candidate and scoring by mean
/// EDP across the given workloads.
#[derive(Debug, Clone)]
pub struct ArchSearch {
    /// MAC-array area budget (normalized units).
    pub area_budget: f64,
    /// Candidate global-buffer sizes (bytes).
    pub gb_candidates: Vec<usize>,
    /// Candidate array-fill fractions of the budget.
    pub fill_candidates: Vec<f64>,
    /// Dataflow search used per candidate.
    pub inner: EvoSearch,
}

impl ArchSearch {
    /// A small default grid.
    pub fn new(area_budget: f64) -> Self {
        Self {
            area_budget,
            gb_candidates: vec![256 * 1024, 512 * 1024, 1024 * 1024],
            fill_candidates: vec![0.75, 1.0],
            inner: EvoSearch::default(),
        }
    }

    /// Searches micro-architecture + dataflow; returns the best config and
    /// its mean-EDP score.
    pub fn run(
        &self,
        kind: tia_accel::MacKind,
        workloads: &[Workload],
        rng: &mut SeededRng,
    ) -> (ArchConfig, f64) {
        assert!(!workloads.is_empty(), "need at least one workload");
        let mut best: Option<(ArchConfig, f64)> = None;
        for &gb in &self.gb_candidates {
            for &fill in &self.fill_candidates {
                let cfg = ArchConfig::with_mac_area_budget(kind, self.area_budget * fill)
                    .with_gb_bytes(gb);
                let mut edp_sum = 0.0;
                for wl in workloads {
                    edp_sum += self.inner.run(&cfg, wl, rng).perf.edp();
                }
                let score = edp_sum / workloads.len() as f64;
                if best.as_ref().is_none_or(|(_, s)| score < *s) {
                    best = Some((cfg, score));
                }
            }
        }
        best.expect("grid is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_accel::{MacKind, PrecisionPair};
    use tia_nn::workload::LayerSpec;

    fn wl() -> Workload {
        Workload::new(
            &LayerSpec::conv("c", 32, 64, 3, 1, 1, 16, 16),
            PrecisionPair::symmetric(8),
        )
    }

    #[test]
    fn search_beats_or_matches_canonical() {
        let arch = ArchConfig::with_mac_area_budget(MacKind::spatial_temporal(), 256.0);
        let w = wl();
        let mut rng = SeededRng::new(11);
        let canonical = predict(&arch, &w, &Dataflow::canonical(w.bounds)).unwrap();
        let best = EvoSearch::default().run(&arch, &w, &mut rng);
        assert!(
            best.perf.edp() <= canonical.edp() * 1.0001,
            "search must not be worse than its canonical seed: {} vs {}",
            best.perf.edp(),
            canonical.edp()
        );
    }

    #[test]
    fn full_search_at_least_matches_gb_order_only() {
        let arch = ArchConfig::with_mac_area_budget(MacKind::Spatial, 256.0);
        let w = wl();
        let mut rng = SeededRng::new(12);
        let full = EvoSearch::default().run(&arch, &w, &mut rng);
        let limited = EvoSearch::default()
            .with_mode(SearchMode::GbOrderOnly)
            .run(&arch, &w, &mut rng);
        assert!(
            full.perf.edp() <= limited.perf.edp() * 1.05,
            "full search should match or beat the limited baseline optimizer: {} vs {}",
            full.perf.edp(),
            limited.perf.edp()
        );
    }

    #[test]
    fn search_is_deterministic_given_seed() {
        let arch = ArchConfig::with_mac_area_budget(MacKind::spatial_temporal(), 256.0);
        let w = wl();
        let a = EvoSearch::default().run(&arch, &w, &mut SeededRng::new(3));
        let b = EvoSearch::default().run(&arch, &w, &mut SeededRng::new(3));
        assert_eq!(a.perf.total_cycles, b.perf.total_cycles);
        assert_eq!(a.dataflow, b.dataflow);
    }

    #[test]
    fn arch_search_returns_valid_config() {
        let mut rng = SeededRng::new(4);
        let search = ArchSearch {
            area_budget: 256.0,
            gb_candidates: vec![256 * 1024, 512 * 1024],
            fill_candidates: vec![1.0],
            inner: EvoSearch {
                population: 10,
                cycles: 3,
                mode: SearchMode::Full,
            },
        };
        let (cfg, score) = search.run(MacKind::spatial_temporal(), &[wl()], &mut rng);
        assert!(cfg.units >= 1);
        assert!(score > 0.0);
    }
}
