//! # tia-bench
//!
//! Experiment regenerators: one binary per table/figure of the paper's
//! evaluation (see DESIGN.md's per-experiment index) plus Criterion
//! microbenchmarks.
//!
//! Algorithm-side experiments train reduced-scale models on synthetic data
//! (DESIGN.md "Substitutions"); set `TIA_QUICK=1` to shrink them further for
//! smoke runs. Architecture-side experiments run the full-size layer-shape
//! workloads through the analytical simulator and are fast regardless.

pub mod harness;

use tia_core::{adversarial_train, AdvMethod, TrainConfig};
use tia_data::{generate, Dataset, DatasetProfile};
use tia_nn::zoo::{preact_resnet, BnKind, PreActResNetConfig};
use tia_nn::Network;
use tia_quant::PrecisionSet;
use tia_tensor::SeededRng;

/// The reproduction's CIFAR-class attack budget. The paper uses ε = 8/255 on
/// natural images; our synthetic classes have wider margins than CIFAR, so ε
/// is scaled 1.5x to keep the attack strength comparable *relative to the
/// class margin* — chosen by the `calib_check` sweep (see EXPERIMENTS.md).
pub const EPS_CIFAR: f32 = 12.0 / 255.0;
/// ImageNet-class budget, scaled from the paper's 4/255 by the same factor.
pub const EPS_IMAGENET: f32 = 6.0 / 255.0;

/// Experiment scale knobs (reduced-scale reproduction; `TIA_QUICK=1`
/// shrinks further for smoke testing).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Training samples.
    pub train: usize,
    /// Test samples generated.
    pub test: usize,
    /// Samples actually evaluated per cell (attacks are expensive).
    pub eval: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Model base width.
    pub width: usize,
}

impl Scale {
    /// Standard reproduction scale (minutes per table).
    pub fn standard() -> Self {
        Self {
            train: 384,
            test: 192,
            eval: 96,
            epochs: 6,
            batch: 24,
            width: 6,
        }
    }

    /// Quick smoke scale (seconds per table).
    pub fn quick() -> Self {
        Self {
            train: 96,
            test: 48,
            eval: 24,
            epochs: 2,
            batch: 16,
            width: 4,
        }
    }

    /// Reads `TIA_QUICK` from the environment.
    pub fn from_env() -> Self {
        if std::env::var("TIA_QUICK").is_ok_and(|v| v != "0" && !v.is_empty()) {
            Self::quick()
        } else {
            Self::standard()
        }
    }
}

/// Model architectures used in the algorithm tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// PreActResNet-18 topology.
    PreActResNet18,
    /// WideResNet-32 (reduced-depth) topology.
    WideResNet32,
    /// ResNet-50-lite topology.
    ResNet50,
}

impl Arch {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Arch::PreActResNet18 => "PreActResNet-18",
            Arch::WideResNet32 => "WideResNet-32",
            Arch::ResNet50 => "ResNet-50",
        }
    }

    /// Builds the (lite) network, plain BN or switchable BN.
    pub fn build(
        &self,
        classes: usize,
        width: usize,
        rps: Option<PrecisionSet>,
        rng: &mut SeededRng,
    ) -> Network {
        let bn = match rps {
            Some(set) => BnKind::Switchable(set),
            None => BnKind::Plain,
        };
        let cfg = match self {
            Arch::PreActResNet18 => PreActResNetConfig::resnet18(3, width, classes, bn),
            Arch::WideResNet32 => PreActResNetConfig::wide_resnet32_lite(3, width, classes, bn),
            Arch::ResNet50 => PreActResNetConfig::resnet50(3, width, classes, bn),
        };
        preact_resnet(&cfg, rng)
    }
}

/// Trains one model (± RPS) on a dataset profile; returns the model and the
/// test set. The RPS precision set follows the paper default 4–16 bit unless
/// overridden.
pub fn train_model(
    profile: &DatasetProfile,
    arch: Arch,
    method: AdvMethod,
    rps: Option<PrecisionSet>,
    eps: f32,
    scale: Scale,
    seed: u64,
) -> (Network, Dataset) {
    let profile = profile.clone().with_sizes(scale.train, scale.test);
    let (train, test) = generate(&profile, seed);
    let mut rng = SeededRng::new(seed ^ 0x5EED);
    let mut net = arch.build(profile.classes, scale.width, rps.clone(), &mut rng);
    let mut cfg = TrainConfig::with_method(method, eps)
        .with_epochs(scale.epochs)
        .with_batch_size(scale.batch)
        .with_seed(seed);
    if let Some(set) = rps {
        cfg = cfg.with_rps(set);
    }
    adversarial_train(&mut net, &train, &cfg);
    (net, test)
}

/// The RPS inference/training set used throughout the tables. The paper
/// trains over every precision in 4~16-bit; at this reproduction's reduced
/// epoch budget each switchable-BN slot must still receive enough updates to
/// converge, so we span the same 4~16-bit range with five slots.
pub fn default_rps_set() -> PrecisionSet {
    PrecisionSet::new(&[4, 6, 8, 12, 16])
}

/// Formats a fraction as `xx.xx` percent.
pub fn pct(x: f32) -> String {
    format!("{:.2}", x * 100.0)
}

/// Prints a standard experiment banner.
pub fn banner(title: &str, substitution_note: &str) {
    println!("================================================================");
    println!("{}", title);
    println!("(reduced-scale reproduction; {})", substitution_note);
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales() {
        let s = Scale::standard();
        let q = Scale::quick();
        assert!(s.train > q.train);
        assert!(s.epochs > q.epochs);
    }

    #[test]
    fn arch_names() {
        assert_eq!(Arch::PreActResNet18.name(), "PreActResNet-18");
        assert_eq!(Arch::WideResNet32.name(), "WideResNet-32");
    }

    #[test]
    fn build_all_archs() {
        let mut rng = SeededRng::new(1);
        for a in [Arch::PreActResNet18, Arch::WideResNet32, Arch::ResNet50] {
            let net = a.build(4, 4, None, &mut rng);
            assert!(net.depth() > 5);
        }
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.5123), "51.23");
    }

    #[test]
    fn quick_training_roundtrip() {
        let (mut net, test) = train_model(
            &DatasetProfile::tiny(3, 8, 32, 16),
            Arch::PreActResNet18,
            AdvMethod::Fgsm,
            None,
            EPS_CIFAR,
            Scale {
                train: 32,
                test: 16,
                eval: 8,
                epochs: 1,
                batch: 16,
                width: 4,
            },
            7,
        );
        assert_eq!(test.len(), 16);
        assert!(net.param_count() > 0);
    }
}
