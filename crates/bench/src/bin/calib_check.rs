//! Calibration utility: sweeps the attack budget and prints natural/robust
//! accuracy for PGD-7 training with and without RPS, plus a small
//! transferability diagnostic. Used to pick the reduced-scale experiment
//! constants documented in EXPERIMENTS.md; kept for re-calibration when
//! dataset profiles change.

use tia_attack::Pgd;
use tia_bench::{default_rps_set, pct, train_model, Arch, Scale};
use tia_core::{natural_accuracy, robust_accuracy, transfer_matrix, AdvMethod, PrecisionPolicy};
use tia_data::DatasetProfile;
use tia_quant::Precision;
use tia_tensor::SeededRng;

fn main() {
    let scale = Scale::standard();
    let profile = DatasetProfile::cifar10_like();
    for eps255 in [8.0f32, 12.0, 16.0] {
        let eps = eps255 / 255.0;
        println!("--- eps = {}/255 ---", eps255);
        for rps in [false, true] {
            let set = rps.then(default_rps_set);
            let (mut net, test) = train_model(
                &profile,
                Arch::PreActResNet18,
                AdvMethod::Pgd { steps: 7 },
                set.clone(),
                eps,
                scale,
                42,
            );
            let eval = test.take(scale.eval);
            let mut rng = SeededRng::new(7);
            let policy = match &set {
                Some(s) => PrecisionPolicy::Random(s.clone()),
                None => PrecisionPolicy::Fixed(None),
            };
            let nat = natural_accuracy(&mut net, &eval, &policy, &mut rng);
            let rob = robust_accuracy(
                &mut net,
                &eval,
                &Pgd::new(eps, 20),
                &policy,
                &policy,
                12,
                &mut rng,
            );
            println!("  rps={} natural {} pgd20 {}", rps, pct(nat), pct(rob));
            if rps {
                let ps: Vec<Precision> = [4u8, 8, 16].iter().map(|&b| Precision::new(b)).collect();
                let m = transfer_matrix(
                    &mut net,
                    &eval.take(48),
                    &Pgd::new(eps, 10),
                    &ps,
                    12,
                    &mut rng,
                );
                println!(
                    "  transfer: diag {} offdiag {}",
                    pct(m.diagonal_mean()),
                    pct(m.off_diagonal_mean())
                );
            }
        }
    }
}
