//! Figure 1: transferability of adversarial attacks between precisions.
//! Four matrices: (a) FGSM-RS-trained, PGD-20 attack; (b) PGD-7-trained,
//! CW-∞ attack; (c) PGD-7-trained, PGD-20 attack; (d) PGD-7 + RPS training,
//! PGD-20 attack. Non-RPS models are trained with a static 8-bit quantizer,
//! matching the paper's §2.3 protocol.

use tia_attack::{Attack, CwInf, Pgd};
use tia_bench::{banner, default_rps_set, train_model, Arch, Scale, EPS_CIFAR};
use tia_core::{transfer_matrix, AdvMethod};
use tia_data::{generate, DatasetProfile};
use tia_quant::Precision;
use tia_tensor::SeededRng;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 1: attack transferability between precisions",
        "synthetic cifar10-like data; PreActResNet-18-lite",
    );
    let profile = DatasetProfile::cifar10_like();
    let precisions: Vec<Precision> = [4u8, 6, 8, 12, 16]
        .iter()
        .map(|&b| Precision::new(b))
        .collect();

    // Static-8-bit adversarially trained models (a)-(c).
    let (mut fgsm_rs_net, _) = {
        let mut p = profile.clone();
        p = p.with_sizes(scale.train, scale.test);
        let _ = p;
        train_static8(&profile, AdvMethod::FgsmRs, scale)
    };
    let (mut pgd7_net, _) = train_static8(&profile, AdvMethod::Pgd { steps: 7 }, scale);
    // RPS-trained model (d).
    let (mut rps_net, _) = train_model(
        &profile,
        Arch::PreActResNet18,
        AdvMethod::Pgd { steps: 7 },
        Some(default_rps_set()),
        EPS_CIFAR,
        scale,
        42,
    );

    let eval = generate(&profile.clone().with_sizes(scale.train, scale.test), 42).1;
    let eval = eval.take(scale.eval / 2);
    let panel = |title: &str, net: &mut tia_nn::Network, attack: &dyn Attack| {
        let mut rng = SeededRng::new(9);
        let m = transfer_matrix(net, &eval, attack, &precisions, 12, &mut rng);
        println!("\n{} (robust accuracy %):", title);
        print!("{}", m.render());
        println!(
            "diagonal mean {:.1}%  off-diagonal mean {:.1}%  grand mean {:.1}%",
            m.diagonal_mean() * 100.0,
            m.off_diagonal_mean() * 100.0,
            m.grand_mean() * 100.0
        );
    };
    panel(
        "(a) FGSM-RS trained, PGD-20 attack",
        &mut fgsm_rs_net,
        &Pgd::new(EPS_CIFAR, 20),
    );
    panel(
        "(b) PGD-7 trained, CW-Inf attack",
        &mut pgd7_net,
        &CwInf::new(EPS_CIFAR, 20),
    );
    panel(
        "(c) PGD-7 trained, PGD-20 attack",
        &mut pgd7_net,
        &Pgd::new(EPS_CIFAR, 20),
    );
    panel(
        "(d) PGD-7 + RPS training, PGD-20 attack",
        &mut rps_net,
        &Pgd::new(EPS_CIFAR, 20),
    );
    println!("\nPaper (Fig.1): attacks transfer poorly between precisions —");
    println!("off-diagonal robust accuracy is consistently higher than the");
    println!("diagonal, and RPS training widens the gap.");
}

fn train_static8(
    profile: &DatasetProfile,
    method: AdvMethod,
    scale: Scale,
) -> (tia_nn::Network, tia_data::Dataset) {
    use tia_core::{adversarial_train, TrainConfig};
    let profile = profile.clone().with_sizes(scale.train, scale.test);
    let (train, test) = generate(&profile, 42);
    let mut rng = SeededRng::new(42 ^ 0x5EED);
    let mut net = Arch::PreActResNet18.build(profile.classes, scale.width, None, &mut rng);
    let cfg = TrainConfig::with_method(method, EPS_CIFAR)
        .with_epochs(scale.epochs)
        .with_batch_size(scale.batch)
        .with_static_precision(Precision::new(8))
        .with_seed(42);
    adversarial_train(&mut net, &train, &cfg);
    (net, test)
}
