//! Figure 8: normalized energy efficiency of Bit Fusion / Stripes / ours
//! across the six benchmark networks at 2/4/8/16-bit.

use tia_accel::PrecisionPair;
use tia_bench::banner;
use tia_nn::workload::NetworkSpec;
use tia_sim::Accelerator;

fn main() {
    banner(
        "Figure 8: normalized energy efficiency, six networks x four precisions",
        "normalized to Bit Fusion = 1.00; Stripes dataflow fully optimized",
    );
    let mut ours = Accelerator::ours();
    let mut bf = Accelerator::bitfusion();
    let mut st = Accelerator::stripes();
    for b in [2u8, 4, 8, 16] {
        let p = PrecisionPair::symmetric(b);
        println!("\n--- {}x{}-bit ---", b, b);
        println!(
            "{:<16}{:<10} {:>10} {:>9} {:>7}",
            "Network", "Dataset", "BitFusion", "Stripes", "Ours"
        );
        for net in NetworkSpec::paper_six() {
            let eo = ours.simulate_network(&net, p).total_energy();
            let eb = bf.simulate_network(&net, p).total_energy();
            let es = st.simulate_network(&net, p).total_energy();
            println!(
                "{:<16}{:<10} {:>10.2} {:>9.2} {:>7.2}",
                net.name,
                net.dataset,
                1.0,
                eb / es,
                eb / eo
            );
        }
    }
    println!("\nPaper (Fig.8): ours 1.91~7.58x over Bit Fusion and 1.25~2.85x over");
    println!("Stripes; Stripes beats Bit Fusion once its dataflow is optimized.");
}
