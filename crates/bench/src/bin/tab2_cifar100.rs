//! Table 2: RPS on CIFAR-100(-like) — natural + PGD-20/PGD-100 robust
//! accuracy for PreActResNet-18 and WideResNet-32 under FGSM / FGSM-RS /
//! PGD-7 adversarial training, with and without RPS.

use tia_attack::Pgd;
use tia_bench::{banner, default_rps_set, pct, train_model, Arch, Scale, EPS_CIFAR};
use tia_core::{natural_accuracy, robust_accuracy, AdvMethod, PrecisionPolicy};
use tia_data::DatasetProfile;
use tia_tensor::SeededRng;

fn main() {
    run_table(
        "Table 2: RPS on CIFAR-100-like",
        &DatasetProfile::cifar100_like(),
    );
}

pub fn run_table(title: &str, profile: &DatasetProfile) {
    let scale = Scale::from_env();
    banner(title, "synthetic dataset stands in for the original corpus");
    let methods = [
        AdvMethod::Fgsm,
        AdvMethod::FgsmRs,
        AdvMethod::Pgd { steps: 7 },
    ];
    for arch in [Arch::PreActResNet18, Arch::WideResNet32] {
        println!("\n--- {} ---", arch.name());
        println!(
            "{:<18} {:>9} {:>9} {:>9}",
            "Method", "Natural", "PGD-20", "PGD-100"
        );
        for method in methods {
            for rps in [false, true] {
                let set = rps.then(default_rps_set);
                let (mut net, test) =
                    train_model(profile, arch, method, set.clone(), EPS_CIFAR, scale, 42);
                let eval = test.take(scale.eval);
                let mut rng = SeededRng::new(7);
                let policy = match &set {
                    Some(s) => PrecisionPolicy::Random(s.clone()),
                    None => PrecisionPolicy::Fixed(None),
                };
                let nat = natural_accuracy(&mut net, &eval, &policy, &mut rng);
                let mut robs = vec![];
                for steps in [20usize, 100] {
                    let attack = Pgd::new(EPS_CIFAR, steps);
                    robs.push(robust_accuracy(
                        &mut net, &eval, &attack, &policy, &policy, 12, &mut rng,
                    ));
                }
                let label = if rps {
                    format!("{}+RPS", method.name())
                } else {
                    method.name()
                };
                println!(
                    "{:<18} {:>9} {:>9} {:>9}",
                    label,
                    pct(nat),
                    pct(robs[0]),
                    pct(robs[1])
                );
            }
        }
    }
    println!("\nPaper (Tab.2, full scale): RPS adds +9.4~13.8 points of PGD-20");
    println!("robust accuracy over each adversarial-training baseline.");
}
