//! Figure 11: instant robustness-efficiency trade-off. One RPS-trained
//! WideResNet-32 switches between inference precision sets (4~16, 4~12,
//! 4~8, static 4-bit) without retraining; robust accuracy trades against
//! the accelerator's average energy per inference.

use tia_attack::Pgd;
use tia_bench::{banner, default_rps_set, pct, train_model, Arch, Scale, EPS_CIFAR};
use tia_core::{tradeoff_curve, AdvMethod};
use tia_data::DatasetProfile;
use tia_nn::workload::NetworkSpec;
use tia_quant::PrecisionSet;
use tia_sim::Accelerator;
use tia_tensor::SeededRng;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 11: instant robustness-efficiency trade-off (WRN-32)",
        "robust accuracy from the lite model; energy from the full-size workload",
    );
    let profile = DatasetProfile::cifar10_like();
    let (mut net, test) = train_model(
        &profile,
        Arch::WideResNet32,
        AdvMethod::Pgd { steps: 7 },
        Some(default_rps_set()),
        EPS_CIFAR,
        scale,
        42,
    );
    let eval = test.take(scale.eval / 2);
    let sets = vec![
        PrecisionSet::range(4, 16),
        PrecisionSet::range(4, 12),
        PrecisionSet::range(4, 8),
        PrecisionSet::new(&[4]),
    ];
    let mut rng = SeededRng::new(7);
    let attack = Pgd::new(EPS_CIFAR, 20);
    let points = tradeoff_curve(&mut net, &eval, &attack, &sets, 12, &mut rng);

    // Energy per operating point from the accelerator simulator.
    let mut ours = Accelerator::ours();
    let wl = NetworkSpec::wide_resnet32_cifar();
    let base_energy = ours.average_over_set(&wl, &sets[0]).1;
    println!(
        "\n{:<16} {:>9} {:>9} {:>10} {:>12}",
        "Precision set", "Natural", "Robust", "Mean bits", "Norm energy-eff"
    );
    for (pt, set) in points.iter().zip(&sets) {
        let (_, energy) = ours.average_over_set(&wl, set);
        println!(
            "{:<16} {:>9} {:>9} {:>10.1} {:>12.2}",
            pt.label,
            pct(pt.natural_acc),
            pct(pt.robust_acc),
            pt.mean_bits,
            base_energy / energy
        );
    }
    println!("\nPaper (Fig.11): shrinking the precision set trades robust accuracy");
    println!("for higher average energy efficiency at comparable natural accuracy.");
}
