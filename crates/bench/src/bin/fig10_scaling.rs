//! Figure 10: throughput vs execution precision (1-16 bit) for Bit Fusion,
//! Stripes and ours on WideResNet-32/CIFAR-10 and ResNet-50/ImageNet.

use tia_accel::PrecisionPair;
use tia_bench::banner;
use tia_nn::workload::NetworkSpec;
use tia_sim::Accelerator;

fn main() {
    banner(
        "Figure 10: throughput vs precision, three designs, two networks",
        "analytical simulator; FPS at 1 GHz",
    );
    let mut ours = Accelerator::ours();
    let mut bf = Accelerator::bitfusion();
    let mut st = Accelerator::stripes();
    for net in [
        NetworkSpec::wide_resnet32_cifar(),
        NetworkSpec::resnet50_imagenet(),
    ] {
        println!("\n--- {} on {} ---", net.name, net.dataset);
        println!(
            "{:>9} {:>12} {:>10} {:>10}",
            "Precision", "BitFusion", "Stripes", "Ours"
        );
        for b in 1..=16u8 {
            let p = PrecisionPair::symmetric(b);
            println!(
                "{:>9} {:>12.2} {:>10.2} {:>10.2}",
                format!("{}-bit", b),
                bf.simulate_network(&net, p).fps,
                st.simulate_network(&net, p).fps,
                ours.simulate_network(&net, p).fps
            );
        }
    }
    println!("\nPaper (Fig.10): ours outperforms both baselines at every precision");
    println!("(up to 4.42x) and keeps improving as precision decreases.");
}
