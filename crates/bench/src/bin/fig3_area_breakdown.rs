//! Figure 3: MAC-unit area breakdown (multiplier / shift-add / register)
//! for the temporal, spatial and proposed spatial-temporal designs.

use tia_accel::{MacKind, MacUnit};
use tia_bench::banner;

fn main() {
    banner(
        "Figure 3: MAC-unit area breakdown",
        "fractions anchored to the paper's synthesis results",
    );
    println!(
        "{:<22} {:>11} {:>11} {:>10} {:>12}",
        "Design", "Multiplier%", "Shift-add%", "Register%", "Total area"
    );
    for kind in [
        MacKind::Temporal,
        MacKind::Spatial,
        MacKind::SpatialTemporal {
            opt1: false,
            opt2: false,
        },
        MacKind::SpatialTemporal {
            opt1: true,
            opt2: false,
        },
        MacKind::spatial_temporal(),
    ] {
        let unit = MacUnit::new(kind);
        let b = unit.area_breakdown();
        println!(
            "{:<22} {:>11.1} {:>11.1} {:>10.1} {:>12.3}",
            kind.name(),
            b.multiplier_fraction() * 100.0,
            b.shift_add_fraction() * 100.0,
            b.register_fraction() * 100.0,
            b.total()
        );
    }
    println!("\nPaper (Fig.3): shift-add is 60.9%/67.0% of the temporal/spatial");
    println!("units; the proposed design cuts it to 39.7%.");
}
