//! Figure 7: normalized throughput of Bit Fusion / Stripes / ours across
//! the six benchmark networks at 2/4/8/16-bit (normalized to Bit Fusion).

use tia_accel::PrecisionPair;
use tia_bench::banner;
use tia_nn::workload::NetworkSpec;
use tia_sim::Accelerator;

fn main() {
    banner(
        "Figure 7: normalized throughput, six networks x four precisions",
        "normalized to Bit Fusion = 1.00, as in the paper",
    );
    let mut ours = Accelerator::ours();
    let mut bf = Accelerator::bitfusion();
    let mut st = Accelerator::stripes();
    for b in [2u8, 4, 8, 16] {
        let p = PrecisionPair::symmetric(b);
        println!("\n--- {}x{}-bit ---", b, b);
        println!(
            "{:<16}{:<10} {:>10} {:>9} {:>7}",
            "Network", "Dataset", "BitFusion", "Stripes", "Ours"
        );
        for net in NetworkSpec::paper_six() {
            let fo = ours.simulate_network(&net, p).fps;
            let fb = bf.simulate_network(&net, p).fps;
            let fs = st.simulate_network(&net, p).fps;
            println!(
                "{:<16}{:<10} {:>10.2} {:>9.2} {:>7.2}",
                net.name,
                net.dataset,
                1.0,
                fs / fb,
                fo / fb
            );
        }
    }
    println!("\nPaper (Fig.7): ours 1.41~2.88x over Bit Fusion and 1.15~4.59x over");
    println!("Stripes across all networks and precisions.");
}
