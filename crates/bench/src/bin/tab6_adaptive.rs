//! Table 6: the customized adaptive attack E-PGD, which ensembles gradients
//! over every candidate precision (the adversary knows the RPS set).

use tia_attack::EPgd;
use tia_bench::{banner, default_rps_set, pct, train_model, Arch, Scale, EPS_CIFAR};
use tia_core::{natural_accuracy, robust_accuracy, AdvMethod, PrecisionPolicy};
use tia_data::DatasetProfile;
use tia_quant::PrecisionSet;
use tia_tensor::SeededRng;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Table 6: adaptive E-PGD attack (PGD-7 vs PGD-7+RPS)",
        "ensemble-gradient adaptive attack per Tramer et al. 2020",
    );
    // A reduced ensemble set keeps E-PGD affordable; the attack is aware of
    // every precision the defender can pick.
    let set = PrecisionSet::new(&[4, 6, 8, 12, 16]);
    for profile in [
        DatasetProfile::cifar10_like(),
        DatasetProfile::cifar100_like(),
    ] {
        println!("\n--- {} ---", profile.name);
        println!(
            "{:<14} {:>9} {:>10} {:>10}",
            "Method", "Natural", "E-PGD-20", "E-PGD-100"
        );
        for rps in [false, true] {
            let train_set = rps.then(default_rps_set);
            let (mut net, test) = train_model(
                &profile,
                Arch::PreActResNet18,
                AdvMethod::Pgd { steps: 7 },
                train_set.clone(),
                EPS_CIFAR,
                scale,
                42,
            );
            let eval = test.take(scale.eval / 2);
            let mut rng = SeededRng::new(7);
            let policy = match &train_set {
                Some(s) => PrecisionPolicy::Random(s.clone()),
                None => PrecisionPolicy::Fixed(None),
            };
            let nat = natural_accuracy(&mut net, &eval, &policy, &mut rng);
            let mut robs = vec![];
            for steps in [20usize, 100] {
                let attack = EPgd::new(EPS_CIFAR, steps, set.clone());
                // E-PGD already switches precisions internally; the attack
                // policy slot is irrelevant, the defender still randomizes.
                robs.push(robust_accuracy(
                    &mut net,
                    &eval,
                    &attack,
                    &PrecisionPolicy::Fixed(None),
                    &policy,
                    12,
                    &mut rng,
                ));
            }
            let label = if rps { "PGD-7+RPS" } else { "PGD-7" };
            println!(
                "{:<14} {:>9} {:>10} {:>10}",
                label,
                pct(nat),
                pct(robs[0]),
                pct(robs[1])
            );
        }
    }
    println!("\nPaper (Tab.6): RPS keeps a >8.9-point edge under E-PGD-20 on both");
    println!("CIFAR-10 and CIFAR-100.");
}
