//! §4.3.2: throughput vs the robustness-aware DNNGuard baseline, for
//! AlexNet / VGG-16 / ResNet-50 with RPS precision sets 4~8 and 4~16 bit.

use tia_bench::banner;
use tia_nn::workload::NetworkSpec;
use tia_quant::PrecisionSet;
use tia_sim::{dnnguard_throughput, Accelerator};

fn main() {
    banner(
        "Sec 4.3.2: 2-in-1 Accelerator vs DNNGuard",
        "DNNGuard modelled charitably (shares our memory system); see DESIGN.md",
    );
    let mut ours = Accelerator::ours();
    let budget = 4.4 * 1024.0;
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "Network", "DNNGuard FPS", "Ours 4~8 FPS", "Ours 4~16 FPS", "4~8 ratio", "4~16 ratio"
    );
    for net in [
        NetworkSpec::alexnet(),
        NetworkSpec::vgg16(),
        NetworkSpec::resnet50_imagenet(),
    ] {
        let dg = dnnguard_throughput(&net, budget, 1.0);
        let (f48, _) = ours.average_over_set(&net, &PrecisionSet::range(4, 8));
        let (f416, _) = ours.average_over_set(&net, &PrecisionSet::range(4, 16));
        println!(
            "{:<12} {:>14.1} {:>14.1} {:>14.1} {:>9.1}x {:>9.1}x",
            net.name,
            dg,
            f48,
            f416,
            f48 / dg,
            f416 / dg
        );
    }
    println!("\nPaper (Sec 4.3.2): 36.5x/17.9x (AlexNet), 19.3x/9.5x (VGG-16),");
    println!("12.8x/6.4x (ResNet-50) at 4~8 / 4~16 bit. Our charitable DNNGuard");
    println!("model compresses the magnitudes; the orderings (AlexNet > VGG-16 >");
    println!("ResNet-50; 4~8 > 4~16) reproduce.");
}
