//! §3.2.3 anchors: MAC-unit level comparison — cycles per product across
//! 1-16 bit and the throughput/area + energy-efficiency ratios vs Bit
//! Fusion at 8x8-bit.

use tia_accel::{MacKind, MacUnit, PrecisionPair};
use tia_bench::banner;

fn main() {
    banner(
        "MAC-unit comparison (Sec 3.2 scheduling + Sec 3.2.3 anchors)",
        "cycle counts follow the paper exactly; area/energy calibrated",
    );
    let designs = [
        MacKind::Temporal,
        MacKind::Spatial,
        MacKind::spatial_temporal(),
    ];
    println!("Cycles per output product:");
    print!("{:>9}", "Precision");
    for k in designs {
        print!("{:>12}", k.name());
    }
    println!();
    for b in 1..=16u8 {
        let p = PrecisionPair::symmetric(b);
        print!("{:>9}", format!("{}-bit", b));
        for k in designs {
            print!("{:>12.2}", MacUnit::new(k).cycles_per_product(p));
        }
        println!();
    }
    let p8 = PrecisionPair::symmetric(8);
    let o = MacUnit::new(MacKind::spatial_temporal());
    let bf = MacUnit::new(MacKind::Spatial);
    println!(
        "\nThroughput/area vs Bit Fusion @8x8-bit: {:.2}x  (paper: 2.3x)",
        (o.products_per_cycle(p8) / o.area()) / (bf.products_per_cycle(p8) / bf.area())
    );
    println!(
        "Energy-efficiency/op vs Bit Fusion @8x8-bit: {:.2}x  (paper: 4.88x)",
        bf.energy_per_mac(p8) / o.energy_per_mac(p8)
    );
}
