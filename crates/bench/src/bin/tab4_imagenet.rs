//! Table 4: RPS on ImageNet(-lite) — FGSM-RS and Free adversarial training
//! on ResNet-50(-lite), PGD-10/PGD-50 attacks at ε = 4/255.

use tia_attack::Pgd;
use tia_bench::{banner, default_rps_set, pct, train_model, Arch, Scale, EPS_IMAGENET};
use tia_core::{natural_accuracy, robust_accuracy, AdvMethod, PrecisionPolicy};
use tia_data::DatasetProfile;
use tia_tensor::SeededRng;

fn main() {
    let mut scale = Scale::from_env();
    // ResNet-50-lite is deeper; trim width/epochs to keep runtime sane.
    scale.width = scale.width.min(4);
    scale.epochs = scale.epochs.min(4);
    banner(
        "Table 4: RPS on ImageNet-lite (ResNet-50-lite, eps=4/255)",
        "synthetic imagenet-lite profile; basic-block ResNet-50 substitution",
    );
    let profile = DatasetProfile::imagenet_lite();
    println!(
        "{:<18} {:>9} {:>9} {:>9}",
        "Method", "Natural", "PGD-10", "PGD-50"
    );
    for method in [AdvMethod::FgsmRs, AdvMethod::Free { replays: 4 }] {
        for rps in [false, true] {
            let set = rps.then(default_rps_set);
            let (mut net, test) = train_model(
                &profile,
                Arch::ResNet50,
                method,
                set.clone(),
                EPS_IMAGENET,
                scale,
                42,
            );
            let eval = test.take(scale.eval / 2);
            let mut rng = SeededRng::new(7);
            let policy = match &set {
                Some(s) => PrecisionPolicy::Random(s.clone()),
                None => PrecisionPolicy::Fixed(None),
            };
            let nat = natural_accuracy(&mut net, &eval, &policy, &mut rng);
            let r10 = robust_accuracy(
                &mut net,
                &eval,
                &Pgd::new(EPS_IMAGENET, 10),
                &policy,
                &policy,
                12,
                &mut rng,
            );
            let r50 = robust_accuracy(
                &mut net,
                &eval,
                &Pgd::new(EPS_IMAGENET, 50),
                &policy,
                &policy,
                12,
                &mut rng,
            );
            let label = if rps {
                format!("{}+RPS", method.name())
            } else {
                method.name()
            };
            println!(
                "{:<18} {:>9} {:>9} {:>9}",
                label,
                pct(nat),
                pct(r10),
                pct(r50)
            );
        }
    }
    println!("\nPaper (Tab.4): RPS adds +7.7/+10.1 points PGD-10 robust accuracy");
    println!("over FGSM-RS/Free and improves natural accuracy (a triple win).");
}
