//! Ablation: the contribution of Opt-1 (reorganized bit-level split /
//! allocation) and Opt-2 (fused group shift-add) to the proposed MAC unit
//! and to end-to-end efficiency on ResNet-50 at 8x8-bit.

use tia_accel::{MacKind, MacUnit, PrecisionPair};
use tia_bench::banner;
use tia_nn::workload::NetworkSpec;
use tia_sim::Accelerator;

fn main() {
    banner(
        "Ablation: Opt-1 / Opt-2 shift-add reductions (Sec 3.2.2-3.2.3)",
        "same cycle schedule; optimizations shrink area and energy",
    );
    let p8 = PrecisionPair::symmetric(8);
    let net = NetworkSpec::resnet50_imagenet();
    println!(
        "{:<26} {:>10} {:>12} {:>12} {:>14}",
        "Variant", "Unit area", "Shift-add%", "E/MAC @8b", "ResNet50 E(norm)"
    );
    let mut base_energy = None;
    for (opt1, opt2) in [(false, false), (true, false), (false, true), (true, true)] {
        let kind = MacKind::SpatialTemporal { opt1, opt2 };
        let unit = MacUnit::new(kind);
        let mut acc = Accelerator::ours_ablation(opt1, opt2);
        let e = acc.simulate_network(&net, p8).total_energy();
        let base = *base_energy.get_or_insert(e);
        println!(
            "{:<26} {:>10.3} {:>12.1} {:>12.3} {:>14.3}",
            kind.name(),
            unit.area(),
            unit.area_breakdown().shift_add_fraction() * 100.0,
            unit.energy_per_mac(p8),
            e / base
        );
    }
    println!("\nBoth optimizations together cut the shift-add area enough to reach");
    println!("the paper's 2.3x throughput/area over Bit Fusion (see mac_unit_compare).");
}
