//! Figure 9: energy breakdown (DRAM / SRAM / NoC / RF / MAC) of ours vs
//! Bit Fusion on the six networks executed at 4x4-bit.

use tia_accel::PrecisionPair;
use tia_bench::banner;
use tia_nn::workload::NetworkSpec;
use tia_sim::Accelerator;

fn main() {
    banner(
        "Figure 9: energy breakdown at 4x4-bit, ours vs Bit Fusion",
        "percent of each design's own total energy; totals normalized to BF",
    );
    let p = PrecisionPair::symmetric(4);
    let mut ours = Accelerator::ours();
    let mut bf = Accelerator::bitfusion();
    println!(
        "{:<16}{:<11} {:>6} {:>6} {:>6} {:>6} {:>6} {:>11}",
        "Network", "Design", "DRAM%", "SRAM%", "NoC%", "RF%", "MAC%", "Total(norm)"
    );
    for net in NetworkSpec::paper_six() {
        let pb = bf.simulate_network(&net, p);
        let po = ours.simulate_network(&net, p);
        let base = pb.total_energy();
        for perf in [&pb, &po] {
            let t = perf.total_energy();
            println!(
                "{:<16}{:<11} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>11.3}",
                net.name,
                perf.accelerator,
                perf.mem_energy[0] / t * 100.0,
                perf.mem_energy[1] / t * 100.0,
                perf.mem_energy[2] / t * 100.0,
                perf.mem_energy[3] / t * 100.0,
                perf.mac_energy / t * 100.0,
                t / base
            );
        }
    }
    println!("\nPaper (Fig.9): DRAM dominates both designs; ours reduces MAC and");
    println!("data-movement energy alike versus Bit Fusion.");
}
