//! Table 5: stronger attacks — AutoAttack(APGD), CW-∞ and Bandits at
//! ε = 8/255 and 12/255 on PGD-7 (± RPS) trained models.

use tia_attack::{Apgd, Attack, Bandits, CwInf};
use tia_bench::{banner, default_rps_set, pct, train_model, Arch, Scale, EPS_CIFAR};
use tia_core::{robust_accuracy, AdvMethod, PrecisionPolicy};
use tia_data::DatasetProfile;
use tia_tensor::SeededRng;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Table 5: stronger attacks on CIFAR-10-like (PGD-7 vs PGD-7+RPS)",
        "AutoAttack represented by its APGD-CE core; see DESIGN.md",
    );
    let profile = DatasetProfile::cifar10_like();
    for arch in [Arch::PreActResNet18, Arch::WideResNet32] {
        println!("\n--- {} ---", arch.name());
        println!("{:<22} {:>10} {:>12}", "Attack", "PGD-7", "PGD-7+RPS");
        let (mut base, test) = train_model(
            &profile,
            arch,
            AdvMethod::Pgd { steps: 7 },
            None,
            EPS_CIFAR,
            scale,
            42,
        );
        let set = default_rps_set();
        let (mut rps, _) = train_model(
            &profile,
            arch,
            AdvMethod::Pgd { steps: 7 },
            Some(set.clone()),
            EPS_CIFAR,
            scale,
            42,
        );
        let eval = test.take(scale.eval / 2);
        for eps_mult in [1.0f32, 1.5] {
            let eps = EPS_CIFAR * eps_mult; // 8/255 and 12/255
            let attacks: Vec<Box<dyn Attack>> = vec![
                Box::new(Apgd::new(eps, 20)),
                Box::new(CwInf::new(eps, 20)),
                Box::new(Bandits::new(eps, 20)),
            ];
            for attack in attacks {
                let mut rng = SeededRng::new(7);
                let fixed = PrecisionPolicy::Fixed(None);
                let acc_base = robust_accuracy(
                    &mut base,
                    &eval,
                    attack.as_ref(),
                    &fixed,
                    &fixed,
                    12,
                    &mut rng,
                );
                let policy = PrecisionPolicy::Random(set.clone());
                let acc_rps = robust_accuracy(
                    &mut rps,
                    &eval,
                    attack.as_ref(),
                    &policy,
                    &policy,
                    12,
                    &mut rng,
                );
                println!(
                    "{:<22} {:>10} {:>12}",
                    format!("{} (e={:.0}/255)", attack.name(), eps * 255.0),
                    pct(acc_base),
                    pct(acc_rps)
                );
            }
        }
    }
    println!("\nPaper (Tab.5): RPS adds +6.9~9.1 (AutoAttack), +10.0~18.9 (CW-Inf),");
    println!("+5.0~24.5 (Bandits) points of robust accuracy.");
}
