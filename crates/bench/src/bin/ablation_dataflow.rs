//! Ablation: the automated dataflow optimizer's contribution — the proposed
//! MAC array with (1) full evolutionary search, (2) the restricted
//! Bit-Fusion-style optimizer, (3) the fixed canonical dataflow.

use tia_accel::{MacKind, PrecisionPair};
use tia_bench::banner;
use tia_dataflow::{EvoSearch, SearchMode};
use tia_nn::workload::NetworkSpec;
use tia_sim::Accelerator;

fn main() {
    banner(
        "Ablation: dataflow optimizer (Alg. 2) contribution",
        "same hardware, three optimization regimes",
    );
    let p = PrecisionPair::symmetric(4);
    println!(
        "{:<16} {:>14} {:>14} {:>12}",
        "Network", "Regime", "FPS", "Energy(norm)"
    );
    for net in [
        NetworkSpec::resnet50_imagenet(),
        NetworkSpec::wide_resnet32_cifar(),
    ] {
        let mut full = Accelerator::ours();
        let mut limited = Accelerator::with_kind(
            "Ours-GbOnly",
            MacKind::spatial_temporal(),
            SearchMode::GbOrderOnly,
        );
        let mut fixed = Accelerator::with_kind(
            "Ours-fixed",
            MacKind::spatial_temporal(),
            SearchMode::GbOrderOnly,
        )
        .with_search(EvoSearch {
            population: 1,
            cycles: 0,
            mode: SearchMode::GbOrderOnly,
        });
        let pf = full.simulate_network(&net, p);
        let pl = limited.simulate_network(&net, p);
        let px = fixed.simulate_network(&net, p);
        let base = px.total_energy();
        for perf in [&px, &pl, &pf] {
            let regime = match perf.accelerator.as_str() {
                "Ours" => "full search",
                "Ours-GbOnly" => "GB-order only",
                _ => "fixed canonical",
            };
            println!(
                "{:<16} {:>14} {:>14.2} {:>12.3}",
                net.name,
                regime,
                perf.fps,
                perf.total_energy() / base
            );
        }
    }
    println!("\nPaper (Sec 4.3.1): on ResNet-50 at 4x4-bit the optimizer adds 1.28x");
    println!("throughput on top of the MAC unit's 2.25x.");
}
