//! Figure 2: the flexibility-vs-performance dilemma of existing
//! precision-scalable accelerators — Bit Fusion vs Stripes throughput
//! across 1–16-bit execution of ResNet-50/ImageNet.

use tia_accel::PrecisionPair;
use tia_bench::banner;
use tia_nn::workload::NetworkSpec;
use tia_sim::Accelerator;

fn main() {
    banner(
        "Figure 2: Bit Fusion vs Stripes, ResNet-50/ImageNet, 1-16 bit",
        "analytical simulator calibrated per DESIGN.md",
    );
    let net = NetworkSpec::resnet50_imagenet();
    let mut bf = Accelerator::bitfusion();
    let mut st = Accelerator::stripes();
    println!(
        "{:>9} {:>14} {:>14}",
        "Precision", "BitFusion FPS", "Stripes FPS"
    );
    for b in 1..=16u8 {
        let p = PrecisionPair::symmetric(b);
        println!(
            "{:>9} {:>14.2} {:>14.2}",
            format!("{}-bit", b),
            bf.simulate_network(&net, p).fps,
            st.simulate_network(&net, p).fps
        );
    }
    println!("\nPaper (Fig.2): Bit Fusion wins below 8-bit but flatlines across");
    println!("unsupported precisions (3,5,6,7) and collapses above 8-bit;");
    println!("Stripes scales smoothly with precision.");
}
