//! Minimal self-contained microbenchmark harness.
//!
//! The container this reproduction builds in has no third-party crates, so
//! instead of Criterion the bench binaries (declared `harness = false`) use
//! this ~80-line timer: warm up, then run timed batches until a wall-clock
//! budget is spent, and report the per-iteration mean of the fastest batch
//! (the usual low-noise estimator for short kernels).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One benchmark's timing result.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Total iterations timed.
    pub iters: u64,
    /// Nanoseconds per iteration (fastest batch).
    pub ns_per_iter: f64,
}

impl BenchResult {
    /// Iterations per second implied by the fastest batch.
    pub fn per_sec(&self) -> f64 {
        1e9 / self.ns_per_iter.max(1e-3)
    }
}

/// Whether `TIA_BENCH_SMOKE` requests single-iteration smoke mode: every
/// benchmark runs exactly once, just proving the harness compiles and the
/// benchmarked paths still execute (the CI usage). Numbers produced in
/// smoke mode are not meaningful and must not be snapshotted.
pub fn smoke_mode() -> bool {
    std::env::var_os("TIA_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// Times `f`, printing and returning the result.
///
/// Budget: ~60 ms warmup, ~300 ms measurement, batches sized so each takes
/// ≥10 ms. Honest for everything from nanosecond kernels to multi-ms
/// simulations without Criterion's dependency footprint. Under
/// [`smoke_mode`] the closure runs exactly once.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) -> BenchResult {
    if smoke_mode() {
        // tia-lint: allow(determinism, a wall-clock timer is the whole point of a bench harness)
        let t = Instant::now();
        black_box(f());
        let result = BenchResult {
            name: name.to_string(),
            iters: 1,
            // tia-lint: allow(determinism, bench harness measures wall time by design)
            ns_per_iter: t.elapsed().as_nanos() as f64,
        };
        println!(
            "{:<40} smoke: 1 iter in {:.1} ns",
            result.name, result.ns_per_iter
        );
        return result;
    }
    // Warmup: run until 60 ms elapse (at least once).
    // tia-lint: allow(determinism, bench harness measures wall time by design)
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    // tia-lint: allow(determinism, bench harness measures wall time by design)
    while warm_start.elapsed() < Duration::from_millis(60) || warm_iters == 0 {
        black_box(f());
        warm_iters += 1;
    }
    // Batch size targeting ≥10 ms per batch.
    // tia-lint: allow(determinism, bench harness measures wall time by design)
    let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
    let batch = ((10e6 / per_iter.max(1.0)).ceil() as u64).max(1);
    let mut best = f64::INFINITY;
    let mut total_iters = 0u64;
    // tia-lint: allow(determinism, bench harness measures wall time by design)
    let start = Instant::now();
    // tia-lint: allow(determinism, bench harness measures wall time by design)
    while start.elapsed() < Duration::from_millis(300) {
        // tia-lint: allow(determinism, bench harness measures wall time by design)
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        // tia-lint: allow(determinism, bench harness measures wall time by design)
        let ns = t.elapsed().as_nanos() as f64 / batch as f64;
        best = best.min(ns);
        total_iters += batch;
    }
    let result = BenchResult {
        name: name.to_string(),
        iters: total_iters,
        ns_per_iter: best,
    };
    println!(
        "{:<40} {:>14.1} ns/iter {:>14.1} iters/s ({} iters)",
        result.name,
        result.ns_per_iter,
        result.per_sec(),
        result.iters
    );
    result
}

/// Renders bench results as a flat JSON object `{name: ns_per_iter, ...}` —
/// enough structure for PR-over-PR perf trajectories without serde.
pub fn to_json(results: &[BenchResult]) -> String {
    let mut out = String::from("{\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  \"{}\": {{\"ns_per_iter\": {:.1}, \"per_sec\": {:.2}}}{}\n",
            r.name,
            r.ns_per_iter,
            r.per_sec(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push('}');
    out
}

/// [`to_json`] with a leading `"_meta"` object of string fields — the
/// snapshot's context (e.g. which SIMD backend `native` dispatched to),
/// so a perf number is never read without knowing what produced it.
pub fn to_json_with_meta(results: &[BenchResult], meta: &[(&str, &str)]) -> String {
    let mut out = String::from("{\n  \"_meta\": {");
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{k}\": \"{v}\""));
    }
    out.push_str(if results.is_empty() { "}\n" } else { "},\n" });
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  \"{}\": {{\"ns_per_iter\": {:.1}, \"per_sec\": {:.2}}}{}\n",
            r.name,
            r.ns_per_iter,
            r.per_sec(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_times_a_trivial_closure() {
        let r = bench("noop_add", || black_box(1u64) + black_box(2u64));
        assert!(r.iters > 0);
        assert!(r.ns_per_iter >= 0.0);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rs = vec![
            BenchResult {
                name: "a".into(),
                iters: 1,
                ns_per_iter: 10.0,
            },
            BenchResult {
                name: "b".into(),
                iters: 1,
                ns_per_iter: 20.0,
            },
        ];
        let j = to_json(&rs);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"a\"") && j.contains("\"b\""));
        // One separator between the two entries, none after the last.
        assert_eq!(j.matches("},\n").count(), 1);
        assert!(j.trim_end().ends_with('}'));
    }

    #[test]
    fn meta_json_carries_its_fields_and_all_entries() {
        let rs = vec![BenchResult {
            name: "a".into(),
            iters: 1,
            ns_per_iter: 10.0,
        }];
        let j = to_json_with_meta(
            &rs,
            &[("kernel_backend", "avx2"), ("kernel_mode", "native")],
        );
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(
            j.contains("\"_meta\": {\"kernel_backend\": \"avx2\", \"kernel_mode\": \"native\"},")
        );
        assert!(j.contains("\"a\""));
        // Empty result set still closes the meta object cleanly.
        let empty = to_json_with_meta(&[], &[("kernel_backend", "scalar")]);
        assert!(empty.contains("\"kernel_backend\": \"scalar\"}"));
        assert!(empty.ends_with('}'));
    }
}
