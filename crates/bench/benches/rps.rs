//! Microbenchmarks of the algorithm substrate — quantization, forward/
//! backward, one PGD attack step — plus the serving-throughput benchmark of
//! the `tia-engine` micro-batcher (requests/sec at batch 1/8/32, fixed vs
//! RPS policy). Writes a `BENCH_engine.json` snapshot so later PRs have a
//! perf trajectory.

use tia_attack::{Attack, Pgd};
use tia_bench::harness::{bench, black_box, to_json, BenchResult};
use tia_engine::{Engine, EngineConfig, PrecisionPolicy};
use tia_nn::{zoo, Mode};
use tia_quant::{fake_quant_symmetric, Precision, PrecisionSet};
use tia_tensor::{SeededRng, Tensor};

fn bench_quantize() -> BenchResult {
    let mut rng = SeededRng::new(1);
    let t = Tensor::randn(&[64 * 64 * 9], 1.0, &mut rng);
    bench("fake_quant_symmetric_36k", || {
        fake_quant_symmetric(black_box(&t), Precision::new(8))
    })
}

fn bench_forward_backward() -> BenchResult {
    let mut rng = SeededRng::new(2);
    let mut net = zoo::preact_resnet18_lite(3, 6, 10, &mut rng);
    let x = Tensor::rand_uniform(&[8, 3, 16, 16], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    bench("resnet18_lite_fwd_bwd_b8", || {
        net.zero_grad();
        net.loss_and_input_grad(black_box(&x), &labels, Mode::Train)
            .0
    })
}

fn bench_pgd_step() -> BenchResult {
    let mut rng = SeededRng::new(3);
    let mut net = zoo::preact_resnet18_lite(3, 4, 10, &mut rng);
    let x = Tensor::rand_uniform(&[4, 3, 16, 16], 0.0, 1.0, &mut rng);
    let labels = vec![0, 1, 2, 3];
    let attack = Pgd::new(8.0 / 255.0, 1);
    bench("pgd1_attack_b4", || {
        attack.perturb(&mut net, black_box(&x), &labels, &mut rng)
    })
}

/// Serving throughput through the engine: one result per (max_batch,
/// policy), measured as requests/sec over a 64-request burst.
fn bench_engine_serving() -> Vec<BenchResult> {
    const REQUESTS: usize = 64;
    let set = PrecisionSet::range(4, 8);
    let mut rng = SeededRng::new(4);
    let mut net = zoo::preact_resnet18_rps(3, 4, 10, set.clone(), &mut rng);
    let x = Tensor::rand_uniform(&[REQUESTS, 3, 16, 16], 0.0, 1.0, &mut rng);
    let mut results = Vec::new();
    for max_batch in [1usize, 8, 32] {
        for (tag, policy) in [
            ("fixed8", PrecisionPolicy::Fixed(Some(Precision::new(8)))),
            ("rps4-8", PrecisionPolicy::Random(set.clone())),
        ] {
            let cfg = EngineConfig::default()
                .with_max_batch(max_batch)
                .with_seed(7);
            let mut engine = Engine::new(&mut net, policy, cfg);
            let mut r = bench(&format!("engine_serve_b{}_{}", max_batch, tag), || {
                engine.serve(black_box(&x)).len()
            });
            // Re-express per-iteration time as per-request throughput.
            r.ns_per_iter /= REQUESTS as f64;
            r.name.push_str("_per_request");
            println!("  -> {:>12.0} requests/s", r.per_sec());
            results.push(r);
        }
    }
    results
}

fn main() {
    let mut results = vec![bench_quantize(), bench_forward_backward(), bench_pgd_step()];
    results.extend(bench_engine_serving());
    let json = to_json(&results);
    // Snapshot at the workspace root so PR-over-PR perf diffs are one file.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {}: {}", path, e);
    } else {
        println!("\nwrote {}", path);
    }
}
