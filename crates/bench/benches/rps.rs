//! Microbenchmarks of the algorithm substrate — quantization, forward/
//! backward, one PGD attack step — plus the serving-throughput benchmarks of
//! `tia-engine`: the micro-batcher (requests/sec at batch 1/8/32, fixed vs
//! RPS policy), the sharded runtime (a `workers` axis at 1/2/4/8 shards,
//! wall-clock requests/sec alongside the modeled aggregate accelerator
//! throughput from the merged cost ledger), and the `tia-serve` TCP
//! front-end (loopback closed-loop requests/sec through the full wire
//! protocol at 1/2 worker shards), and the open-loop deadline-overload
//! passes (shed-only vs adaptive graceful degradation, flight recorder
//! armed). Writes a `BENCH_engine.json` snapshot so later PRs have a perf
//! trajectory.

use tia_attack::{Attack, Pgd};
use tia_bench::harness::{bench, black_box, smoke_mode, to_json_with_meta, BenchResult};
use tia_dataflow::{EvoSearch, SearchMode};
use tia_engine::{Backend, Engine, EngineConfig, PrecisionPolicy, ShardedEngine, SimBacked};
use tia_nn::{workload::NetworkSpec, zoo, Conv2d, Layer, Mode};
use tia_quant::{
    fake_quant_symmetric, gemm_quant, quantize_affine_levels, Precision, PrecisionSet,
    QuantizedWeights,
};
use tia_sim::Accelerator;
use tia_tensor::{gemm_ws, simd, Conv2dGeometry, KernelMode, SeededRng, Tensor, Workspace};

fn bench_quantize() -> BenchResult {
    let mut rng = SeededRng::new(1);
    let t = Tensor::randn(&[64 * 64 * 9], 1.0, &mut rng);
    bench("fake_quant_symmetric_36k", || {
        fake_quant_symmetric(black_box(&t), Precision::new(8))
    })
}

fn bench_forward_backward() -> BenchResult {
    let mut rng = SeededRng::new(2);
    let mut net = zoo::preact_resnet18_lite(3, 6, 10, &mut rng);
    let x = Tensor::rand_uniform(&[8, 3, 16, 16], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    bench("resnet18_lite_fwd_bwd_b8", || {
        net.zero_grad();
        net.loss_and_input_grad(black_box(&x), &labels, Mode::Train)
            .0
    })
}

fn bench_pgd_step() -> BenchResult {
    let mut rng = SeededRng::new(3);
    let mut net = zoo::preact_resnet18_lite(3, 4, 10, &mut rng);
    let x = Tensor::rand_uniform(&[4, 3, 16, 16], 0.0, 1.0, &mut rng);
    let labels = vec![0, 1, 2, 3];
    let attack = Pgd::new(8.0 / 255.0, 1);
    bench("pgd1_attack_b4", || {
        attack.perturb(&mut net, black_box(&x), &labels, &mut rng)
    })
}

/// One quantized conv layer, batch 8, serving mode: the batched
/// im2col-into-one-GEMM hot path with prepacked weights and a warm
/// workspace — the per-layer unit of serving cost.
fn bench_conv_forward() -> BenchResult {
    let mut rng = SeededRng::new(8);
    let geo = Conv2dGeometry::new(16, 32, 3, 1, 1);
    let mut conv = Conv2d::new(geo, true, &mut rng);
    conv.set_precision(Some(Precision::new(8)));
    let x = Tensor::rand_uniform(&[8, 16, 16, 16], 0.0, 1.0, &mut rng);
    let mut ws = Workspace::new();
    bench("conv_fwd_b8", || {
        let y = conv.forward_ws(black_box(&x), Mode::Infer, &mut ws);
        let probe = y.data()[0];
        ws.recycle_tensor(y);
        probe
    })
}

/// A full single-image forward with a *different* precision every call —
/// the cost of the paper's random precision switch when quantized + packed
/// weights are memoized per precision (a map lookup, not a re-pack).
fn bench_precision_switch() -> BenchResult {
    let set = PrecisionSet::range(4, 8);
    let mut rng = SeededRng::new(9);
    let mut net = zoo::preact_resnet18_rps(3, 4, 10, set.clone(), &mut rng);
    let x = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);
    let precisions: Vec<Option<Precision>> =
        std::iter::once(None).chain(set.iter().map(Some)).collect();
    for &p in &precisions {
        let y = Backend::infer_batch(&mut net, &x, p);
        net.recycle(y); // warm every per-precision pack + the workspace
    }
    let mut i = 0;
    bench("precision_switch", || {
        i = (i + 1) % precisions.len();
        let y = Backend::infer_batch(&mut net, black_box(&x), precisions[i]);
        let probe = y.data()[0];
        net.recycle(y);
        probe
    })
}

/// The dispatched GEMM kernels head-to-head on one `m×k×n` problem:
/// f32 under the pinned scalar reference vs the native backend, then the
/// true-integer path at i8 and packed i4 (exact `i32` accumulation via
/// `dot_u8i8`/`dot_u4i4`). The i8 kernel must beat scalar f32 by ≥ 2× —
/// the floor the integer serving path is justified by.
fn bench_gemm_kernels() -> Vec<BenchResult> {
    const M: usize = 64;
    const K: usize = 256;
    const N: usize = 64;
    let mut rng = SeededRng::new(10);
    let a = Tensor::rand_uniform(&[M, K], -1.0, 1.0, &mut rng);
    let b = Tensor::rand_uniform(&[K, N], -1.0, 1.0, &mut rng);
    let mut c = vec![0.0f32; M * N];
    let mut results = Vec::new();
    println!(
        "\ngemm kernels: {}x{}x{}, native backend = {}",
        M,
        K,
        N,
        simd::detect_name()
    );
    for mode in [KernelMode::Scalar, KernelMode::Native] {
        let mut ws = Workspace::new();
        ws.set_kernel(mode);
        results.push(bench(&format!("gemm_f32_{mode}"), || {
            c.fill(0.0);
            gemm_ws(M, K, N, black_box(a.data()), b.data(), &mut c, &mut ws);
            c[0]
        }));
    }
    // Integer path: per-row affine activation levels (quantized once — the
    // serving path amortizes quantization over all N output channels too),
    // packed i8 / two-per-byte i4 weight rows, exact i32 dots.
    let ops = simd::backend(KernelMode::Native);
    let mut levels = vec![0u8; M * K];
    let mut scales = vec![0.0f32; M];
    let mut zps = vec![0i32; M];
    for (bits, tag) in [(8u8, "gemm_i8"), (4u8, "gemm_i4")] {
        let p = Precision::new(bits);
        for i in 0..M {
            let lp = quantize_affine_levels(
                &a.data()[i * K..(i + 1) * K],
                &mut levels[i * K..(i + 1) * K],
                p,
            );
            scales[i] = lp.scale;
            zps[i] = lp.zero_point;
        }
        let w = QuantizedWeights::quantize_rows(b.data(), N, K, bits);
        results.push(bench(tag, || {
            gemm_quant(
                ops,
                M,
                K,
                black_box(&levels),
                &scales,
                &zps,
                &w,
                None,
                &mut c,
            );
            c[0]
        }));
    }
    if !smoke_mode() {
        let f32_scalar = results[0].ns_per_iter;
        let i8_ns = results[2].ns_per_iter;
        assert!(
            i8_ns * 2.0 <= f32_scalar,
            "the i8 integer GEMM must be >= 2x the scalar f32 GEMM: {i8_ns:.0} ns vs {f32_scalar:.0} ns"
        );
        println!(
            "  -> i8 is {:.1}x scalar f32, i4 is {:.1}x, native f32 is {:.2}x",
            f32_scalar / i8_ns,
            f32_scalar / results[3].ns_per_iter,
            f32_scalar / results[1].ns_per_iter
        );
    }
    results
}

/// End-to-end kernel-mode axis: the same 64-request RPS burst served at
/// batch 32 under the pinned scalar tier vs native dispatch (SIMD f32
/// kernels + the true-integer 4–8-bit path). Native must win — this pair
/// is the PR-over-PR record of what runtime dispatch buys the engine.
fn bench_kernel_serving() -> Vec<BenchResult> {
    const REQUESTS: usize = 64;
    let set = PrecisionSet::range(4, 8);
    let mut rng = SeededRng::new(11);
    let mut net = zoo::preact_resnet18_rps(3, 4, 10, set.clone(), &mut rng);
    let x = Tensor::rand_uniform(&[REQUESTS, 3, 16, 16], 0.0, 1.0, &mut rng);
    let mut results = Vec::new();
    for mode in [KernelMode::Scalar, KernelMode::Native] {
        let cfg = EngineConfig::default()
            .with_max_batch(32)
            .with_seed(7)
            .with_kernel(mode);
        let mut engine = Engine::new(&mut net, PrecisionPolicy::Random(set.clone()), cfg);
        let mut r = bench(&format!("engine_serve_b32_kernel_{mode}"), || {
            engine.serve(black_box(&x)).len()
        });
        r.ns_per_iter /= REQUESTS as f64;
        r.name.push_str("_per_request");
        println!("  -> {mode}: {:>12.0} requests/s", r.per_sec());
        results.push(r);
    }
    if !smoke_mode() {
        let (scalar, native) = (results[0].ns_per_iter, results[1].ns_per_iter);
        assert!(
            native < scalar,
            "native dispatch must beat the scalar tier end-to-end: {native:.0} ns vs {scalar:.0} ns per request"
        );
        println!("  -> native serves {:.2}x the scalar tier", scalar / native);
    }
    results
}

/// Serving throughput through the engine: one result per (max_batch,
/// policy), measured as requests/sec over a 64-request burst.
fn bench_engine_serving() -> Vec<BenchResult> {
    const REQUESTS: usize = 64;
    let set = PrecisionSet::range(4, 8);
    let mut rng = SeededRng::new(4);
    let mut net = zoo::preact_resnet18_rps(3, 4, 10, set.clone(), &mut rng);
    let x = Tensor::rand_uniform(&[REQUESTS, 3, 16, 16], 0.0, 1.0, &mut rng);
    let mut results = Vec::new();
    for max_batch in [1usize, 8, 32] {
        for (tag, policy) in [
            ("fixed8", PrecisionPolicy::Fixed(Some(Precision::new(8)))),
            ("rps4-8", PrecisionPolicy::Random(set.clone())),
        ] {
            let cfg = EngineConfig::default()
                .with_max_batch(max_batch)
                .with_seed(7);
            let mut engine = Engine::new(&mut net, policy, cfg);
            let mut r = bench(&format!("engine_serve_b{}_{}", max_batch, tag), || {
                engine.serve(black_box(&x)).len()
            });
            // Re-express per-iteration time as per-request throughput.
            r.ns_per_iter /= REQUESTS as f64;
            r.name.push_str("_per_request");
            println!("  -> {:>12.0} requests/s", r.per_sec());
            results.push(r);
        }
    }
    results
}

/// The sharded runtime's `workers` axis: for 1/2/4/8 shards, wall-clock
/// requests/sec over a 64-request RPS burst, plus the modeled aggregate
/// accelerator throughput (per-shard sustained FPS from the merged
/// `SimBacked` ledger, times the shard count). Wall-clock scaling is bounded
/// by the host's core count; the modeled axis is what N accelerator
/// replicas sustain by construction.
fn bench_sharded_serving() -> Vec<BenchResult> {
    const REQUESTS: usize = 64;
    let set = PrecisionSet::range(4, 8);
    let mut rng = SeededRng::new(5);
    let x = Tensor::rand_uniform(&[REQUESTS, 3, 16, 16], 0.0, 1.0, &mut rng);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "\nsharded serving: {} host core(s); wall-clock scaling is core-bound",
        cores
    );
    let mut results = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        // Wall-clock axis: plain software replicas.
        let mut engine = ShardedEngine::with_factory(
            workers,
            |_| zoo::preact_resnet18_rps(3, 4, 10, set.clone(), &mut SeededRng::new(6)),
            PrecisionPolicy::Random(set.clone()),
            EngineConfig::default().with_max_batch(8).with_seed(7),
        );
        let mut r = bench(&format!("engine_sharded_w{}_rps4-8", workers), || {
            engine.serve(black_box(&x)).len()
        });
        r.ns_per_iter /= REQUESTS as f64;
        r.name.push_str("_per_request");
        println!(
            "  -> w{}: {:>12.0} requests/s wall-clock",
            workers,
            r.per_sec()
        );
        results.push(r);

        // Modeled axis: serve one burst through SimBacked replicas and read
        // the merged ledger's frame-weighted sustained FPS per shard.
        let mut sim_engine = ShardedEngine::with_factory(
            workers,
            |_| {
                let net = zoo::preact_resnet18_rps(3, 4, 10, set.clone(), &mut SeededRng::new(6));
                let accel = Accelerator::ours().with_search(EvoSearch {
                    population: 8,
                    cycles: 3,
                    mode: SearchMode::Full,
                });
                SimBacked::new(net, accel, NetworkSpec::resnet18_cifar())
            },
            PrecisionPolicy::Random(set.clone()),
            EngineConfig::default().with_max_batch(8).with_seed(7),
        );
        let _ = sim_engine.serve(&x);
        let aggregate = sim_engine.stats().cost.fps * workers as f64;
        println!(
            "  -> w{}: {:>12.0} requests/s modeled aggregate on {} accelerator shard(s)",
            workers, aggregate, workers
        );
        results.push(BenchResult {
            name: format!("modeled_accel_rps_w{}", workers),
            iters: REQUESTS as u64,
            ns_per_iter: 1e9 / aggregate,
        });
    }
    results
}

/// TCP serving throughput: a loopback `tia-serve` server fronting the
/// sharded runtime, driven by the closed-loop load generator over the real
/// wire protocol — connection setup, frame encode/decode, admission
/// control and metrics all included. One entry per worker-shard count.
fn bench_tcp_serving() -> Vec<BenchResult> {
    use tia_serve::{LoadConfig, Server, ServerConfig, WirePolicy};
    const REQUESTS: usize = 64;
    let set = PrecisionSet::range(4, 8);
    let mut results = Vec::new();
    for workers in [1usize, 2] {
        let cfg = ServerConfig::default()
            .with_workers(workers)
            .with_input_shape([3, 16, 16])
            .with_policy(PrecisionPolicy::Random(set.clone()))
            .with_engine(EngineConfig::default().with_max_batch(8).with_seed(7));
        let server = Server::spawn(cfg, |_| {
            zoo::preact_resnet18_rps(3, 4, 10, PrecisionSet::range(4, 8), &mut SeededRng::new(6))
        })
        .expect("loopback server bind");
        let load = LoadConfig {
            addr: server.addr().to_string(),
            connections: 2,
            requests: REQUESTS,
            inflight: 16,
            rate: None,
            shape: [3, 16, 16],
            seed: 4,
            policy: WirePolicy::Server,
            ..LoadConfig::default()
        };
        let mut r = bench(&format!("serve_tcp_w{}_rps4-8", workers), || {
            let report = tia_serve::run_load(black_box(&load)).expect("load run");
            assert_eq!(report.ok as usize, REQUESTS, "every request must be served");
            report.ok
        });
        r.ns_per_iter /= REQUESTS as f64;
        r.name.push_str("_per_request");
        println!(
            "  -> w{}: {:>12.0} requests/s over loopback TCP",
            workers,
            r.per_sec()
        );
        results.push(r);
        let _ = server.shutdown();
    }
    results
}

/// Deadline-overload behaviour of the EDF scheduler: the same open-loop
/// overload (arrivals at ~2x serving capacity) without a deadline, with a
/// deadline, and with a deadline plus the adaptive precision controller.
/// Without a deadline, every request queues and p99 grows with the
/// backlog; shedding bounds the p99 of what *is* served near the deadline;
/// the adaptive pass degrades the precision mix under the same pressure,
/// which collapses per-precision sub-batches into fuller GEMMs and so
/// serves *more* of the load inside the deadline — strictly fewer sheds
/// than the shed-only baseline at no p99 cost (asserted in full runs; a
/// single-iteration smoke has no statistics to hold). One p99 entry each.
fn bench_deadline_overload() -> Vec<BenchResult> {
    use tia_serve::{ControlConfig, LoadConfig, Server, ServerConfig, WirePolicy};
    const REQUESTS: usize = 256;
    let set = PrecisionSet::range(4, 8);
    let mut results = Vec::new();
    let mut shed_only: Option<(u64, u64)> = None; // (sheds, p99_ns)
    println!("\ndeadline overload: open loop at ~2x capacity, 256 requests");
    let adaptive = ControlConfig::default()
        .with_fill_band(0.3, 0.1)
        .with_miss_band(0.01, 0.0)
        .with_cooldown(1);
    for (tag, deadline_ms, control) in [
        ("no_deadline", None, None),
        ("deadline5ms", Some(5u32), None),
        ("adaptive", Some(5u32), Some(adaptive)),
    ] {
        let is_adaptive = control.is_some();
        // The flight recorder flies in every overload pass: these p99
        // entries are the snapshot's proof that tracing on the hot path
        // stays within noise of the untraced seed numbers.
        let mut cfg = ServerConfig::default()
            .with_workers(1)
            .with_trace()
            .with_input_shape([3, 16, 16])
            .with_policy(PrecisionPolicy::Random(set.clone()))
            .with_engine(EngineConfig::default().with_max_batch(8).with_seed(7));
        if let Some(ctrl) = control {
            cfg = cfg.with_control(ctrl);
        }
        let server = Server::spawn(cfg, |_| {
            zoo::preact_resnet18_rps(3, 4, 10, PrecisionSet::range(4, 8), &mut SeededRng::new(6))
        })
        .expect("loopback server bind");
        let report = tia_serve::run_load(&LoadConfig {
            addr: server.addr().to_string(),
            connections: 1,
            requests: REQUESTS,
            rate: Some(8000.0),
            shape: [3, 16, 16],
            seed: 4,
            policy: WirePolicy::Server,
            deadline_ms,
            ..LoadConfig::default()
        })
        .expect("load run");
        let p99 = report.latency.quantile_ns(0.99);
        println!(
            "  -> {tag}: p99 {:>8.2} ms ({} served, {} deadline-shed)",
            p99 as f64 / 1e6,
            report.ok,
            report.rejected_deadline
        );
        if deadline_ms.is_some() && !is_adaptive {
            shed_only = Some((report.rejected_deadline, p99));
        }
        if is_adaptive && !smoke_mode() {
            let (base_sheds, base_p99) = shed_only.expect("shed-only pass runs first");
            assert!(
                report.rejected_deadline < base_sheds,
                "adaptive degradation must shed strictly less than the \
                 shed-only baseline: {} vs {base_sheds}",
                report.rejected_deadline
            );
            assert!(
                p99 <= base_p99.saturating_mul(3) / 2,
                "adaptive pass left the baseline's latency envelope: \
                 p99 {p99} ns vs baseline {base_p99} ns"
            );
        }
        results.push(BenchResult {
            name: format!("serve_open_overload_p99_{tag}"),
            iters: report.ok.max(1),
            ns_per_iter: p99 as f64,
        });
        let _ = server.shutdown();
    }
    results
}

fn main() {
    let mut results = vec![
        bench_quantize(),
        bench_forward_backward(),
        bench_conv_forward(),
        bench_precision_switch(),
        bench_pgd_step(),
    ];
    results.extend(bench_gemm_kernels());
    results.extend(bench_engine_serving());
    results.extend(bench_kernel_serving());
    results.extend(bench_sharded_serving());
    results.extend(bench_tcp_serving());
    results.extend(bench_deadline_overload());
    if smoke_mode() {
        // CI smoke runs prove the bench still compiles and executes; their
        // single-iteration timings must not clobber the perf snapshot.
        println!("\nsmoke mode: skipping BENCH_engine.json snapshot");
        return;
    }
    let json = to_json_with_meta(
        &results,
        &[
            ("kernel_backend", simd::detect_name()),
            ("kernel_mode", &KernelMode::global_default().to_string()),
        ],
    );
    // Snapshot at the workspace root so PR-over-PR perf diffs are one file.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("could not write {}: {}", path, e);
    } else {
        println!("\nwrote {}", path);
    }
}
