//! Criterion benchmarks of the algorithm substrate: quantization, forward/
//! backward passes and one PGD attack step on the lite PreActResNet-18.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tia_attack::{Attack, Pgd};
use tia_nn::{zoo, Mode};
use tia_quant::{fake_quant_symmetric, Precision};
use tia_tensor::{SeededRng, Tensor};

fn bench_quantize(c: &mut Criterion) {
    let mut rng = SeededRng::new(1);
    let t = Tensor::randn(&[64 * 64 * 9], 1.0, &mut rng);
    c.bench_function("fake_quant_symmetric_36k", |b| {
        b.iter(|| fake_quant_symmetric(black_box(&t), Precision::new(8)))
    });
}

fn bench_forward_backward(c: &mut Criterion) {
    let mut rng = SeededRng::new(2);
    let mut net = zoo::preact_resnet18_lite(3, 6, 10, &mut rng);
    let x = Tensor::rand_uniform(&[8, 3, 16, 16], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    c.bench_function("resnet18_lite_fwd_bwd_b8", |b| {
        b.iter(|| {
            net.zero_grad();
            net.loss_and_input_grad(black_box(&x), &labels, Mode::Train).0
        })
    });
}

fn bench_pgd_step(c: &mut Criterion) {
    let mut rng = SeededRng::new(3);
    let mut net = zoo::preact_resnet18_lite(3, 4, 10, &mut rng);
    let x = Tensor::rand_uniform(&[4, 3, 16, 16], 0.0, 1.0, &mut rng);
    let labels = vec![0, 1, 2, 3];
    let attack = Pgd::new(8.0 / 255.0, 1);
    c.bench_function("pgd1_attack_b4", |b| {
        b.iter(|| attack.perturb(&mut net, black_box(&x), &labels, &mut rng))
    });
}

criterion_group!(benches, bench_quantize, bench_forward_backward, bench_pgd_step);
criterion_main!(benches);
