//! Microbenchmarks of the end-to-end simulator: dataflow search +
//! prediction for one network per design (the kernel behind Figs. 7-10).

use tia_accel::PrecisionPair;
use tia_bench::harness::bench;
use tia_dataflow::{EvoSearch, SearchMode};
use tia_nn::workload::NetworkSpec;
use tia_sim::Accelerator;

fn bench_simulation() {
    let p = PrecisionPair::symmetric(4);
    let small = EvoSearch {
        population: 8,
        cycles: 3,
        mode: SearchMode::Full,
    };
    for (name, mut acc) in [
        (
            "simulate_alexnet_4bit/ours",
            Accelerator::ours().with_search(small),
        ),
        (
            "simulate_alexnet_4bit/stripes",
            Accelerator::stripes().with_search(small),
        ),
        ("simulate_alexnet_4bit/bitfusion", Accelerator::bitfusion()),
    ] {
        let net = NetworkSpec::alexnet();
        // Fresh accelerator per iteration would re-search; the cache models
        // the real usage (search once, evaluate many).
        bench(name, || acc.simulate_network(&net, p).fps);
    }
}

fn bench_dataflow_search() {
    use tia_dataflow::{ArchConfig, Workload};
    use tia_nn::workload::LayerSpec;
    use tia_tensor::SeededRng;
    let arch = ArchConfig::paper_budget(tia_accel::MacKind::spatial_temporal());
    let layer = LayerSpec::conv("c", 256, 512, 3, 1, 1, 14, 14);
    let wl = Workload::new(&layer, PrecisionPair::symmetric(8));
    bench("evo_search_one_layer", || {
        let mut rng = SeededRng::new(1);
        EvoSearch {
            population: 12,
            cycles: 5,
            mode: SearchMode::Full,
        }
        .run(&arch, &wl, &mut rng)
        .perf
        .total_cycles
    });
}

fn main() {
    bench_simulation();
    bench_dataflow_search();
}
