//! Criterion benchmarks of the end-to-end simulator: dataflow search +
//! prediction for one network per design (the kernel behind Figs. 7-10).

use criterion::{criterion_group, criterion_main, Criterion};
use tia_accel::PrecisionPair;
use tia_dataflow::{EvoSearch, SearchMode};
use tia_nn::workload::NetworkSpec;
use tia_sim::Accelerator;

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_alexnet_4bit");
    g.sample_size(10);
    let p = PrecisionPair::symmetric(4);
    let small = EvoSearch { population: 8, cycles: 3, mode: SearchMode::Full };
    for (name, mut acc) in [
        ("ours", Accelerator::ours().with_search(small)),
        ("stripes", Accelerator::stripes().with_search(small)),
        ("bitfusion", Accelerator::bitfusion()),
    ] {
        let net = NetworkSpec::alexnet();
        g.bench_function(name, |b| {
            b.iter(|| {
                // Fresh accelerator per iteration would re-search; the cache
                // models the real usage (search once, evaluate many).
                acc.simulate_network(&net, p).fps
            })
        });
    }
    g.finish();
}

fn bench_dataflow_search(c: &mut Criterion) {
    use tia_dataflow::{ArchConfig, Workload};
    use tia_nn::workload::LayerSpec;
    use tia_tensor::SeededRng;
    let arch = ArchConfig::paper_budget(tia_accel::MacKind::spatial_temporal());
    let layer = LayerSpec::conv("c", 256, 512, 3, 1, 1, 14, 14);
    let wl = Workload::new(&layer, PrecisionPair::symmetric(8));
    c.bench_function("evo_search_one_layer", |b| {
        b.iter(|| {
            let mut rng = SeededRng::new(1);
            EvoSearch { population: 12, cycles: 5, mode: SearchMode::Full }
                .run(&arch, &wl, &mut rng)
                .perf
                .total_cycles
        })
    });
}

criterion_group!(benches, bench_simulation, bench_dataflow_search);
criterion_main!(benches);
