//! Microbenchmarks of the MAC-unit analytical models: the paper's headline
//! per-unit anchors evaluated across the full precision range.

use tia_accel::{MacKind, MacUnit, PrecisionPair};
use tia_bench::harness::{bench, black_box};

fn main() {
    let designs = [
        ("stripes", MacUnit::new(MacKind::Temporal)),
        ("bitfusion", MacUnit::new(MacKind::Spatial)),
        ("ours", MacUnit::new(MacKind::spatial_temporal())),
    ];
    for (name, unit) in designs {
        bench(&format!("mac_unit_model/{}_sweep_1_16", name), || {
            let mut acc = 0.0;
            for bits in 1..=16u8 {
                let p = PrecisionPair::symmetric(bits);
                acc += unit.products_per_cycle(black_box(p));
                acc += unit.energy_per_mac(black_box(p));
            }
            acc
        });
    }
}
