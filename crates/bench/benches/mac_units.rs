//! Criterion microbenchmarks of the MAC-unit analytical models: the paper's
//! headline per-unit anchors evaluated across the full precision range.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tia_accel::{MacKind, MacUnit, PrecisionPair};

fn bench_mac_models(c: &mut Criterion) {
    let designs = [
        ("stripes", MacUnit::new(MacKind::Temporal)),
        ("bitfusion", MacUnit::new(MacKind::Spatial)),
        ("ours", MacUnit::new(MacKind::spatial_temporal())),
    ];
    let mut g = c.benchmark_group("mac_unit_model");
    for (name, unit) in designs {
        g.bench_function(format!("{}_sweep_1_16", name), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for bits in 1..=16u8 {
                    let p = PrecisionPair::symmetric(bits);
                    acc += unit.products_per_cycle(black_box(p));
                    acc += unit.energy_per_mac(black_box(p));
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mac_models);
criterion_main!(benches);
