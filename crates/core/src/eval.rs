//! Accuracy evaluation under independent attack/inference precision
//! policies — the paper's threat model for RPS inference — batched through
//! [`tia_engine::Engine`].

use tia_attack::Attack;
use tia_data::Dataset;
use tia_engine::{Backend, Engine, EngineConfig, PrecisionPolicy};
use tia_tensor::SeededRng;

/// Default engine batch for natural-accuracy sweeps.
const NATURAL_BATCH: usize = 32;

fn engine_cfg(batch: usize, rng: &mut SeededRng) -> EngineConfig {
    EngineConfig::default()
        .with_max_batch(batch)
        .with_seed(rng.next_u64())
}

/// Natural (clean) accuracy of `backend` on `data` under a precision policy.
///
/// Served in engine-sized micro-batches; the per-request precision schedule
/// is deterministic in `rng`.
pub fn natural_accuracy<B: Backend>(
    backend: &mut B,
    data: &Dataset,
    policy: &PrecisionPolicy,
    rng: &mut SeededRng,
) -> f32 {
    let saved = Backend::precision(backend);
    let cfg = engine_cfg(NATURAL_BATCH, rng);
    let mut engine = Engine::new(&mut *backend, policy.clone(), cfg);
    // Flush per window so peak memory stays O(batch), not O(dataset); the
    // per-request precision schedule only depends on submission order.
    let mut correct = 0usize;
    let mut i = 0;
    while i < data.len() {
        let end = (i + NATURAL_BATCH).min(data.len());
        for j in i..end {
            engine.submit(data.image(j));
        }
        correct += engine
            .flush()
            .iter()
            .zip(&data.labels()[i..end])
            .filter(|(r, &y)| r.top1 == y)
            .count();
        i = end;
    }
    drop(engine);
    Backend::set_precision(backend, saved);
    correct as f32 / data.len().max(1) as f32
}

/// Robust accuracy of `backend` on `data` under `attack`.
///
/// The adversary crafts each batch at a precision drawn from
/// `attack_policy`; the defender then serves the adversarial examples
/// through the engine, drawing a fresh precision per *request* from
/// `infer_policy` (RPS inference, Alg. 1 lines 15–19) while still executing
/// full micro-batches.
pub fn robust_accuracy<B: Backend>(
    backend: &mut B,
    data: &Dataset,
    attack: &dyn Attack,
    attack_policy: &PrecisionPolicy,
    infer_policy: &PrecisionPolicy,
    batch_size: usize,
    rng: &mut SeededRng,
) -> f32 {
    let saved = Backend::precision(backend);
    let n = data.len();
    let bs = batch_size.max(1);
    let cfg = engine_cfg(bs, rng);
    let mut engine = Engine::new(&mut *backend, infer_policy.clone(), cfg);
    let mut correct = 0usize;
    let mut i = 0;
    while i < n {
        let idx: Vec<usize> = (i..(i + bs).min(n)).collect();
        let (x, labels) = data.batch(&idx);
        // Adversary crafts at its sampled precision.
        let ap = attack_policy.sample(rng);
        Backend::set_precision(engine.backend_mut(), ap);
        let x_adv = attack.perturb(engine.backend_mut(), &x, &labels, rng);
        // Defender serves per-request at its own sampled precisions.
        for j in 0..labels.len() {
            engine.submit(x_adv.index_axis0(j));
        }
        correct += engine
            .flush()
            .iter()
            .zip(&labels)
            .filter(|(r, &y)| r.top1 == y)
            .count();
        i += bs;
    }
    drop(engine);
    Backend::set_precision(backend, saved);
    correct as f32 / n.max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_attack::Pgd;
    use tia_data::{generate, DatasetProfile};
    use tia_nn::zoo;
    use tia_quant::{Precision, PrecisionSet};

    const EPS: f32 = 8.0 / 255.0;

    #[test]
    fn natural_accuracy_in_unit_range() {
        let (train, _) = generate(&DatasetProfile::tiny(3, 8, 30, 10), 1);
        let mut rng = SeededRng::new(1);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let acc = natural_accuracy(&mut net, &train, &PrecisionPolicy::Fixed(None), &mut rng);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn robust_leq_natural_for_untrained_net_on_average() {
        let (train, _) = generate(&DatasetProfile::tiny(3, 8, 24, 10), 2);
        let mut rng = SeededRng::new(2);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let nat = natural_accuracy(&mut net, &train, &PrecisionPolicy::Fixed(None), &mut rng);
        let attack = Pgd::new(EPS, 5);
        let rob = robust_accuracy(
            &mut net,
            &train,
            &attack,
            &PrecisionPolicy::Fixed(None),
            &PrecisionPolicy::Fixed(None),
            8,
            &mut rng,
        );
        assert!(
            rob <= nat + 0.15,
            "robust {} should not exceed natural {} by much",
            rob,
            nat
        );
    }

    #[test]
    fn policies_restore_precision() {
        let (train, _) = generate(&DatasetProfile::tiny(2, 8, 8, 4), 3);
        let mut rng = SeededRng::new(3);
        let set = PrecisionSet::new(&[4, 8]);
        let mut net = zoo::preact_resnet18_rps(3, 4, 2, set.clone(), &mut rng);
        tia_nn::Network::set_precision(&mut net, Some(Precision::new(8)));
        let _ = natural_accuracy(&mut net, &train, &PrecisionPolicy::Random(set), &mut rng);
        assert_eq!(tia_nn::Network::precision(&net), Some(Precision::new(8)));
    }

    #[test]
    fn batched_natural_accuracy_matches_per_sample() {
        // The engine invariant end-to-end: a fixed-precision batched sweep
        // counts exactly what a per-sample loop counts.
        let (train, _) = generate(&DatasetProfile::tiny(3, 8, 20, 10), 5);
        let mut rng = SeededRng::new(5);
        let set = PrecisionSet::new(&[4, 6, 8]);
        let mut net = zoo::preact_resnet18_rps(3, 4, 3, set, &mut rng);
        for p in [None, Some(Precision::new(4)), Some(Precision::new(8))] {
            let policy = PrecisionPolicy::Fixed(p);
            let batched = natural_accuracy(&mut net, &train, &policy, &mut rng);
            let mut per_sample = 0usize;
            for i in 0..train.len() {
                let img = train.image(i);
                let mut shape = vec![1usize];
                shape.extend_from_slice(img.shape());
                let logits = net.infer_batch(&img.reshape(&shape), p);
                per_sample += tia_tensor::count_top1_correct(&logits, &train.labels()[i..i + 1]);
            }
            assert_eq!(
                batched,
                per_sample as f32 / train.len() as f32,
                "precision {:?}",
                p
            );
        }
    }
}
