//! Accuracy evaluation under independent attack/inference precision
//! policies — the paper's threat model for RPS inference.

use tia_attack::Attack;
use tia_data::Dataset;
use tia_nn::Network;
use tia_quant::{Precision, PrecisionSet};
use tia_tensor::{SeededRng, Tensor};

/// How a precision is chosen at evaluation time, for either side.
#[derive(Debug, Clone)]
pub enum InferencePolicy {
    /// Always the same precision (`None` = full precision).
    Fixed(Option<Precision>),
    /// RPS: a fresh uniform sample from the set per sample (defender) or per
    /// batch (adversary crafting a batch of examples).
    Random(PrecisionSet),
}

impl InferencePolicy {
    fn sample(&self, rng: &mut SeededRng) -> Option<Precision> {
        match self {
            InferencePolicy::Fixed(p) => *p,
            InferencePolicy::Random(set) => Some(set.sample(rng)),
        }
    }
}

impl std::fmt::Display for InferencePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferencePolicy::Fixed(None) => write!(f, "fp32"),
            InferencePolicy::Fixed(Some(p)) => write!(f, "{}", p),
            InferencePolicy::Random(set) => write!(f, "RPS {}", set),
        }
    }
}

/// Natural (clean) accuracy of `net` on `data` under a precision policy.
pub fn natural_accuracy(
    net: &mut Network,
    data: &Dataset,
    policy: &InferencePolicy,
    rng: &mut SeededRng,
) -> f32 {
    let saved = net.precision();
    let mut correct = 0usize;
    for i in 0..data.len() {
        net.set_precision(policy.sample(rng));
        let (x, y) = single(data, i);
        correct += net.correct_count(&x, &[y]);
    }
    net.set_precision(saved);
    correct as f32 / data.len().max(1) as f32
}

/// Robust accuracy of `net` on `data` under `attack`.
///
/// The adversary crafts each batch at a precision drawn from
/// `attack_policy`; the defender then evaluates each *sample* at a fresh
/// precision drawn from `infer_policy` (RPS inference, Alg. 1 lines 15–19).
pub fn robust_accuracy(
    net: &mut Network,
    data: &Dataset,
    attack: &dyn Attack,
    attack_policy: &InferencePolicy,
    infer_policy: &InferencePolicy,
    batch_size: usize,
    rng: &mut SeededRng,
) -> f32 {
    let saved = net.precision();
    let mut correct = 0usize;
    let n = data.len();
    let bs = batch_size.max(1);
    let mut i = 0;
    while i < n {
        let idx: Vec<usize> = (i..(i + bs).min(n)).collect();
        let (x, labels) = data.batch(&idx);
        // Adversary crafts at its sampled precision.
        net.set_precision(attack_policy.sample(rng));
        let x_adv = attack.perturb(net, &x, &labels, rng);
        // Defender evaluates per sample at its own sampled precision.
        for (j, &y) in labels.iter().enumerate() {
            net.set_precision(infer_policy.sample(rng));
            let xi = batch_of_one(&x_adv, j);
            correct += net.correct_count(&xi, &[y]);
        }
        i += bs;
    }
    net.set_precision(saved);
    correct as f32 / n.max(1) as f32
}

fn single(data: &Dataset, i: usize) -> (Tensor, usize) {
    let img = data.image(i);
    let mut shape = vec![1usize];
    shape.extend_from_slice(img.shape());
    (img.reshape(&shape), data.labels()[i])
}

fn batch_of_one(x: &Tensor, i: usize) -> Tensor {
    let img = x.index_axis0(i);
    let mut shape = vec![1usize];
    shape.extend_from_slice(img.shape());
    img.reshape(&shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_attack::Pgd;
    use tia_data::{generate, DatasetProfile};
    use tia_nn::zoo;

    const EPS: f32 = 8.0 / 255.0;

    #[test]
    fn natural_accuracy_in_unit_range() {
        let (train, _) = generate(&DatasetProfile::tiny(3, 8, 30, 10), 1);
        let mut rng = SeededRng::new(1);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let acc = natural_accuracy(&mut net, &train, &InferencePolicy::Fixed(None), &mut rng);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn robust_leq_natural_for_untrained_net_on_average() {
        let (train, _) = generate(&DatasetProfile::tiny(3, 8, 24, 10), 2);
        let mut rng = SeededRng::new(2);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let nat = natural_accuracy(&mut net, &train, &InferencePolicy::Fixed(None), &mut rng);
        let attack = Pgd::new(EPS, 5);
        let rob = robust_accuracy(
            &mut net,
            &train,
            &attack,
            &InferencePolicy::Fixed(None),
            &InferencePolicy::Fixed(None),
            8,
            &mut rng,
        );
        assert!(rob <= nat + 0.15, "robust {} should not exceed natural {} by much", rob, nat);
    }

    #[test]
    fn policies_restore_precision() {
        let (train, _) = generate(&DatasetProfile::tiny(2, 8, 8, 4), 3);
        let mut rng = SeededRng::new(3);
        let set = PrecisionSet::new(&[4, 8]);
        let mut net = zoo::preact_resnet18_rps(3, 4, 2, set.clone(), &mut rng);
        net.set_precision(Some(Precision::new(8)));
        let _ = natural_accuracy(&mut net, &train, &InferencePolicy::Random(set), &mut rng);
        assert_eq!(net.precision(), Some(Precision::new(8)));
    }

    #[test]
    fn policy_display() {
        assert_eq!(InferencePolicy::Fixed(None).to_string(), "fp32");
        assert_eq!(InferencePolicy::Fixed(Some(Precision::new(8))).to_string(), "8-bit");
        assert_eq!(
            InferencePolicy::Random(PrecisionSet::range(4, 8)).to_string(),
            "RPS 4~8-bit"
        );
    }
}
