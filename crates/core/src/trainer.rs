//! Adversarial training harness (paper Alg. 1 when RPS is enabled).

use tia_attack::{Attack, Fgsm, FgsmRs, Pgd};
use tia_data::Dataset;
use tia_nn::{Mode, Network, Sgd};
use tia_quant::{Precision, PrecisionSet};
use tia_tensor::{SeededRng, Tensor};

/// Adversarial-training method (the four baselines of §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvMethod {
    /// Single-step FGSM training (Goodfellow et al.).
    Fgsm,
    /// FGSM with random start, α = 1.25ε (Wong et al.).
    FgsmRs,
    /// PGD-k inner maximization (Madry et al.); the paper uses k = 7.
    Pgd {
        /// Inner maximization steps.
        steps: usize,
    },
    /// "Free" adversarial training (Shafahi et al.): each mini-batch is
    /// replayed m times, sharing one δ that is updated with the input
    /// gradient of the same backward pass used for the weight update.
    Free {
        /// Replay count m.
        replays: usize,
    },
}

impl AdvMethod {
    /// Name as used in the paper's tables.
    pub fn name(&self) -> String {
        match self {
            AdvMethod::Fgsm => "FGSM".into(),
            AdvMethod::FgsmRs => "FGSM-RS".into(),
            AdvMethod::Pgd { steps } => format!("PGD-{}", steps),
            AdvMethod::Free { replays } => format!("Free(m={})", replays),
        }
    }
}

/// Configuration for [`adversarial_train`].
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Adversarial training method.
    pub method: AdvMethod,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// ℓ∞ training budget ε (in `[0,1]` units).
    pub eps: f32,
    /// `Some(set)` enables RPS training: a precision is sampled from `set`
    /// each iteration for both attack generation and the update (Alg. 1,
    /// lines 5–6). The network should carry switchable BN.
    pub rps: Option<PrecisionSet>,
    /// Static quantization during training when RPS is off (`None` = fp32).
    pub static_precision: Option<Precision>,
    /// RNG seed for batching/attacks/precision sampling.
    pub seed: u64,
}

impl TrainConfig {
    /// PGD-7 adversarial training with common defaults.
    pub fn pgd7(eps: f32) -> Self {
        Self::with_method(AdvMethod::Pgd { steps: 7 }, eps)
    }

    /// Creates a config for the given method with common defaults.
    pub fn with_method(method: AdvMethod, eps: f32) -> Self {
        Self {
            method,
            epochs: 10,
            batch_size: 32,
            lr: 0.05,
            eps,
            rps: None,
            static_precision: None,
            seed: 0,
        }
    }

    /// Enables RPS training over `set`.
    pub fn with_rps(mut self, set: PrecisionSet) -> Self {
        self.rps = Some(set);
        self
    }

    /// Sets the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets a static training precision (non-RPS quantized baseline).
    pub fn with_static_precision(mut self, p: Precision) -> Self {
        self.static_precision = Some(p);
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the learning rate.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }
}

/// Summary of one training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean adversarial training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Precisions sampled per iteration (empty unless RPS).
    pub sampled_precisions: Vec<u8>,
}

/// Adversarially trains `net` on `data` per `cfg` (paper Alg. 1 when
/// `cfg.rps` is set).
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn adversarial_train(net: &mut Network, data: &Dataset, cfg: &TrainConfig) -> TrainReport {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    let mut rng = SeededRng::new(cfg.seed);
    let opt = Sgd::new(cfg.lr);
    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut sampled = Vec::new();
    for _epoch in 0..cfg.epochs {
        let mut loss_sum = 0.0;
        let mut batches: f32 = 0.0;
        for (x, labels) in data.batches(cfg.batch_size, &mut rng) {
            // Alg. 1 line 5: pick this iteration's precision.
            let p = match &cfg.rps {
                Some(set) => {
                    let p = set.sample(&mut rng);
                    sampled.push(p.bits());
                    Some(p)
                }
                None => cfg.static_precision,
            };
            net.set_precision(p);
            loss_sum += match cfg.method {
                AdvMethod::Free { replays } => free_step(net, &opt, &x, &labels, cfg.eps, replays),
                _ => standard_step(net, &opt, &x, &labels, cfg, &mut rng),
            };
            batches += 1.0;
        }
        epoch_losses.push(loss_sum / batches.max(1.0));
    }
    // Post-training switchable-BN recalibration: every candidate precision's
    // BN statistics are refreshed with forward passes over the training data
    // (standard practice for switchable/slimmable networks; at the paper's
    // full epoch budget every slot converges during training itself, but at
    // reduced scale rarely-sampled slots need this refresh).
    if let Some(set) = &cfg.rps {
        recalibrate_bn(net, data, set, cfg.batch_size, &mut rng);
    }
    TrainReport {
        epoch_losses,
        sampled_precisions: sampled,
    }
}

/// Refreshes BN running statistics for every precision in `set` by running
/// forward passes in training mode (no parameter updates).
pub fn recalibrate_bn(
    net: &mut Network,
    data: &Dataset,
    set: &PrecisionSet,
    batch_size: usize,
    rng: &mut SeededRng,
) {
    let saved = net.precision();
    for p in set.iter() {
        net.set_precision(Some(p));
        // Enough batches to dominate the momentum-0.2 running average.
        for (x, _labels) in data.batches(batch_size, rng).take(24) {
            let _ = net.forward(&x, Mode::Train);
        }
    }
    net.set_precision(saved);
}

/// Generate adversarial examples with the configured inner attack, then take
/// one SGD step on them (Alg. 1 lines 7–11).
fn standard_step(
    net: &mut Network,
    opt: &Sgd,
    x: &Tensor,
    labels: &[usize],
    cfg: &TrainConfig,
    rng: &mut SeededRng,
) -> f32 {
    let x_adv = match cfg.method {
        AdvMethod::Fgsm => Fgsm::new(cfg.eps).perturb(net, x, labels, rng),
        AdvMethod::FgsmRs => FgsmRs::new(cfg.eps).perturb(net, x, labels, rng),
        AdvMethod::Pgd { steps } => Pgd::new(cfg.eps, steps).perturb(net, x, labels, rng),
        AdvMethod::Free { .. } => unreachable!("handled by free_step"),
    };
    net.zero_grad();
    let (loss, _) = net.loss_and_input_grad(&x_adv, labels, Mode::Train);
    opt.step(net);
    loss
}

/// One "free" adversarial training step: m replays sharing δ; each replay's
/// backward pass yields both the weight gradient (used immediately) and the
/// input gradient (used to grow δ).
fn free_step(
    net: &mut Network,
    opt: &Sgd,
    x: &Tensor,
    labels: &[usize],
    eps: f32,
    replays: usize,
) -> f32 {
    let mut delta = Tensor::zeros(x.shape());
    let mut last_loss = 0.0;
    for _ in 0..replays.max(1) {
        let mut x_adv = x.add(&delta);
        x_adv.clamp_in_place(0.0, 1.0);
        net.zero_grad();
        let (loss, gx) = net.loss_and_input_grad(&x_adv, labels, Mode::Train);
        opt.step(net);
        // δ ← clip(δ + ε·sign(∇_x)), reused by the next replay.
        for (d, &g) in delta.data_mut().iter_mut().zip(gx.data()) {
            *d = (*d + eps * g.signum()).clamp(-eps, eps);
        }
        last_loss = loss;
    }
    last_loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_data::{generate, DatasetProfile};
    use tia_nn::zoo;

    const EPS: f32 = 8.0 / 255.0;

    fn tiny_data() -> Dataset {
        let profile = DatasetProfile::tiny(3, 8, 48, 24);
        generate(&profile, 9).0
    }

    #[test]
    fn fgsm_training_reduces_loss() {
        let data = tiny_data();
        let mut rng = SeededRng::new(1);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let cfg = TrainConfig::with_method(AdvMethod::Fgsm, EPS)
            .with_epochs(4)
            .with_batch_size(16);
        let report = adversarial_train(&mut net, &data, &cfg);
        assert_eq!(report.epoch_losses.len(), 4);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(last < first, "loss should fall: {} -> {}", first, last);
    }

    #[test]
    fn pgd_training_runs() {
        let data = tiny_data();
        let mut rng = SeededRng::new(2);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let cfg = TrainConfig::pgd7(EPS).with_epochs(1).with_batch_size(16);
        let report = adversarial_train(&mut net, &data, &cfg);
        assert!(report.epoch_losses[0].is_finite());
        assert!(report.sampled_precisions.is_empty());
    }

    #[test]
    fn free_training_runs_and_learns() {
        let data = tiny_data();
        let mut rng = SeededRng::new(3);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let cfg = TrainConfig::with_method(AdvMethod::Free { replays: 3 }, EPS)
            .with_epochs(3)
            .with_batch_size(16);
        let report = adversarial_train(&mut net, &data, &cfg);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn rps_training_samples_precisions() {
        let data = tiny_data();
        let mut rng = SeededRng::new(4);
        let set = PrecisionSet::new(&[4, 6, 8]);
        let mut net = zoo::preact_resnet18_rps(3, 4, 3, set.clone(), &mut rng);
        let cfg = TrainConfig::pgd7(EPS)
            .with_rps(set)
            .with_epochs(2)
            .with_batch_size(16);
        let report = adversarial_train(&mut net, &data, &cfg);
        assert!(!report.sampled_precisions.is_empty());
        let uniq: std::collections::HashSet<u8> =
            report.sampled_precisions.iter().copied().collect();
        assert!(
            uniq.len() >= 2,
            "should sample multiple precisions: {:?}",
            uniq
        );
        assert!(report
            .sampled_precisions
            .iter()
            .all(|b| [4u8, 6, 8].contains(b)));
    }

    #[test]
    fn method_names() {
        assert_eq!(AdvMethod::Pgd { steps: 7 }.name(), "PGD-7");
        assert_eq!(AdvMethod::Free { replays: 8 }.name(), "Free(m=8)");
        assert_eq!(AdvMethod::FgsmRs.name(), "FGSM-RS");
    }
}
