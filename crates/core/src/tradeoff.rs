//! Instant robustness-efficiency trade-off (paper §2.5 and Fig. 11).

use crate::{natural_accuracy, robust_accuracy};
use tia_attack::Attack;
use tia_data::Dataset;
use tia_engine::{Backend, PrecisionPolicy};
use tia_quant::PrecisionSet;
use tia_tensor::SeededRng;

/// One operating point of the run-time trade-off: an inference precision set
/// (or a static low precision) with its measured accuracies and mean cost.
#[derive(Debug, Clone)]
pub struct TradeoffPoint {
    /// Label, e.g. `"RPS 4~16-bit"` or `"static 4-bit"`.
    pub label: String,
    /// Natural accuracy under this policy.
    pub natural_acc: f32,
    /// Robust accuracy (attack samples its precision from the same set).
    pub robust_acc: f32,
    /// Mean executed bit-width — the efficiency proxy on the algorithm side;
    /// `tia-sim` (or a `SimBacked` backend) converts operating points into
    /// energy via the accelerator model for Fig. 11's x-axis.
    pub mean_bits: f32,
}

/// Sweeps inference precision sets, producing the Fig. 11 trade-off curve.
///
/// For each set the adversary also samples from the same set (the paper's
/// threat model); a singleton set degenerates to static low-precision
/// execution, the "merely high efficiency" end of the trade-off. All
/// evaluation is served batched through the engine.
pub fn tradeoff_curve<B: Backend>(
    backend: &mut B,
    data: &Dataset,
    attack: &dyn Attack,
    sets: &[PrecisionSet],
    batch_size: usize,
    rng: &mut SeededRng,
) -> Vec<TradeoffPoint> {
    sets.iter()
        .map(|set| {
            let policy = PrecisionPolicy::Random(set.clone());
            let natural = natural_accuracy(backend, data, &policy, rng);
            let robust = robust_accuracy(
                backend,
                data,
                attack,
                &policy.clone(),
                &policy,
                batch_size,
                rng,
            );
            let label = if set.len() == 1 {
                format!("static {}", set.min())
            } else {
                format!("RPS {}", set)
            };
            TradeoffPoint {
                label,
                natural_acc: natural,
                robust_acc: robust,
                mean_bits: set.mean_bits(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_attack::Pgd;
    use tia_data::{generate, DatasetProfile};
    use tia_nn::zoo;

    #[test]
    fn tradeoff_points_have_monotone_mean_bits() {
        let (train, _) = generate(&DatasetProfile::tiny(2, 8, 12, 6), 4);
        let mut rng = SeededRng::new(4);
        let set_all = PrecisionSet::range(4, 8);
        let mut net = zoo::preact_resnet18_rps(3, 4, 2, set_all.clone(), &mut rng);
        let attack = Pgd::new(8.0 / 255.0, 3);
        let sets = vec![set_all, PrecisionSet::range(4, 6), PrecisionSet::new(&[4])];
        let pts = tradeoff_curve(&mut net, &train, &attack, &sets, 6, &mut rng);
        assert_eq!(pts.len(), 3);
        assert!(pts[0].mean_bits > pts[1].mean_bits);
        assert!(pts[1].mean_bits > pts[2].mean_bits);
        assert_eq!(pts[2].label, "static 4-bit");
        for p in &pts {
            assert!((0.0..=1.0).contains(&p.natural_acc));
            assert!((0.0..=1.0).contains(&p.robust_acc));
        }
    }
}
