//! Attack-transferability matrices across precisions (paper Fig. 1).

use tia_attack::Attack;
use tia_data::Dataset;
use tia_engine::Backend;
use tia_quant::Precision;
use tia_tensor::{count_top1_correct, SeededRng};

/// Robust accuracy for every (attack precision, inference precision) pair.
///
/// Row `i` = attacks crafted at `precisions[i]`; column `j` = the same model
/// evaluated at `precisions[j]`. The paper's Fig. 1 observation is that the
/// diagonal (matched precisions) is markedly lower than the off-diagonal:
/// gradient attacks transfer poorly across quantization grids.
#[derive(Debug, Clone)]
pub struct TransferMatrix {
    /// Precisions indexing rows and columns.
    pub precisions: Vec<Precision>,
    /// `values[i][j]` = robust accuracy, attack at `i`, inference at `j`.
    pub values: Vec<Vec<f32>>,
}

impl TransferMatrix {
    /// Mean of the diagonal (attack precision == inference precision).
    pub fn diagonal_mean(&self) -> f32 {
        let n = self.precisions.len();
        (0..n).map(|i| self.values[i][i]).sum::<f32>() / n.max(1) as f32
    }

    /// Mean of the off-diagonal entries (transferred attacks).
    pub fn off_diagonal_mean(&self) -> f32 {
        let n = self.precisions.len();
        if n < 2 {
            return 0.0;
        }
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += self.values[i][j];
                }
            }
        }
        s / (n * (n - 1)) as f32
    }

    /// Grand mean over all cells — the expected robust accuracy when both
    /// sides sample uniformly (the quantity the paper compares against the
    /// full-precision baseline).
    pub fn grand_mean(&self) -> f32 {
        let n = self.precisions.len();
        self.values.iter().flatten().sum::<f32>() / ((n * n).max(1)) as f32
    }

    /// Renders an aligned text table (rows = attack precision).
    pub fn render(&self) -> String {
        let mut out = String::from("attack\\infer");
        for p in &self.precisions {
            out.push_str(&format!("{:>8}", format!("{}b", p.bits())));
        }
        out.push('\n');
        for (i, p) in self.precisions.iter().enumerate() {
            out.push_str(&format!("{:>12}", format!("{}b", p.bits())));
            for v in &self.values[i] {
                out.push_str(&format!("{:>8.1}", v * 100.0));
            }
            out.push('\n');
        }
        out
    }
}

/// Computes the transferability matrix of `attack` on `backend` over
/// `precisions` (paper Fig. 1).
///
/// Adversarial examples are crafted once per attack precision and evaluated
/// batched against every inference precision through the engine's
/// [`Backend`] surface, exactly as the figure's protocol (and far cheaper
/// than crafting per cell).
pub fn transfer_matrix<B: Backend>(
    backend: &mut B,
    data: &Dataset,
    attack: &dyn Attack,
    precisions: &[Precision],
    batch_size: usize,
    rng: &mut SeededRng,
) -> TransferMatrix {
    let saved = Backend::precision(backend);
    let n = data.len();
    let bs = batch_size.max(1);
    let mut values = vec![vec![0.0f32; precisions.len()]; precisions.len()];
    for (ai, &ap) in precisions.iter().enumerate() {
        let mut correct = vec![0usize; precisions.len()];
        let mut i = 0;
        while i < n {
            let idx: Vec<usize> = (i..(i + bs).min(n)).collect();
            let (x, labels) = data.batch(&idx);
            Backend::set_precision(backend, Some(ap));
            let x_adv = attack.perturb(&mut *backend, &x, &labels, rng);
            for (ii, &ip) in precisions.iter().enumerate() {
                let logits = backend.infer_batch(&x_adv, Some(ip));
                correct[ii] += count_top1_correct(&logits, &labels);
            }
            i += bs;
        }
        for (ii, c) in correct.iter().enumerate() {
            values[ai][ii] = *c as f32 / n.max(1) as f32;
        }
    }
    Backend::set_precision(backend, saved);
    TransferMatrix {
        precisions: precisions.to_vec(),
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_statistics() {
        let m = TransferMatrix {
            precisions: vec![Precision::new(4), Precision::new(8)],
            values: vec![vec![0.2, 0.6], vec![0.7, 0.3]],
        };
        assert!((m.diagonal_mean() - 0.25).abs() < 1e-6);
        assert!((m.off_diagonal_mean() - 0.65).abs() < 1e-6);
        assert!((m.grand_mean() - 0.45).abs() < 1e-6);
    }

    #[test]
    fn render_contains_all_cells() {
        let m = TransferMatrix {
            precisions: vec![Precision::new(4), Precision::new(8)],
            values: vec![vec![0.2, 0.6], vec![0.7, 0.3]],
        };
        let r = m.render();
        for s in ["20.0", "60.0", "70.0", "30.0", "4b", "8b"] {
            assert!(r.contains(s), "missing {} in:\n{}", s, r);
        }
    }
}
