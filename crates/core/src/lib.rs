//! # tia-core
//!
//! The paper's algorithmic contribution: **Random Precision Switch (RPS)**
//! adversarial training and inference (Alg. 1), plus the evaluation harness
//! that regenerates the algorithm-side tables and figures.
//!
//! * [`adversarial_train`] — FGSM / FGSM-RS / PGD-7 / Free adversarial
//!   training, optionally wrapped with RPS (random per-iteration precision +
//!   switchable BN).
//! * [`robust_accuracy`] / [`natural_accuracy`] — accuracy under attacks with
//!   independent *attack* and *inference* precision policies (the paper's
//!   threat model: the adversary crafts at one precision, the defender
//!   randomly switches to another). Both are generic over
//!   [`tia_engine::Backend`] and serve batched through the micro-batching
//!   [`tia_engine::Engine`].
//! * [`transfer_matrix`] — Fig. 1's attack-transferability matrices.
//! * [`tradeoff_curve`] — Fig. 11's instant robustness-efficiency trade-off.
//!
//! The precision policy lives in `tia-engine` as
//! [`PrecisionPolicy`] (formerly
//! `tia_core::InferencePolicy`, an alias removed after its one-release
//! deprecation window); it is re-exported here for convenience.
//!
//! # Example
//!
//! ```no_run
//! use tia_core::{adversarial_train, AdvMethod, TrainConfig};
//! use tia_data::{generate, DatasetProfile};
//! use tia_nn::zoo;
//! use tia_quant::PrecisionSet;
//! use tia_tensor::SeededRng;
//!
//! let profile = DatasetProfile::cifar10_like().with_sizes(128, 64);
//! let (train, _test) = generate(&profile, 0);
//! let set = PrecisionSet::range(4, 8);
//! let mut rng = SeededRng::new(1);
//! let mut net = zoo::preact_resnet18_rps(3, 8, profile.classes, set.clone(), &mut rng);
//! let cfg = TrainConfig::pgd7(8.0 / 255.0).with_rps(set).with_epochs(5);
//! let report = adversarial_train(&mut net, &train, &cfg);
//! assert_eq!(report.epoch_losses.len(), 5);
//! ```

#![deny(missing_docs)]

mod eval;
mod tradeoff;
mod trainer;
mod transfer;

pub use eval::{natural_accuracy, robust_accuracy};
pub use tia_engine::PrecisionPolicy;
pub use tradeoff::{tradeoff_curve, TradeoffPoint};
pub use trainer::{adversarial_train, recalibrate_bn, AdvMethod, TrainConfig, TrainReport};
pub use transfer::{transfer_matrix, TransferMatrix};
