//! The workspace's single wall-clock seam.
//!
//! Bitwise determinism (same seed ⇒ same logits *and* same schedule) dies
//! the moment scheduler logic reads ambient time, so the `tia-lint`
//! determinism rule bans raw `Instant::now()` / `SystemTime` everywhere
//! except this module. Two layers:
//!
//! * [`monotonic_now`] / [`since`] — thin real-clock reads for code that
//!   merely *measures* (client retry backoff, load-generator pacing).
//! * [`Clock`] — an injectable handle threaded through the server so every
//!   schedule-affecting read (deadline anchoring, EDF window waits,
//!   expiry shedding) can be driven manually in tests. A manual clock
//!   freezes time at construction and only moves via [`Clock::advance`],
//!   making deadline behavior fully deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Reads the real monotonic clock.
///
/// This is the one sanctioned raw time read in the workspace; everything
/// else routes through it (or through a [`Clock`]) so the determinism lint
/// can hold the line elsewhere.
pub fn monotonic_now() -> Instant {
    Instant::now()
}

/// Real-clock duration since `earlier`, saturating at zero.
pub fn since(earlier: Instant) -> Duration {
    monotonic_now().saturating_duration_since(earlier)
}

/// Backing state of a manual clock: a frozen base instant plus an
/// atomically advanced offset.
#[derive(Debug)]
struct ManualClock {
    base: Instant,
    offset_ns: AtomicU64,
}

/// A monotonic time source for the serving scheduler: the real clock, or a
/// manually advanced one for deterministic tests.
///
/// Cloning is cheap and clones share the same timeline — advance one
/// handle and every clone sees the new time.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    manual: Option<Arc<ManualClock>>,
}

impl Clock {
    /// A clock that reads real monotonic time.
    pub fn real() -> Self {
        Clock { manual: None }
    }

    /// A manual clock frozen at the current instant; it only moves via
    /// [`Clock::advance`].
    pub fn manual() -> Self {
        Clock {
            manual: Some(Arc::new(ManualClock {
                base: monotonic_now(),
                offset_ns: AtomicU64::new(0),
            })),
        }
    }

    /// The current instant on this clock's timeline.
    pub fn now(&self) -> Instant {
        match &self.manual {
            None => monotonic_now(),
            // ordering: SeqCst — test-only manual clock; an advance() must be
            // globally visible before the test observes its scheduling effect,
            // and this is nowhere near a hot path.
            Some(m) => m.base + Duration::from_nanos(m.offset_ns.load(Ordering::SeqCst)),
        }
    }

    /// Duration since `earlier` on this clock's timeline, saturating at
    /// zero (manual clocks can sit behind instants taken from the real
    /// clock).
    pub fn since(&self, earlier: Instant) -> Duration {
        self.now().saturating_duration_since(earlier)
    }

    /// Advances a manual clock by `by`; returns `false` (and does nothing)
    /// on a real clock.
    pub fn advance(&self, by: Duration) -> bool {
        match &self.manual {
            None => false,
            Some(m) => {
                let ns = u64::try_from(by.as_nanos()).unwrap_or(u64::MAX);
                // ordering: SeqCst — pairs with the load in now(); see above.
                m.offset_ns.fetch_add(ns, Ordering::SeqCst);
                true
            }
        }
    }

    /// Whether this is a manual (test) clock.
    pub fn is_manual(&self) -> bool {
        self.manual.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_moves_forward() {
        let c = Clock::real();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(!c.is_manual());
        assert!(!c.advance(Duration::from_secs(1)));
    }

    #[test]
    fn manual_clock_only_moves_on_advance() {
        let c = Clock::manual();
        let a = c.now();
        assert_eq!(c.now(), a);
        assert!(c.advance(Duration::from_millis(7)));
        assert_eq!(c.now() - a, Duration::from_millis(7));
        assert!(c.is_manual());
    }

    #[test]
    fn clones_share_the_timeline() {
        let c = Clock::manual();
        let d = c.clone();
        let t0 = c.now();
        d.advance(Duration::from_secs(3));
        assert_eq!(c.now() - t0, Duration::from_secs(3));
    }

    #[test]
    fn since_saturates_for_future_instants() {
        let c = Clock::manual();
        let future = monotonic_now() + Duration::from_secs(3600);
        assert_eq!(c.since(future), Duration::ZERO);
    }
}
