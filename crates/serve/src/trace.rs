//! Per-request flight recorder: lock-free per-thread event rings, span
//! reconstruction, and Chrome trace-event export.
//!
//! Aggregate counters ([`crate::metrics`]) say *how much*; the flight
//! recorder says *where the time went* for each individual request. Every
//! serving thread (acceptor, readers, batcher) registers its own
//! fixed-capacity [`Ring`] with the shared [`TraceSink`] and stamps
//! [`Stage`] events into it as requests move through the pipeline:
//!
//! ```text
//! accept → frame-decoded → admitted/rejected → enqueued → window-enter
//!        → batch-formed → engine-submit → flushed → encoded → sent/shed
//! ```
//!
//! Design constraints, in order:
//!
//! * **Allocation-free in steady state.** A ring is a struct-of-arrays of
//!   `AtomicU64` slots allocated once at registration; recording an event
//!   is four relaxed stores plus one release store of the write cursor.
//!   The alloc-regression test pins this to literally zero heap
//!   allocations per event.
//! * **Lock-free, single-writer.** Each ring is written by exactly one
//!   thread (its registrant) and read by at most one scraper at a time.
//!   The writer never blocks and never waits on the reader; when the ring
//!   is full it overwrites the oldest slot (recent history wins — the
//!   interesting events are the ones near the incident).
//! * **Deterministic timestamps.** Events are stamped on the injectable
//!   [`Clock`] seam as nanoseconds since the sink's epoch (the instant the
//!   sink was created), so under a manual clock the whole trace is
//!   bit-reproducible and the loopback test can pin exact sequences.
//!
//! Reconstruction happens off the hot path: [`TraceSink::drain`] snapshots
//! every ring into a time-sorted event list, [`spans`] groups the
//! request-scoped events by trace id into [`Span`]s, and
//! [`TraceSink::chrome_trace_json`] renders the whole thing as Chrome
//! trace-event JSON loadable in `chrome://tracing` or Perfetto.
//!
//! Snapshots are non-destructive (scraping `/trace` twice is idempotent)
//! and best-effort under concurrent writes: a writer that laps the reader
//! mid-snapshot can tear the oldest few slots. Quiescent drains (after
//! [`crate::server::Server::shutdown`]) are exact.

use crate::clock::Clock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Ring capacity (slots) for the acceptor thread, which records one event
/// per accepted connection.
pub const ACCEPTOR_RING_SLOTS: usize = 1 << 10;

/// Ring capacity (slots) for one connection reader thread (a few events
/// per admitted or rejected request).
pub const READER_RING_SLOTS: usize = 1 << 12;

/// Ring capacity (slots) for the batcher thread, which records the bulk of
/// every request's lifecycle (window-enter through sent/shed) plus the
/// per-cycle scope events.
pub const BATCHER_RING_SLOTS: usize = 1 << 15;

/// A lifecycle stage, stamped into a ring as one event. Discriminants are
/// ordered by position in the request lifecycle; [`Span`] events sort by
/// this rank, so the monotonic-timestamp invariant ("a request never
/// reaches a later stage at an earlier time") is checkable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    /// A connection was accepted (`id` = connection sequence number).
    Accept = 0,
    /// An inference frame finished decoding on a reader thread
    /// (`arg0`/`arg1` = the wire request id, split high/low).
    FrameDecoded = 1,
    /// The request passed admission control (`arg0`/`arg1` = wire id).
    Admitted = 2,
    /// The request was refused at admission (`arg0`/`arg1` = wire id);
    /// terminal for a never-admitted request.
    Rejected = 3,
    /// The request entered the bounded queue.
    Enqueued = 4,
    /// The batcher pulled the request into the EDF window.
    WindowEnter = 5,
    /// The batcher formed a batch this cycle (scope event: `id` = cycle,
    /// `arg0` = submitted requests, `arg1` = live degrade level).
    BatchFormed = 6,
    /// The request was submitted to the engine.
    EngineSubmit = 7,
    /// The engine's submit/flush cycle completed (scope event: `id` =
    /// cycle, `arg0` = precision-mix bitmask — bit 0 fp32, bit `b` =
    /// `b`-bit — `arg1` = micro-batches executed).
    EngineCycle = 8,
    /// The adaptive controller shifted the degrade level (scope event:
    /// `id` = new level, `arg0` = 1 for degrade, 2 for recover).
    ControlDecision = 9,
    /// The engine flush returned this request's logits.
    Flushed = 10,
    /// The response frame was encoded.
    Encoded = 11,
    /// The response was written to the socket; terminal.
    Sent = 12,
    /// The request was shed (deadline expiry or shutdown sweep); terminal.
    Shed = 13,
    /// The engine refused the submit; terminal.
    Errored = 14,
}

impl Stage {
    /// All stages, in lifecycle (discriminant) order.
    pub const ALL: [Stage; 15] = [
        Stage::Accept,
        Stage::FrameDecoded,
        Stage::Admitted,
        Stage::Rejected,
        Stage::Enqueued,
        Stage::WindowEnter,
        Stage::BatchFormed,
        Stage::EngineSubmit,
        Stage::EngineCycle,
        Stage::ControlDecision,
        Stage::Flushed,
        Stage::Encoded,
        Stage::Sent,
        Stage::Shed,
        Stage::Errored,
    ];

    /// Decodes a stage from its wire discriminant.
    pub fn from_u8(v: u8) -> Option<Stage> {
        Stage::ALL.get(v as usize).copied()
    }

    /// Stable snake_case label (event names in the Chrome export).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Accept => "accept",
            Stage::FrameDecoded => "frame_decoded",
            Stage::Admitted => "admitted",
            Stage::Rejected => "rejected",
            Stage::Enqueued => "enqueued",
            Stage::WindowEnter => "window_enter",
            Stage::BatchFormed => "batch_formed",
            Stage::EngineSubmit => "engine_submit",
            Stage::EngineCycle => "engine_cycle",
            Stage::ControlDecision => "control_decision",
            Stage::Flushed => "flushed",
            Stage::Encoded => "encoded",
            Stage::Sent => "sent",
            Stage::Shed => "shed",
            Stage::Errored => "errored",
        }
    }

    /// Whether this stage belongs to one request's span (its `id` is a
    /// trace id). The rest are scope events: per-connection or per-cycle.
    pub fn is_request_stage(self) -> bool {
        !matches!(
            self,
            Stage::Accept | Stage::BatchFormed | Stage::EngineCycle | Stage::ControlDecision
        )
    }

    /// Whether this stage ends a request's lifecycle.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            Stage::Rejected | Stage::Sent | Stage::Shed | Stage::Errored
        )
    }
}

/// One recorded event, as read back out of a ring by [`TraceSink::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the sink's epoch, on the injected [`Clock`].
    pub ts_ns: u64,
    /// Trace id (request stages) or scope id (connection/cycle/level).
    pub id: u64,
    /// The lifecycle stage.
    pub stage: Stage,
    /// Stage-specific argument (see [`Stage`] variant docs).
    pub arg0: u32,
    /// Stage-specific argument (see [`Stage`] variant docs).
    pub arg1: u32,
    /// The recording ring's thread id (registration order).
    pub tid: u32,
}

/// Splits a 64-bit wire id into the `(arg0, arg1)` pair carried by
/// [`Stage::FrameDecoded`] / [`Stage::Admitted`] / [`Stage::Rejected`].
pub fn wire_id_args(wire_id: u64) -> (u32, u32) {
    ((wire_id >> 32) as u32, wire_id as u32)
}

/// Reassembles a wire id from the `(arg0, arg1)` pair (see
/// [`wire_id_args`]).
pub fn wire_id_from_args(arg0: u32, arg1: u32) -> u64 {
    (u64::from(arg0) << 32) | u64::from(arg1)
}

/// A single-writer, lock-free ring of trace events.
///
/// Obtained from [`TraceSink::register`]; the registering thread is the
/// only writer. Slots are a struct-of-arrays of `AtomicU64` so recording
/// is plain word stores — no locking, no allocation, no CAS loop. The
/// write cursor (`head`) counts events ever recorded; slot `i` of event
/// `n` is `n % capacity`, so once `head` passes the capacity the ring
/// overwrites its oldest entries (most-recent-history-wins semantics).
#[derive(Debug)]
pub struct Ring {
    name: String,
    tid: u32,
    clock: Clock,
    epoch: Instant,
    head: AtomicU64,
    ts: Box<[AtomicU64]>,
    id: Box<[AtomicU64]>,
    stage: Box<[AtomicU64]>,
    args: Box<[AtomicU64]>,
}

impl Ring {
    fn new(name: String, tid: u32, clock: Clock, epoch: Instant, capacity: usize) -> Ring {
        let cap = capacity.max(1);
        let slots = || -> Box<[AtomicU64]> { (0..cap).map(|_| AtomicU64::new(0)).collect() };
        Ring {
            name,
            tid,
            clock,
            epoch,
            head: AtomicU64::new(0),
            ts: slots(),
            id: slots(),
            stage: slots(),
            args: slots(),
        }
    }

    /// The ring's name (thread label in the Chrome export).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ring's thread id (registration order within its sink).
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Slot capacity.
    pub fn capacity(&self) -> usize {
        self.ts.len()
    }

    /// Events recorded since registration (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        // ordering: acquire — pairs with the release cursor publish in
        // `record_at` so a reader that sees the count also sees the slots.
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to ring wrap-around (recorded minus capacity, floored
    /// at zero).
    pub fn overwritten(&self) -> u64 {
        self.recorded().saturating_sub(self.ts.len() as u64)
    }

    /// Records one event stamped `now` on the ring's clock.
    ///
    /// Must only be called from the registering thread (single-writer);
    /// concurrent writers would race the cursor and corrupt slots, though
    /// never unsafely.
    pub fn record(&self, stage: Stage, id: u64, arg0: u32, arg1: u32) {
        self.record_at(stage, id, arg0, arg1, self.clock.now());
    }

    /// Records one event stamped at an instant the caller already read
    /// from the same [`Clock`] seam (lets several events share one clock
    /// read, and lets an event carry the instant a decision was anchored
    /// to rather than the instant it was recorded).
    pub fn record_at(&self, stage: Stage, id: u64, arg0: u32, arg1: u32, at: Instant) {
        let ts = at.saturating_duration_since(self.epoch).as_nanos() as u64;
        // tia-lint: hot-path(begin)
        // ordering: relaxed — single-writer cursor; only this thread advances it.
        let n = self.head.load(Ordering::Relaxed);
        let i = (n % self.ts.len() as u64) as usize;
        // ordering: relaxed — slot words; made visible by the release cursor store below.
        self.ts[i].store(ts, Ordering::Relaxed);
        // ordering: relaxed — see above.
        self.id[i].store(id, Ordering::Relaxed);
        // ordering: relaxed — see above.
        self.stage[i].store(stage as u64, Ordering::Relaxed);
        // ordering: relaxed — see above.
        self.args[i].store((u64::from(arg0) << 32) | u64::from(arg1), Ordering::Relaxed);
        // ordering: release — publishes the slot words to snapshot readers.
        self.head.store(n + 1, Ordering::Release);
        // tia-lint: hot-path(end)
    }

    /// Appends the ring's current contents (oldest surviving slot first)
    /// to `out`. Non-destructive.
    fn snapshot_into(&self, out: &mut Vec<TraceEvent>) {
        // ordering: acquire — pairs with the release store in `record_at`;
        // every slot at index < head is fully written once head is seen.
        let head = self.head.load(Ordering::Acquire);
        let cap = self.ts.len() as u64;
        for n in head.saturating_sub(cap)..head {
            let i = (n % cap) as usize;
            // ordering: relaxed — slot reads ordered by the acquire above; a
            // writer lapping us mid-read can tear the oldest slots, which the
            // module contract documents as best-effort.
            let stage_raw = self.stage[i].load(Ordering::Relaxed);
            let Some(stage) = u8::try_from(stage_raw).ok().and_then(Stage::from_u8) else {
                continue;
            };
            // ordering: relaxed — see above.
            let args = self.args[i].load(Ordering::Relaxed);
            out.push(TraceEvent {
                // ordering: relaxed — see above.
                ts_ns: self.ts[i].load(Ordering::Relaxed),
                // ordering: relaxed — see above.
                id: self.id[i].load(Ordering::Relaxed),
                stage,
                arg0: (args >> 32) as u32,
                arg1: args as u32,
                tid: self.tid,
            });
        }
    }
}

/// The per-server trace registry: hands out per-thread [`Ring`]s and
/// per-request trace ids, and merges every ring back into one timeline.
///
/// Created once at [`crate::server::Server::spawn`] when tracing is
/// enabled; the epoch (timestamp zero) is the sink's creation instant on
/// the server's [`Clock`].
#[derive(Debug)]
pub struct TraceSink {
    clock: Clock,
    epoch: Instant,
    next_id: AtomicU64,
    rings: Mutex<Vec<Arc<Ring>>>,
}

impl TraceSink {
    /// Creates a sink whose epoch is `clock`'s current instant.
    pub fn new(clock: Clock) -> TraceSink {
        let epoch = clock.now();
        TraceSink {
            clock,
            epoch,
            next_id: AtomicU64::new(0),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// The instant all event timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Registers a new ring for the calling thread. Called once per thread
    /// at thread start (allocation happens here, not on the record path).
    pub fn register(&self, name: &str, capacity: usize) -> Arc<Ring> {
        match self.rings.lock() {
            Ok(mut rings) => {
                let ring = Arc::new(Ring::new(
                    name.to_string(),
                    rings.len() as u32,
                    self.clock.clone(),
                    self.epoch,
                    capacity,
                ));
                rings.push(Arc::clone(&ring));
                ring
            }
            // A poisoned registry (a panic while registering elsewhere)
            // still hands out a working ring; it just won't be drained.
            Err(_) => Arc::new(Ring::new(
                name.to_string(),
                u32::MAX,
                self.clock.clone(),
                self.epoch,
                capacity,
            )),
        }
    }

    /// Allocates the next per-request trace id (starts at 1; 0 is never
    /// issued, so it can serve as an untraced sentinel).
    pub fn next_request_id(&self) -> u64 {
        // ordering: relaxed — a pure id counter; uniqueness is all that
        // matters, no other memory is published through it.
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Trace ids issued so far.
    pub fn issued_ids(&self) -> u64 {
        // ordering: relaxed — statistical read of the id counter.
        self.next_id.load(Ordering::Relaxed)
    }

    /// Events lost to ring wrap-around, summed over every ring.
    pub fn overwritten(&self) -> u64 {
        match self.rings.lock() {
            Ok(rings) => rings.iter().map(|r| r.overwritten()).sum(),
            Err(_) => 0,
        }
    }

    /// Snapshots every ring into one event list sorted by timestamp
    /// (stable: ties keep ring-registration then recording order).
    /// Non-destructive — draining twice returns the same events.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let rings: Vec<Arc<Ring>> = match self.rings.lock() {
            Ok(rings) => rings.iter().map(Arc::clone).collect(),
            Err(_) => Vec::new(),
        };
        let mut events = Vec::new();
        for ring in rings {
            ring.snapshot_into(&mut events);
        }
        events.sort_by_key(|e| e.ts_ns);
        events
    }

    /// Renders the current contents of every ring as Chrome trace-event
    /// JSON (the `chrome://tracing` / Perfetto array form, microsecond
    /// units).
    ///
    /// Layout: pid 1 holds the serving threads (one lane per ring, named
    /// via `thread_name` metadata) carrying the scope events (accepts,
    /// batch formations, engine cycles, controller decisions) as instants;
    /// pid 2 holds one lane per request (tid = trace id) with an
    /// enveloping `request` slice plus one slice per stage-to-stage
    /// transition (`queue_wait`, `window`, `execute`, `encode`, `send`).
    pub fn chrome_trace_json(&self) -> String {
        let events = self.drain();
        let spans = spans(&events);
        let mut parts: Vec<String> = Vec::with_capacity(events.len() + 16);
        if let Ok(rings) = self.rings.lock() {
            for ring in rings.iter() {
                parts.push(format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    ring.tid,
                    ring.name()
                ));
            }
        }
        for e in events.iter().filter(|e| !e.stage.is_request_stage()) {
            parts.push(format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":1,\
                 \"tid\":{},\"args\":{{{}}}}}",
                e.stage.as_str(),
                e.ts_ns as f64 / 1000.0,
                e.tid,
                scope_args(e)
            ));
        }
        for span in &spans {
            let Some(first) = span.events.first() else {
                continue;
            };
            let Some(last) = span.events.last() else {
                continue;
            };
            let terminal = span.terminal().map_or("open", Stage::as_str);
            let wire = span
                .wire_id
                .map_or_else(|| "null".to_string(), |w| w.to_string());
            parts.push(format!(
                "{{\"name\":\"request\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":2,\"tid\":{},\"args\":{{\"wire_id\":{},\"terminal\":\"{}\"}}}}",
                first.ts_ns as f64 / 1000.0,
                (last.ts_ns.saturating_sub(first.ts_ns)) as f64 / 1000.0,
                span.trace_id,
                wire,
                terminal
            ));
            for pair in span.events.windows(2) {
                parts.push(format!(
                    "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                     \"pid\":2,\"tid\":{}}}",
                    transition_name(pair[0].stage, pair[1].stage),
                    pair[0].ts_ns as f64 / 1000.0,
                    (pair[1].ts_ns.saturating_sub(pair[0].ts_ns)) as f64 / 1000.0,
                    span.trace_id
                ));
            }
        }
        let mut out = String::with_capacity(parts.iter().map(|p| p.len() + 1).sum::<usize>() + 2);
        out.push('[');
        for (i, p) in parts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(p);
        }
        out.push(']');
        out
    }
}

/// Renders a scope event's args with semantic keys per stage.
fn scope_args(e: &TraceEvent) -> String {
    match e.stage {
        Stage::Accept => format!("\"conn\":{}", e.id),
        Stage::BatchFormed => format!(
            "\"cycle\":{},\"size\":{},\"degrade_level\":{}",
            e.id, e.arg0, e.arg1
        ),
        Stage::EngineCycle => format!(
            "\"cycle\":{},\"precision_mix\":{},\"batches\":{}",
            e.id, e.arg0, e.arg1
        ),
        Stage::ControlDecision => format!(
            "\"level\":{},\"direction\":\"{}\"",
            e.id,
            if e.arg0 == 1 { "degrade" } else { "recover" }
        ),
        _ => format!("\"id\":{},\"arg0\":{},\"arg1\":{}", e.id, e.arg0, e.arg1),
    }
}

/// The Chrome-export slice name for a stage-to-stage transition. The
/// steady-state path gets the canonical stage-latency names (matching the
/// `tia_serve_stage_seconds` labels); anything else is `from-to`.
fn transition_name(from: Stage, to: Stage) -> String {
    match (from, to) {
        (Stage::Enqueued, Stage::WindowEnter) => "queue_wait".to_string(),
        (Stage::WindowEnter, Stage::EngineSubmit) => "window".to_string(),
        (Stage::EngineSubmit, Stage::Flushed) => "execute".to_string(),
        (Stage::Flushed, Stage::Encoded) => "encode".to_string(),
        (Stage::Encoded, Stage::Sent) => "send".to_string(),
        (a, b) => format!("{}-{}", a.as_str(), b.as_str()),
    }
}

/// One event inside a reconstructed [`Span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// The lifecycle stage.
    pub stage: Stage,
    /// Nanoseconds since the sink epoch.
    pub ts_ns: u64,
    /// Stage-specific argument.
    pub arg0: u32,
    /// Stage-specific argument.
    pub arg1: u32,
}

/// One request's reconstructed lifecycle: every request-scoped event that
/// carried its trace id, sorted by lifecycle rank then timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The per-request trace id ([`TraceSink::next_request_id`]).
    pub trace_id: u64,
    /// The client-chosen wire id, when an admission-side event carried it.
    pub wire_id: Option<u64>,
    /// The span's events in lifecycle order.
    pub events: Vec<SpanEvent>,
}

impl Span {
    /// The stages of the span's events, in order (handy for exact-sequence
    /// assertions in tests).
    pub fn stages(&self) -> Vec<Stage> {
        self.events.iter().map(|e| e.stage).collect()
    }

    /// Whether the request passed admission.
    pub fn admitted(&self) -> bool {
        self.events.iter().any(|e| e.stage == Stage::Admitted)
    }

    /// The span's single terminal stage, or `None` when it has zero or
    /// multiple terminals (both of which [`Span::complete`] rejects).
    pub fn terminal(&self) -> Option<Stage> {
        let mut found = None;
        for e in self.events.iter().filter(|e| e.stage.is_terminal()) {
            if found.is_some() {
                return None;
            }
            found = Some(e.stage);
        }
        found
    }

    /// Whether timestamps never decrease across the lifecycle-ordered
    /// event list — a request must not reach a later stage at an earlier
    /// time.
    pub fn monotonic(&self) -> bool {
        self.events.windows(2).all(|p| p[0].ts_ns <= p[1].ts_ns)
    }

    /// The chaos invariant for an admitted request: admitted, exactly one
    /// terminal among sent/shed/errored, and monotonic timestamps.
    pub fn complete(&self) -> bool {
        self.admitted()
            && matches!(
                self.terminal(),
                Some(Stage::Sent | Stage::Shed | Stage::Errored)
            )
            && self.monotonic()
    }
}

/// Groups a drained event list into per-request [`Span`]s, keyed and
/// sorted by trace id (issue order). Scope events (accepts, batch
/// formations, engine cycles, controller decisions) are skipped, as are
/// request events carrying the untraced sentinel id 0.
pub fn spans(events: &[TraceEvent]) -> Vec<Span> {
    let mut by_id: BTreeMap<u64, Span> = BTreeMap::new();
    for e in events.iter().filter(|e| e.stage.is_request_stage()) {
        if e.id == 0 {
            continue;
        }
        let span = by_id.entry(e.id).or_insert_with(|| Span {
            trace_id: e.id,
            wire_id: None,
            events: Vec::new(),
        });
        if matches!(
            e.stage,
            Stage::FrameDecoded | Stage::Admitted | Stage::Rejected
        ) {
            span.wire_id = Some(wire_id_from_args(e.arg0, e.arg1));
        }
        span.events.push(SpanEvent {
            stage: e.stage,
            ts_ns: e.ts_ns,
            arg0: e.arg0,
            arg1: e.arg1,
        });
    }
    let mut out: Vec<Span> = by_id.into_values().collect();
    for span in &mut out {
        span.events.sort_by_key(|e| (e.stage, e.ts_ns));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn manual_sink() -> (Clock, TraceSink) {
        let clock = Clock::manual();
        let sink = TraceSink::new(clock.clone());
        (clock, sink)
    }

    #[test]
    fn record_and_drain_roundtrip() {
        let (clock, sink) = manual_sink();
        let ring = sink.register("test", 8);
        ring.record(Stage::Admitted, 1, 0, 42);
        clock.advance(Duration::from_micros(5));
        ring.record(Stage::Sent, 1, 0, 0);
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stage, Stage::Admitted);
        assert_eq!(events[0].ts_ns, 0);
        assert_eq!(events[0].arg1, 42);
        assert_eq!(events[1].stage, Stage::Sent);
        assert_eq!(events[1].ts_ns, 5_000);
        // Non-destructive: a second drain sees the same timeline.
        assert_eq!(sink.drain(), events);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_losses() {
        let (clock, sink) = manual_sink();
        let ring = sink.register("test", 4);
        for i in 0..10u64 {
            ring.record(Stage::Enqueued, i, 0, 0);
            clock.advance(Duration::from_nanos(1));
        }
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.overwritten(), 6);
        assert_eq!(sink.overwritten(), 6);
        let events = sink.drain();
        // The four most recent survive, in order.
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.id).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn trace_ids_start_at_one_and_count() {
        let (_clock, sink) = manual_sink();
        assert_eq!(sink.issued_ids(), 0);
        assert_eq!(sink.next_request_id(), 1);
        assert_eq!(sink.next_request_id(), 2);
        assert_eq!(sink.issued_ids(), 2);
    }

    #[test]
    fn spans_reconstruct_across_rings_in_lifecycle_order() {
        let (clock, sink) = manual_sink();
        let reader = sink.register("reader", 16);
        let batcher = sink.register("batcher", 16);
        let (hi, lo) = wire_id_args(0xDEAD_BEEF_0000_0007);
        reader.record(Stage::FrameDecoded, 1, hi, lo);
        reader.record(Stage::Admitted, 1, hi, lo);
        reader.record(Stage::Enqueued, 1, 0, 0);
        clock.advance(Duration::from_millis(2));
        batcher.record(Stage::WindowEnter, 1, 0, 0);
        batcher.record(Stage::BatchFormed, 1, 1, 0); // scope event: skipped
        batcher.record(Stage::EngineSubmit, 1, 0, 0);
        clock.advance(Duration::from_millis(1));
        batcher.record(Stage::Flushed, 1, 0, 0);
        batcher.record(Stage::Encoded, 1, 0, 0);
        batcher.record(Stage::Sent, 1, 0, 0);
        let spans = spans(&sink.drain());
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.trace_id, 1);
        assert_eq!(s.wire_id, Some(0xDEAD_BEEF_0000_0007));
        assert_eq!(
            s.stages(),
            vec![
                Stage::FrameDecoded,
                Stage::Admitted,
                Stage::Enqueued,
                Stage::WindowEnter,
                Stage::EngineSubmit,
                Stage::Flushed,
                Stage::Encoded,
                Stage::Sent,
            ]
        );
        assert!(s.admitted());
        assert_eq!(s.terminal(), Some(Stage::Sent));
        assert!(s.monotonic());
        assert!(s.complete());
    }

    #[test]
    fn incomplete_spans_are_detected() {
        let (_clock, sink) = manual_sink();
        let ring = sink.register("r", 32);
        // No terminal.
        ring.record(Stage::Admitted, 1, 0, 1);
        ring.record(Stage::Enqueued, 1, 0, 0);
        // Two terminals (a double ack).
        ring.record(Stage::Admitted, 2, 0, 2);
        ring.record(Stage::Sent, 2, 0, 0);
        ring.record(Stage::Sent, 2, 0, 0);
        // Clean reject: not admitted, so `complete` is not required.
        ring.record(Stage::FrameDecoded, 3, 0, 3);
        ring.record(Stage::Rejected, 3, 0, 3);
        let spans = spans(&sink.drain());
        assert_eq!(spans.len(), 3);
        assert!(!spans[0].complete(), "missing terminal");
        assert_eq!(spans[0].terminal(), None);
        assert!(!spans[1].complete(), "duplicate terminal");
        assert!(!spans[2].admitted());
        assert_eq!(spans[2].terminal(), Some(Stage::Rejected));
        assert_eq!(spans[2].wire_id, Some(3));
    }

    #[test]
    fn non_monotonic_span_fails_completeness() {
        let (clock, sink) = manual_sink();
        let ring = sink.register("r", 8);
        clock.advance(Duration::from_millis(5));
        ring.record(Stage::Admitted, 1, 0, 1);
        // A later lifecycle stage stamped at an *earlier* instant.
        ring.record_at(Stage::Sent, 1, 0, 0, sink.epoch());
        let spans = spans(&sink.drain());
        assert!(!spans[0].monotonic());
        assert!(!spans[0].complete());
    }

    #[test]
    fn chrome_export_names_threads_and_emits_request_envelopes() {
        let (clock, sink) = manual_sink();
        let reader = sink.register("reader-0", 16);
        let batcher = sink.register("batcher", 16);
        reader.record(Stage::Admitted, 1, 0, 9);
        reader.record(Stage::Enqueued, 1, 0, 0);
        clock.advance(Duration::from_micros(1500));
        batcher.record(Stage::WindowEnter, 1, 0, 0);
        batcher.record(Stage::BatchFormed, 1, 1, 0);
        batcher.record(Stage::Sent, 1, 0, 0);
        let json = sink.chrome_trace_json();
        assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
        assert!(json.contains("\"name\":\"thread_name\""), "{json}");
        assert!(json.contains("\"name\":\"batcher\""), "{json}");
        assert!(json.contains("\"name\":\"request\""), "{json}");
        assert!(json.contains("\"terminal\":\"sent\""), "{json}");
        assert!(json.contains("\"name\":\"queue_wait\""), "{json}");
        assert!(json.contains("\"name\":\"batch_formed\""), "{json}");
        // 1500 µs queue wait, rendered in microseconds.
        assert!(json.contains("\"dur\":1500.000"), "{json}");
        // Balanced braces — the cheap structural sanity check; CI runs the
        // real parser (jq) over an exported file.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes, "{json}");
    }

    #[test]
    fn untraced_sentinel_and_scope_events_form_no_spans() {
        let (_clock, sink) = manual_sink();
        let ring = sink.register("r", 8);
        ring.record(Stage::Admitted, 0, 0, 0); // sentinel id
        ring.record(Stage::Accept, 5, 0, 0);
        ring.record(Stage::EngineCycle, 3, 0b1_0000, 2);
        assert!(spans(&sink.drain()).is_empty());
    }
}
