//! Live serving metrics: lock-free atomic counters and a log-scale latency
//! histogram, rendered as Prometheus text exposition on a scrape port.
//!
//! Everything here is updated from the serving hot path, so the whole
//! registry is plain `AtomicU64`s — no locks, no allocation. Rates (RPS)
//! are derived by the scraper from the monotonic `*_total` counters;
//! `p50`/`p99` latency come from the histogram buckets, both server-side
//! (scrape) and client-side (the load generator reuses [`Histogram`] for
//! its own end-to-end latency report).
//!
//! Every atomic here is an independent statistical counter or gauge — no
//! code path makes a decision off one, and scrapes tolerate momentary skew
//! between counters — so all accesses are `Relaxed` (each justified inline
//! for the atomic-ordering lint).

use crate::wire::Class;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tia_quant::Precision;

/// Number of per-precision counters: index 0 is full precision (fp32),
/// 1..=16 are quantized bit-widths.
pub const PRECISION_SLOTS: usize = 17;

/// The per-request pipeline stages the flight recorder derives latency
/// histograms for, in array order (the `stage` label values of
/// `tia_serve_stage_seconds`): queue wait (enqueue → EDF window entry),
/// window residency (window entry → engine submit), execute (submit →
/// flush), respond (flush → socket write), and the end-to-end total
/// (enqueue → socket write).
pub const STAGE_NAMES: [&str; 5] = ["queue_wait", "window", "execute", "respond", "total"];

/// Index of the end-to-end total in [`STAGE_NAMES`]-ordered arrays.
pub const STAGE_TOTAL: usize = STAGE_NAMES.len() - 1;

/// Slots in the slow-request exemplar table.
const SLOW_SLOTS: usize = 4;

const BUCKETS: usize = 26;

/// Appends one formatted line to the exposition buffer.
///
/// `fmt::Write` into a `String` is infallible, so the `Result` is
/// discarded here — once, deliberately, with this justification — instead
/// of scattering `let _ = writeln!(..)` discards through the rendering
/// code (which the error-hygiene lint bans).
fn putln(out: &mut String, args: std::fmt::Arguments<'_>) {
    use std::fmt::Write;
    crate::server::best_effort(out.write_fmt(args));
    out.push('\n');
}

/// A log₂-bucketed latency histogram over microseconds.
///
/// Bucket `i` counts samples in `(2^(i-1), 2^i]` µs (bucket 0: `<= 1` µs);
/// the last slot is an overflow bucket for everything above `2^25` µs
/// (~33 s). All updates are relaxed atomics — safe from any thread, never
/// blocking the recording path.
#[derive(Debug, Default)]
pub struct Histogram {
    counts: [AtomicU64; BUCKETS + 1],
    sum_ns: AtomicU64,
}

/// The bucket a `us`-microsecond sample belongs to: the smallest `i` with
/// `us <= bucket_upper_us(i)` (`= ceil(log2(us))`), clamped to the
/// overflow slot. The single source of truth shared by [`Histogram::record_ns`],
/// [`Histogram::quantile_ns`] and the Prometheus rendering, so a sample of
/// exactly `bucket_upper_us(i)` µs counts toward bucket `i`'s `le` bound
/// everywhere — pinned by the boundary tests below.
fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        0
    } else {
        (64 - (us - 1).leading_zeros() as usize).min(BUCKETS)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record_ns(&self, ns: u64) {
        let us = ns.div_ceil(1000);
        // ordering: relaxed — independent statistical counters; a scrape
        // racing a record may see count without sum, which is acceptable.
        self.counts[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        // ordering: relaxed — see above.
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        // ordering: relaxed — statistical snapshot read.
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            // ordering: relaxed — statistical snapshot read.
            self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// Upper bound (in nanoseconds) of the bucket containing quantile `q`
    /// (e.g. `0.5`, `0.99`). Returns 0 when empty. Resolution is the bucket
    /// width — a factor of two — which is plenty for serving dashboards.
    ///
    /// Semantics, pinned by the boundary tests and shared (via the
    /// private `bucket_index` helper) with the recording path and the Prometheus
    /// rendering: the reported value is always a whole power-of-two number
    /// of microseconds, the *inclusive upper* bound `2^i` µs of the
    /// log₂ bucket `(2^(i-1), 2^i]` that holds the quantile sample — never
    /// an interpolation. A sample of exactly `2^i` µs therefore reports as
    /// itself, any other sample rounds *up* to its bucket bound (a 1 ns
    /// sample reports 1 µs, the bucket-0 floor), and samples past the last
    /// finite bound (`2^25` µs) report the overflow tail `2^26` µs. The
    /// same holds for the stage histograms (`tia_serve_stage_seconds`)
    /// derived from the flight recorder.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            // ordering: relaxed — statistical snapshot read.
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_us(i).saturating_mul(1000);
            }
        }
        // Unreachable (the loop covers every slot, and `total > 0` means
        // some slot holds the rank), but keep the fallthrough consistent
        // with the in-loop conversion: saturating, never silently wrapping.
        bucket_upper_us(BUCKETS).saturating_mul(1000)
    }

    /// Copies the current bucket counts as a baseline for windowed
    /// quantiles (see [`Histogram::quantile_since_ns`]).
    pub fn baseline(&self) -> HistogramBaseline {
        let mut counts = [0u64; BUCKETS + 1];
        for (dst, src) in counts.iter_mut().zip(self.counts.iter()) {
            // ordering: relaxed — statistical snapshot read.
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramBaseline { counts }
    }

    /// Upper bucket bound (in nanoseconds) of quantile `q` over only the
    /// samples recorded since `base` was taken — the windowed form of
    /// [`Histogram::quantile_ns`]. Returns 0 when the window is empty.
    /// This is what lets the adaptive controller watch *recent* per-class
    /// p99 rather than the sticky since-start aggregate.
    pub fn quantile_since_ns(&self, base: &HistogramBaseline, q: f64) -> u64 {
        let mut window = [0u64; BUCKETS + 1];
        let mut total = 0u64;
        for (i, (cur, prev)) in self.counts.iter().zip(base.counts.iter()).enumerate() {
            // ordering: relaxed — statistical snapshot read.
            window[i] = cur.load(Ordering::Relaxed).saturating_sub(*prev);
            total += window[i];
        }
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, c) in window.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_us(i).saturating_mul(1000);
            }
        }
        bucket_upper_us(BUCKETS).saturating_mul(1000)
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.counts.iter().zip(other.counts.iter()) {
            // ordering: relaxed — merging statistical counters.
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        // ordering: relaxed — merging statistical counters.
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Renders the histogram in Prometheus `_bucket`/`_sum`/`_count` form
    /// with `le` bounds in seconds. `labels` is either empty or a
    /// `key="value",` prefix spliced before the `le` label (the trailing
    /// comma included).
    fn render(&self, name: &str, labels: &str, out: &mut String) {
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            // ordering: relaxed — statistical snapshot read for a scrape.
            cum += self.counts[i].load(Ordering::Relaxed);
            let le = bucket_upper_us(i) as f64 / 1e6;
            putln(
                out,
                format_args!("{name}_bucket{{{labels}le=\"{le}\"}} {cum}"),
            );
        }
        // ordering: relaxed — statistical snapshot read for a scrape.
        cum += self.counts[BUCKETS].load(Ordering::Relaxed);
        putln(
            out,
            format_args!("{name}_bucket{{{labels}le=\"+Inf\"}} {cum}"),
        );
        // ordering: relaxed — statistical snapshot read for a scrape.
        let sum_s = self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9;
        let plain = labels.trim_end_matches(',');
        if plain.is_empty() {
            putln(out, format_args!("{name}_sum {sum_s}"));
            putln(out, format_args!("{name}_count {cum}"));
        } else {
            putln(out, format_args!("{name}_sum{{{plain}}} {sum_s}"));
            putln(out, format_args!("{name}_count{{{plain}}} {cum}"));
        }
    }
}

fn bucket_upper_us(i: usize) -> u64 {
    1u64 << i
}

/// A point-in-time copy of a [`Histogram`]'s bucket counts; pair with
/// [`Histogram::quantile_since_ns`] for quantiles over the window recorded
/// since the copy was taken.
#[derive(Debug, Clone)]
pub struct HistogramBaseline {
    counts: [u64; BUCKETS + 1],
}

/// One slow-request exemplar: the full stage breakdown of one of the
/// slowest served requests so far, kept in [`Metrics`]'s fixed table and
/// rendered at the end of the exposition. A concrete answer to "what did
/// the p99 outlier actually spend its time on" without storing traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlowExemplar {
    /// The client-chosen wire id of the request.
    pub wire_id: u64,
    /// Per-stage nanoseconds, [`STAGE_NAMES`] order (the last slot is the
    /// end-to-end total the table ranks by).
    pub stage_ns: [u64; STAGE_NAMES.len()],
}

/// The serving metrics registry, shared (via `Arc`) by every server thread
/// and exposed on the Prometheus scrape port.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Inference requests admitted to the queue.
    pub requests_total: AtomicU64,
    /// Responses written back to clients.
    pub responses_total: AtomicU64,
    /// Requests refused because the bounded queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Requests refused because the server was draining for shutdown.
    pub rejected_draining: AtomicU64,
    /// Requests refused because the image geometry was wrong.
    pub rejected_bad_shape: AtomicU64,
    /// Requests shed because their deadline expired before they reached
    /// the engine (never served, never drew from the seeded schedule).
    pub rejected_deadline: AtomicU64,
    /// Admitted requests the engine refused at submit (configuration skew
    /// between the server's pinned geometry and the engine's). Counted
    /// separately from the reader-side rejects so the conservation equation
    /// `admitted = served + shed + errored` stays exact.
    pub errored_total: AtomicU64,
    /// Frames that failed to decode (the connection is closed after one).
    pub bad_frames_total: AtomicU64,
    /// Connections accepted since start.
    pub connections_total: AtomicU64,
    /// Currently open connections.
    pub connections_active: AtomicU64,
    /// Reader threads currently alive. Incremented on reader entry,
    /// decremented on exit: after a drain completes this must be zero, and
    /// a nonzero value distinguishes a reader parked on a dead socket from
    /// one that exited cleanly (the leak the chaos harness hunts).
    pub readers_live: AtomicU64,
    /// Admission attempts rejected by an injected [`crate::server::FaultPlan`]
    /// queue-full window (also counted in `rejected_queue_full`).
    pub faults_injected: AtomicU64,
    /// Requests admitted but not yet executed (queue + in-flight).
    pub queue_depth: AtomicU64,
    /// Coalesced micro-batches executed by the engine.
    pub batches_total: AtomicU64,
    /// Frames served across those batches (mean batch = frames / batches).
    pub batch_frames_total: AtomicU64,
    /// Served frames by execution precision: slot 0 = fp32, slot `b` =
    /// `b`-bit. The live per-precision batch mix of the RPS schedule.
    pub frames_by_precision: [AtomicU64; PRECISION_SLOTS],
    /// End-to-end (admission → response write) latency across all classes.
    pub latency: Histogram,
    /// End-to-end latency split by scheduling class (indexed by the wire
    /// byte, [`Class::ALL`] order).
    pub latency_by_class: [Histogram; 3],
    /// The adaptive controller's live degradation level (0 = the full
    /// precision set; each step drops the highest remaining bit-width from
    /// the sampled window). Stays 0 when adaptive control is off.
    pub degrade_level: AtomicU64,
    /// Controller steps that degraded (raised the level under pressure).
    pub degrade_shifts_down: AtomicU64,
    /// Controller steps that recovered (lowered the level after pressure
    /// cleared).
    pub degrade_shifts_up: AtomicU64,
    /// Policy-driven submissions whose class floor actively constrained
    /// the degraded sampling window (the SLO floor did real work).
    pub floor_clamped_total: AtomicU64,
    /// Per-stage latency histograms derived from the flight recorder's
    /// request timestamps ([`STAGE_NAMES`] order). Recorded for every
    /// served request whether or not event tracing is enabled.
    pub stage: [Histogram; STAGE_NAMES.len()],
    /// The slow-request exemplar table (see [`SlowExemplar`]). A `Mutex`
    /// is fine here: the only writer is the single batcher thread and the
    /// only other taker is a scrape, so the lock is effectively
    /// uncontended and never on a multi-writer path.
    slow: Mutex<[SlowExemplar; SLOW_SLOTS]>,
}

/// A point-in-time copy of the counters that participate in the serving
/// stack's conservation law, taken with [`Metrics::snapshot`].
///
/// The law: every admitted request is answered exactly once, so
/// `admitted = served + shed + errored + outstanding`, and the queue-depth
/// gauge must equal `outstanding`. In a quiesced server (drained, readers
/// joined) `outstanding` is zero and the equation is exact; mid-flight it
/// can be momentarily skewed by in-progress updates, so callers should
/// check it only at quiescence points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests admitted to the queue (`requests_total`).
    pub admitted: u64,
    /// Responses written back (`responses_total`).
    pub served: u64,
    /// Deadline-expired requests shed with a typed reject
    /// (`rejected_deadline`).
    pub shed: u64,
    /// Admitted requests the engine refused at submit (`errored_total`).
    pub errored: u64,
    /// The queue-depth gauge (admitted but not yet executed).
    pub queue_depth: u64,
    /// Reader threads still alive (`readers_live`).
    pub readers_live: u64,
}

/// A violated conservation invariant, as found by
/// [`MetricsSnapshot::conservation_check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConservationViolation {
    /// More requests were answered than were ever admitted:
    /// `served + shed + errored > admitted` (a lost increment, a duplicated
    /// answer, or sabotage).
    OverAnswered {
        /// Requests admitted.
        admitted: u64,
        /// `served + shed + errored` (saturating).
        accounted: u64,
    },
    /// The queue-depth gauge disagrees with the outstanding work implied by
    /// the counters (`admitted - served - shed - errored`).
    QueueGauge {
        /// The gauge's value.
        gauge: u64,
        /// `admitted - accounted`.
        outstanding: u64,
    },
}

impl std::fmt::Display for ConservationViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConservationViolation::OverAnswered {
                admitted,
                accounted,
            } => write!(
                f,
                "over-answered: served+shed+errored = {accounted} exceeds admitted = {admitted}"
            ),
            ConservationViolation::QueueGauge { gauge, outstanding } => write!(
                f,
                "queue gauge {gauge} != outstanding {outstanding} (admitted - served - shed - errored)"
            ),
        }
    }
}

impl MetricsSnapshot {
    /// Checks the conservation law `admitted = served + shed + errored +
    /// queue_depth`, returning the first violated clause.
    ///
    /// Sound at quiescence points (post-drain, paused-and-settled); between
    /// them the counters are updated independently and may skew briefly.
    pub fn conservation_check(&self) -> Result<(), ConservationViolation> {
        // An overflowing sum cannot be conserved: `admitted` fits in a u64,
        // so a true sum past `u64::MAX` is necessarily over-answered. Keep
        // the saturated value for the report rather than wrapping into a
        // coincidentally passing total.
        let (accounted, overflowed) = {
            let (a, o1) = self.served.overflowing_add(self.shed);
            let (b, o2) = a.overflowing_add(self.errored);
            if o1 || o2 {
                (u64::MAX, true)
            } else {
                (b, false)
            }
        };
        if overflowed || accounted > self.admitted {
            return Err(ConservationViolation::OverAnswered {
                admitted: self.admitted,
                accounted,
            });
        }
        let outstanding = self.admitted - accounted;
        if self.queue_depth != outstanding {
            return Err(ConservationViolation::QueueGauge {
                gauge: self.queue_depth,
                outstanding,
            });
        }
        Ok(())
    }
}

impl Metrics {
    /// Creates a zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the conservation-law counters (see [`MetricsSnapshot`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            // ordering: relaxed — statistical snapshot reads; callers check
            // conservation only at quiescence points where no updates race.
            admitted: self.requests_total.load(Ordering::Relaxed),
            // ordering: relaxed — see above.
            served: self.responses_total.load(Ordering::Relaxed),
            // ordering: relaxed — see above.
            shed: self.rejected_deadline.load(Ordering::Relaxed),
            // ordering: relaxed — see above.
            errored: self.errored_total.load(Ordering::Relaxed),
            // ordering: relaxed — see above.
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            // ordering: relaxed — see above.
            readers_live: self.readers_live.load(Ordering::Relaxed),
        }
    }

    /// Bumps the per-precision serve counter for one frame.
    pub fn count_precision(&self, p: Option<Precision>) {
        let slot = p.map_or(0, |p| p.bits() as usize);
        // ordering: relaxed — metrics counter.
        self.frames_by_precision[slot].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one served request's end-to-end latency, both in the
    /// aggregate histogram and in its class's.
    pub fn record_latency(&self, class: Class, ns: u64) {
        self.latency.record_ns(ns);
        self.latency_by_class[class.as_u8() as usize].record_ns(ns);
    }

    /// Records one served request's per-stage latency breakdown
    /// ([`STAGE_NAMES`] order) into the stage histograms, and offers it to
    /// the slow-request exemplar table, where it displaces the current
    /// fastest entry if its end-to-end total is slower.
    pub fn record_stages(&self, wire_id: u64, stage_ns: [u64; STAGE_NAMES.len()]) {
        for (h, ns) in self.stage.iter().zip(stage_ns) {
            h.record_ns(ns);
        }
        let total = stage_ns[STAGE_TOTAL];
        if let Ok(mut slow) = self.slow.lock() {
            let mut min = 0usize;
            for (i, e) in slow.iter().enumerate() {
                if e.stage_ns[STAGE_TOTAL] < slow[min].stage_ns[STAGE_TOTAL] {
                    min = i;
                }
            }
            if total > slow[min].stage_ns[STAGE_TOTAL] {
                slow[min] = SlowExemplar { wire_id, stage_ns };
            }
        }
    }

    /// The current slow-request exemplar table, slowest first (empty slots
    /// omitted).
    pub fn slow_exemplars(&self) -> Vec<SlowExemplar> {
        let mut out: Vec<SlowExemplar> = match self.slow.lock() {
            Ok(slow) => slow
                .iter()
                .filter(|e| e.stage_ns[STAGE_TOTAL] > 0)
                .copied()
                .collect(),
            Err(_) => Vec::new(),
        };
        out.sort_by_key(|e| std::cmp::Reverse(e.stage_ns[STAGE_TOTAL]));
        out
    }

    /// Renders the whole registry in Prometheus text exposition format
    /// (version 0.0.4).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, v: u64| {
            putln(&mut out, format_args!("# HELP {name} {help}"));
            putln(&mut out, format_args!("# TYPE {name} counter"));
            putln(&mut out, format_args!("{name} {v}"));
        };
        counter(
            "tia_serve_requests_total",
            "Inference requests admitted.",
            self.requests_total.load(Ordering::Relaxed), // ordering: relaxed — scrape snapshot.
        );
        counter(
            "tia_serve_responses_total",
            "Responses written to clients.",
            self.responses_total.load(Ordering::Relaxed), // ordering: relaxed — scrape snapshot.
        );
        counter(
            "tia_serve_bad_frames_total",
            "Undecodable frames received.",
            self.bad_frames_total.load(Ordering::Relaxed), // ordering: relaxed — scrape snapshot.
        );
        counter(
            "tia_serve_errored_total",
            "Admitted requests the engine refused at submit.",
            self.errored_total.load(Ordering::Relaxed), // ordering: relaxed — scrape snapshot.
        );
        counter(
            "tia_serve_faults_injected_total",
            "Admissions rejected by an injected fault plan.",
            self.faults_injected.load(Ordering::Relaxed), // ordering: relaxed — scrape snapshot.
        );
        counter(
            "tia_serve_connections_total",
            "Connections accepted.",
            self.connections_total.load(Ordering::Relaxed), // ordering: relaxed — scrape snapshot.
        );
        counter(
            "tia_serve_batches_total",
            "Coalesced micro-batches executed.",
            self.batches_total.load(Ordering::Relaxed), // ordering: relaxed — scrape snapshot.
        );
        counter(
            "tia_serve_batch_frames_total",
            "Frames served across all batches.",
            self.batch_frames_total.load(Ordering::Relaxed), // ordering: relaxed — scrape snapshot.
        );
        putln(
            &mut out,
            format_args!("# HELP tia_serve_rejected_total Requests refused by admission control."),
        );
        putln(
            &mut out,
            format_args!("# TYPE tia_serve_rejected_total counter"),
        );
        for (reason, v) in [
            ("queue_full", &self.rejected_queue_full),
            ("draining", &self.rejected_draining),
            ("bad_shape", &self.rejected_bad_shape),
            ("deadline_exceeded", &self.rejected_deadline),
        ] {
            putln(
                &mut out,
                format_args!(
                    "tia_serve_rejected_total{{reason=\"{reason}\"}} {}",
                    v.load(Ordering::Relaxed) // ordering: relaxed — scrape snapshot.
                ),
            );
        }
        putln(
            &mut out,
            format_args!(
                "# HELP tia_serve_floor_clamped_total Submissions whose class floor constrained the degraded window."
            ),
        );
        putln(
            &mut out,
            format_args!("# TYPE tia_serve_floor_clamped_total counter"),
        );
        putln(
            &mut out,
            format_args!(
                "tia_serve_floor_clamped_total {}",
                self.floor_clamped_total.load(Ordering::Relaxed) // ordering: relaxed — scrape snapshot.
            ),
        );
        putln(
            &mut out,
            format_args!("# HELP tia_serve_degrade_shifts_total Adaptive controller level shifts."),
        );
        putln(
            &mut out,
            format_args!("# TYPE tia_serve_degrade_shifts_total counter"),
        );
        for (direction, v) in [
            ("down", &self.degrade_shifts_down),
            ("up", &self.degrade_shifts_up),
        ] {
            putln(
                &mut out,
                format_args!(
                    "tia_serve_degrade_shifts_total{{direction=\"{direction}\"}} {}",
                    v.load(Ordering::Relaxed) // ordering: relaxed — scrape snapshot.
                ),
            );
        }
        for (name, help, v) in [
            (
                "tia_serve_connections_active",
                "Currently open connections.",
                &self.connections_active,
            ),
            (
                "tia_serve_queue_depth",
                "Admitted requests not yet executed.",
                &self.queue_depth,
            ),
            (
                "tia_serve_readers_live",
                "Reader threads currently alive.",
                &self.readers_live,
            ),
            (
                "tia_serve_degrade_level",
                "Adaptive controller's live degradation level.",
                &self.degrade_level,
            ),
        ] {
            putln(&mut out, format_args!("# HELP {name} {help}"));
            putln(&mut out, format_args!("# TYPE {name} gauge"));
            putln(
                &mut out,
                // ordering: relaxed — scrape snapshot of a gauge.
                format_args!("{name} {}", v.load(Ordering::Relaxed)),
            );
        }
        putln(
            &mut out,
            format_args!(
                "# HELP tia_serve_frames_by_precision_total Served frames per execution precision."
            ),
        );
        putln(
            &mut out,
            format_args!("# TYPE tia_serve_frames_by_precision_total counter"),
        );
        for (slot, v) in self.frames_by_precision.iter().enumerate() {
            let label = if slot == 0 {
                "fp32".to_string()
            } else {
                format!("{slot}-bit")
            };
            putln(
                &mut out,
                format_args!(
                    "tia_serve_frames_by_precision_total{{precision=\"{label}\"}} {}",
                    v.load(Ordering::Relaxed) // ordering: relaxed — scrape snapshot.
                ),
            );
        }
        putln(
            &mut out,
            format_args!("# HELP tia_serve_request_latency_seconds End-to-end request latency."),
        );
        putln(
            &mut out,
            format_args!("# TYPE tia_serve_request_latency_seconds histogram"),
        );
        self.latency
            .render("tia_serve_request_latency_seconds", "", &mut out);
        putln(
            &mut out,
            format_args!(
                "# HELP tia_serve_class_latency_seconds End-to-end request latency per scheduling class."
            ),
        );
        putln(
            &mut out,
            format_args!("# TYPE tia_serve_class_latency_seconds histogram"),
        );
        for class in Class::ALL {
            self.latency_by_class[class.as_u8() as usize].render(
                "tia_serve_class_latency_seconds",
                &format!("class=\"{}\",", class.label()),
                &mut out,
            );
        }
        putln(
            &mut out,
            format_args!(
                "# HELP tia_serve_stage_seconds Server-side per-stage request latency (log2 buckets; quantiles report the bucket's inclusive upper bound)."
            ),
        );
        putln(
            &mut out,
            format_args!("# TYPE tia_serve_stage_seconds histogram"),
        );
        for (i, name) in STAGE_NAMES.iter().enumerate() {
            self.stage[i].render(
                "tia_serve_stage_seconds",
                &format!("stage=\"{name}\","),
                &mut out,
            );
        }
        let exemplars = self.slow_exemplars();
        if !exemplars.is_empty() {
            putln(
                &mut out,
                format_args!(
                    "# HELP tia_serve_slow_request_seconds Stage breakdown of the slowest served requests (exemplar table, rank 0 slowest)."
                ),
            );
            putln(
                &mut out,
                format_args!("# TYPE tia_serve_slow_request_seconds gauge"),
            );
            for (rank, e) in exemplars.iter().enumerate() {
                for (i, name) in STAGE_NAMES.iter().enumerate() {
                    putln(
                        &mut out,
                        format_args!(
                            "tia_serve_slow_request_seconds{{rank=\"{rank}\",id=\"{}\",stage=\"{name}\"}} {}",
                            e.wire_id,
                            e.stage_ns[i] as f64 / 1e9
                        ),
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        // 99 samples at ~1 µs, one at ~1 ms.
        for _ in 0..99 {
            h.record_ns(800);
        }
        h.record_ns(1_000_000);
        assert_eq!(h.count(), 100);
        assert!(h.quantile_ns(0.5) <= 2_000);
        assert!(h.quantile_ns(0.99) <= 2_000);
        assert!(h.quantile_ns(1.0) >= 1_000_000);
        assert!(h.mean_ns() > 800.0);
    }

    /// Satellite pin: at exact power-of-two boundaries, a sample of exactly
    /// `bucket_upper_us(i)` µs must count toward bucket `i`'s `le` bound —
    /// in `record_ns`/`quantile_ns` *and* in the Prometheus rendering.
    #[test]
    fn boundary_samples_count_toward_their_le_bucket() {
        for (ns, upper_us) in [(1_000u64, 1u64), (2_000, 2), (1_024_000, 1024)] {
            let h = Histogram::new();
            h.record_ns(ns);
            assert_eq!(
                h.quantile_ns(1.0),
                upper_us * 1000,
                "a {ns} ns sample must resolve to the le={upper_us}µs bucket"
            );
            let mut text = String::new();
            h.render("lat", "", &mut text);
            let le = upper_us as f64 / 1e6;
            assert!(
                text.contains(&format!("lat_bucket{{le=\"{le}\"}} 1")),
                "rendered cumulative at le={le} must include the boundary sample:\n{text}"
            );
            // And the bucket below must NOT contain it.
            if upper_us > 1 {
                let below = (upper_us / 2) as f64 / 1e6;
                assert!(
                    text.contains(&format!("lat_bucket{{le=\"{below}\"}} 0")),
                    "bucket below the boundary must stay empty:\n{text}"
                );
            }
        }
    }

    /// Satellite pin: the overflow (+Inf) bucket — a sample one past the
    /// last finite bound lands there, and both `quantile_ns` conversion
    /// paths (in-loop and tail fallthrough) agree on its reported bound.
    #[test]
    fn overflow_bucket_boundary_and_tail_conversion_agree() {
        let h = Histogram::new();
        // Exactly the last finite bound (2^25 µs): still finite.
        h.record_ns((1u64 << 25) * 1000);
        assert_eq!(h.quantile_ns(1.0), (1u64 << 25) * 1000);
        let mut text = String::new();
        h.render("lat", "", &mut text);
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(
            text.contains(&format!(
                "lat_bucket{{le=\"{}\"}} 1",
                (1u64 << 25) as f64 / 1e6
            )),
            "2^25 µs is the last finite bucket's own bound:\n{text}"
        );

        // One past it: overflow bucket only.
        let h = Histogram::new();
        h.record_ns((1u64 << 25) * 1000 + 1);
        assert_eq!(
            h.quantile_ns(1.0),
            (1u64 << 26) * 1000,
            "the overflow bucket reports the tail bound"
        );
        let mut text = String::new();
        h.render("lat", "", &mut text);
        assert!(
            text.contains(&format!(
                "lat_bucket{{le=\"{}\"}} 0",
                (1u64 << 25) as f64 / 1e6
            )),
            "no finite bucket may claim an overflow sample:\n{text}"
        );
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"), "{text}");

        // An absurdly large sample cannot wrap the ns conversion.
        let h = Histogram::new();
        h.record_ns(u64::MAX);
        assert_eq!(h.quantile_ns(1.0), (1u64 << 26) * 1000);
    }

    #[test]
    fn per_class_latency_and_deadline_rejects_render() {
        let m = Metrics::new();
        m.record_latency(Class::Interactive, 5_000);
        m.record_latency(Class::Normal, 7_000);
        m.rejected_deadline.fetch_add(3, Ordering::Relaxed);
        let text = m.render_prometheus();
        assert!(
            text.contains("tia_serve_rejected_total{reason=\"deadline_exceeded\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("tia_serve_class_latency_seconds_count{class=\"interactive\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("tia_serve_class_latency_seconds_count{class=\"normal\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("tia_serve_class_latency_seconds_count{class=\"batch\"} 0"),
            "{text}"
        );
        // The aggregate histogram counts both.
        assert!(
            text.contains("tia_serve_request_latency_seconds_count 2"),
            "{text}"
        );
    }

    /// Satellite pin: the conservation check at boundary values — balanced
    /// ledgers pass, every single-count skew is a typed violation, and the
    /// arithmetic saturates instead of wrapping at `u64::MAX`.
    #[test]
    fn conservation_check_boundary_values() {
        let balanced = |admitted, served, shed, errored, queue_depth| MetricsSnapshot {
            admitted,
            served,
            shed,
            errored,
            queue_depth,
            readers_live: 0,
        };
        // The empty registry conserves.
        assert_eq!(balanced(0, 0, 0, 0, 0).conservation_check(), Ok(()));
        // Fully drained: every admitted request accounted, gauge at zero.
        assert_eq!(balanced(10, 7, 2, 1, 0).conservation_check(), Ok(()));
        // Mid-flight quiescence: outstanding work matches the gauge.
        assert_eq!(balanced(10, 4, 1, 0, 5).conservation_check(), Ok(()));
        // One answer too many (a double ack) is OverAnswered.
        assert_eq!(
            balanced(10, 9, 2, 0, 0).conservation_check(),
            Err(ConservationViolation::OverAnswered {
                admitted: 10,
                accounted: 11,
            })
        );
        // A leaked gauge increment (or a lost decrement) is QueueGauge.
        assert_eq!(
            balanced(10, 10, 0, 0, 1).conservation_check(),
            Err(ConservationViolation::QueueGauge {
                gauge: 1,
                outstanding: 0,
            })
        );
        // A gauge that returned to zero while work is still outstanding.
        assert_eq!(
            balanced(10, 8, 0, 0, 0).conservation_check(),
            Err(ConservationViolation::QueueGauge {
                gauge: 0,
                outstanding: 2,
            })
        );
        // Saturation at the top of the range: `served + shed` must not wrap
        // into a passing sum.
        assert_eq!(
            balanced(u64::MAX, u64::MAX, 1, 0, 0).conservation_check(),
            Err(ConservationViolation::OverAnswered {
                admitted: u64::MAX,
                accounted: u64::MAX,
            })
        );
        assert_eq!(
            balanced(u64::MAX, u64::MAX, 0, 0, 0).conservation_check(),
            Ok(())
        );
        // Exactly-one-admitted edges.
        assert_eq!(balanced(1, 0, 0, 0, 1).conservation_check(), Ok(()));
        assert_eq!(balanced(1, 1, 0, 0, 0).conservation_check(), Ok(()));
        assert_eq!(
            balanced(0, 0, 1, 0, 0).conservation_check(),
            Err(ConservationViolation::OverAnswered {
                admitted: 0,
                accounted: 1,
            })
        );
    }

    /// The snapshot reads the registry's live counters field-for-field.
    #[test]
    fn snapshot_mirrors_the_registry() {
        let m = Metrics::new();
        m.requests_total.fetch_add(5, Ordering::Relaxed);
        m.responses_total.fetch_add(3, Ordering::Relaxed);
        m.rejected_deadline.fetch_add(1, Ordering::Relaxed);
        m.errored_total.fetch_add(1, Ordering::Relaxed);
        m.readers_live.fetch_add(2, Ordering::Relaxed);
        let s = m.snapshot();
        assert_eq!(
            s,
            MetricsSnapshot {
                admitted: 5,
                served: 3,
                shed: 1,
                errored: 1,
                queue_depth: 0,
                readers_live: 2,
            }
        );
        assert_eq!(s.conservation_check(), Ok(()));
        let text = m.render_prometheus();
        assert!(text.contains("tia_serve_errored_total 1"), "{text}");
        assert!(text.contains("tia_serve_readers_live 2"), "{text}");
        assert!(text.contains("tia_serve_faults_injected_total 0"), "{text}");
    }

    #[test]
    fn windowed_quantiles_see_only_new_samples() {
        let h = Histogram::new();
        for _ in 0..50 {
            h.record_ns(30_000_000); // a slow era: ~30 ms
        }
        let base = h.baseline();
        // Empty window reads as 0, not as the slow past.
        assert_eq!(h.quantile_since_ns(&base, 0.99), 0);
        for _ in 0..50 {
            h.record_ns(800_000); // recovered era: ~0.8 ms
        }
        // The cumulative p99 is still stuck in the slow era…
        assert!(h.quantile_ns(0.99) >= 30_000_000);
        // …but the window since the baseline sees only the recovery.
        assert!(h.quantile_since_ns(&base, 0.99) <= 2_000_000);
    }

    #[test]
    fn histogram_overflow_and_merge() {
        let a = Histogram::new();
        a.record_ns(u64::MAX / 2); // lands in the overflow bucket
        let b = Histogram::new();
        b.record_ns(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn prometheus_rendering_mentions_every_family() {
        let m = Metrics::new();
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.count_precision(None);
        m.count_precision(Some(Precision::new(8)));
        m.latency.record_ns(12_000);
        let text = m.render_prometheus();
        for family in [
            "tia_serve_requests_total 3",
            "tia_serve_rejected_total{reason=\"queue_full\"}",
            "tia_serve_queue_depth",
            "tia_serve_frames_by_precision_total{precision=\"fp32\"} 1",
            "tia_serve_frames_by_precision_total{precision=\"8-bit\"} 1",
            "tia_serve_request_latency_seconds_bucket{le=\"+Inf\"} 1",
            "tia_serve_request_latency_seconds_count 1",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    /// Satellite pin: the stage histograms inherit the shared
    /// `bucket_index` log2 upper-bound semantics — a boundary sample of
    /// exactly `2^i` µs reports as itself, anything else rounds up to its
    /// bucket bound, starting at the 1 µs floor.
    #[test]
    fn stage_histograms_pin_log2_upper_bound_semantics() {
        let m = Metrics::new();
        // queue_wait: 1 ns — the 1 µs bucket-0 floor.
        // window: exactly 1 µs — its own (inclusive) bound.
        // execute: 1 µs + 1 ns — rounds up to the 2 µs bound.
        // respond: exactly 1024 µs — a higher boundary, reports as itself.
        // total: 1025 µs — rounds up to the 2048 µs bound.
        m.record_stages(7, [1, 1_000, 1_001, 1_024_000, 1_025_000]);
        let bounds_us = [1u64, 1, 2, 1024, 2048];
        for (i, bound) in bounds_us.iter().enumerate() {
            assert_eq!(
                m.stage[i].quantile_ns(1.0),
                bound * 1000,
                "stage {} must report the log2 bucket upper bound",
                STAGE_NAMES[i]
            );
            // The shared helper agrees with the reported bound.
            let us = [1u64, 1, 2, 1024, 1025][i];
            assert_eq!(bucket_upper_us(bucket_index(us)), *bound);
        }
        let text = m.render_prometheus();
        for name in STAGE_NAMES {
            assert!(
                text.contains(&format!(
                    "tia_serve_stage_seconds_count{{stage=\"{name}\"}} 1"
                )),
                "missing stage family {name} in:\n{text}"
            );
        }
        // The boundary sample sits in its own `le` bucket, not the one below.
        assert!(
            text.contains("tia_serve_stage_seconds_bucket{stage=\"respond\",le=\"0.001024\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("tia_serve_stage_seconds_bucket{stage=\"respond\",le=\"0.000512\"} 0"),
            "{text}"
        );
    }

    /// The slow-request exemplar table keeps the slowest requests by
    /// end-to-end total and renders their full stage breakdown.
    #[test]
    fn slow_exemplar_table_keeps_the_slowest_and_renders() {
        let m = Metrics::new();
        // Empty table renders nothing.
        assert!(!m
            .render_prometheus()
            .contains("tia_serve_slow_request_seconds"));
        // Fill beyond capacity; the four slowest must survive.
        for (id, total) in [(1u64, 10u64), (2, 50), (3, 20), (4, 40), (5, 30), (6, 60)] {
            m.record_stages(id, [1, 2, 3, 4, total * 1_000_000]);
        }
        let slow = m.slow_exemplars();
        assert_eq!(
            slow.iter().map(|e| e.wire_id).collect::<Vec<_>>(),
            vec![6, 2, 4, 5],
            "slowest-first ranking by total"
        );
        let text = m.render_prometheus();
        assert!(
            text.contains(
                "tia_serve_slow_request_seconds{rank=\"0\",id=\"6\",stage=\"total\"} 0.06"
            ),
            "{text}"
        );
        assert!(
            text.contains(
                "tia_serve_slow_request_seconds{rank=\"0\",id=\"6\",stage=\"queue_wait\"}"
            ),
            "{text}"
        );
        // A faster request than everything in the table changes nothing.
        m.record_stages(9, [1, 1, 1, 1, 1]);
        assert_eq!(m.slow_exemplars().len(), 4);
        assert!(!m.slow_exemplars().iter().any(|e| e.wire_id == 9));
    }

    #[test]
    fn controller_gauges_and_counters_render() {
        let m = Metrics::new();
        m.degrade_level.store(3, Ordering::Relaxed);
        m.degrade_shifts_down.fetch_add(4, Ordering::Relaxed);
        m.degrade_shifts_up.fetch_add(1, Ordering::Relaxed);
        m.floor_clamped_total.fetch_add(7, Ordering::Relaxed);
        let text = m.render_prometheus();
        for family in [
            "tia_serve_degrade_level 3",
            "tia_serve_degrade_shifts_total{direction=\"down\"} 4",
            "tia_serve_degrade_shifts_total{direction=\"up\"} 1",
            "tia_serve_floor_clamped_total 7",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }
}
