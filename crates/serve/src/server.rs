//! The TCP serving front-end over [`ShardedEngine`].
//!
//! # Threading model
//!
//! ```text
//!            acceptor thread ──── accepts, spawns one reader per conn
//!   conn 1 ─ reader thread ──┐
//!   conn 2 ─ reader thread ──┼─ bounded queue ── batcher thread ── ShardedEngine
//!   conn N ─ reader thread ──┘   (try_send =        (owns the engine and the
//!            metrics thread       admission          submit/flush cycle)
//!            (scrape port)        control)
//! ```
//!
//! Readers decode frames and `try_send` admitted requests into a bounded
//! queue; a full queue turns into an immediate [`RejectCode::QueueFull`]
//! frame (the wire analogue of HTTP 503) written by the reader itself, so
//! overload never blocks the accept path and never grows memory. The
//! batcher is the *only* thread touching the engine: it drains the queue,
//! feeds the engine's `submit`/`flush` cycle, and writes responses back on
//! each request's connection (one `Mutex<TcpStream>` per connection keeps
//! frames atomic between the batcher and that connection's reader).
//!
//! # Determinism across the wire
//!
//! All submissions flow through the single batcher in queue order, so for
//! traffic arriving on **one connection** the engine sees the exact
//! submission sequence the client sent, and the seeded precision schedule
//! plus the bitwise-logit guarantee of [`ShardedEngine`] carry over the
//! network unchanged (the loopback integration test pins this). Traffic
//! from multiple concurrent connections interleaves at the queue, which is
//! ordinary serving nondeterminism — each request's *logits* are still
//! bitwise reproducible; only the schedule positions shift.
//!
//! # Shutdown
//!
//! A [`Frame::Shutdown`] (or [`Server::shutdown`]) flips the server into
//! draining: readers refuse new work with [`RejectCode::Draining`], the
//! batcher serves everything already admitted, answers the requester with
//! [`Frame::ShutdownAck`], and exits; [`Server::wait`] then joins every
//! thread and returns the engine for post-mortem inspection.

use crate::metrics::Metrics;
use crate::wire::{Frame, InferResponse, RejectCode, WirePolicy};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tia_engine::{Backend, EngineConfig, PrecisionPolicy, RequestId, ShardedEngine};
use tia_tensor::{SeededRng, Tensor};

/// Serving front-end configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address of the wire-protocol listener (`:0` picks a free port).
    pub addr: String,
    /// Bind address of the Prometheus scrape listener; `None` disables it.
    pub metrics_addr: Option<String>,
    /// Engine worker shards.
    pub workers: usize,
    /// Bounded request-queue capacity; admissions beyond it are rejected
    /// with [`RejectCode::QueueFull`].
    pub queue_capacity: usize,
    /// The one `[C, H, W]` geometry this server serves; anything else is
    /// rejected with [`RejectCode::BadShape`].
    pub input_shape: [usize; 3],
    /// Engine tuning (micro-batch size, seed, granularity, workspace cap).
    pub engine: EngineConfig,
    /// The serving precision policy ([`WirePolicy::Server`] requests follow
    /// it on the seeded schedule).
    pub policy: PrecisionPolicy,
    /// Start with the batcher paused (requests queue — and overflow rejects
    /// — until [`Server::resume`]). For staged startup and backpressure
    /// tests.
    pub start_paused: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            metrics_addr: None,
            workers: 1,
            queue_capacity: 1024,
            input_shape: [3, 16, 16],
            engine: EngineConfig::default(),
            policy: PrecisionPolicy::Fixed(None),
            start_paused: false,
        }
    }
}

impl ServerConfig {
    /// Sets the wire listener bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Enables the Prometheus scrape listener on `addr`.
    pub fn with_metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Sets the engine worker shard count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the bounded queue capacity (clamped to at least 1).
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap.max(1);
        self
    }

    /// Sets the served image geometry.
    pub fn with_input_shape(mut self, shape: [usize; 3]) -> Self {
        self.input_shape = shape;
        self
    }

    /// Sets the engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the serving policy.
    pub fn with_policy(mut self, policy: PrecisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Starts the batcher paused (see [`ServerConfig::start_paused`]).
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }
}

/// One client connection's write half, shared between its reader (rejects,
/// pongs, errors) and the batcher (responses). The mutex keeps frames
/// atomic; a failed write marks the connection dead and later sends become
/// no-ops.
struct Conn {
    stream: Mutex<TcpStream>,
    alive: AtomicBool,
}

impl Conn {
    fn send(&self, frame: &Frame) {
        if !self.alive.load(Ordering::Relaxed) {
            return;
        }
        let mut guard = match self.stream.lock() {
            Ok(g) => g,
            Err(_) => return,
        };
        if frame.write_to(&mut *guard).is_err() {
            self.alive.store(false, Ordering::Relaxed);
            // Tear the socket down, not just the flag: the peer learns the
            // connection is dead instead of hanging on recv forever, and
            // this connection's reader unblocks and exits rather than
            // admitting more requests whose responses would be dropped.
            let _ = guard.shutdown(SockShutdown::Both);
        }
    }

    fn close(&self) {
        self.alive.store(false, Ordering::Relaxed);
        if let Ok(guard) = self.stream.lock() {
            let _ = guard.shutdown(SockShutdown::Both);
        }
    }
}

/// State shared by every server thread.
struct Shared {
    metrics: Metrics,
    /// Set when shutdown begins: readers refuse new inference work.
    draining: AtomicBool,
    /// Set when the batcher has exited: accept loops stop.
    stopped: AtomicBool,
    /// While set, the batcher does not consume the queue.
    paused: AtomicBool,
    /// Admission barrier closing the drain race: readers hold a *read*
    /// guard across their draining-check + `try_send`; the batcher's stop
    /// path takes (and releases) a *write* guard after setting `draining`
    /// and before its final queue sweep, which waits out every admission
    /// already in flight — so nothing can land in the queue after the
    /// sweep that the drain contract promised to serve.
    admission: std::sync::RwLock<()>,
    input_shape: [usize; 3],
    conns: Mutex<Vec<Arc<Conn>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

/// A queue entry: one admitted request, or the shutdown marker.
enum Item {
    Infer {
        conn: Arc<Conn>,
        wire_id: u64,
        policy: WirePolicy,
        image: Tensor,
        enqueued: Instant,
    },
    /// Drain and exit; `conn` (if any) receives the [`Frame::ShutdownAck`].
    Shutdown { conn: Option<Arc<Conn>> },
}

/// Where a flushed engine response goes back out.
struct Route {
    conn: Arc<Conn>,
    wire_id: u64,
    enqueued: Instant,
}

/// A running TCP serving front-end; see the [module docs](self) for the
/// threading model. Dropping the handle shuts the server down (preferring
/// [`Server::shutdown`] or [`Server::wait`], which return the engine).
pub struct Server<B: Backend + Send + 'static> {
    shared: Arc<Shared>,
    submit_tx: SyncSender<Item>,
    batcher: Option<JoinHandle<ShardedEngine<B>>>,
    acceptor: Option<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<()>>,
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
}

impl<B: Backend + Send + 'static> Server<B> {
    /// Binds the listeners, builds one backend replica per worker shard
    /// from `factory`, and spawns the serving threads.
    pub fn spawn(cfg: ServerConfig, factory: impl FnMut(usize) -> B) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let metrics_listener = match &cfg.metrics_addr {
            Some(a) => Some(TcpListener::bind(a)?),
            None => None,
        };
        let metrics_addr = metrics_listener.as_ref().and_then(|l| l.local_addr().ok());

        let engine = ShardedEngine::with_factory(
            cfg.workers.max(1),
            factory,
            cfg.policy.clone(),
            cfg.engine.clone(),
        );
        let shared = Arc::new(Shared {
            metrics: Metrics::new(),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            paused: AtomicBool::new(cfg.start_paused),
            admission: std::sync::RwLock::new(()),
            input_shape: cfg.input_shape,
            conns: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
        });
        let (submit_tx, submit_rx) = sync_channel::<Item>(cfg.queue_capacity.max(1));

        // One full engine cycle admits at most every shard's worth of
        // micro-batches; anything beyond that waits one flush in the queue.
        let max_take = (cfg.workers.max(1) * cfg.engine.max_batch).max(1);
        // Stream backing WirePolicy::Random requests — decorrelated from the
        // engine's schedule stream so explicit-policy traffic cannot consume
        // the server schedule's draws.
        let req_rng = SeededRng::new(cfg.engine.seed ^ 0x5EED_5EED_5EED_5EED);
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || batcher_loop(engine, submit_rx, shared, req_rng, max_take))
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            let tx = submit_tx.clone();
            std::thread::spawn(move || acceptor_loop(listener, shared, tx))
        };
        let metrics_thread = metrics_listener.map(|l| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || metrics_loop(l, shared))
        });
        Ok(Self {
            shared,
            submit_tx,
            batcher: Some(batcher),
            acceptor: Some(acceptor),
            metrics_thread,
            addr,
            metrics_addr,
        })
    }

    /// The wire listener's bound address (resolves `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scrape listener's bound address, when metrics are enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Unpauses a [`ServerConfig::start_paused`] batcher.
    pub fn resume(&self) {
        self.shared.paused.store(false, Ordering::SeqCst);
    }

    /// Initiates a graceful drain (everything already admitted is served),
    /// waits for completion, and returns the engine.
    pub fn shutdown(mut self) -> ShardedEngine<B> {
        self.shared.draining.store(true, Ordering::SeqCst);
        // Resume *before* the blocking send: with a paused batcher and a
        // full queue, the marker could otherwise never be consumed.
        self.resume();
        let _ = self.submit_tx.send(Item::Shutdown { conn: None });
        self.finish().expect("server already shut down")
    }

    /// Waits for a client-initiated [`Frame::Shutdown`] drain to complete,
    /// then returns the engine.
    pub fn wait(mut self) -> ShardedEngine<B> {
        self.finish().expect("server already shut down")
    }

    /// Joins every thread: batcher first (it exits once a shutdown item
    /// arrives), then the accept loops (unblocked by a dummy connection),
    /// then the readers (unblocked by closing their sockets).
    fn finish(&mut self) -> Option<ShardedEngine<B>> {
        let batcher = self.batcher.take()?;
        self.resume(); // A paused batcher would never see the shutdown item.
        let engine = batcher.join().expect("serve batcher thread panicked");
        self.shared.stopped.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(ma) = self.metrics_addr {
            let _ = TcpStream::connect(ma);
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        if let Some(h) = self.metrics_thread.take() {
            let _ = h.join();
        }
        let conns: Vec<Arc<Conn>> = match self.shared.conns.lock() {
            Ok(mut g) => g.drain(..).collect(),
            Err(_) => Vec::new(),
        };
        for c in conns {
            c.close();
        }
        let readers: Vec<JoinHandle<()>> = match self.shared.readers.lock() {
            Ok(mut g) => g.drain(..).collect(),
            Err(_) => Vec::new(),
        };
        for h in readers {
            let _ = h.join();
        }
        Some(engine)
    }
}

impl<B: Backend + Send + 'static> Drop for Server<B> {
    fn drop(&mut self) {
        if self.batcher.is_some() {
            self.shared.draining.store(true, Ordering::SeqCst);
            self.resume();
            let _ = self.submit_tx.send(Item::Shutdown { conn: None });
            let _ = self.finish();
        }
    }
}

/// Accepts connections until the server stops; one reader thread each.
fn acceptor_loop(listener: TcpListener, shared: Arc<Shared>, tx: SyncSender<Item>) {
    for stream in listener.incoming() {
        if shared.stopped.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        // A slow (or never-reading) client must not park the batcher inside
        // a response write forever: time the write out, after which the
        // connection is torn down and later sends become no-ops. Until
        // responses are written off the batcher thread (per-connection
        // writer threads — a known follow-up), one misbehaving connection
        // can still stall everyone for up to this timeout, once: the first
        // timeout kills the connection, so it cannot stall twice.
        let _ = write_half.set_write_timeout(Some(Duration::from_secs(2)));
        shared
            .metrics
            .connections_total
            .fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .connections_active
            .fetch_add(1, Ordering::Relaxed);
        let conn = Arc::new(Conn {
            stream: Mutex::new(write_half),
            alive: AtomicBool::new(true),
        });
        if let Ok(mut g) = shared.conns.lock() {
            g.push(Arc::clone(&conn));
        }
        let handle = {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            std::thread::spawn(move || reader_loop(stream, conn, shared, tx))
        };
        if let Ok(mut g) = shared.readers.lock() {
            // Long-lived servers accept unbounded connections over their
            // lifetime; reap the finished readers (their conns were removed
            // on exit) so the registry tracks only live ones.
            g.retain(|h| !h.is_finished());
            g.push(handle);
        }
    }
}

/// Decodes frames from one connection; admitted requests go to the queue,
/// everything else is answered inline. Exits on EOF, socket teardown, or
/// the first malformed frame (framing can no longer be trusted).
fn reader_loop(mut stream: TcpStream, conn: Arc<Conn>, shared: Arc<Shared>, tx: SyncSender<Item>) {
    use crate::wire::WireError;
    let m = &shared.metrics;
    // Set when this side ends the conversation (protocol violation): the
    // peer may still have bytes in flight, and closing with unread receive
    // data can turn into a RST that destroys our final Error frame. Drain
    // briefly before closing so the report survives.
    let mut drain_before_close = false;
    loop {
        match Frame::read_from(&mut stream) {
            Ok(Frame::Infer(req)) => {
                if req.shape != shared.input_shape {
                    m.rejected_bad_shape.fetch_add(1, Ordering::Relaxed);
                    conn.send(&Frame::Reject {
                        id: req.id,
                        code: RejectCode::BadShape,
                    });
                    continue;
                }
                // The draining check and the enqueue happen under one
                // admission read guard (see `Shared::admission`): either
                // this request is admitted before the batcher's final
                // drain sweep, or it observes `draining` and is rejected —
                // it can never be admitted and then silently dropped.
                let admission = shared.admission.read();
                if shared.draining.load(Ordering::SeqCst) {
                    drop(admission);
                    m.rejected_draining.fetch_add(1, Ordering::Relaxed);
                    conn.send(&Frame::Reject {
                        id: req.id,
                        code: RejectCode::Draining,
                    });
                    continue;
                }
                let item = Item::Infer {
                    conn: Arc::clone(&conn),
                    wire_id: req.id,
                    policy: req.policy,
                    image: Tensor::from_vec(req.pixels, &req.shape),
                    enqueued: Instant::now(),
                };
                // Gauge up *before* the send: the batcher's decrement can
                // otherwise race ahead of the increment and wrap below 0.
                m.queue_depth.fetch_add(1, Ordering::Relaxed);
                let outcome = tx.try_send(item);
                drop(admission);
                match outcome {
                    Ok(()) => {
                        m.requests_total.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TrySendError::Full(_)) => {
                        m.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        m.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                        conn.send(&Frame::Reject {
                            id: req.id,
                            code: RejectCode::QueueFull,
                        });
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        m.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        m.rejected_draining.fetch_add(1, Ordering::Relaxed);
                        conn.send(&Frame::Reject {
                            id: req.id,
                            code: RejectCode::Draining,
                        });
                    }
                }
            }
            Ok(Frame::Ping) => conn.send(&Frame::Pong),
            Ok(Frame::Shutdown) => {
                shared.draining.store(true, Ordering::SeqCst);
                // Blocking send: the marker must land even when the queue is
                // full, and it must land *after* this connection's admitted
                // requests so the drain covers them.
                let _ = tx.send(Item::Shutdown {
                    conn: Some(Arc::clone(&conn)),
                });
            }
            Ok(_) => {
                // Server-to-client kinds arriving at the server are a
                // protocol violation.
                m.bad_frames_total.fetch_add(1, Ordering::Relaxed);
                conn.send(&Frame::Error {
                    msg: "unexpected frame kind from client".to_string(),
                });
                drain_before_close = true;
                break;
            }
            Err(WireError::Closed) | Err(WireError::Io(_)) => break,
            Err(e) => {
                m.bad_frames_total.fetch_add(1, Ordering::Relaxed);
                conn.send(&Frame::Error { msg: e.to_string() });
                drain_before_close = true;
                break;
            }
        }
    }
    if drain_before_close {
        use std::io::Read;
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let mut sink = [0u8; 1024];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
    conn.close();
    // Deregister so a long-lived server does not accumulate one dead
    // socket per connection it ever served.
    if let Ok(mut g) = shared.conns.lock() {
        g.retain(|c| !Arc::ptr_eq(c, &conn));
    }
    m.connections_active.fetch_sub(1, Ordering::Relaxed);
}

/// The engine owner: drains the queue, runs submit/flush cycles, routes
/// responses. Returns the engine at shutdown.
fn batcher_loop<B: Backend + Send + 'static>(
    mut engine: ShardedEngine<B>,
    rx: Receiver<Item>,
    shared: Arc<Shared>,
    mut req_rng: SeededRng,
    max_take: usize,
) -> ShardedEngine<B> {
    let mut routes: HashMap<RequestId, Route> = HashMap::new();
    let mut last_stats = engine.stats();
    let mut stop = false;
    let mut ackers: Vec<Arc<Conn>> = Vec::new();
    'serve: loop {
        if shared.paused.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        let first = match rx.recv_timeout(Duration::from_millis(10)) {
            Ok(item) => item,
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break 'serve,
        };
        let mut taken = 1;
        process_item(
            first,
            &mut engine,
            &shared,
            &mut req_rng,
            &mut routes,
            &mut stop,
            &mut ackers,
        );
        while taken < max_take && !stop {
            match rx.try_recv() {
                Ok(item) => {
                    taken += 1;
                    process_item(
                        item,
                        &mut engine,
                        &shared,
                        &mut req_rng,
                        &mut routes,
                        &mut stop,
                        &mut ackers,
                    );
                }
                Err(_) => break,
            }
        }
        if stop {
            // Shutdown marker seen: `draining` is already set, so take the
            // admission write barrier — it waits until every reader that
            // saw `draining == false` has finished its enqueue — and only
            // then sweep the queue. Everything admitted gets served; no
            // request can slip in after the sweep.
            drop(shared.admission.write());
            while let Ok(item) = rx.try_recv() {
                process_item(
                    item,
                    &mut engine,
                    &shared,
                    &mut req_rng,
                    &mut routes,
                    &mut stop,
                    &mut ackers,
                );
            }
        }
        flush_and_respond(&mut engine, &shared, &mut routes, &mut last_stats);
        if stop {
            break 'serve;
        }
    }
    // The channel disconnected (all senders gone) or a shutdown marker was
    // handled; serve any stragglers admitted in between.
    while let Ok(item) = rx.try_recv() {
        process_item(
            item,
            &mut engine,
            &shared,
            &mut req_rng,
            &mut routes,
            &mut stop,
            &mut ackers,
        );
    }
    flush_and_respond(&mut engine, &shared, &mut routes, &mut last_stats);
    // Every requester gets the ack — including racers whose markers landed
    // behind the first one — and only after the final flush, so the drain
    // contract ("everything admitted is answered before the ack") holds
    // for all of them.
    for conn in ackers {
        conn.send(&Frame::ShutdownAck);
    }
    engine
}

fn process_item<B: Backend + Send + 'static>(
    item: Item,
    engine: &mut ShardedEngine<B>,
    shared: &Shared,
    req_rng: &mut SeededRng,
    routes: &mut HashMap<RequestId, Route>,
    stop: &mut bool,
    ackers: &mut Vec<Arc<Conn>>,
) {
    match item {
        Item::Infer {
            conn,
            wire_id,
            policy,
            image,
            enqueued,
        } => {
            shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
            let submitted = match policy {
                WirePolicy::Server => engine.try_submit(image),
                WirePolicy::Fixed(p) => engine.try_submit_pinned(image, p),
                WirePolicy::Random(set) => {
                    engine.try_submit_pinned(image, Some(set.sample(req_rng)))
                }
            };
            match submitted {
                Ok(id) => {
                    routes.insert(
                        id,
                        Route {
                            conn,
                            wire_id,
                            enqueued,
                        },
                    );
                }
                Err(_) => {
                    // Readers validate geometry up front, so this only
                    // triggers if the configured input shape is not what the
                    // engine pinned — answer honestly rather than panic.
                    shared
                        .metrics
                        .rejected_bad_shape
                        .fetch_add(1, Ordering::Relaxed);
                    conn.send(&Frame::Reject {
                        id: wire_id,
                        code: RejectCode::BadShape,
                    });
                }
            }
        }
        Item::Shutdown { conn } => {
            shared.draining.store(true, Ordering::SeqCst);
            *stop = true;
            // Every requester is owed an ack, not just the first.
            if let Some(c) = conn {
                ackers.push(c);
            }
        }
    }
}

fn flush_and_respond<B: Backend + Send + 'static>(
    engine: &mut ShardedEngine<B>,
    shared: &Shared,
    routes: &mut HashMap<RequestId, Route>,
    last_stats: &mut tia_engine::EngineStats,
) {
    if engine.pending() == 0 {
        return;
    }
    let responses = engine.flush();
    let m = &shared.metrics;
    for r in responses {
        let Some(route) = routes.remove(&r.id) else {
            continue; // unreachable: every submit recorded a route
        };
        let frame = Frame::Logits(InferResponse {
            id: route.wire_id,
            precision: r.precision,
            top1: r.top1,
            logits: r.logits.into_vec(),
        });
        route.conn.send(&frame);
        m.responses_total.fetch_add(1, Ordering::Relaxed);
        m.count_precision(r.precision);
        m.latency
            .record_ns(route.enqueued.elapsed().as_nanos() as u64);
    }
    let stats = engine.stats();
    m.batches_total.fetch_add(
        (stats.batches - last_stats.batches) as u64,
        Ordering::Relaxed,
    );
    m.batch_frames_total.fetch_add(
        (stats.requests - last_stats.requests) as u64,
        Ordering::Relaxed,
    );
    *last_stats = stats;
}

/// Minimal HTTP/1.0 exposition endpoint: `GET /metrics` answers the
/// Prometheus text format, anything else 404. One request per connection.
fn metrics_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopped.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        serve_scrape(&mut stream, &shared.metrics);
    }
}

fn serve_scrape(stream: &mut TcpStream, metrics: &Metrics) {
    use std::io::{Read, Write};
    let mut buf = [0u8; 4096];
    let mut got = 0;
    // Read until the end of the request headers (or the buffer fills —
    // scrapers send tiny requests).
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => {
                got += n;
                if buf[..got].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&buf[..got]);
    let path = request.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = if path == "/metrics" || path == "/" {
        ("200 OK", metrics.render_prometheus())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
}
