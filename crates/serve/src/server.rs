//! The TCP serving front-end over [`ShardedEngine`].
//!
//! # Threading model
//!
//! ```text
//!            acceptor thread ──── accepts, spawns one reader per conn
//!   conn 1 ─ reader thread ──┐
//!   conn 2 ─ reader thread ──┼─ bounded queue ── batcher thread ── ShardedEngine
//!   conn N ─ reader thread ──┘   (try_send =        (owns the engine and the
//!            metrics thread       admission          submit/flush cycle)
//!            (scrape port)        control)
//! ```
//!
//! Readers decode frames and `try_send` admitted requests into a bounded
//! queue; a full queue turns into an immediate [`RejectCode::QueueFull`]
//! frame (the wire analogue of HTTP 503) written by the reader itself, so
//! overload never blocks the accept path and never grows memory. The
//! batcher is the *only* thread touching the engine: it moves admitted
//! requests from the queue into a bounded scheduling window (a few engine
//! cycles, `WINDOW_CYCLES × workers × max_batch`), forms batches of up to
//! one engine cycle from that window, feeds the engine's `submit`/`flush`
//! cycle, and writes responses back on each request's connection (one
//! `Mutex<TcpStream>` per connection keeps frames atomic between the
//! batcher and that connection's reader).
//!
//! # Deadline-aware batch scheduling
//!
//! The batcher is an earliest-deadline-first (EDF) dynamic batcher, not a
//! plain FIFO. Requests may carry a relative deadline and a priority
//! class (wire frame v2); the scheduler:
//!
//! * orders the window by `(class rank, deadline, arrival)` — interactive
//!   before normal before batch; within a class, earliest deadline first;
//!   deadline-less requests keep FIFO order among themselves. The window
//!   holds several batches' worth of requests, so each batch takes the
//!   most urgent `workers × max_batch` of the whole window: a burst of
//!   slow pinned work cannot head-of-line-block an interactive or tightly
//!   deadlined request for more than the batch already executing;
//! * waits at most [`ServerConfig::max_wait`] to fill a batch, and forms
//!   a **partial batch early** when waiting longer would make the most
//!   urgent admitted request miss its deadline (it reserves a quarter of
//!   each request's deadline budget for execution);
//! * **sheds** requests whose deadline has already expired with a typed
//!   [`RejectCode::DeadlineExceeded`] instead of spending engine cycles
//!   on answers that are already too late. Shed requests consume no draw
//!   from the engine's seeded precision schedule.
//!
//! With the default `max_wait` of zero and no scheduling fields on the
//! wire, the scheduler degrades to exactly the FIFO batcher it replaced:
//! batches form immediately from whatever has arrived, in arrival order.
//!
//! # Determinism across the wire
//!
//! All submissions flow through the single batcher, so for traffic
//! arriving on **one connection** with no deadlines or classes the engine
//! sees the exact submission sequence the client sent, and the seeded
//! precision schedule plus the bitwise-logit guarantee of
//! [`ShardedEngine`] carry over the network unchanged (the loopback
//! integration test pins this, including that `max_wait` delays batch
//! *forming* without perturbing the schedule). Traffic from multiple
//! concurrent connections interleaves at the queue, and deadlines/classes
//! reorder the window by design — each request's *logits* are still
//! bitwise reproducible; only the schedule positions shift, as a pure
//! function of the order in which requests reach the engine.
//!
//! # Shutdown
//!
//! A [`Frame::Shutdown`] (or [`Server::shutdown`]) flips the server into
//! draining: readers refuse new work with [`RejectCode::Draining`], the
//! batcher serves everything already admitted, answers the requester with
//! [`Frame::ShutdownAck`], and exits; [`Server::wait`] then joins every
//! thread and returns the engine for post-mortem inspection.

use crate::clock::Clock;
use crate::control::{ControlConfig, Controller, CycleSample, Decision};
use crate::metrics::{HistogramBaseline, Metrics, STAGE_NAMES};
use crate::trace::{self, Ring, Span, Stage, TraceSink};
use crate::wire::{Class, Frame, InferResponse, RejectCode, WirePolicy};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tia_engine::{Backend, EngineConfig, PrecisionPolicy, RequestId, ShardedEngine};
use tia_quant::PrecisionSet;
use tia_tensor::{SeededRng, Tensor};

/// Deterministic fault injection for chaos testing, threaded through the
/// server's admission and batching paths via [`ServerConfig::with_faults`].
///
/// Every knob defaults to off, and a default (no-op) plan leaves the hot
/// path untouched apart from a handful of counter checks. The plan's
/// purpose is to let a harness *induce* the overload and slowness windows
/// that are otherwise hard to hit reliably — and, via the sabotage knob, to
/// prove the harness's own invariant checker actually catches violations.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Reject every `n`-th admission attempt (1-based, counted across all
    /// connections) as [`RejectCode::QueueFull`] even when the queue has
    /// room — an induced queue-full window. Injected rejects are counted in
    /// both `rejected_queue_full` and `faults_injected`.
    pub queue_full_every: Option<u64>,
    /// Stall the batcher for [`FaultPlan::slow_batch_stall`] before every
    /// `n`-th batch it forms — an induced slow-engine window that backs
    /// work up into the bounded queue.
    pub slow_batch_every: Option<u64>,
    /// How long each induced batcher stall lasts (wall time; ignored unless
    /// `slow_batch_every` is set).
    pub slow_batch_stall: Duration,
    /// Sabotage: write every `Logits` response twice (and count it twice).
    /// This deliberately breaks the answered-exactly-once contract so a
    /// chaos harness can verify its checker catches real violations; it is
    /// never useful in production.
    pub double_ack: bool,
}

impl FaultPlan {
    /// A plan with every fault disabled (the default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Rejects every `n`-th admission as queue-full (see
    /// [`FaultPlan::queue_full_every`]). `n` is clamped to at least 1.
    pub fn with_queue_full_every(mut self, n: u64) -> Self {
        self.queue_full_every = Some(n.max(1));
        self
    }

    /// Stalls the batcher for `stall` before every `n`-th batch (see
    /// [`FaultPlan::slow_batch_every`]). `n` is clamped to at least 1.
    pub fn with_slow_batch(mut self, n: u64, stall: Duration) -> Self {
        self.slow_batch_every = Some(n.max(1));
        self.slow_batch_stall = stall;
        self
    }

    /// Enables the double-ack sabotage (see [`FaultPlan::double_ack`]).
    pub fn with_double_ack(mut self) -> Self {
        self.double_ack = true;
        self
    }

    /// Whether any fault (or sabotage) is armed.
    pub fn is_armed(&self) -> bool {
        self.queue_full_every.is_some() || self.slow_batch_every.is_some() || self.double_ack
    }
}

/// Serving front-end configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address of the wire-protocol listener (`:0` picks a free port).
    pub addr: String,
    /// Bind address of the Prometheus scrape listener; `None` disables it.
    pub metrics_addr: Option<String>,
    /// Engine worker shards.
    pub workers: usize,
    /// Bounded request-queue capacity; admissions beyond it are rejected
    /// with [`RejectCode::QueueFull`].
    pub queue_capacity: usize,
    /// The one `[C, H, W]` geometry this server serves; anything else is
    /// rejected with [`RejectCode::BadShape`].
    pub input_shape: [usize; 3],
    /// Engine tuning (micro-batch size, seed, granularity, workspace cap).
    pub engine: EngineConfig,
    /// The serving precision policy ([`WirePolicy::Server`] requests follow
    /// it on the seeded schedule).
    pub policy: PrecisionPolicy,
    /// How long the scheduler waits to fill a batch before forming a
    /// partial one. Zero (the default) forms immediately from whatever has
    /// arrived — the exact behaviour of the FIFO batcher this scheduler
    /// replaced. A deadline inside the wait window forms the batch early.
    pub max_wait: Duration,
    /// Start with the batcher paused (requests queue — and overflow rejects
    /// — until [`Server::resume`]). For staged startup and backpressure
    /// tests.
    pub start_paused: bool,
    /// The time source for all schedule-affecting reads (deadline
    /// anchoring, batch-forming waits, expiry shedding). Defaults to the
    /// real clock; inject a [`Clock::manual`] to drive deadline logic
    /// deterministically in tests.
    pub clock: Clock,
    /// Injected faults for chaos testing; defaults to none.
    pub faults: FaultPlan,
    /// Adaptive precision control (see [`crate::control`]): when set, the
    /// batcher steps a feedback [`Controller`] at every engine-cycle
    /// boundary, degrading the RPS mix toward lower bit-widths under
    /// overload and recovering when pressure clears, with the configured
    /// per-class floors binding every [`WirePolicy::Server`] submission.
    /// A [`PrecisionPolicy::Random`] serving policy is promoted to
    /// [`PrecisionPolicy::Adaptive`] at spawn so the controller has a
    /// window to narrow. `None` (the default) leaves the hot path
    /// untouched.
    pub control: Option<ControlConfig>,
    /// Enables the flight recorder (see [`crate::trace`]): every serving
    /// thread records per-request stage events into its own lock-free
    /// ring, exposed via [`Server::drain_trace`], the scrape port's
    /// `/trace` endpoint (Chrome trace-event JSON), and the slow-request
    /// exemplars. Off by default; the steady-state recording cost is a few
    /// relaxed atomic stores per stage and zero heap allocations (the
    /// stage histograms in the metrics exposition are recorded either
    /// way).
    pub trace: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            metrics_addr: None,
            workers: 1,
            queue_capacity: 1024,
            input_shape: [3, 16, 16],
            engine: EngineConfig::default(),
            policy: PrecisionPolicy::Fixed(None),
            max_wait: Duration::ZERO,
            start_paused: false,
            clock: Clock::real(),
            faults: FaultPlan::default(),
            control: None,
            trace: false,
        }
    }
}

impl ServerConfig {
    /// Sets the wire listener bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Enables the Prometheus scrape listener on `addr`.
    pub fn with_metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Sets the engine worker shard count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the bounded queue capacity (clamped to at least 1).
    pub fn with_queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = cap.max(1);
        self
    }

    /// Sets the served image geometry.
    pub fn with_input_shape(mut self, shape: [usize; 3]) -> Self {
        self.input_shape = shape;
        self
    }

    /// Sets the engine configuration.
    pub fn with_engine(mut self, engine: EngineConfig) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the serving policy.
    pub fn with_policy(mut self, policy: PrecisionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the batch-forming wait (see [`ServerConfig::max_wait`]).
    pub fn with_max_wait(mut self, max_wait: Duration) -> Self {
        self.max_wait = max_wait;
        self
    }

    /// Starts the batcher paused (see [`ServerConfig::start_paused`]).
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }

    /// Injects a time source (see [`ServerConfig::clock`]).
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Arms a fault-injection plan (see [`FaultPlan`]).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Enables the adaptive precision controller (see
    /// [`ServerConfig::control`]).
    pub fn with_control(mut self, control: ControlConfig) -> Self {
        self.control = Some(control);
        self
    }

    /// Enables the flight recorder (see [`ServerConfig::trace`]).
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

/// Deliberately discards a best-effort result (socket teardown, wakeup
/// pokes, already-reported I/O) where failure is benign and there is no
/// one left to tell. Naming the discard keeps the error-hygiene lint's
/// `let _ =` ban meaningful everywhere else.
pub(crate) fn best_effort<T, E>(res: Result<T, E>) {
    drop(res);
}

/// One client connection's write half, shared between its reader (rejects,
/// pongs, errors) and the batcher (responses). The mutex keeps frames
/// atomic; a failed write marks the connection dead and later sends become
/// no-ops.
struct Conn {
    stream: Mutex<TcpStream>,
    alive: AtomicBool,
}

impl Conn {
    fn send(&self, frame: &Frame) {
        // ordering: relaxed — `alive` is an advisory fast-path skip; a stale
        // read only means one extra write attempt, which fails harmlessly.
        if !self.alive.load(Ordering::Relaxed) {
            return;
        }
        let mut guard = match self.stream.lock() {
            Ok(g) => g,
            Err(_) => return,
        };
        if frame.write_to(&mut *guard).is_err() {
            // ordering: relaxed — advisory flag, see the load above.
            self.alive.store(false, Ordering::Relaxed);
            // Tear the socket down, not just the flag: the peer learns the
            // connection is dead instead of hanging on recv forever, and
            // this connection's reader unblocks and exits rather than
            // admitting more requests whose responses would be dropped.
            best_effort(guard.shutdown(SockShutdown::Both));
        }
    }

    fn close(&self) {
        // ordering: relaxed — advisory flag; the socket shutdown below is
        // what actually unblocks the peer and the reader.
        self.alive.store(false, Ordering::Relaxed);
        if let Ok(guard) = self.stream.lock() {
            best_effort(guard.shutdown(SockShutdown::Both));
        }
    }
}

/// State shared by every server thread.
struct Shared {
    /// The injectable time source every schedule-affecting read goes
    /// through (see [`crate::clock`]).
    clock: Clock,
    /// Behind its own `Arc` so callers can hold the registry across the
    /// server's shutdown and assert post-drain invariants (readers joined,
    /// queue gauge at zero) after the `Server` handle is consumed.
    metrics: Arc<Metrics>,
    /// The armed fault plan (default: no-op).
    faults: FaultPlan,
    /// Admission attempts across all connections, driving the fault plan's
    /// queue-full windows.
    admissions: AtomicU64,
    /// Set when shutdown begins: readers refuse new inference work.
    draining: AtomicBool,
    /// Set when the batcher has exited: accept loops stop.
    stopped: AtomicBool,
    /// While set, the batcher does not consume the queue.
    paused: AtomicBool,
    /// Admission barrier closing the drain race: readers hold a *read*
    /// guard across their draining-check + `try_send`; the batcher's stop
    /// path takes (and releases) a *write* guard after setting `draining`
    /// and before its final queue sweep, which waits out every admission
    /// already in flight — so nothing can land in the queue after the
    /// sweep that the drain contract promised to serve.
    admission: std::sync::RwLock<()>,
    input_shape: [usize; 3],
    conns: Mutex<Vec<Arc<Conn>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
    /// The flight recorder, when [`ServerConfig::trace`] enabled it. Each
    /// serving thread registers its own ring at thread start; `None` keeps
    /// the hot path free of even the per-event branch's ring accesses.
    trace: Option<Arc<TraceSink>>,
}

/// One admitted inference request, as it travels from its reader into the
/// batcher's scheduling window.
struct IncomingReq {
    conn: Arc<Conn>,
    wire_id: u64,
    policy: WirePolicy,
    image: Tensor,
    enqueued: Instant,
    /// Absolute deadline, anchored at admission (`enqueued +
    /// deadline_ms`); `None` = serve whenever.
    deadline: Option<Instant>,
    class: Class,
    /// Flight-recorder trace id (0 = untraced; see
    /// [`crate::trace::TraceSink::next_request_id`]).
    trace: u64,
    /// When the batcher pulled the request into the scheduling window
    /// (initialized to `enqueued`, stamped at intake) — the boundary
    /// between the queue-wait and window stages in the latency breakdown.
    window_at: Instant,
}

impl IncomingReq {
    /// The latest instant the scheduler may hold this request back while
    /// filling a batch: `enqueued + max_wait`, pulled forward to leave a
    /// quarter of the deadline budget for execution.
    fn latest_form(&self, max_wait: Duration) -> Instant {
        let by_wait = self.enqueued + max_wait;
        match self.deadline {
            None => by_wait,
            Some(d) => {
                let budget = d.saturating_duration_since(self.enqueued);
                by_wait.min(self.enqueued + (budget - budget / 4))
            }
        }
    }

    /// Whether the deadline has already passed at `now`.
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now > d)
    }
}

/// A queue entry: one admitted request, or the shutdown marker.
enum Item {
    Infer(Box<IncomingReq>),
    /// Drain and exit; `conn` (if any) receives the [`Frame::ShutdownAck`].
    Shutdown {
        conn: Option<Arc<Conn>>,
    },
}

/// One request inside the scheduling window: the incoming request plus its
/// arrival rank.
struct PendingReq {
    /// Arrival order within the batcher — the EDF tie-breaker that keeps
    /// deadline-less same-class traffic in FIFO order.
    seq: u64,
    req: Box<IncomingReq>,
}

/// EDF scheduling order: class rank, then earliest deadline (deadline-less
/// requests sort after every deadlined one), then arrival.
fn edf_order(a: &PendingReq, b: &PendingReq) -> std::cmp::Ordering {
    a.req
        .class
        .rank()
        .cmp(&b.req.class.rank())
        .then_with(|| match (a.req.deadline, b.req.deadline) {
            (Some(x), Some(y)) => x.cmp(&y),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => std::cmp::Ordering::Equal,
        })
        .then_with(|| a.seq.cmp(&b.seq))
}

/// How many engine cycles' worth of requests the scheduling window may
/// hold. A window larger than one batch is what gives EDF real authority:
/// the sort picks the most urgent `max_take` out of up to
/// `WINDOW_CYCLES × max_take` candidates, so an interactive or tightly
/// deadlined request admitted behind a burst of slow work overtakes it at
/// the next batch boundary instead of waiting out the whole backlog.
const WINDOW_CYCLES: usize = 4;

/// Where a flushed engine response goes back out, carrying the stage
/// timestamps accumulated so far so the response path can derive the full
/// latency breakdown without re-walking the trace.
struct Route {
    conn: Arc<Conn>,
    wire_id: u64,
    enqueued: Instant,
    class: Class,
    /// Flight-recorder trace id (0 = untraced).
    trace: u64,
    /// Window-entry instant (see [`IncomingReq::window_at`]).
    window_at: Instant,
    /// Engine-submit instant (the batch-forming cycle's timestamp).
    submitted_at: Instant,
}

/// A running TCP serving front-end; see the [module docs](self) for the
/// threading model. Dropping the handle shuts the server down (preferring
/// [`Server::shutdown`] or [`Server::wait`], which return the engine).
pub struct Server<B: Backend + Send + 'static> {
    shared: Arc<Shared>,
    submit_tx: SyncSender<Item>,
    batcher: Option<JoinHandle<ShardedEngine<B>>>,
    acceptor: Option<JoinHandle<()>>,
    metrics_thread: Option<JoinHandle<()>>,
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
}

impl<B: Backend + Send + 'static> Server<B> {
    /// Binds the listeners, builds one backend replica per worker shard
    /// from `factory`, and spawns the serving threads.
    pub fn spawn(cfg: ServerConfig, factory: impl FnMut(usize) -> B) -> io::Result<Self> {
        if let Some(ctrl) = &cfg.control {
            // A misconfigured hysteresis band oscillates silently; fail at
            // spawn instead.
            ctrl.validate()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        }
        // With a controller armed, a static RPS mix becomes the adaptive
        // window the controller narrows. The promotion is draw-for-draw
        // identical at level 0, so enabling control never perturbs the
        // unloaded schedule.
        let policy = match (&cfg.control, cfg.policy.clone()) {
            (Some(_), PrecisionPolicy::Random(set)) => PrecisionPolicy::Adaptive(set),
            (_, p) => p,
        };
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let metrics_listener = match &cfg.metrics_addr {
            Some(a) => Some(TcpListener::bind(a)?),
            None => None,
        };
        let metrics_addr = metrics_listener.as_ref().and_then(|l| l.local_addr().ok());

        let engine = ShardedEngine::with_factory(
            cfg.workers.max(1),
            factory,
            policy.clone(),
            cfg.engine.clone(),
        );
        let shared = Arc::new(Shared {
            clock: cfg.clock.clone(),
            metrics: Arc::new(Metrics::new()),
            faults: cfg.faults.clone(),
            admissions: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            paused: AtomicBool::new(cfg.start_paused),
            admission: std::sync::RwLock::new(()),
            input_shape: cfg.input_shape,
            conns: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
            trace: cfg
                .trace
                .then(|| Arc::new(TraceSink::new(cfg.clock.clone()))),
        });
        let (submit_tx, submit_rx) = sync_channel::<Item>(cfg.queue_capacity.max(1));

        // One full engine cycle admits at most every shard's worth of
        // micro-batches; anything beyond that waits one flush in the queue.
        let max_take = (cfg.workers.max(1) * cfg.engine.max_batch).max(1);
        // Stream backing WirePolicy::Random requests — decorrelated from the
        // engine's schedule stream so explicit-policy traffic cannot consume
        // the server schedule's draws.
        let req_rng = SeededRng::new(cfg.engine.seed ^ 0x5EED_5EED_5EED_5EED);
        let max_wait = cfg.max_wait;
        let adaptive = cfg.control.clone().map(|ctrl| {
            let set = match &policy {
                PrecisionPolicy::Adaptive(set) => Some(set.clone()),
                _ => None,
            };
            Adaptive {
                ctrl: Controller::new(ctrl, policy.max_degrade_level()),
                set,
                baselines: std::array::from_fn(|i| shared.metrics.latency_by_class[i].baseline()),
                sheds: 0,
            }
        });
        let batcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                batcher_loop(
                    engine, submit_rx, shared, req_rng, max_take, max_wait, adaptive,
                )
            })
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            let tx = submit_tx.clone();
            std::thread::spawn(move || acceptor_loop(listener, shared, tx))
        };
        let metrics_thread = metrics_listener.map(|l| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || metrics_loop(l, shared))
        });
        Ok(Self {
            shared,
            submit_tx,
            batcher: Some(batcher),
            acceptor: Some(acceptor),
            metrics_thread,
            addr,
            metrics_addr,
        })
    }

    /// The wire listener's bound address (resolves `:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The scrape listener's bound address, when metrics are enabled.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The live metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// A handle to the metrics registry that outlives the server: hold one
    /// before [`Server::shutdown`]/[`Server::wait`] to assert post-drain
    /// invariants (thread liveness, queue gauge, conservation) after the
    /// engine has been returned.
    pub fn metrics_handle(&self) -> Arc<Metrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// A handle to the flight recorder that outlives the server (mirrors
    /// [`Server::metrics_handle`]); `None` unless
    /// [`ServerConfig::with_trace`] enabled tracing. Hold one before
    /// shutdown to export or inspect the trace after the drain.
    pub fn trace_handle(&self) -> Option<Arc<TraceSink>> {
        self.shared.trace.as_ref().map(Arc::clone)
    }

    /// Reconstructs per-request spans from the flight recorder's current
    /// contents (see [`crate::trace::spans`]). Non-destructive; empty when
    /// tracing is disabled. Exact once the server has quiesced (paused and
    /// settled, or drained); a mid-flight call sees whatever stages have
    /// been recorded so far.
    pub fn drain_trace(&self) -> Vec<Span> {
        match &self.shared.trace {
            Some(sink) => trace::spans(&sink.drain()),
            None => Vec::new(),
        }
    }

    /// Unpauses a [`ServerConfig::start_paused`] batcher.
    pub fn resume(&self) {
        // ordering: SeqCst — pause/drain/stop flags share one total order so
        // the shutdown handshake (drain -> resume -> marker) cannot reorder.
        self.shared.paused.store(false, Ordering::SeqCst);
    }

    /// Initiates a graceful drain (everything already admitted is served),
    /// waits for completion, and returns the engine.
    pub fn shutdown(mut self) -> ShardedEngine<B> {
        // ordering: SeqCst — must be globally visible before the admission
        // write barrier in the batcher's stop path sequences the drain.
        self.shared.draining.store(true, Ordering::SeqCst);
        // Resume *before* the blocking send: with a paused batcher and a
        // full queue, the marker could otherwise never be consumed.
        self.resume();
        best_effort(self.submit_tx.send(Item::Shutdown { conn: None }));
        // tia-lint: allow(panic-freedom, finish() is Some on the first call and shutdown consumes self)
        self.finish().expect("server already shut down")
    }

    /// Waits for a client-initiated [`Frame::Shutdown`] drain to complete,
    /// then returns the engine.
    pub fn wait(mut self) -> ShardedEngine<B> {
        // tia-lint: allow(panic-freedom, finish() is Some on the first call and wait consumes self)
        self.finish().expect("server already shut down")
    }

    /// Joins every thread: batcher first (it exits once a shutdown item
    /// arrives), then the accept loops (unblocked by a dummy connection),
    /// then the readers (unblocked by closing their sockets).
    fn finish(&mut self) -> Option<ShardedEngine<B>> {
        let batcher = self.batcher.take()?;
        self.resume(); // A paused batcher would never see the shutdown item.
                       // tia-lint: allow(panic-freedom, a batcher panic is unrecoverable server state — propagating it is the only honest option)
        let engine = batcher.join().expect("serve batcher thread panicked");
        // ordering: SeqCst — stop flag shares the shutdown total order; the
        // accept loops poll it after their wakeup pokes below.
        self.shared.stopped.store(true, Ordering::SeqCst);
        best_effort(TcpStream::connect(self.addr));
        if let Some(ma) = self.metrics_addr {
            best_effort(TcpStream::connect(ma));
        }
        if let Some(h) = self.acceptor.take() {
            best_effort(h.join());
        }
        if let Some(h) = self.metrics_thread.take() {
            best_effort(h.join());
        }
        let conns: Vec<Arc<Conn>> = match self.shared.conns.lock() {
            Ok(mut g) => g.drain(..).collect(),
            Err(_) => Vec::new(),
        };
        for c in conns {
            c.close();
        }
        let readers: Vec<JoinHandle<()>> = match self.shared.readers.lock() {
            Ok(mut g) => g.drain(..).collect(),
            Err(_) => Vec::new(),
        };
        for h in readers {
            best_effort(h.join());
        }
        Some(engine)
    }
}

impl<B: Backend + Send + 'static> Drop for Server<B> {
    fn drop(&mut self) {
        if self.batcher.is_some() {
            // ordering: SeqCst — same drain handshake as shutdown().
            self.shared.draining.store(true, Ordering::SeqCst);
            self.resume();
            best_effort(self.submit_tx.send(Item::Shutdown { conn: None }));
            drop(self.finish());
        }
    }
}

/// Accepts connections until the server stops; one reader thread each.
fn acceptor_loop(listener: TcpListener, shared: Arc<Shared>, tx: SyncSender<Item>) {
    let ring = shared
        .trace
        .as_ref()
        .map(|s| s.register("acceptor", trace::ACCEPTOR_RING_SLOTS));
    let mut conn_seq = 0u64;
    for stream in listener.incoming() {
        // ordering: SeqCst — stop flag; pairs with the store in finish().
        if shared.stopped.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        best_effort(stream.set_nodelay(true));
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        // A slow (or never-reading) client must not park the batcher inside
        // a response write forever: time the write out, after which the
        // connection is torn down and later sends become no-ops. Until
        // responses are written off the batcher thread (per-connection
        // writer threads — a known follow-up), one misbehaving connection
        // can still stall everyone for up to this timeout, once: the first
        // timeout kills the connection, so it cannot stall twice.
        best_effort(write_half.set_write_timeout(Some(Duration::from_secs(2))));
        // ordering: relaxed — independent metrics counters; scrapes tolerate
        // momentary skew between them.
        shared
            .metrics
            .connections_total
            .fetch_add(1, Ordering::Relaxed);
        // ordering: relaxed — metrics gauge, see above.
        shared
            .metrics
            .connections_active
            .fetch_add(1, Ordering::Relaxed);
        conn_seq += 1;
        if let Some(r) = &ring {
            r.record(Stage::Accept, conn_seq, 0, 0);
        }
        let conn = Arc::new(Conn {
            stream: Mutex::new(write_half),
            alive: AtomicBool::new(true),
        });
        if let Ok(mut g) = shared.conns.lock() {
            g.push(Arc::clone(&conn));
        }
        let handle = {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            std::thread::spawn(move || reader_loop(stream, conn, shared, tx, conn_seq))
        };
        if let Ok(mut g) = shared.readers.lock() {
            // Long-lived servers accept unbounded connections over their
            // lifetime; reap the finished readers (their conns were removed
            // on exit) so the registry tracks only live ones.
            g.retain(|h| !h.is_finished());
            g.push(handle);
        }
    }
}

/// Records a flight-recorder [`Stage::Rejected`] terminal for a request
/// refused at admission (no-op when tracing is off).
fn trace_reject(ring: Option<&Ring>, trace_id: u64, wire_id: u64) {
    if let Some(r) = ring {
        let (hi, lo) = trace::wire_id_args(wire_id);
        r.record(Stage::Rejected, trace_id, hi, lo);
    }
}

/// Decodes frames from one connection; admitted requests go to the queue,
/// everything else is answered inline. Exits on EOF, socket teardown, or
/// the first malformed frame (framing can no longer be trusted).
fn reader_loop(
    mut stream: TcpStream,
    conn: Arc<Conn>,
    shared: Arc<Shared>,
    tx: SyncSender<Item>,
    conn_seq: u64,
) {
    use crate::wire::WireError;
    let m = &shared.metrics;
    let ring = shared
        .trace
        .as_ref()
        .map(|s| s.register(&format!("reader-{conn_seq}"), trace::READER_RING_SLOTS));
    // ordering: relaxed — liveness gauge; the join in finish() is the real
    // synchronization edge, the gauge just names what it observed.
    m.readers_live.fetch_add(1, Ordering::Relaxed);
    // Set when this side ends the conversation (protocol violation): the
    // peer may still have bytes in flight, and closing with unread receive
    // data can turn into a RST that destroys our final Error frame. Drain
    // briefly before closing so the report survives.
    let mut drain_before_close = false;
    loop {
        match Frame::read_from(&mut stream) {
            Ok(Frame::Infer(req)) => {
                let trace_id = match &shared.trace {
                    Some(sink) => sink.next_request_id(),
                    None => 0,
                };
                if let Some(r) = &ring {
                    let (hi, lo) = trace::wire_id_args(req.id);
                    r.record(Stage::FrameDecoded, trace_id, hi, lo);
                }
                if req.shape != shared.input_shape {
                    // ordering: relaxed — metrics counter.
                    m.rejected_bad_shape.fetch_add(1, Ordering::Relaxed);
                    trace_reject(ring.as_deref(), trace_id, req.id);
                    conn.send(&Frame::Reject {
                        id: req.id,
                        code: RejectCode::BadShape,
                    });
                    continue;
                }
                // The draining check and the enqueue happen under one
                // admission read guard (see `Shared::admission`): either
                // this request is admitted before the batcher's final
                // drain sweep, or it observes `draining` and is rejected —
                // it can never be admitted and then silently dropped.
                let admission = shared.admission.read();
                // ordering: SeqCst — the drain flag must be checked in the
                // same total order the batcher's stop path establishes, or
                // an admitted request could be silently dropped.
                if shared.draining.load(Ordering::SeqCst) {
                    drop(admission);
                    // ordering: relaxed — metrics counter.
                    m.rejected_draining.fetch_add(1, Ordering::Relaxed);
                    trace_reject(ring.as_deref(), trace_id, req.id);
                    conn.send(&Frame::Reject {
                        id: req.id,
                        code: RejectCode::Draining,
                    });
                    continue;
                }
                // Induced queue-full window: the fault plan may turn this
                // admission attempt into a reject even though the queue has
                // room — same frame, same counters as the organic path,
                // plus the injection counter.
                if let Some(n) = shared.faults.queue_full_every {
                    // ordering: relaxed — the fault schedule only needs each
                    // attempt counted once, not a cross-thread order.
                    let attempt = shared.admissions.fetch_add(1, Ordering::Relaxed) + 1;
                    if attempt.is_multiple_of(n) {
                        drop(admission);
                        // ordering: relaxed — metrics counters.
                        m.faults_injected.fetch_add(1, Ordering::Relaxed);
                        // ordering: relaxed — metrics counter.
                        m.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                        trace_reject(ring.as_deref(), trace_id, req.id);
                        conn.send(&Frame::Reject {
                            id: req.id,
                            code: RejectCode::QueueFull,
                        });
                        continue;
                    }
                }
                // The wire deadline is relative; anchor it at admission so
                // queue time counts against it.
                let enqueued = shared.clock.now();
                let item = Item::Infer(Box::new(IncomingReq {
                    conn: Arc::clone(&conn),
                    wire_id: req.id,
                    policy: req.policy,
                    image: Tensor::from_vec(req.pixels, &req.shape),
                    enqueued,
                    deadline: req
                        .deadline_ms
                        .map(|ms| enqueued + Duration::from_millis(u64::from(ms))),
                    class: req.class,
                    trace: trace_id,
                    window_at: enqueued,
                }));
                // Gauge up *before* the send: the batcher's decrement can
                // otherwise race ahead of the increment and wrap below 0.
                // ordering: relaxed — approximate gauge; the channel send is
                // the real synchronization edge for the request itself.
                m.queue_depth.fetch_add(1, Ordering::Relaxed);
                let outcome = tx.try_send(item);
                drop(admission);
                match outcome {
                    Ok(()) => {
                        // ordering: relaxed — metrics counter.
                        m.requests_total.fetch_add(1, Ordering::Relaxed);
                        if let Some(r) = &ring {
                            // Both stamped at the admission instant the
                            // deadline was anchored to, so span timestamps
                            // and deadline math agree exactly.
                            let (hi, lo) = trace::wire_id_args(req.id);
                            r.record_at(Stage::Admitted, trace_id, hi, lo, enqueued);
                            r.record_at(Stage::Enqueued, trace_id, 0, 0, enqueued);
                        }
                    }
                    Err(TrySendError::Full(_)) => {
                        // ordering: relaxed — gauge rollback + counter.
                        m.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        // ordering: relaxed — metrics counter.
                        m.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
                        trace_reject(ring.as_deref(), trace_id, req.id);
                        conn.send(&Frame::Reject {
                            id: req.id,
                            code: RejectCode::QueueFull,
                        });
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        // ordering: relaxed — gauge rollback + counter.
                        m.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        // ordering: relaxed — metrics counter.
                        m.rejected_draining.fetch_add(1, Ordering::Relaxed);
                        trace_reject(ring.as_deref(), trace_id, req.id);
                        conn.send(&Frame::Reject {
                            id: req.id,
                            code: RejectCode::Draining,
                        });
                    }
                }
            }
            Ok(Frame::Ping) => conn.send(&Frame::Pong),
            Ok(Frame::Shutdown) => {
                // ordering: SeqCst — drain flag, same total order as the
                // admission-barrier handshake.
                shared.draining.store(true, Ordering::SeqCst);
                // Blocking send: the marker must land even when the queue is
                // full, and it must land *after* this connection's admitted
                // requests so the drain covers them.
                best_effort(tx.send(Item::Shutdown {
                    conn: Some(Arc::clone(&conn)),
                }));
            }
            Ok(_) => {
                // Server-to-client kinds arriving at the server are a
                // protocol violation.
                // ordering: relaxed — metrics counter.
                m.bad_frames_total.fetch_add(1, Ordering::Relaxed);
                conn.send(&Frame::Error {
                    msg: "unexpected frame kind from client".to_string(),
                });
                drain_before_close = true;
                break;
            }
            Err(WireError::Closed) | Err(WireError::Io(_)) => break,
            Err(e) => {
                // ordering: relaxed — metrics counter.
                m.bad_frames_total.fetch_add(1, Ordering::Relaxed);
                conn.send(&Frame::Error { msg: e.to_string() });
                drain_before_close = true;
                break;
            }
        }
    }
    if drain_before_close {
        use std::io::Read;
        best_effort(stream.set_read_timeout(Some(Duration::from_millis(200))));
        let mut sink = [0u8; 1024];
        while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
    }
    conn.close();
    // Deregister so a long-lived server does not accumulate one dead
    // socket per connection it ever served.
    if let Ok(mut g) = shared.conns.lock() {
        g.retain(|c| !Arc::ptr_eq(c, &conn));
    }
    // ordering: relaxed — metrics gauge.
    m.connections_active.fetch_sub(1, Ordering::Relaxed);
    // ordering: relaxed — liveness gauge, see the increment at entry.
    m.readers_live.fetch_sub(1, Ordering::Relaxed);
}

/// The adaptive-precision state the batcher thread owns when a controller
/// is armed (see [`crate::control`]): the feedback state machine itself,
/// the policy's member set (for floor-clamp accounting), and per-class
/// histogram baselines that turn the cumulative latency histograms into
/// the windowed p99 the controller's budgets compare against.
struct Adaptive {
    ctrl: Controller,
    /// The adaptive policy's members; `None` when the serving policy never
    /// degrades (e.g. `Fixed`), in which case floors are vacuous.
    set: Option<PrecisionSet>,
    /// Per-class snapshots taken at the previous controller step
    /// ([`Class::ALL`] wire order).
    baselines: [HistogramBaseline; 3],
    /// Deadline sheds observed since the previous controller step.
    sheds: usize,
}

/// The engine owner: moves queue items into the EDF scheduling window,
/// forms deadline-aware batches, runs submit/flush cycles, routes
/// responses — and, when a controller is armed, steps it once per engine
/// cycle. Returns the engine at shutdown.
fn batcher_loop<B: Backend + Send + 'static>(
    mut engine: ShardedEngine<B>,
    rx: Receiver<Item>,
    shared: Arc<Shared>,
    mut req_rng: SeededRng,
    max_take: usize,
    max_wait: Duration,
    mut adaptive: Option<Adaptive>,
) -> ShardedEngine<B> {
    use std::sync::mpsc::RecvTimeoutError;
    let ring = shared
        .trace
        .as_ref()
        .map(|s| s.register("batcher", trace::BATCHER_RING_SLOTS));
    let ring = ring.as_deref();
    let mut routes: HashMap<RequestId, Route> = HashMap::new();
    let mut book = BatchBook {
        last_stats: engine.stats(),
        batches_formed: 0,
    };
    let mut stop = false;
    let mut ackers: Vec<Arc<Conn>> = Vec::new();
    // The scheduling window: admitted requests the scheduler may still
    // reorder. Bounded by `WINDOW_CYCLES` engine cycles, so eager channel
    // drains cannot defeat the bounded queue's backpressure (total
    // admitted-but-unserved work stays <= queue_capacity + window_cap).
    let mut window: Vec<PendingReq> = Vec::new();
    let mut next_seq = 0u64;
    let mut senders_gone = false;
    'serve: loop {
        // ordering: SeqCst — pause flag, same total order as resume().
        if shared.paused.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        if window.is_empty() && !stop {
            match rx.recv_timeout(Duration::from_millis(10)) {
                Ok(item) => intake(
                    item,
                    &shared,
                    ring,
                    &mut window,
                    &mut next_seq,
                    &mut stop,
                    &mut ackers,
                ),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break 'serve,
            }
        }
        // Opportunistic fill, up to the scheduling window's capacity —
        // several engine cycles, so the EDF sort has real candidates to
        // choose the next batch from (a window of exactly one batch would
        // reduce EDF to a draw-order permutation).
        let window_cap = max_take * WINDOW_CYCLES;
        while window.len() < window_cap && !stop {
            match rx.try_recv() {
                Ok(item) => intake(
                    item,
                    &shared,
                    ring,
                    &mut window,
                    &mut next_seq,
                    &mut stop,
                    &mut ackers,
                ),
                Err(_) => break,
            }
        }
        if stop {
            // Shutdown marker seen: `draining` is already set, so take the
            // admission write barrier — it waits until every reader that
            // saw `draining == false` has finished its enqueue. After it,
            // no request can slip into the queue behind the final sweep;
            // the sweep and drain themselves run once, below the loop.
            drop(shared.admission.write());
            break 'serve;
        }
        // Shed requests that expired while queued, before they cost a batch
        // slot or an engine cycle.
        let shed_now = shed_expired(&shared, ring, &mut window);
        if let Some(a) = adaptive.as_mut() {
            a.sheds += shed_now;
        }
        if window.is_empty() {
            continue;
        }
        // Wait for more arrivals only while a full batch is not yet
        // available AND the most urgent request can still afford the wait.
        let now = shared.clock.now();
        let Some(due) = window.iter().map(|r| r.req.latest_form(max_wait)).min() else {
            continue; // empty window: nothing to form (shed took the rest)
        };
        if window.len() < max_take && now < due && !senders_gone {
            // Capped at 10 ms so pause/shutdown stay responsive.
            let wait = (due - now).min(Duration::from_millis(10));
            match rx.recv_timeout(wait) {
                Ok(item) => intake(
                    item,
                    &shared,
                    ring,
                    &mut window,
                    &mut next_seq,
                    &mut stop,
                    &mut ackers,
                ),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => senders_gone = true,
            }
            continue; // re-evaluate fill, expiry and forming time
        }
        // The cycle boundary: sample window pressure as the batch forms,
        // run it, then let the controller react to this cycle's signals.
        let fill = (window.len() as f64 / window_cap as f64).min(1.0);
        let (submitted, shed_in) = form_and_run(
            &mut engine,
            &shared,
            ring,
            &mut req_rng,
            &mut routes,
            &mut window,
            max_take,
            &mut book,
            adaptive.as_ref(),
        );
        if let Some(a) = adaptive.as_mut() {
            a.sheds += shed_in;
            step_adaptive(a, &mut engine, &shared, ring, fill, submitted);
        }
    }
    // The final sweep and drain, shared by both exits (shutdown marker —
    // the admission barrier above guarantees nothing lands behind this
    // sweep — and channel disconnection): everything admitted is served,
    // or shed with a typed reject if its deadline expired during the
    // drain. Still an answer either way.
    while let Ok(item) = rx.try_recv() {
        intake(
            item,
            &shared,
            ring,
            &mut window,
            &mut next_seq,
            &mut stop,
            &mut ackers,
        );
    }
    while !window.is_empty() {
        // Drain cycles keep the floors (an SLO holds through shutdown) but
        // no longer step the controller — there is no load left to react
        // to.
        let _counts = form_and_run(
            &mut engine,
            &shared,
            ring,
            &mut req_rng,
            &mut routes,
            &mut window,
            max_take,
            &mut book,
            adaptive.as_ref(),
        );
    }
    // Every requester gets the ack — including racers whose markers landed
    // behind the first one — and only after the final flush, so the drain
    // contract ("everything admitted is answered before the ack") holds
    // for all of them.
    for conn in ackers {
        conn.send(&Frame::ShutdownAck);
    }
    engine
}

/// Moves one queue item into the scheduling window (or handles the
/// shutdown marker). The queue-depth gauge keeps counting a request until
/// it actually leaves the window (submitted or shed).
fn intake(
    item: Item,
    shared: &Shared,
    ring: Option<&Ring>,
    window: &mut Vec<PendingReq>,
    next_seq: &mut u64,
    stop: &mut bool,
    ackers: &mut Vec<Arc<Conn>>,
) {
    match item {
        Item::Infer(mut req) => {
            // Stamp the queue-wait/window boundary for the stage-latency
            // breakdown (recorded for every request, traced or not).
            req.window_at = shared.clock.now();
            if let Some(r) = ring {
                r.record_at(Stage::WindowEnter, req.trace, 0, 0, req.window_at);
            }
            let seq = *next_seq;
            *next_seq += 1;
            window.push(PendingReq { seq, req });
        }
        Item::Shutdown { conn } => {
            // ordering: SeqCst — drain flag, same total order as the
            // admission-barrier handshake.
            shared.draining.store(true, Ordering::SeqCst);
            *stop = true;
            // Every requester is owed an ack, not just the first.
            if let Some(c) = conn {
                ackers.push(c);
            }
        }
    }
}

/// Sheds every already-expired request in the window with a
/// [`RejectCode::DeadlineExceeded`] frame, returning how many it shed.
/// Shed requests never reach the engine, so they consume no draw from the
/// seeded precision schedule.
fn shed_expired(shared: &Shared, ring: Option<&Ring>, window: &mut Vec<PendingReq>) -> usize {
    let now = shared.clock.now();
    let before = window.len();
    window.retain(|pending| {
        if !pending.req.expired(now) {
            return true;
        }
        shed_one(shared, ring, &pending.req, now);
        false
    });
    before - window.len()
}

/// Answers one expired request with a typed reject and updates the shed
/// accounting. `now` is the expiry-check instant the shed decision was
/// made at — the [`Stage::Shed`] terminal is stamped with it so the trace
/// shows when the scheduler gave up, not when the reject frame went out.
fn shed_one(shared: &Shared, ring: Option<&Ring>, req: &IncomingReq, now: Instant) {
    let m = &shared.metrics;
    // ordering: relaxed — metrics gauge + counter.
    m.queue_depth.fetch_sub(1, Ordering::Relaxed);
    // ordering: relaxed — metrics counter.
    m.rejected_deadline.fetch_add(1, Ordering::Relaxed);
    if let Some(r) = ring {
        let (hi, lo) = trace::wire_id_args(req.wire_id);
        r.record_at(Stage::Shed, req.trace, hi, lo, now);
    }
    req.conn.send(&Frame::Reject {
        id: req.wire_id,
        code: RejectCode::DeadlineExceeded,
    });
}

/// Forms one batch from the window in EDF order (up to `max_take`
/// requests), submits it to the engine — shedding anything that expired
/// since the last check — then flushes and routes the responses.
/// Batch-loop accounting carried across `form_and_run` calls: the engine
/// stats watermark metrics deltas are computed against, and the running
/// batch count the slow-batch fault schedule keys off.
struct BatchBook {
    last_stats: tia_engine::EngineStats,
    batches_formed: u64,
}

#[allow(clippy::too_many_arguments)] // the batcher's whole working set, called from one place
fn form_and_run<B: Backend + Send + 'static>(
    engine: &mut ShardedEngine<B>,
    shared: &Shared,
    ring: Option<&Ring>,
    req_rng: &mut SeededRng,
    routes: &mut HashMap<RequestId, Route>,
    window: &mut Vec<PendingReq>,
    max_take: usize,
    book: &mut BatchBook,
    adaptive: Option<&Adaptive>,
) -> (usize, usize) {
    // Induced slow-batcher window: stall before every n-th batch so the
    // queue backs up the way it would behind a genuinely slow engine.
    book.batches_formed += 1;
    if let Some(n) = shared.faults.slow_batch_every {
        if book.batches_formed.is_multiple_of(n) && !shared.faults.slow_batch_stall.is_zero() {
            std::thread::sleep(shared.faults.slow_batch_stall);
        }
    }
    window.sort_by(edf_order);
    let take = window.len().min(max_take);
    let now = shared.clock.now();
    let (mut submits, mut sheds) = (0usize, 0usize);
    for pending in window.drain(..take) {
        let req = *pending.req;
        if req.expired(now) {
            shed_one(shared, ring, &req, now);
            sheds += 1;
            continue;
        }
        // ordering: relaxed — metrics gauge.
        shared.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        submits += 1;
        let submitted = match &req.policy {
            WirePolicy::Server => {
                // Policy-driven traffic is where the controller's floors
                // bind: the class floor rides along into the engine's draw.
                // A client that pinned its own precision has already chosen
                // and bypasses both degradation and floors.
                let floor = adaptive.and_then(|a| a.ctrl.config().floor_for(req.class));
                if let (Some(set), Some(f)) = (adaptive.and_then(|a| a.set.as_ref()), floor) {
                    let level = engine.degrade_level() as usize;
                    // The floor "clamps" when it actually narrows the
                    // degraded window — i.e. it excludes members the bare
                    // level would still have sampled.
                    if set.degraded_window(level, Some(f)).0 > set.degraded_window(level, None).0 {
                        // ordering: relaxed — metrics counter.
                        shared
                            .metrics
                            .floor_clamped_total
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
                engine.try_submit_floored(req.image, floor)
            }
            WirePolicy::Fixed(p) => engine.try_submit_pinned(req.image, *p),
            WirePolicy::Random(set) => {
                engine.try_submit_pinned(req.image, Some(set.sample(req_rng)))
            }
        };
        match submitted {
            Ok(id) => {
                if let Some(r) = ring {
                    // Stamped at the batch-forming instant the EDF sort ran
                    // at — one clock read covers the whole batch.
                    r.record_at(Stage::EngineSubmit, req.trace, 0, 0, now);
                }
                routes.insert(
                    id,
                    Route {
                        conn: req.conn,
                        wire_id: req.wire_id,
                        enqueued: req.enqueued,
                        class: req.class,
                        trace: req.trace,
                        window_at: req.window_at,
                        submitted_at: now,
                    },
                );
            }
            Err(_) => {
                // Readers validate geometry up front, so this only
                // triggers if the configured input shape is not what the
                // engine pinned — answer honestly rather than panic. The
                // request was already admitted, so it lands in the errored
                // leg of the conservation equation, not the reject leg.
                // ordering: relaxed — metrics counter.
                shared.metrics.errored_total.fetch_add(1, Ordering::Relaxed);
                if let Some(r) = ring {
                    let (hi, lo) = trace::wire_id_args(req.wire_id);
                    r.record_at(Stage::Errored, req.trace, hi, lo, now);
                }
                req.conn.send(&Frame::Reject {
                    id: req.wire_id,
                    code: RejectCode::BadShape,
                });
            }
        }
    }
    if let Some(r) = ring {
        // The batch-formed scope event: size, the degrade level it ran
        // under, and the cycle sequence (the precision mix lands on the
        // matching engine_cycle event once the flush reveals the draws).
        r.record_at(
            Stage::BatchFormed,
            book.batches_formed,
            submits as u32,
            u32::from(engine.degrade_level()),
            now,
        );
    }
    flush_and_respond(engine, shared, ring, routes, &mut book.last_stats);
    (submits, sheds)
}

/// One controller step at an engine-cycle boundary: assemble this cycle's
/// pressure sample (window fill at forming, deadline-shed fraction,
/// windowed per-class p99 since the last step), let the state machine
/// decide, and apply any level shift to the engine and the metrics.
fn step_adaptive<B: Backend + Send + 'static>(
    a: &mut Adaptive,
    engine: &mut ShardedEngine<B>,
    shared: &Shared,
    ring: Option<&Ring>,
    fill: f64,
    submitted: usize,
) {
    let m = &shared.metrics;
    let candidates = a.sheds + submitted;
    let miss = if candidates == 0 {
        0.0
    } else {
        a.sheds as f64 / candidates as f64
    };
    a.sheds = 0;
    let mut p99_ns = [0u64; 3];
    for (i, p99) in p99_ns.iter_mut().enumerate() {
        // Windowed, not cumulative: a cumulative p99 never decays, which
        // would block recovery forever after one bad burst.
        *p99 = m.latency_by_class[i].quantile_since_ns(&a.baselines[i], 0.99);
        a.baselines[i] = m.latency_by_class[i].baseline();
    }
    let (level, direction) = match a.ctrl.step(&CycleSample { fill, miss, p99_ns }) {
        Decision::Hold => return,
        Decision::Degrade(level) => {
            // ordering: relaxed — metrics counter.
            m.degrade_shifts_down.fetch_add(1, Ordering::Relaxed);
            (level, 1u32)
        }
        Decision::Recover(level) => {
            // ordering: relaxed — metrics counter.
            m.degrade_shifts_up.fetch_add(1, Ordering::Relaxed);
            (level, 2u32)
        }
    };
    engine.set_degrade_level(level);
    // ordering: relaxed — metrics gauge.
    m.degrade_level.store(u64::from(level), Ordering::Relaxed);
    if let Some(r) = ring {
        r.record(Stage::ControlDecision, u64::from(level), direction, 0);
    }
}

fn flush_and_respond<B: Backend + Send + 'static>(
    engine: &mut ShardedEngine<B>,
    shared: &Shared,
    ring: Option<&Ring>,
    routes: &mut HashMap<RequestId, Route>,
    last_stats: &mut tia_engine::EngineStats,
) {
    if engine.pending() == 0 {
        return;
    }
    let responses = engine.flush();
    let flushed_at = shared.clock.now();
    let m = &shared.metrics;
    // The cycle's precision mix, revealed by the flush: bit 0 = fp32,
    // bit `b` = `b`-bit. Carried on the engine_cycle scope event.
    let mut mix = 0u32;
    for r in responses {
        let Some(route) = routes.remove(&r.id) else {
            continue; // unreachable: every submit recorded a route
        };
        mix |= 1u32 << r.precision.map_or(0, |p| u32::from(p.bits()));
        if let Some(rg) = ring {
            rg.record_at(Stage::Flushed, route.trace, 0, 0, flushed_at);
        }
        let frame = Frame::Logits(InferResponse {
            id: route.wire_id,
            precision: r.precision,
            top1: r.top1,
            logits: r.logits.into_vec(),
        });
        let encoded_at = shared.clock.now();
        if let Some(rg) = ring {
            rg.record_at(Stage::Encoded, route.trace, 0, 0, encoded_at);
        }
        route.conn.send(&frame);
        let sent_at = shared.clock.now();
        if let Some(rg) = ring {
            rg.record_at(Stage::Sent, route.trace, 0, 0, sent_at);
        }
        // ordering: relaxed — metrics counter.
        m.responses_total.fetch_add(1, Ordering::Relaxed);
        if shared.faults.double_ack {
            // Deliberate sabotage knob for the chaos harness's self-test:
            // answer the same admitted request twice so the exactly-once
            // checker (client-side dup detection + conservation_check)
            // must flag it. Never set in production configs.
            route.conn.send(&frame);
            // ordering: relaxed — metrics counter.
            m.responses_total.fetch_add(1, Ordering::Relaxed);
        }
        m.count_precision(r.precision);
        let span = |later: Instant, earlier: Instant| {
            later.saturating_duration_since(earlier).as_nanos() as u64
        };
        let total_ns = span(sent_at, route.enqueued);
        m.record_latency(route.class, total_ns);
        debug_assert_eq!(STAGE_NAMES.len(), 5);
        m.record_stages(
            route.wire_id,
            [
                span(route.window_at, route.enqueued),
                span(route.submitted_at, route.window_at),
                span(flushed_at, route.submitted_at),
                span(sent_at, flushed_at),
                total_ns,
            ],
        );
    }
    let stats = engine.stats();
    let batch_delta = (stats.batches - last_stats.batches) as u64;
    // ordering: relaxed — metrics counter.
    m.batches_total.fetch_add(batch_delta, Ordering::Relaxed);
    // ordering: relaxed — metrics counter.
    m.batch_frames_total.fetch_add(
        (stats.requests - last_stats.requests) as u64,
        Ordering::Relaxed,
    );
    if let Some(rg) = ring {
        rg.record_at(
            Stage::EngineCycle,
            engine.cycles(),
            mix,
            batch_delta as u32,
            flushed_at,
        );
    }
    *last_stats = stats;
}

/// Minimal HTTP/1.0 exposition endpoint: `GET /metrics` answers the
/// Prometheus text format, `GET /trace` the flight recorder's Chrome
/// trace-event JSON (404 when tracing is off), anything else 404. One
/// request per connection.
fn metrics_loop(listener: TcpListener, shared: Arc<Shared>) {
    for stream in listener.incoming() {
        // ordering: SeqCst — stop flag; pairs with the store in finish().
        if shared.stopped.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        best_effort(stream.set_read_timeout(Some(Duration::from_secs(2))));
        serve_scrape(&mut stream, &shared);
    }
}

fn serve_scrape(stream: &mut TcpStream, shared: &Shared) {
    use std::io::{Read, Write};
    let mut buf = [0u8; 4096];
    let mut got = 0;
    // Read until the end of the request headers (or the buffer fills —
    // scrapers send tiny requests).
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => {
                got += n;
                if buf[..got].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&buf[..got]);
    let path = request.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = if path == "/metrics" || path == "/" {
        (
            "200 OK",
            "text/plain; version=0.0.4",
            shared.metrics.render_prometheus(),
        )
    } else if path == "/trace" {
        match &shared.trace {
            Some(sink) => ("200 OK", "application/json", sink.chrome_trace_json()),
            None => (
                "404 Not Found",
                "text/plain; version=0.0.4",
                "tracing disabled\n".to_string(),
            ),
        }
    } else {
        (
            "404 Not Found",
            "text/plain; version=0.0.4",
            "not found\n".to_string(),
        )
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    best_effort(stream.write_all(response.as_bytes()));
}
