//! A minimal blocking wire-protocol client, shared by the load generator,
//! the benchmarks and the integration tests.

use crate::clock;
use crate::wire::{Class, Frame, InferRequest, WireError, WirePolicy};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use tia_tensor::{SeededRng, Tensor};

/// Builds an [`Frame::Infer`] from a `[C, H, W]` tensor (no deadline,
/// normal class — encodes as a v1 frame; see [`infer_frame_with`]).
///
/// # Panics
///
/// Panics if `image` is not 3-D.
pub fn infer_frame(id: u64, image: &Tensor, policy: WirePolicy) -> Frame {
    infer_frame_with(id, image, policy, None, Class::Normal)
}

/// Builds an [`Frame::Infer`] carrying the v2 scheduling fields: a relative
/// response deadline in milliseconds (anchored at server admission) and a
/// priority class.
///
/// # Panics
///
/// Panics if `image` is not 3-D.
pub fn infer_frame_with(
    id: u64,
    image: &Tensor,
    policy: WirePolicy,
    deadline_ms: Option<u32>,
    class: Class,
) -> Frame {
    let s = image.shape();
    assert_eq!(s.len(), 3, "infer_frame expects a [C, H, W] image");
    Frame::Infer(InferRequest {
        id,
        policy,
        deadline_ms,
        class,
        shape: [s[0], s[1], s[2]],
        pixels: image.data().to_vec(),
    })
}

/// A blocking client over one wire-protocol connection. Send and receive
/// are independent, so requests can be pipelined: `send` several, then
/// `recv` the responses as they stream back.
pub struct Client {
    reader: TcpStream,
    writer: TcpStream,
}

impl Client {
    /// Connects to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = writer.try_clone()?;
        Ok(Self { reader, writer })
    }

    /// Connects, retrying with seeded exponential backoff until `timeout`
    /// elapses — for scripts that race a freshly spawned server's bind.
    ///
    /// Each delay doubles from a 5 ms base up to a 200 ms cap and is
    /// jittered uniformly over its upper half, so a herd of clients
    /// spawned together spreads out instead of re-colliding on every
    /// attempt. The jitter stream is seeded from the address, keeping any
    /// one client's retry schedule reproducible run to run.
    pub fn connect_retry(addr: &str, timeout: Duration) -> io::Result<Self> {
        let deadline = clock::monotonic_now() + timeout;
        let mut rng = SeededRng::new(fnv1a(addr.as_bytes()));
        let mut attempt = 0u32;
        loop {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if clock::monotonic_now() >= deadline => return Err(e),
                Err(_) => {
                    let remaining = deadline.saturating_duration_since(clock::monotonic_now());
                    std::thread::sleep(retry_backoff(attempt, &mut rng).min(remaining));
                    attempt = attempt.saturating_add(1);
                }
            }
        }
    }

    /// Writes one frame.
    pub fn send(&mut self, frame: &Frame) -> io::Result<()> {
        frame.write_to(&mut self.writer)
    }

    /// Reads one frame ([`WireError::Closed`] on clean EOF).
    pub fn recv(&mut self) -> Result<Frame, WireError> {
        Frame::read_from(&mut self.reader)
    }

    /// Sends one inference request and blocks for one frame in reply.
    pub fn infer(
        &mut self,
        id: u64,
        image: &Tensor,
        policy: WirePolicy,
    ) -> Result<Frame, WireError> {
        self.send(&infer_frame(id, image, policy))?;
        self.recv()
    }

    /// Round-trips a liveness probe.
    pub fn ping(&mut self) -> Result<(), WireError> {
        self.send(&Frame::Ping)?;
        match self.recv()? {
            Frame::Pong => Ok(()),
            other => Err(WireError::Malformed(frame_name(&other))),
        }
    }

    /// Asks the server to drain and exit, then reads until the
    /// [`Frame::ShutdownAck`] arrives (passing back any in-flight responses
    /// to `on_frame` so pipelined work is not lost). Returns once the ack
    /// is seen.
    pub fn shutdown_server(&mut self, mut on_frame: impl FnMut(Frame)) -> Result<(), WireError> {
        self.send(&Frame::Shutdown)?;
        loop {
            match self.recv()? {
                Frame::ShutdownAck => return Ok(()),
                other => on_frame(other),
            }
        }
    }

    /// Splits into independent read/write halves (for threaded pipelining).
    pub fn into_split(self) -> (TcpStream, TcpStream) {
        (self.reader, self.writer)
    }
}

/// First delay of [`Client::connect_retry`]'s exponential backoff.
const RETRY_BASE: Duration = Duration::from_millis(5);
/// Ceiling the backoff doubles up to.
const RETRY_CAP: Duration = Duration::from_millis(200);

/// The `attempt`-th reconnect delay: `RETRY_BASE << attempt` capped at
/// `RETRY_CAP`, jittered uniformly over the upper half of that span (a
/// full-span jitter could collapse to near-zero sleeps and spin).
fn retry_backoff(attempt: u32, rng: &mut SeededRng) -> Duration {
    let full = RETRY_CAP.min(RETRY_BASE.saturating_mul(1u32 << attempt.min(10)));
    let full_us = full.as_micros() as usize;
    let half_us = full_us / 2;
    Duration::from_micros((half_us + rng.below(full_us - half_us + 1)) as u64)
}

/// FNV-1a over the address bytes: a stable, dependency-free seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn frame_name(f: &Frame) -> &'static str {
    match f {
        Frame::Infer(_) => "unexpected Infer",
        Frame::Logits(_) => "unexpected Logits",
        Frame::Reject { .. } => "unexpected Reject",
        Frame::Error { .. } => "unexpected Error",
        Frame::Ping => "unexpected Ping",
        Frame::Pong => "unexpected Pong",
        Frame::Shutdown => "unexpected Shutdown",
        Frame::ShutdownAck => "unexpected ShutdownAck",
    }
}

/// Fetches the Prometheus text exposition from a server's scrape port
/// (a one-shot HTTP/1.0 GET).
pub fn fetch_metrics<A: ToSocketAddrs>(addr: A) -> io::Result<String> {
    http_get(addr, b"GET /metrics HTTP/1.0\r\nHost: tia-serve\r\n\r\n")
}

/// Fetches the flight recorder's Chrome trace-event JSON from a server's
/// scrape port (the `/trace` path; 404 when tracing is disabled — surfaced
/// here as the body-less error).
pub fn fetch_trace<A: ToSocketAddrs>(addr: A) -> io::Result<String> {
    http_get(addr, b"GET /trace HTTP/1.0\r\nHost: tia-serve\r\n\r\n")
}

fn http_get<A: ToSocketAddrs>(addr: A, request: &[u8]) -> io::Result<String> {
    use std::io::{Read, Write};
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request)?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((_headers, body)) => Ok(body.to_string()),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed HTTP response from scrape endpoint",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_within_jitter_bounds_and_caps() {
        let mut rng = SeededRng::new(1);
        for attempt in 0..12u32 {
            let nominal = RETRY_CAP.min(RETRY_BASE.saturating_mul(1u32 << attempt.min(10)));
            for _ in 0..32 {
                let d = retry_backoff(attempt, &mut rng);
                assert!(
                    d >= nominal / 2 && d <= nominal,
                    "attempt {attempt}: {d:?} outside [{:?}, {nominal:?}]",
                    nominal / 2
                );
            }
        }
        // The cap holds even for absurd attempt counts.
        assert!(retry_backoff(u32::MAX, &mut rng) <= RETRY_CAP);
    }

    #[test]
    fn backoff_schedule_is_reproducible_per_seed() {
        let seed = fnv1a(b"127.0.0.1:7878");
        let (mut a, mut b) = (SeededRng::new(seed), SeededRng::new(seed));
        for attempt in 0..8 {
            assert_eq!(
                retry_backoff(attempt, &mut a),
                retry_backoff(attempt, &mut b)
            );
        }
        // Different addresses give different jitter streams.
        assert_ne!(seed, fnv1a(b"127.0.0.1:7879"));
    }
}
