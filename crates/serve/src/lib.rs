//! # tia-serve
//!
//! The dependency-free TCP serving front-end of the 2-in-1 Accelerator
//! reproduction: a `std::net` server that puts a *network boundary*,
//! backpressure, and live observability in front of the deterministic
//! in-process serving runtime ([`tia_engine::ShardedEngine`]).
//!
//! * [`wire`] — a versioned, length-prefixed binary protocol with explicit
//!   request-id, precision-policy and (frame v2) deadline/priority-class
//!   fields, and strict malformed-frame rejection.
//! * [`server`] — the connection acceptor, per-connection reader threads,
//!   and the deadline-aware EDF batch scheduler that owns the engine's
//!   submit/flush cycle; bounded-queue admission control (503-style
//!   [`wire::RejectCode`] frames), deadline shedding
//!   ([`wire::RejectCode::DeadlineExceeded`]) and graceful drain on
//!   shutdown.
//! * [`control`] — the adaptive precision control loop: a feedback
//!   state machine that watches live pressure (EDF window fill,
//!   deadline-shed fraction, windowed per-class p99) and shifts the
//!   engine's RPS mix toward lower bit-widths under overload, recovering
//!   when pressure clears, with hysteresis bands, a cooldown, and
//!   per-class precision floors that make SLOs first-class.
//! * [`metrics`] — an atomic counter/histogram registry (RPS counters,
//!   queue depth, per-precision batch mix, p50/p99 latency, controller
//!   state) exposed in Prometheus text format on a second port.
//! * [`trace`] — the per-request flight recorder: lock-free per-thread
//!   rings of clock-seam-stamped stage events, reconstructed into
//!   per-request spans and exported as stage-latency histograms, a
//!   [`server::Server::drain_trace`] API, and Chrome trace-event JSON.
//! * [`client`] / [`load`] — a blocking pipelining client plus open- and
//!   closed-loop load generation, shared by the `tia-loadgen` binary, the
//!   benchmarks and the integration tests.
//!
//! The paper's random-precision-switch defense only matters in deployment
//! if the serving surface preserves the seeded precision schedule
//! end-to-end. It does: requests arriving on one connection reach the
//! engine in wire order through a single batcher thread, so TCP-served
//! logits are **bitwise identical** to an in-process
//! [`ShardedEngine`](tia_engine::ShardedEngine) with the same seed fed
//! the same sequence — the loopback integration test enforces exactly
//! this.
//!
//! # Quickstart
//!
//! ```
//! use tia_serve::{Client, Server, ServerConfig, WirePolicy};
//! use tia_engine::{EngineConfig, PrecisionPolicy};
//! use tia_nn::zoo;
//! use tia_quant::PrecisionSet;
//! use tia_tensor::{SeededRng, Tensor};
//!
//! let set = PrecisionSet::range(4, 8);
//! let cfg = ServerConfig::default()
//!     .with_addr("127.0.0.1:0") // pick a free port
//!     .with_workers(2)
//!     .with_input_shape([3, 8, 8])
//!     .with_policy(PrecisionPolicy::Random(set.clone()))
//!     .with_engine(EngineConfig::default().with_max_batch(4).with_seed(7));
//! let server = Server::spawn(cfg, |_| {
//!     zoo::preact_resnet18_rps(3, 4, 10, PrecisionSet::range(4, 8), &mut SeededRng::new(1))
//! })
//! .unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! let image = Tensor::rand_uniform(&[3, 8, 8], 0.0, 1.0, &mut SeededRng::new(2));
//! let reply = client.infer(0, &image, WirePolicy::Server).unwrap();
//! assert!(matches!(reply, tia_serve::Frame::Logits(_)));
//!
//! let engine = server.shutdown(); // graceful drain
//! assert_eq!(engine.stats().requests, 1);
//! ```

#![deny(missing_docs)]

pub mod cli;
pub mod client;
pub mod clock;
pub mod control;
pub mod load;
pub mod metrics;
pub mod server;
pub mod trace;
pub mod wire;

pub use client::{fetch_metrics, fetch_trace, infer_frame, infer_frame_with, Client};
pub use clock::Clock;
pub use control::{ControlConfig, Controller, CycleSample, Decision};
pub use load::{run as run_load, LoadConfig, LoadReport, Ramp, StageBreakdown};
pub use metrics::{ConservationViolation, Histogram, HistogramBaseline, Metrics, MetricsSnapshot};
pub use server::{FaultPlan, Server, ServerConfig};
pub use trace::{Span, SpanEvent, Stage, TraceEvent, TraceSink};
pub use wire::{Class, Frame, InferRequest, InferResponse, RejectCode, WireError, WirePolicy};
