//! `tia-served` — the TCP serving daemon.
//!
//! Builds one RPS model replica per worker shard and serves the wire
//! protocol until a client sends a `Shutdown` frame (graceful drain).
//!
//! ```text
//! tia-served [--addr 127.0.0.1:7878] [--metrics-addr 127.0.0.1:7879]
//!            [--workers N] [--max-batch 8] [--queue-cap 1024]
//!            [--max-wait-ms 0]
//!            [--policy rps4-8|fixedN|fp32] [--seed 7] [--model-seed 1]
//!            [--channels 3] [--image 16] [--width 4] [--classes 10]
//!            [--adaptive] [--floor-interactive N|none]
//!            [--floor-normal N|none] [--floor-batch N|none]
//!            [--p99-budget-ms MS] [--cooldown CYCLES]
//!            [--trace-out FILE] [--kernel scalar|native]
//! ```
//!
//! `--kernel` selects the compute-kernel dispatch mode for every worker
//! shard: `native` (the default) uses the best SIMD backend the host
//! supports plus the true-integer quantized serving path; `scalar` pins
//! the portable reference kernels, reproducing historical logits bit for
//! bit. Overrides the `TIA_KERNEL` environment variable.
//!
//! `--max-wait-ms` is the deadline-aware scheduler's batch-forming wait:
//! how long to hold a partial batch for more arrivals (0 = form
//! immediately). Requests carrying a wire deadline cut the wait short and
//! are shed with `Reject{DeadlineExceeded}` once expired.
//!
//! `--trace-out FILE` arms the flight recorder and, on drain, writes the
//! accumulated Chrome trace-event JSON to `FILE` (load it in
//! `chrome://tracing` or Perfetto). While the server runs the same JSON is
//! live on `http://METRICS_ADDR/trace`.
//!
//! `--adaptive` arms the graceful-degradation controller: under overload
//! the serving RPS mix shifts toward its lower bit-widths (recovering when
//! pressure clears), bounded per class by the `--floor-*` flags — a
//! floored class never serves below its floor. `--p99-budget-ms` sets the
//! interactive class's windowed-p99 SLO budget as an additional pressure
//! signal, and `--cooldown` the post-shift damping in engine cycles.

use tia_engine::EngineConfig;
use tia_nn::zoo;
use tia_quant::PrecisionSet;
use tia_serve::cli::{parse_floor, parse_policy, Args};
use tia_serve::{Class, ControlConfig, Server, ServerConfig};
use tia_tensor::{simd, KernelMode, SeededRng};

fn main() {
    if let Err(e) = run() {
        eprintln!("tia-served: {e}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse(
        &[
            "addr",
            "metrics-addr",
            "workers",
            "max-batch",
            "queue-cap",
            "max-wait-ms",
            "seed",
            "model-seed",
            "channels",
            "image",
            "width",
            "classes",
            "policy",
            "floor-interactive",
            "floor-normal",
            "floor-batch",
            "p99-budget-ms",
            "cooldown",
            "trace-out",
            "kernel",
        ],
        &["adaptive"],
    )?;
    let trace_out = args.get("trace-out").map(str::to_string);
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let metrics_addr = args.get("metrics-addr").unwrap_or("127.0.0.1:7879");
    let workers = args.get_or(
        "workers",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    )?;
    let max_batch: usize = args.get_or("max-batch", 8)?;
    let queue_cap: usize = args.get_or("queue-cap", 1024)?;
    let max_wait_ms: u64 = args.get_or("max-wait-ms", 0)?;
    let seed: u64 = args.get_or("seed", 7)?;
    let model_seed: u64 = args.get_or("model-seed", 1)?;
    let channels: usize = args.get_or("channels", 3)?;
    let image: usize = args.get_or("image", 16)?;
    let width: usize = args.get_or("width", 4)?;
    let classes: usize = args.get_or("classes", 10)?;
    let policy = parse_policy(args.get("policy").unwrap_or("rps4-8"))?;
    let kernel = match args.get("kernel") {
        Some(s) => KernelMode::parse(s)
            .ok_or_else(|| format!("--kernel: expected \"scalar\" or \"native\", got {s:?}"))?,
        None => KernelMode::global_default(),
    };
    let control = if args.has("adaptive") {
        let mut ctrl = ControlConfig::default();
        for (flag, class) in [
            ("floor-interactive", Class::Interactive),
            ("floor-normal", Class::Normal),
            ("floor-batch", Class::Batch),
        ] {
            if let Some(floor) = args.get(flag).map(parse_floor).transpose()?.flatten() {
                ctrl = ctrl.with_floor(class, floor);
            }
        }
        if let Some(ms) = args.get("p99-budget-ms") {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("--p99-budget-ms: could not parse {ms:?}"))?;
            ctrl = ctrl.with_p99_budget(Class::Interactive, std::time::Duration::from_millis(ms));
        }
        let cooldown = args.get_or("cooldown", ctrl.cooldown)?;
        ctrl = ctrl.with_cooldown(cooldown);
        Some(ctrl)
    } else {
        for flag in ["floor-interactive", "floor-normal", "floor-batch"] {
            if args.get(flag).is_some() {
                return Err(format!("--{flag} needs --adaptive"));
            }
        }
        None
    };

    // The model's switchable-BN banks need a candidate set covering every
    // precision the policy can select; fp32 service still runs fine on an
    // RPS model (precision `None` bypasses quantization).
    let bn_set = match &policy {
        tia_engine::PrecisionPolicy::Random(set) | tia_engine::PrecisionPolicy::Adaptive(set) => {
            set.clone()
        }
        tia_engine::PrecisionPolicy::Fixed(Some(p)) => PrecisionSet::new(&[p.bits()]),
        tia_engine::PrecisionPolicy::Fixed(None) => PrecisionSet::range(4, 8),
    };

    let mut cfg = ServerConfig::default()
        .with_addr(addr)
        .with_metrics_addr(metrics_addr)
        .with_workers(workers)
        .with_queue_capacity(queue_cap)
        .with_max_wait(std::time::Duration::from_millis(max_wait_ms))
        .with_input_shape([channels, image, image])
        .with_policy(policy.clone())
        .with_engine(
            EngineConfig::default()
                .with_max_batch(max_batch)
                .with_seed(seed)
                .with_kernel(kernel),
        );
    if let Some(ctrl) = control.clone() {
        cfg = cfg.with_control(ctrl);
    }
    if trace_out.is_some() {
        cfg = cfg.with_trace();
    }

    let server = Server::spawn(cfg, |_| {
        zoo::preact_resnet18_rps(
            channels,
            width,
            classes,
            bn_set.clone(),
            &mut SeededRng::new(model_seed),
        )
    })
    .map_err(|e| format!("could not bind: {e}"))?;

    println!(
        "tia-served: serving [{}x{}x{}] under {} on {} ({} worker shard(s), max batch {}, queue {}, max wait {} ms)",
        channels, image, image, policy, server.addr(), workers, max_batch, queue_cap, max_wait_ms
    );
    match kernel {
        KernelMode::Native => println!(
            "tia-served: kernel dispatch: native ({} backend)",
            simd::detect_name()
        ),
        KernelMode::Scalar => {
            println!("tia-served: kernel dispatch: scalar (pinned reference kernels)")
        }
    }
    if let Some(ctrl) = &control {
        let floor = |c: Class| {
            ctrl.floor_for(c)
                .map_or("none".to_string(), |f| f.to_string())
        };
        println!(
            "tia-served: adaptive control armed (cooldown {} cycle(s); floors: interactive {}, normal {}, batch {})",
            ctrl.cooldown,
            floor(Class::Interactive),
            floor(Class::Normal),
            floor(Class::Batch),
        );
    }
    if let Some(m) = server.metrics_addr() {
        println!("tia-served: Prometheus metrics on http://{m}/metrics");
        if trace_out.is_some() {
            println!("tia-served: flight recorder armed; live trace on http://{m}/trace");
        }
    }
    println!("tia-served: send a Shutdown frame (tia-loadgen --shutdown) to drain and exit");

    let sink = server.trace_handle();
    let engine = server.wait();
    let stats = engine.stats();
    println!(
        "tia-served: drained; served {} request(s) in {} batch(es)",
        stats.requests, stats.batches
    );
    if let (Some(file), Some(sink)) = (trace_out, sink) {
        std::fs::write(&file, sink.chrome_trace_json())
            .map_err(|e| format!("could not write trace to {file}: {e}"))?;
        println!(
            "tia-served: wrote {} trace event(s) ({} request id(s), {} overwritten) to {file}",
            sink.drain().len(),
            sink.issued_ids(),
            sink.overwritten()
        );
    }
    Ok(())
}
