//! `tia-loadgen` — open- and closed-loop load generator for `tia-served`.
//!
//! ```text
//! tia-loadgen [--addr 127.0.0.1:7878] [--mode closed|open]
//!             [--conns 1] [--requests 64] [--inflight 8] [--rate 500]
//!             [--shape 3,16,16] [--seed 1] [--policy server|fp32|fixedN|rpsLO-HI]
//!             [--deadline-ms N] [--class normal|interactive|batch]
//!             [--ramp flat|linear:PEAK|square:PEAK:PERIOD] [--retry-rejects]
//!             [--connect-timeout-secs 30] [--metrics-addr HOST:PORT]
//!             [--trace FILE] [--ping] [--shutdown]
//! ```
//!
//! `--ping` just probes liveness and exits. `--shutdown` asks the server
//! to drain and exit after the load completes, and waits for the
//! acknowledgement (the CI loopback smoke test relies on this to assert a
//! clean shutdown). `--metrics-addr` fetches and prints the server's
//! Prometheus text at the end of the run — when the server's flight
//! recorder is on, the run summary also breaks the client-observed
//! latency down by server-side stage from the scraped stage histograms.
//! `--trace FILE` (needs `--metrics-addr`) additionally fetches the
//! server's Chrome trace-event JSON from `/trace` and writes it to
//! `FILE` for chrome://tracing / Perfetto. `--deadline-ms` attaches a
//! relative deadline to every request (frame v2): under overload the
//! server sheds expired requests with `Reject{DeadlineExceeded}`, which
//! the report counts as deadline-shed rejects, not errors. `--class` sets
//! the scheduling priority class.
//!
//! Open loop only: `--ramp` shapes the arrival rate over the run (a
//! `linear` climb walks the server into overload, a `square` wave storms
//! and clears it), and `--retry-rejects` resends queue-full rejects on a
//! bounded backoff, with resends and exhausted retries ("gave up")
//! reported separately from deadline sheds.

use std::time::Duration;
use tia_serve::cli::{parse_class, parse_ramp, parse_shape, parse_wire_policy, Args};
use tia_serve::{fetch_metrics, fetch_trace, run_load, Client, LoadConfig, StageBreakdown};

fn main() {
    if let Err(e) = run() {
        eprintln!("tia-loadgen: {e}");
        std::process::exit(2);
    }
}

fn run() -> Result<(), String> {
    let args = Args::parse(
        &[
            "addr",
            "metrics-addr",
            "mode",
            "conns",
            "requests",
            "inflight",
            "rate",
            "shape",
            "seed",
            "policy",
            "deadline-ms",
            "class",
            "ramp",
            "connect-timeout-secs",
            "trace",
        ],
        &["ping", "shutdown", "retry-rejects"],
    )?;
    if args.get("trace").is_some() && args.get("metrics-addr").is_none() {
        return Err(
            "--trace needs --metrics-addr (the trace lives on the scrape port)".to_string(),
        );
    }
    let addr = args.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let mode = args.get("mode").unwrap_or("closed");
    let connect_timeout: u64 = args.get_or("connect-timeout-secs", 30)?;
    let rate: Option<f64> = match mode {
        "closed" => None,
        "open" => Some(args.get_or("rate", 200.0)?),
        other => return Err(format!("bad mode {other:?}, expected closed or open")),
    };

    // Wait for the server to come up (the CI script starts it in the
    // background and races its bind).
    let mut probe = Client::connect_retry(&addr, Duration::from_secs(connect_timeout))
        .map_err(|e| format!("could not connect to {addr}: {e}"))?;
    probe.ping().map_err(|e| format!("ping failed: {e}"))?;
    if args.has("ping") {
        println!("tia-loadgen: {addr} is alive");
        return Ok(());
    }
    drop(probe);

    let cfg = LoadConfig {
        addr: addr.clone(),
        connections: args.get_or("conns", 1)?,
        requests: args.get_or("requests", 64)?,
        inflight: args.get_or("inflight", 8)?,
        rate,
        shape: parse_shape(args.get("shape").unwrap_or("3,16,16"))?,
        seed: args.get_or("seed", 1)?,
        policy: parse_wire_policy(args.get("policy").unwrap_or("server"))?,
        deadline_ms: match args.get("deadline-ms") {
            None => None,
            Some(v) => {
                let ms: u32 = v
                    .parse()
                    .map_err(|_| format!("--deadline-ms: could not parse {v:?}"))?;
                if ms == 0 {
                    return Err("--deadline-ms must be >= 1 (0 means no deadline)".to_string());
                }
                Some(ms)
            }
        },
        class: parse_class(args.get("class").unwrap_or("normal"))?,
        retry_rejects: args.has("retry-rejects"),
        ramp: parse_ramp(args.get("ramp").unwrap_or("flat"))?,
    };
    if (cfg.retry_rejects || cfg.ramp != tia_serve::Ramp::Flat) && cfg.rate.is_none() {
        return Err(
            "--retry-rejects and --ramp are open-loop options (use --mode open)".to_string(),
        );
    }
    let mut report = run_load(&cfg).map_err(|e| format!("load run failed: {e}"))?;

    // Scrape before printing the summary so the server-side stage
    // breakdown (flight recorder histograms) rides along with the
    // client-observed latency line.
    let metrics_text = args.get("metrics-addr").map(|metrics_addr| {
        let text = fetch_metrics(metrics_addr);
        if let Ok(text) = &text {
            report.server_stages = StageBreakdown::from_prometheus(text);
        }
        text
    });

    println!(
        "tia-loadgen: {} loop, {} conn(s): {}",
        if cfg.rate.is_some() { "open" } else { "closed" },
        cfg.connections,
        report.summary()
    );

    if let Some(fetched) = metrics_text {
        match fetched {
            Ok(text) => println!("--- server metrics ---\n{text}"),
            Err(e) => eprintln!("tia-loadgen: metrics fetch failed: {e}"),
        }
    }

    if let (Some(file), Some(metrics_addr)) = (args.get("trace"), args.get("metrics-addr")) {
        let json = fetch_trace(metrics_addr).map_err(|e| format!("trace fetch failed: {e}"))?;
        std::fs::write(file, &json).map_err(|e| format!("could not write trace to {file}: {e}"))?;
        println!(
            "tia-loadgen: wrote {} byte(s) of Chrome trace JSON to {file}",
            json.len()
        );
    }

    if args.has("shutdown") {
        let mut client = Client::connect(&addr).map_err(|e| format!("reconnect failed: {e}"))?;
        client
            .shutdown_server(|_| {})
            .map_err(|e| format!("shutdown handshake failed: {e}"))?;
        println!("tia-loadgen: server acknowledged shutdown and drained");
    }

    if report.errors > 0 {
        return Err(format!("{} request(s) errored", report.errors));
    }
    Ok(())
}
