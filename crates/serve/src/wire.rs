//! The versioned, length-prefixed binary wire protocol.
//!
//! # Frame layout
//!
//! Every frame is a 12-byte header followed by a kind-specific payload; all
//! multi-byte integers are little-endian, all floats are IEEE-754 `f32`
//! bit patterns:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"TIAS"
//! 4       1     version = 1 or 2 (per frame; see versioning below)
//! 5       1     kind (see below)
//! 6       2     reserved, must be 0
//! 8       4     payload length in bytes (u32 LE, <= 64 MiB)
//! 12      ...   payload
//! ```
//!
//! | kind | frame | payload |
//! |---|---|---|
//! | 1 | `Infer` (v1) | `id: u64`, policy, `shape: 3 × u32`, `C·H·W × f32` pixels |
//! | 1 | `Infer` (v2) | `id: u64`, `deadline_ms: u32` (0 = none), `class: u8`, policy, shape, pixels |
//! | 2 | `Logits` | `id: u64`, `precision: u8`, `top1: u32`, `n: u32`, `n × f32` |
//! | 3 | `Reject` | `id: u64`, `code: u8` — admission control (503-style) |
//! | 4 | `Error` | `msg: u16 len + UTF-8` — protocol violation, stream is dead |
//! | 5 | `Ping` | empty |
//! | 6 | `Pong` | empty |
//! | 7 | `Shutdown` | empty — ask the server to drain and exit |
//! | 8 | `ShutdownAck` | empty — drain complete, connection closes next |
//!
//! # Versioning
//!
//! The version byte is per *frame*, not per connection. Version 2 extends
//! only the `Infer` payload with two scheduling fields immediately after
//! the request id: a **relative deadline** in milliseconds (`u32`, `0` =
//! no deadline, anchored at server admission) and a **priority class**
//! (`0` = normal, `1` = interactive, `2` = batch). Every other kind has
//! the same payload layout under both versions.
//!
//! Compatibility rule: decoders accept both versions — a v1 `Infer` frame
//! decodes as "no deadline, normal class". Encoders emit the lowest
//! version that can represent the frame: an `Infer` with no deadline and
//! normal class is encoded as v1 (byte-identical to protocol-v1 peers),
//! anything carrying scheduling fields as v2.
//!
//! Precisions on the wire are a single `u8`: `0` = full precision (fp32),
//! `1..=16` = quantized bit-width. The request's *policy* field selects how
//! the serving precision is chosen: `0` = the server's own seeded policy
//! schedule, `1` + precision byte = pinned, `2` + `count` + `count` bit
//! bytes = a random draw from an explicit candidate set.
//!
//! Decoding is strict: bad magic, unknown version or kind, oversized or
//! truncated payloads, out-of-range precisions or classes, length
//! mismatches and trailing bytes are all rejected with a typed
//! [`WireError`] — a malformed frame can cost the sender its connection,
//! never the server its process.

use std::io::{Read, Write};
use tia_quant::{Precision, PrecisionSet};

/// First four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"TIAS";
/// Highest protocol version this build speaks (frame v2: per-request
/// deadline and priority class on `Infer`).
pub const VERSION: u8 = 2;
/// Lowest protocol version still accepted (v1 `Infer` frames decode as
/// "no deadline, normal class").
pub const MIN_VERSION: u8 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 12;
/// Hard cap on a frame's payload; larger length fields are rejected before
/// any allocation happens.
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Why a frame could not be decoded.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the stream cleanly at a frame boundary.
    Closed,
    /// The stream ended (or the buffer ran out) mid-frame.
    Truncated,
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unknown protocol version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
    /// The header's payload length exceeds [`MAX_PAYLOAD`].
    Oversize(usize),
    /// The payload failed validation (reason attached).
    Malformed(&'static str),
    /// The underlying transport failed.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:?}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversize(n) => write!(f, "payload of {n} bytes exceeds cap"),
            WireError::Malformed(why) => write!(f, "malformed payload: {why}"),
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// How the server picks the execution precision for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WirePolicy {
    /// Follow the server's configured [`tia_engine::PrecisionPolicy`] and
    /// its seeded schedule — the default, and the only mode that preserves
    /// the engine's deterministic precision-switch schedule end-to-end.
    Server,
    /// Pin the request to an explicit precision (`None` = full precision).
    /// Pinned requests consume no draw from the server's schedule.
    Fixed(Option<Precision>),
    /// Ask the server to draw uniformly from an explicit candidate set
    /// (sampled from the server's request-policy RNG stream, then pinned).
    Random(PrecisionSet),
}

/// Why a request was refused by admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// The bounded request queue is full — back off and retry (the wire
    /// analogue of HTTP 503).
    QueueFull = 1,
    /// The server is draining for shutdown and admits no new work.
    Draining = 2,
    /// The image shape is not the geometry this server serves.
    BadShape = 3,
    /// The request's deadline expired before it reached the engine; the
    /// scheduler shed it instead of wasting engine cycles on an answer
    /// that is already too late (the wire analogue of HTTP 504).
    DeadlineExceeded = 4,
}

impl RejectCode {
    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            1 => Ok(RejectCode::QueueFull),
            2 => Ok(RejectCode::Draining),
            3 => Ok(RejectCode::BadShape),
            4 => Ok(RejectCode::DeadlineExceeded),
            _ => Err(WireError::Malformed("unknown reject code")),
        }
    }
}

/// A request's scheduling priority class. Classes partition the scheduler's
/// earliest-deadline-first order: every `Interactive` request is batched
/// before any `Normal` one, which beats any `Batch` one; within a class,
/// earlier deadlines go first and deadline-less requests keep FIFO order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Class {
    /// The default class (wire byte `0`) — and the only one a v1 frame can
    /// express.
    #[default]
    Normal,
    /// Latency-sensitive traffic, scheduled ahead of `Normal` (wire `1`).
    Interactive,
    /// Throughput traffic, scheduled behind `Normal` (wire `2`).
    Batch,
}

impl Class {
    /// The wire byte for this class.
    pub fn as_u8(self) -> u8 {
        match self {
            Class::Normal => 0,
            Class::Interactive => 1,
            Class::Batch => 2,
        }
    }

    /// Scheduling rank: lower runs first (`Interactive` < `Normal` <
    /// `Batch`).
    pub fn rank(self) -> u8 {
        match self {
            Class::Interactive => 0,
            Class::Normal => 1,
            Class::Batch => 2,
        }
    }

    /// The metrics label for this class.
    pub fn label(self) -> &'static str {
        match self {
            Class::Normal => "normal",
            Class::Interactive => "interactive",
            Class::Batch => "batch",
        }
    }

    /// All classes, in wire-byte order (slot `i` has wire byte `i`).
    pub const ALL: [Class; 3] = [Class::Normal, Class::Interactive, Class::Batch];

    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            0 => Ok(Class::Normal),
            1 => Ok(Class::Interactive),
            2 => Ok(Class::Batch),
            _ => Err(WireError::Malformed("unknown priority class")),
        }
    }
}

/// An inference request: caller-chosen id, precision policy, and one
/// `[C, H, W]` image.
#[derive(Debug, Clone, PartialEq)]
pub struct InferRequest {
    /// Caller-chosen correlation id, echoed verbatim in the response.
    pub id: u64,
    /// How the serving precision is chosen.
    pub policy: WirePolicy,
    /// Relative response deadline in milliseconds, anchored at server
    /// admission; `None` = serve whenever. A request whose deadline expires
    /// before it reaches the engine is shed with
    /// [`RejectCode::DeadlineExceeded`]. (`Some(0)` is not representable on
    /// the wire — the zero byte means "no deadline" — and round-trips as
    /// `None`.)
    pub deadline_ms: Option<u32>,
    /// Scheduling priority class (v1 frames always carry [`Class::Normal`]).
    pub class: Class,
    /// Image geometry `[C, H, W]`.
    pub shape: [usize; 3],
    /// Row-major pixel data, exactly `C·H·W` values.
    pub pixels: Vec<f32>,
}

impl InferRequest {
    /// Whether this request needs the v2 payload layout (any scheduling
    /// field set); otherwise it encodes as v1 for compatibility.
    fn needs_v2(&self) -> bool {
        self.deadline_ms.unwrap_or(0) != 0 || self.class != Class::Normal
    }
}

/// A completed inference: logits, top-1 class, and the precision the
/// request actually executed at.
#[derive(Debug, Clone, PartialEq)]
pub struct InferResponse {
    /// The id of the matching [`InferRequest`].
    pub id: u64,
    /// Executed precision (`None` = full precision).
    pub precision: Option<Precision>,
    /// Top-1 predicted class.
    pub top1: usize,
    /// Class logits.
    pub logits: Vec<f32>,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// An inference request (client → server).
    Infer(InferRequest),
    /// An inference response (server → client).
    Logits(InferResponse),
    /// Admission-control refusal for request `id` (server → client).
    Reject {
        /// The refused request's id.
        id: u64,
        /// Why it was refused.
        code: RejectCode,
    },
    /// Protocol violation report; the server closes the connection after
    /// sending one (stream framing can no longer be trusted).
    Error {
        /// Human-readable description of the violation.
        msg: String,
    },
    /// Liveness probe (client → server).
    Ping,
    /// Liveness reply (server → client).
    Pong,
    /// Ask the server to drain queued work and exit (client → server).
    Shutdown,
    /// Drain complete; the server closes the connection next.
    ShutdownAck,
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Infer(_) => 1,
            Frame::Logits(_) => 2,
            Frame::Reject { .. } => 3,
            Frame::Error { .. } => 4,
            Frame::Ping => 5,
            Frame::Pong => 6,
            Frame::Shutdown => 7,
            Frame::ShutdownAck => 8,
        }
    }

    /// The lowest protocol version that can represent this frame: only an
    /// [`Frame::Infer`] carrying a deadline or a non-default class needs v2.
    fn version(&self) -> u8 {
        match self {
            Frame::Infer(req) if req.needs_v2() => 2,
            _ => 1,
        }
    }

    /// Serializes the frame (header + payload) into a fresh buffer, at the
    /// lowest protocol version that can represent it (see the
    /// [module docs](self) on versioning).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            Frame::Infer(req) => {
                payload.extend_from_slice(&req.id.to_le_bytes());
                if req.needs_v2() {
                    payload.extend_from_slice(&req.deadline_ms.unwrap_or(0).to_le_bytes());
                    payload.push(req.class.as_u8());
                }
                encode_policy(&req.policy, &mut payload);
                for &d in &req.shape {
                    payload.extend_from_slice(&(d as u32).to_le_bytes());
                }
                for &v in &req.pixels {
                    payload.extend_from_slice(&v.to_le_bytes());
                }
            }
            Frame::Logits(resp) => {
                payload.extend_from_slice(&resp.id.to_le_bytes());
                payload.push(precision_byte(resp.precision));
                payload.extend_from_slice(&(resp.top1 as u32).to_le_bytes());
                payload.extend_from_slice(&(resp.logits.len() as u32).to_le_bytes());
                for &v in &resp.logits {
                    payload.extend_from_slice(&v.to_le_bytes());
                }
            }
            Frame::Reject { id, code } => {
                payload.extend_from_slice(&id.to_le_bytes());
                payload.push(*code as u8);
            }
            Frame::Error { msg } => {
                let bytes = msg.as_bytes();
                let n = bytes.len().min(u16::MAX as usize);
                payload.extend_from_slice(&(n as u16).to_le_bytes());
                payload.extend_from_slice(&bytes[..n]);
            }
            Frame::Ping | Frame::Pong | Frame::Shutdown | Frame::ShutdownAck => {}
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(self.version());
        out.push(self.kind());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes one frame from the front of `buf`, returning it and the
    /// number of bytes consumed. A buffer shorter than a full frame yields
    /// [`WireError::Truncated`].
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let payload_len = check_header(&buf[..HEADER_LEN])?;
        if buf.len() < HEADER_LEN + payload_len {
            return Err(WireError::Truncated);
        }
        let frame = decode_payload(buf[4], buf[5], &buf[HEADER_LEN..HEADER_LEN + payload_len])?;
        Ok((frame, HEADER_LEN + payload_len))
    }

    /// Writes the frame to a stream.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(&self.encode())
    }

    /// Reads exactly one frame from a stream. A clean EOF *before* any
    /// header byte is [`WireError::Closed`]; an EOF mid-frame is
    /// [`WireError::Truncated`].
    pub fn read_from<R: Read>(r: &mut R) -> Result<Frame, WireError> {
        let mut header = [0u8; HEADER_LEN];
        let mut got = 0;
        while got < HEADER_LEN {
            match r.read(&mut header[got..]) {
                Ok(0) if got == 0 => return Err(WireError::Closed),
                Ok(0) => return Err(WireError::Truncated),
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(WireError::Io(e)),
            }
        }
        let payload_len = check_header(&header)?;
        let mut payload = vec![0u8; payload_len];
        r.read_exact(&mut payload).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                WireError::Truncated
            } else {
                WireError::Io(e)
            }
        })?;
        decode_payload(header[4], header[5], &payload)
    }
}

/// Validates a 12-byte header, returning the payload length.
fn check_header(h: &[u8]) -> Result<usize, WireError> {
    if h[..4] != MAGIC {
        return Err(WireError::BadMagic([h[0], h[1], h[2], h[3]]));
    }
    if !(MIN_VERSION..=VERSION).contains(&h[4]) {
        return Err(WireError::BadVersion(h[4]));
    }
    if !(1..=8).contains(&h[5]) {
        return Err(WireError::BadKind(h[5]));
    }
    if h[6] != 0 || h[7] != 0 {
        return Err(WireError::Malformed("reserved header bytes set"));
    }
    let payload_len = u32::from_le_bytes([h[8], h[9], h[10], h[11]]) as usize;
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversize(payload_len));
    }
    Ok(payload_len)
}

fn decode_payload(version: u8, kind: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor::new(payload);
    let frame = match kind {
        1 => {
            let id = c.u64()?;
            // v2 inserts the scheduling fields right after the id; a v1
            // frame simply has neither: no deadline, normal class.
            let (deadline_ms, class) = if version >= 2 {
                let ms = c.u32()?;
                let class = Class::from_u8(c.u8()?)?;
                (if ms == 0 { None } else { Some(ms) }, class)
            } else {
                (None, Class::Normal)
            };
            let policy = decode_policy(&mut c)?;
            let shape = [c.u32()? as usize, c.u32()? as usize, c.u32()? as usize];
            // Hostile dimensions must not overflow the element count; any
            // shape larger than the payload cap is malformed regardless.
            let n = shape
                .iter()
                .try_fold(1usize, |acc, &d| acc.checked_mul(d))
                .filter(|&n| n <= MAX_PAYLOAD / 4)
                .ok_or(WireError::Malformed("image shape overflows payload cap"))?;
            if n == 0 {
                return Err(WireError::Malformed("empty image shape"));
            }
            if c.remaining() != n * 4 {
                return Err(WireError::Malformed("pixel count does not match shape"));
            }
            let pixels = c.f32s(n)?;
            Frame::Infer(InferRequest {
                id,
                policy,
                deadline_ms,
                class,
                shape,
                pixels,
            })
        }
        2 => {
            let id = c.u64()?;
            let precision = parse_precision(c.u8()?)?;
            let top1 = c.u32()? as usize;
            let n = c.u32()? as usize;
            if n > MAX_PAYLOAD / 4 || c.remaining() != n * 4 {
                return Err(WireError::Malformed("logit count does not match header"));
            }
            let logits = c.f32s(n)?;
            Frame::Logits(InferResponse {
                id,
                precision,
                top1,
                logits,
            })
        }
        3 => Frame::Reject {
            id: c.u64()?,
            code: RejectCode::from_u8(c.u8()?)?,
        },
        4 => {
            let n = c.u16()? as usize;
            if c.remaining() != n {
                return Err(WireError::Malformed("error message length mismatch"));
            }
            let msg = String::from_utf8(c.bytes(n)?.to_vec())
                .map_err(|_| WireError::Malformed("error message is not UTF-8"))?;
            Frame::Error { msg }
        }
        5 => Frame::Ping,
        6 => Frame::Pong,
        7 => Frame::Shutdown,
        8 => Frame::ShutdownAck,
        other => return Err(WireError::BadKind(other)),
    };
    if c.remaining() != 0 {
        return Err(WireError::Malformed("trailing bytes after payload"));
    }
    Ok(frame)
}

/// `None` ⇒ 0, `Some(p)` ⇒ `p.bits()`.
fn precision_byte(p: Option<Precision>) -> u8 {
    p.map_or(0, |p| p.bits())
}

fn parse_precision(b: u8) -> Result<Option<Precision>, WireError> {
    match b {
        0 => Ok(None),
        1..=16 => Ok(Some(Precision::new(b))),
        _ => Err(WireError::Malformed("precision out of range")),
    }
}

fn encode_policy(policy: &WirePolicy, out: &mut Vec<u8>) {
    match policy {
        WirePolicy::Server => out.push(0),
        WirePolicy::Fixed(p) => {
            out.push(1);
            out.push(precision_byte(*p));
        }
        WirePolicy::Random(set) => {
            out.push(2);
            out.push(set.len() as u8);
            for p in set.iter() {
                out.push(p.bits());
            }
        }
    }
}

fn decode_policy(c: &mut Cursor<'_>) -> Result<WirePolicy, WireError> {
    match c.u8()? {
        0 => Ok(WirePolicy::Server),
        1 => Ok(WirePolicy::Fixed(parse_precision(c.u8()?)?)),
        2 => {
            let n = c.u8()? as usize;
            if n == 0 {
                return Err(WireError::Malformed("empty precision set"));
            }
            let mut bits = Vec::with_capacity(n);
            for _ in 0..n {
                let b = c.u8()?;
                if !(1..=16).contains(&b) {
                    return Err(WireError::Malformed("precision out of range"));
                }
                bits.push(b);
            }
            Ok(WirePolicy::Random(PrecisionSet::new(&bits)))
        }
        _ => Err(WireError::Malformed("unknown policy tag")),
    }
}

/// Bounds-checked little-endian payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, WireError> {
        let b = self.bytes(n * 4)?;
        Ok(b.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_frames_round_trip() {
        for f in [
            Frame::Ping,
            Frame::Pong,
            Frame::Shutdown,
            Frame::ShutdownAck,
        ] {
            let bytes = f.encode();
            assert_eq!(bytes.len(), HEADER_LEN);
            let (back, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(back, f);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn stream_read_matches_slice_decode() {
        let f = Frame::Reject {
            id: 9,
            code: RejectCode::QueueFull,
        };
        let bytes = f.encode();
        let mut r = &bytes[..];
        assert_eq!(Frame::read_from(&mut r).unwrap(), f);
        // And a clean EOF afterwards.
        assert!(matches!(Frame::read_from(&mut r), Err(WireError::Closed)));
    }

    #[test]
    fn oversize_length_is_rejected_before_allocation() {
        let mut bytes = Frame::Ping.encode();
        bytes[8..12].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(Frame::decode(&bytes), Err(WireError::Oversize(_))));
    }

    #[test]
    fn error_frame_carries_message() {
        let f = Frame::Error {
            msg: "bad shape".into(),
        };
        let (back, _) = Frame::decode(&f.encode()).unwrap();
        assert_eq!(back, f);
    }
}
