//! Open- and closed-loop load generation against a wire-protocol server.
//!
//! *Closed loop* keeps a fixed number of requests in flight per connection
//! (throughput-seeking: measures the server's sustainable RPS at that
//! concurrency). *Open loop* fires at a fixed target rate regardless of
//! completions (latency-seeking: measures what queueing does to p50/p99,
//! and how admission control sheds overload). Both report end-to-end
//! latency through the same [`Histogram`] the server's metrics use.

use crate::client::{infer_frame_with, Client};
use crate::clock;
use crate::metrics::Histogram;
use crate::server::best_effort;
use crate::wire::{Class, Frame, RejectCode, WirePolicy};
use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tia_tensor::{SeededRng, Tensor};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Closed loop: in-flight requests per connection.
    pub inflight: usize,
    /// Open loop: total target request rate in req/s across all
    /// connections; `None` selects the closed loop.
    pub rate: Option<f64>,
    /// Image geometry sent with every request.
    pub shape: [usize; 3],
    /// Seed for the synthetic request images.
    pub seed: u64,
    /// Precision policy attached to every request.
    pub policy: WirePolicy,
    /// Relative deadline attached to every request (`None` = no deadline);
    /// the server sheds requests whose deadline expires before execution
    /// with [`RejectCode::DeadlineExceeded`].
    pub deadline_ms: Option<u32>,
    /// Scheduling class attached to every request.
    pub class: Class,
    /// Open loop only: resend requests rejected with
    /// [`RejectCode::QueueFull`], up to [`RETRY_MAX_ATTEMPTS`] times each
    /// with exponential backoff, instead of settling them as rejected.
    /// Resends are reported separately ([`LoadReport::retried`]) and a
    /// request whose budget runs out counts as
    /// [`LoadReport::retry_gave_up`] — distinct from requests the server
    /// *shed* on deadline. [`run`] refuses this flag in the closed loop,
    /// where the in-flight window already retries by construction.
    pub retry_rejects: bool,
    /// Open loop only: the arrival-rate shape over the run (defaults to
    /// [`Ramp::Flat`]).
    pub ramp: Ramp,
}

/// The open loop's arrival-rate shape across the run — the configured
/// `rate` times [`Ramp::multiplier`] at each send tick. The non-flat
/// shapes exist to exercise the server's overload path: a linear ramp
/// walks it into saturation, a square wave storms and clears it to probe
/// controller hysteresis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ramp {
    /// Constant rate for the whole run (the default).
    Flat,
    /// Linear climb from the configured rate at the first request to
    /// `peak ×` it at the last.
    Linear {
        /// Rate multiplier reached at the end of the run.
        peak: f64,
    },
    /// Alternates `period` requests at the configured rate with `period`
    /// requests at `peak ×` it.
    Square {
        /// Rate multiplier during the storm half of each wave.
        peak: f64,
        /// Requests per half-wave (clamped to at least 1).
        period: u32,
    },
}

impl Ramp {
    /// The rate multiplier for send tick `tick` of a `total`-request run.
    pub fn multiplier(&self, tick: u64, total: u64) -> f64 {
        match self {
            Ramp::Flat => 1.0,
            Ramp::Linear { peak } => {
                let progress = if total <= 1 {
                    1.0
                } else {
                    tick as f64 / (total - 1) as f64
                };
                1.0 + (peak - 1.0) * progress
            }
            Ramp::Square { peak, period } => {
                if (tick / u64::from((*period).max(1))).is_multiple_of(2) {
                    1.0
                } else {
                    *peak
                }
            }
        }
    }
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            connections: 1,
            requests: 64,
            inflight: 8,
            rate: None,
            shape: [3, 16, 16],
            seed: 1,
            policy: WirePolicy::Server,
            deadline_ms: None,
            class: Class::Normal,
            retry_rejects: false,
            ramp: Ramp::Flat,
        }
    }
}

/// Aggregate result of one load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests written to the wire.
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Admission-control rejections (queue full / draining / bad shape /
    /// deadline exceeded).
    pub rejected: u64,
    /// The subset of `rejected` shed as [`RejectCode::DeadlineExceeded`].
    pub rejected_deadline: u64,
    /// Transport or protocol errors (requests with no usable answer).
    pub errors: u64,
    /// Open loop with [`LoadConfig::retry_rejects`]: queue-full resends
    /// written to the wire (not counted in `sent`, which tracks unique
    /// requests).
    pub retried: u64,
    /// The subset of `rejected` that exhausted its queue-full retry budget
    /// — "gave up", as opposed to deadline-"shed".
    pub retry_gave_up: u64,
    /// Open loop only: scheduled send ticks skipped after a stall instead
    /// of being fired as an infinite-rate catch-up burst (the coordinated
    /// omission guard). Zero means the sender held its rate throughout.
    pub ticks_skipped: u64,
    /// Open loop only: the worst observed intended-send vs actual-send
    /// skew (how late a request was written relative to its schedule).
    pub max_send_lag: Duration,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// End-to-end (send → response read) latency of successful responses.
    pub latency: Histogram,
    /// Server-side stage breakdown scraped after the run (`None` when the
    /// scrape endpoint was not polled or the server's flight recorder is
    /// off). Filled by the caller — [`run`] itself never scrapes.
    pub server_stages: Option<StageBreakdown>,
}

/// Server-side mean latency per pipeline stage, parsed from the
/// `tia_serve_stage_seconds` family of a Prometheus exposition (the flight
/// recorder's stage histograms). Printed next to the client-observed
/// latency, it shows where the time went *inside* the server: queueing,
/// EDF window wait, engine execution, or response encode/send.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageBreakdown {
    /// `(stage, mean_seconds, samples)` in exposition order; the `total`
    /// stage (the whole admitted-to-sent span) comes last.
    pub stages: Vec<(String, f64, u64)>,
}

impl StageBreakdown {
    /// Extracts the breakdown from a Prometheus text exposition. Returns
    /// `None` when no stage recorded a sample (tracing off, or nothing
    /// served yet).
    pub fn from_prometheus(text: &str) -> Option<Self> {
        let mut sums: Vec<(String, f64)> = Vec::new();
        let mut counts: Vec<(String, u64)> = Vec::new();
        for line in text.lines() {
            if let Some((stage, v)) = stage_sample(line, "tia_serve_stage_seconds_sum") {
                sums.push((stage.to_string(), v));
            } else if let Some((stage, v)) = stage_sample(line, "tia_serve_stage_seconds_count") {
                counts.push((stage.to_string(), v as u64));
            }
        }
        let stages: Vec<(String, f64, u64)> = sums
            .into_iter()
            .filter_map(|(stage, sum)| {
                let n = counts.iter().find(|(s, _)| *s == stage).map(|(_, n)| *n)?;
                (n > 0).then_some((stage, sum / n as f64, n))
            })
            .collect();
        if stages.is_empty() {
            None
        } else {
            Some(Self { stages })
        }
    }
}

impl std::fmt::Display for StageBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server stage means:")?;
        for (i, (stage, mean_s, _)) in self.stages.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            write!(f, "{sep} {stage} {:.2} ms", mean_s * 1e3)?;
        }
        Ok(())
    }
}

/// Parses one `family{stage="..."} value` exposition line.
fn stage_sample<'a>(line: &'a str, family: &str) -> Option<(&'a str, f64)> {
    let rest = line.strip_prefix(family)?;
    let rest = rest.strip_prefix("{stage=\"")?;
    let (stage, rest) = rest.split_once('"')?;
    let value = rest.strip_prefix("} ")?;
    value.trim().parse().ok().map(|v| (stage, v))
}

impl LoadReport {
    /// Successful responses per wall-clock second.
    pub fn rps(&self) -> f64 {
        self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} ok / {} rejected / {} errors in {:.2}s -> {:.0} req/s; latency p50 {:.2} ms, p99 {:.2} ms, mean {:.2} ms",
            self.ok,
            self.rejected,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.rps(),
            self.latency.quantile_ns(0.50) as f64 / 1e6,
            self.latency.quantile_ns(0.99) as f64 / 1e6,
            self.latency.mean_ns() / 1e6,
        );
        if self.rejected_deadline > 0 {
            s.push_str(&format!(" ({} deadline-shed)", self.rejected_deadline));
        }
        if self.retried > 0 || self.retry_gave_up > 0 {
            s.push_str(&format!(
                "; queue-full retries: {} resent, {} gave up",
                self.retried, self.retry_gave_up
            ));
        }
        if self.ticks_skipped > 0 || self.max_send_lag > Duration::ZERO {
            s.push_str(&format!(
                "; send skew: {} tick(s) skipped, max lag {:.2} ms",
                self.ticks_skipped,
                self.max_send_lag.as_secs_f64() * 1e3,
            ));
        }
        if let Some(stages) = &self.server_stages {
            s.push_str(&format!("; {stages}"));
        }
        s
    }
}

/// Runs the configured load and aggregates per-connection results.
pub fn run(cfg: &LoadConfig) -> io::Result<LoadReport> {
    if cfg.retry_rejects && cfg.rate.is_none() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "retry_rejects is an open-loop option (set a rate)",
        ));
    }
    let connections = cfg.connections.max(1);
    let per_conn = split_evenly(cfg.requests, connections);
    let start = clock::monotonic_now();
    let mut handles = Vec::new();
    for (i, n) in per_conn.into_iter().enumerate() {
        if n == 0 {
            continue;
        }
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || -> io::Result<ConnStats> {
            let image = request_image(&cfg, i as u64);
            match cfg.rate {
                None => closed_loop_conn(&cfg, n, &image),
                Some(rate) => {
                    let conn_rate = (rate / cfg.connections.max(1) as f64).max(1e-3);
                    open_loop_conn(&cfg, n, conn_rate, &image)
                }
            }
        }));
    }
    let mut report = LoadReport {
        sent: 0,
        ok: 0,
        rejected: 0,
        rejected_deadline: 0,
        errors: 0,
        retried: 0,
        retry_gave_up: 0,
        ticks_skipped: 0,
        max_send_lag: Duration::ZERO,
        elapsed: Duration::ZERO,
        latency: Histogram::new(),
        server_stages: None,
    };
    for h in handles {
        let stats = h
            .join()
            .map_err(|_| io::Error::other("loadgen connection thread panicked"))??;
        report.sent += stats.sent;
        report.ok += stats.ok;
        report.rejected += stats.rejected;
        report.rejected_deadline += stats.rejected_deadline;
        report.errors += stats.errors;
        report.retried += stats.retried;
        report.retry_gave_up += stats.retry_gave_up;
        report.ticks_skipped += stats.ticks_skipped;
        report.max_send_lag = report.max_send_lag.max(stats.max_send_lag);
        report.latency.merge(&stats.latency);
    }
    report.elapsed = clock::since(start);
    Ok(report)
}

struct ConnStats {
    sent: u64,
    ok: u64,
    rejected: u64,
    rejected_deadline: u64,
    errors: u64,
    retried: u64,
    retry_gave_up: u64,
    ticks_skipped: u64,
    max_send_lag: Duration,
    latency: Histogram,
}

fn split_evenly(total: usize, parts: usize) -> Vec<usize> {
    (0..parts)
        .map(|i| total / parts + usize::from(i < total % parts))
        .collect()
}

/// How many whole send ticks a stall of `lag` has cost: the size of the
/// catch-up burst the open loop refuses to fire (a lag under one interval
/// skips nothing — the send is merely late, not bursty).
fn missed_ticks(lag: Duration, interval: Duration) -> u64 {
    (lag.as_nanos() / interval.as_nanos().max(1)).min(u64::MAX as u128) as u64
}

fn request_image(cfg: &LoadConfig, conn: u64) -> Tensor {
    let mut rng = SeededRng::new(cfg.seed.wrapping_add(conn));
    Tensor::rand_uniform(&cfg.shape, 0.0, 1.0, &mut rng)
}

/// Fixed in-flight window: send `inflight` pipelined requests, then one
/// fresh request per response until `n` are done.
fn closed_loop_conn(cfg: &LoadConfig, n: usize, image: &Tensor) -> io::Result<ConnStats> {
    let mut client = Client::connect(&cfg.addr)?;
    let mut stats = ConnStats {
        sent: 0,
        ok: 0,
        rejected: 0,
        rejected_deadline: 0,
        errors: 0,
        retried: 0,
        retry_gave_up: 0,
        ticks_skipped: 0,
        max_send_lag: Duration::ZERO,
        latency: Histogram::new(),
    };
    let frame = |id| infer_frame_with(id, image, cfg.policy.clone(), cfg.deadline_ms, cfg.class);
    let mut sent_at: HashMap<u64, Instant> = HashMap::new();
    let window = cfg.inflight.max(1).min(n);
    for id in 0..window as u64 {
        client.send(&frame(id))?;
        sent_at.insert(id, clock::monotonic_now());
        stats.sent += 1;
    }
    let mut answered = 0u64;
    while answered < stats.sent {
        match client.recv() {
            Ok(Frame::Logits(r)) => {
                if let Some(t) = sent_at.remove(&r.id) {
                    stats.latency.record_ns(clock::since(t).as_nanos() as u64);
                }
                stats.ok += 1;
                answered += 1;
            }
            Ok(Frame::Reject { id, code }) => {
                sent_at.remove(&id);
                stats.rejected += 1;
                if code == RejectCode::DeadlineExceeded {
                    stats.rejected_deadline += 1;
                }
                answered += 1;
            }
            // An unexpected frame kind still answers one request; it lands
            // in the error shortfall below.
            Ok(_) => answered += 1,
            // The stream is unusable; stop and settle up.
            Err(_) => break,
        }
        if (stats.sent as usize) < n {
            let id = stats.sent;
            if client.send(&frame(id)).is_err() {
                break;
            }
            sent_at.insert(id, clock::monotonic_now());
            stats.sent += 1;
        }
    }
    // Errors = sent requests with no usable answer (never counts requests
    // that were never written, so errors <= sent always holds).
    stats.errors = stats.sent.saturating_sub(stats.ok + stats.rejected);
    Ok(stats)
}

/// How many times one queue-full request is resent before the loop gives
/// up on it (see [`LoadConfig::retry_rejects`]).
pub const RETRY_MAX_ATTEMPTS: u32 = 3;
/// First resend delay; doubles per attempt (2, 4, 8 ms).
const RETRY_BASE_DELAY: Duration = Duration::from_millis(2);

/// The backoff before resend number `attempt` (0-based).
fn retry_delay(attempt: u32) -> Duration {
    RETRY_BASE_DELAY.saturating_mul(1u32 << attempt.min(4))
}

/// One queue-full-rejected request waiting out its backoff before the
/// sender writes it again.
struct PendingRetry {
    id: u64,
    due: Instant,
}

/// Writes every due retry. Returns `false` (after tearing the socket down
/// so the receiver unblocks) when the connection is dead.
fn service_retries(
    retryq: &Mutex<Vec<PendingRetry>>,
    sent_at: &Mutex<HashMap<u64, Instant>>,
    writer: &mut TcpStream,
    image: &Tensor,
    cfg: &LoadConfig,
) -> bool {
    let now = clock::monotonic_now();
    let due: Vec<PendingRetry> = {
        let Ok(mut q) = retryq.lock() else {
            return false; // receiver panicked holding the lock; stop
        };
        let (due, rest) = q.drain(..).partition(|r| r.due <= now);
        *q = rest;
        due
    };
    for r in due {
        if let Ok(mut m) = sent_at.lock() {
            // Latency for a retried request restarts at the resend: it
            // measures this attempt's service, not the backoff we chose.
            m.insert(r.id, clock::monotonic_now());
        }
        if infer_frame_with(r.id, image, cfg.policy.clone(), cfg.deadline_ms, cfg.class)
            .write_to(writer)
            .is_err()
        {
            best_effort(writer.shutdown(std::net::Shutdown::Both));
            return false;
        }
    }
    true
}

/// Fixed-rate sender with a concurrent receiver: arrivals do not wait for
/// completions, so overload shows up as queueing latency and rejects
/// instead of a slower send rate. The configured [`Ramp`] scales the rate
/// per tick; with [`LoadConfig::retry_rejects`], queue-full rejects are
/// resent on a bounded backoff instead of settling.
fn open_loop_conn(cfg: &LoadConfig, n: usize, rate: f64, image: &Tensor) -> io::Result<ConnStats> {
    let client = Client::connect(&cfg.addr)?;
    let (mut reader, mut writer) = client.into_split();
    let sent_at: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let latency = Arc::new(Histogram::new());
    let ok = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let rejected_deadline = Arc::new(AtomicU64::new(0));
    let retried = Arc::new(AtomicU64::new(0));
    let retry_gave_up = Arc::new(AtomicU64::new(0));
    let retryq: Arc<Mutex<Vec<PendingRetry>>> = Arc::new(Mutex::new(Vec::new()));
    // Set by the receiver when every request has settled (or the stream
    // died): the sender's post-loop retry service watches it.
    let done = Arc::new(AtomicBool::new(false));
    let retry_enabled = cfg.retry_rejects;

    let receiver = {
        let sent_at = Arc::clone(&sent_at);
        let latency = Arc::clone(&latency);
        let (ok, rejected) = (Arc::clone(&ok), Arc::clone(&rejected));
        let rejected_deadline = Arc::clone(&rejected_deadline);
        let (retried, retry_gave_up) = (Arc::clone(&retried), Arc::clone(&retry_gave_up));
        let retryq = Arc::clone(&retryq);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            // Resends already charged against each id (receiver-local: no
            // other thread decides a reject's fate).
            let mut attempts: HashMap<u64, u32> = HashMap::new();
            let mut settled = 0usize;
            while settled < n {
                match Frame::read_from(&mut reader) {
                    Ok(Frame::Logits(r)) => {
                        if let Some(t) = sent_at.lock().ok().and_then(|mut m| m.remove(&r.id)) {
                            latency.record_ns(clock::since(t).as_nanos() as u64);
                        }
                        attempts.remove(&r.id);
                        // ordering: relaxed — statistics counter, aggregated after join.
                        ok.fetch_add(1, Ordering::Relaxed);
                        settled += 1;
                    }
                    Ok(Frame::Reject { id, code }) => {
                        if retry_enabled && code == RejectCode::QueueFull {
                            let a = attempts.entry(id).or_insert(0);
                            if *a < RETRY_MAX_ATTEMPTS {
                                let delay = retry_delay(*a);
                                *a += 1;
                                // ordering: relaxed — statistics counter, aggregated after join.
                                retried.fetch_add(1, Ordering::Relaxed);
                                if let Ok(mut q) = retryq.lock() {
                                    q.push(PendingRetry {
                                        id,
                                        due: clock::monotonic_now() + delay,
                                    });
                                }
                                continue; // not settled: the resend answers it
                            }
                            attempts.remove(&id);
                            // ordering: relaxed — statistics counter, aggregated after join.
                            retry_gave_up.fetch_add(1, Ordering::Relaxed);
                        }
                        // ordering: relaxed — statistics counter, aggregated after join.
                        rejected.fetch_add(1, Ordering::Relaxed);
                        if code == RejectCode::DeadlineExceeded {
                            // ordering: relaxed — statistics counter, aggregated after join.
                            rejected_deadline.fetch_add(1, Ordering::Relaxed);
                        }
                        settled += 1;
                    }
                    // Unexpected frames land in the error shortfall below.
                    Ok(_) => settled += 1,
                    Err(_) => break,
                }
            }
            // ordering: relaxed — the sender only polls this to stop its
            // retry service; a momentarily stale read costs one sleep.
            done.store(true, Ordering::Relaxed);
        })
    };

    let mut next = clock::monotonic_now();
    let mut sent = 0u64;
    let mut ticks_skipped = 0u64;
    let mut max_send_lag = Duration::ZERO;
    let mut write_failed = false;
    for id in 0..n as u64 {
        // The ramp scales this tick's instantaneous rate; the schedule
        // grid advances by the per-tick interval, so a square wave really
        // alternates dense and sparse arrival spacing.
        let tick_rate = (rate * cfg.ramp.multiplier(id, n as u64)).max(1e-3);
        let interval = Duration::from_secs_f64(1.0 / tick_rate).max(Duration::from_nanos(1));
        if retry_enabled && !service_retries(&retryq, &sent_at, &mut writer, image, cfg) {
            write_failed = true;
            break;
        }
        let now = clock::monotonic_now();
        if now < next {
            std::thread::sleep(next - now);
        } else {
            // Coordinated-omission guard: after a stall (a blocking write,
            // scheduler hiccup, …) `next` lags `now`, and naively firing
            // every missed tick would be a back-to-back burst at effectively
            // infinite rate — arrivals the configured rate never intended,
            // which then masquerade as server latency. Skip the missed
            // ticks (the schedule grid stays anchored; this request fires
            // now, the next one a full interval later) and report the skew
            // honestly instead.
            let lag = now - next;
            let missed = missed_ticks(lag, interval);
            if missed > 0 {
                ticks_skipped += missed;
                next += interval.saturating_mul(missed.min(u32::MAX as u64) as u32);
            }
            max_send_lag = max_send_lag.max(lag);
        }
        if let Ok(mut m) = sent_at.lock() {
            m.insert(id, clock::monotonic_now());
        }
        if infer_frame_with(id, image, cfg.policy.clone(), cfg.deadline_ms, cfg.class)
            .write_to(&mut writer)
            .is_err()
        {
            // The connection is dead; unblock the receiver (it would
            // otherwise wait for responses that were never requested).
            best_effort(writer.shutdown(std::net::Shutdown::Both));
            write_failed = true;
            break;
        }
        sent += 1;
        next += interval;
    }
    // Every fresh request is on the wire, but retried ones may still be
    // waiting out their backoff: keep servicing them until the receiver
    // has settled every request (or the connection dies).
    if retry_enabled && !write_failed {
        // ordering: relaxed — pairs with the receiver's store; staleness
        // costs one extra poll sleep.
        while !done.load(Ordering::Relaxed) {
            if !service_retries(&retryq, &sent_at, &mut writer, image, cfg) {
                break;
            }
            std::thread::sleep(Duration::from_micros(500));
        }
    }
    best_effort(receiver.join());
    let latency_out = Histogram::new();
    latency_out.merge(&latency);
    // ordering: relaxed — the receiver thread is joined above, so these loads
    // happen-after every fetch_add it performed.
    let (ok, rejected) = (ok.load(Ordering::Relaxed), rejected.load(Ordering::Relaxed));
    Ok(ConnStats {
        sent,
        ok,
        rejected,
        // ordering: relaxed — receiver joined above; no concurrent writers remain.
        rejected_deadline: rejected_deadline.load(Ordering::Relaxed),
        // Sent requests with no usable answer; never counts unsent ones.
        errors: sent.saturating_sub(ok + rejected),
        // ordering: relaxed — receiver joined above; no concurrent writers remain.
        retried: retried.load(Ordering::Relaxed),
        // ordering: relaxed — receiver joined above; no concurrent writers remain.
        retry_gave_up: retry_gave_up.load(Ordering::Relaxed),
        ticks_skipped,
        max_send_lag,
        latency: latency_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_split_evenly_across_connections() {
        assert_eq!(split_evenly(10, 3), vec![4, 3, 3]);
        assert_eq!(split_evenly(2, 4), vec![1, 1, 0, 0]);
    }

    /// The coordinated-omission guard: a stall shorter than one interval
    /// skips nothing (the send is just late); an N-interval stall skips
    /// exactly the N-tick catch-up burst the naive loop would have fired.
    #[test]
    fn stalls_skip_missed_ticks_instead_of_bursting() {
        let interval = Duration::from_millis(10);
        assert_eq!(missed_ticks(Duration::ZERO, interval), 0);
        assert_eq!(missed_ticks(Duration::from_millis(9), interval), 0);
        assert_eq!(missed_ticks(Duration::from_millis(10), interval), 1);
        assert_eq!(missed_ticks(Duration::from_millis(95), interval), 9);
        assert_eq!(missed_ticks(Duration::from_secs(1), interval), 100);
        // Degenerate interval never divides by zero.
        assert_eq!(
            missed_ticks(Duration::from_secs(1), Duration::ZERO),
            1_000_000_000
        );
    }

    #[test]
    fn ramps_shape_the_rate_multiplier() {
        assert_eq!(Ramp::Flat.multiplier(17, 100), 1.0);
        // Linear: 1x at the first tick, peak at the last, midpoint halfway.
        let linear = Ramp::Linear { peak: 3.0 };
        assert_eq!(linear.multiplier(0, 101), 1.0);
        assert_eq!(linear.multiplier(50, 101), 2.0);
        assert_eq!(linear.multiplier(100, 101), 3.0);
        // A one-request run jumps straight to the peak rather than 0/0.
        assert_eq!(linear.multiplier(0, 1), 3.0);
        // Square: `period` calm ticks, then `period` storm ticks.
        let square = Ramp::Square {
            peak: 4.0,
            period: 2,
        };
        let wave: Vec<f64> = (0..8).map(|t| square.multiplier(t, 8)).collect();
        assert_eq!(wave, vec![1.0, 1.0, 4.0, 4.0, 1.0, 1.0, 4.0, 4.0]);
        // Degenerate period clamps to 1 instead of dividing by zero.
        assert_eq!(
            Ramp::Square {
                peak: 2.0,
                period: 0
            }
            .multiplier(1, 8),
            2.0
        );
    }

    #[test]
    fn retry_delays_double_and_cap() {
        assert_eq!(retry_delay(0), Duration::from_millis(2));
        assert_eq!(retry_delay(1), Duration::from_millis(4));
        assert_eq!(retry_delay(2), Duration::from_millis(8));
        assert_eq!(retry_delay(100), Duration::from_millis(32));
    }

    #[test]
    fn stage_breakdown_parses_means_out_of_an_exposition() {
        let text = "\
# HELP tia_serve_stage_seconds per-stage latency\n\
# TYPE tia_serve_stage_seconds histogram\n\
tia_serve_stage_seconds_bucket{stage=\"queue_wait\",le=\"0.001\"} 4\n\
tia_serve_stage_seconds_sum{stage=\"queue_wait\"} 0.004\n\
tia_serve_stage_seconds_count{stage=\"queue_wait\"} 4\n\
tia_serve_stage_seconds_sum{stage=\"execute\"} 0.03\n\
tia_serve_stage_seconds_count{stage=\"execute\"} 4\n\
tia_serve_stage_seconds_sum{stage=\"total\"} 0\n\
tia_serve_stage_seconds_count{stage=\"total\"} 0\n";
        let b = StageBreakdown::from_prometheus(text).unwrap();
        // Zero-sample stages are dropped; sampled ones keep exposition order.
        assert_eq!(
            b.stages,
            vec![
                ("queue_wait".to_string(), 0.001, 4),
                ("execute".to_string(), 0.0075, 4),
            ]
        );
        let line = b.to_string();
        assert_eq!(
            line,
            "server stage means: queue_wait 1.00 ms, execute 7.50 ms"
        );
        // No stage family at all (tracing off) parses to None.
        assert_eq!(StageBreakdown::from_prometheus("up 1\n"), None);
    }

    #[test]
    fn retry_rejects_requires_the_open_loop() {
        let cfg = LoadConfig {
            retry_rejects: true,
            rate: None,
            ..LoadConfig::default()
        };
        let err = run(&cfg).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
