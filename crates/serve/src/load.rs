//! Open- and closed-loop load generation against a wire-protocol server.
//!
//! *Closed loop* keeps a fixed number of requests in flight per connection
//! (throughput-seeking: measures the server's sustainable RPS at that
//! concurrency). *Open loop* fires at a fixed target rate regardless of
//! completions (latency-seeking: measures what queueing does to p50/p99,
//! and how admission control sheds overload). Both report end-to-end
//! latency through the same [`Histogram`] the server's metrics use.

use crate::client::{infer_frame, Client};
use crate::metrics::Histogram;
use crate::wire::{Frame, WirePolicy};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tia_tensor::{SeededRng, Tensor};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Closed loop: in-flight requests per connection.
    pub inflight: usize,
    /// Open loop: total target request rate in req/s across all
    /// connections; `None` selects the closed loop.
    pub rate: Option<f64>,
    /// Image geometry sent with every request.
    pub shape: [usize; 3],
    /// Seed for the synthetic request images.
    pub seed: u64,
    /// Precision policy attached to every request.
    pub policy: WirePolicy,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            connections: 1,
            requests: 64,
            inflight: 8,
            rate: None,
            shape: [3, 16, 16],
            seed: 1,
            policy: WirePolicy::Server,
        }
    }
}

/// Aggregate result of one load run.
#[derive(Debug)]
pub struct LoadReport {
    /// Requests written to the wire.
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Admission-control rejections (queue full / draining / bad shape).
    pub rejected: u64,
    /// Transport or protocol errors (requests with no usable answer).
    pub errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// End-to-end (send → response read) latency of successful responses.
    pub latency: Histogram,
}

impl LoadReport {
    /// Successful responses per wall-clock second.
    pub fn rps(&self) -> f64 {
        self.ok as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} ok / {} rejected / {} errors in {:.2}s -> {:.0} req/s; latency p50 {:.2} ms, p99 {:.2} ms, mean {:.2} ms",
            self.ok,
            self.rejected,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.rps(),
            self.latency.quantile_ns(0.50) as f64 / 1e6,
            self.latency.quantile_ns(0.99) as f64 / 1e6,
            self.latency.mean_ns() / 1e6,
        )
    }
}

/// Runs the configured load and aggregates per-connection results.
pub fn run(cfg: &LoadConfig) -> io::Result<LoadReport> {
    let connections = cfg.connections.max(1);
    let per_conn = split_evenly(cfg.requests, connections);
    let start = Instant::now();
    let mut handles = Vec::new();
    for (i, n) in per_conn.into_iter().enumerate() {
        if n == 0 {
            continue;
        }
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || -> io::Result<ConnStats> {
            let image = request_image(&cfg, i as u64);
            match cfg.rate {
                None => closed_loop_conn(&cfg, n, &image),
                Some(rate) => {
                    let conn_rate = (rate / cfg.connections.max(1) as f64).max(1e-3);
                    open_loop_conn(&cfg, n, conn_rate, &image)
                }
            }
        }));
    }
    let mut report = LoadReport {
        sent: 0,
        ok: 0,
        rejected: 0,
        errors: 0,
        elapsed: Duration::ZERO,
        latency: Histogram::new(),
    };
    for h in handles {
        let stats = h.join().expect("loadgen connection thread panicked")?;
        report.sent += stats.sent;
        report.ok += stats.ok;
        report.rejected += stats.rejected;
        report.errors += stats.errors;
        report.latency.merge(&stats.latency);
    }
    report.elapsed = start.elapsed();
    Ok(report)
}

struct ConnStats {
    sent: u64,
    ok: u64,
    rejected: u64,
    errors: u64,
    latency: Histogram,
}

fn split_evenly(total: usize, parts: usize) -> Vec<usize> {
    (0..parts)
        .map(|i| total / parts + usize::from(i < total % parts))
        .collect()
}

fn request_image(cfg: &LoadConfig, conn: u64) -> Tensor {
    let mut rng = SeededRng::new(cfg.seed.wrapping_add(conn));
    Tensor::rand_uniform(&cfg.shape, 0.0, 1.0, &mut rng)
}

/// Fixed in-flight window: send `inflight` pipelined requests, then one
/// fresh request per response until `n` are done.
fn closed_loop_conn(cfg: &LoadConfig, n: usize, image: &Tensor) -> io::Result<ConnStats> {
    let mut client = Client::connect(&cfg.addr)?;
    let mut stats = ConnStats {
        sent: 0,
        ok: 0,
        rejected: 0,
        errors: 0,
        latency: Histogram::new(),
    };
    let mut sent_at: HashMap<u64, Instant> = HashMap::new();
    let window = cfg.inflight.max(1).min(n);
    for id in 0..window as u64 {
        client.send(&infer_frame(id, image, cfg.policy.clone()))?;
        sent_at.insert(id, Instant::now());
        stats.sent += 1;
    }
    let mut answered = 0u64;
    while answered < stats.sent {
        match client.recv() {
            Ok(Frame::Logits(r)) => {
                if let Some(t) = sent_at.remove(&r.id) {
                    stats.latency.record_ns(t.elapsed().as_nanos() as u64);
                }
                stats.ok += 1;
                answered += 1;
            }
            Ok(Frame::Reject { id, .. }) => {
                sent_at.remove(&id);
                stats.rejected += 1;
                answered += 1;
            }
            // An unexpected frame kind still answers one request; it lands
            // in the error shortfall below.
            Ok(_) => answered += 1,
            // The stream is unusable; stop and settle up.
            Err(_) => break,
        }
        if (stats.sent as usize) < n {
            let id = stats.sent;
            if client
                .send(&infer_frame(id, image, cfg.policy.clone()))
                .is_err()
            {
                break;
            }
            sent_at.insert(id, Instant::now());
            stats.sent += 1;
        }
    }
    // Errors = sent requests with no usable answer (never counts requests
    // that were never written, so errors <= sent always holds).
    stats.errors = stats.sent.saturating_sub(stats.ok + stats.rejected);
    Ok(stats)
}

/// Fixed-rate sender with a concurrent receiver: arrivals do not wait for
/// completions, so overload shows up as queueing latency and rejects
/// instead of a slower send rate.
fn open_loop_conn(cfg: &LoadConfig, n: usize, rate: f64, image: &Tensor) -> io::Result<ConnStats> {
    let client = Client::connect(&cfg.addr)?;
    let (mut reader, mut writer) = client.into_split();
    let sent_at: Arc<Mutex<HashMap<u64, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let latency = Arc::new(Histogram::new());
    let ok = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));

    let receiver = {
        let sent_at = Arc::clone(&sent_at);
        let latency = Arc::clone(&latency);
        let (ok, rejected) = (Arc::clone(&ok), Arc::clone(&rejected));
        std::thread::spawn(move || {
            let mut seen = 0usize;
            while seen < n {
                match Frame::read_from(&mut reader) {
                    Ok(Frame::Logits(r)) => {
                        if let Some(t) = sent_at.lock().ok().and_then(|mut m| m.remove(&r.id)) {
                            latency.record_ns(t.elapsed().as_nanos() as u64);
                        }
                        ok.fetch_add(1, Ordering::Relaxed);
                        seen += 1;
                    }
                    Ok(Frame::Reject { .. }) => {
                        rejected.fetch_add(1, Ordering::Relaxed);
                        seen += 1;
                    }
                    // Unexpected frames land in the error shortfall below.
                    Ok(_) => seen += 1,
                    Err(_) => break,
                }
            }
        })
    };

    let interval = Duration::from_secs_f64(1.0 / rate);
    let mut next = Instant::now();
    let mut sent = 0u64;
    for id in 0..n as u64 {
        let now = Instant::now();
        if now < next {
            std::thread::sleep(next - now);
        }
        if let Ok(mut m) = sent_at.lock() {
            m.insert(id, Instant::now());
        }
        if infer_frame(id, image, cfg.policy.clone())
            .write_to(&mut writer)
            .is_err()
        {
            // The connection is dead; unblock the receiver (it would
            // otherwise wait for responses that were never requested).
            let _ = writer.shutdown(std::net::Shutdown::Both);
            break;
        }
        sent += 1;
        next += interval;
    }
    let _ = receiver.join();
    let latency_out = Histogram::new();
    latency_out.merge(&latency);
    let (ok, rejected) = (ok.load(Ordering::Relaxed), rejected.load(Ordering::Relaxed));
    Ok(ConnStats {
        sent,
        ok,
        rejected,
        // Sent requests with no usable answer; never counts unsent ones.
        errors: sent.saturating_sub(ok + rejected),
        latency: latency_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_split_evenly_across_connections() {
        assert_eq!(split_evenly(10, 3), vec![4, 3, 3]);
        assert_eq!(split_evenly(2, 4), vec![1, 1, 0, 0]);
    }
}
