//! Tiny `--flag value` argument parsing shared by the `tia-served` and
//! `tia-loadgen` binaries (the workspace is dependency-free, so no clap).

use crate::load::Ramp;
use crate::wire::{Class, WirePolicy};
use tia_engine::PrecisionPolicy;
use tia_quant::{Precision, PrecisionSet};

/// Parsed command line: `--flag value` pairs plus bare `--switch` flags.
pub struct Args {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Args {
    /// Parses `std::env::args`: `known_flags` take a value, and
    /// `known_switches` are value-less. Returns `Err` naming the offending
    /// token on anything unrecognized — a typo'd flag must fail loudly, not
    /// silently fall back to a default.
    pub fn parse(known_flags: &[&str], known_switches: &[&str]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut it = std::env::args().skip(1);
        while let Some(tok) = it.next() {
            let Some(flag) = tok.strip_prefix("--") else {
                return Err(format!("unexpected argument: {tok}"));
            };
            if known_switches.contains(&flag) {
                switches.push(flag.to_string());
            } else if known_flags.contains(&flag) {
                let Some(value) = it.next() else {
                    return Err(format!("--{flag} needs a value"));
                };
                pairs.push((flag.to_string(), value));
            } else {
                return Err(format!("unknown flag: --{flag}"));
            }
        }
        Ok(Self { pairs, switches })
    }

    /// The value of `--flag`, if given.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(f, _)| f == flag)
            .map(|(_, v)| v.as_str())
    }

    /// The value of `--flag` parsed as `T`, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, String> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{flag}: could not parse {v:?}")),
        }
    }

    /// Whether the bare switch `--flag` was given.
    pub fn has(&self, flag: &str) -> bool {
        self.switches.iter().any(|s| s == flag)
    }
}

/// Parses a serving policy: `fp32`, `fixedN` (e.g. `fixed8`), or
/// `rpsLO-HI` (e.g. `rps4-8`).
pub fn parse_policy(s: &str) -> Result<PrecisionPolicy, String> {
    if s == "fp32" {
        return Ok(PrecisionPolicy::Fixed(None));
    }
    if let Some(bits) = s.strip_prefix("fixed") {
        let b: u8 = bits.parse().map_err(|_| bad_policy(s))?;
        if !(1..=16).contains(&b) {
            return Err(bad_policy(s));
        }
        return Ok(PrecisionPolicy::Fixed(Some(Precision::new(b))));
    }
    if let Some(range) = s.strip_prefix("rps") {
        let (lo, hi) = range.split_once('-').ok_or_else(|| bad_policy(s))?;
        let (lo, hi): (u8, u8) = (
            lo.parse().map_err(|_| bad_policy(s))?,
            hi.parse().map_err(|_| bad_policy(s))?,
        );
        if !(1..=16).contains(&lo) || !(1..=16).contains(&hi) || lo > hi {
            return Err(bad_policy(s));
        }
        return Ok(PrecisionPolicy::Random(PrecisionSet::range(lo, hi)));
    }
    Err(bad_policy(s))
}

/// Parses a per-request wire policy: `server`, or any [`parse_policy`]
/// form (mapped onto the wire's explicit-policy variants).
pub fn parse_wire_policy(s: &str) -> Result<WirePolicy, String> {
    if s == "server" {
        return Ok(WirePolicy::Server);
    }
    Ok(match parse_policy(s)? {
        PrecisionPolicy::Fixed(p) => WirePolicy::Fixed(p),
        // Adaptive degradation is a server-side serving decision; on the
        // wire an explicit RPS set is just a random pin.
        PrecisionPolicy::Random(set) | PrecisionPolicy::Adaptive(set) => WirePolicy::Random(set),
    })
}

/// Parses a per-class precision floor: a bit-width `1..=16`, or
/// `none`/`off` for no floor.
pub fn parse_floor(s: &str) -> Result<Option<Precision>, String> {
    if s == "none" || s == "off" {
        return Ok(None);
    }
    match s.parse::<u8>() {
        Ok(b) if (1..=16).contains(&b) => Ok(Some(Precision::new(b))),
        _ => Err(format!("bad floor {s:?}, expected 1..=16, none or off")),
    }
}

/// Parses an open-loop rate ramp: `flat`, `linear:PEAK` (climb to PEAK×
/// the configured rate by the last request), or `square:PEAK:PERIOD`
/// (alternate PERIOD requests at 1× with PERIOD at PEAK×).
pub fn parse_ramp(s: &str) -> Result<Ramp, String> {
    let bad = || format!("bad ramp {s:?}, expected flat, linear:PEAK or square:PEAK:PERIOD");
    if s == "flat" {
        return Ok(Ramp::Flat);
    }
    if let Some(peak) = s.strip_prefix("linear:") {
        let peak: f64 = peak.parse().map_err(|_| bad())?;
        if !(peak.is_finite() && peak >= 1.0) {
            return Err(bad());
        }
        return Ok(Ramp::Linear { peak });
    }
    if let Some(rest) = s.strip_prefix("square:") {
        let (peak, period) = rest.split_once(':').ok_or_else(bad)?;
        let peak: f64 = peak.parse().map_err(|_| bad())?;
        let period: u32 = period.parse().map_err(|_| bad())?;
        if !(peak.is_finite() && peak >= 1.0) || period == 0 {
            return Err(bad());
        }
        return Ok(Ramp::Square { peak, period });
    }
    Err(bad())
}

/// Parses a scheduling class: `normal`, `interactive` or `batch`.
pub fn parse_class(s: &str) -> Result<Class, String> {
    match s {
        "normal" => Ok(Class::Normal),
        "interactive" => Ok(Class::Interactive),
        "batch" => Ok(Class::Batch),
        _ => Err(format!(
            "bad class {s:?}, expected normal, interactive or batch"
        )),
    }
}

/// Parses `C,H,W` (e.g. `3,16,16`) into an image shape.
pub fn parse_shape(s: &str) -> Result<[usize; 3], String> {
    let parts: Vec<usize> = s
        .split(',')
        .map(|p| p.trim().parse())
        .collect::<Result<_, _>>()
        .map_err(|_| format!("bad shape {s:?}, expected C,H,W"))?;
    match parts.as_slice() {
        [c, h, w] if *c > 0 && *h > 0 && *w > 0 => Ok([*c, *h, *w]),
        _ => Err(format!("bad shape {s:?}, expected C,H,W")),
    }
}

fn bad_policy(s: &str) -> String {
    format!("bad policy {s:?}, expected fp32, fixedN or rpsLO-HI")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_parse() {
        assert_eq!(parse_policy("fp32").unwrap(), PrecisionPolicy::Fixed(None));
        assert_eq!(
            parse_policy("fixed8").unwrap(),
            PrecisionPolicy::Fixed(Some(Precision::new(8)))
        );
        assert_eq!(
            parse_policy("rps4-8").unwrap(),
            PrecisionPolicy::Random(PrecisionSet::range(4, 8))
        );
        assert!(parse_policy("fixed99").is_err());
        assert!(parse_policy("rps8-4").is_err());
        assert!(parse_policy("banana").is_err());
        assert_eq!(parse_wire_policy("server").unwrap(), WirePolicy::Server);
    }

    #[test]
    fn floors_parse() {
        assert_eq!(parse_floor("6").unwrap(), Some(Precision::new(6)));
        assert_eq!(parse_floor("none").unwrap(), None);
        assert_eq!(parse_floor("off").unwrap(), None);
        assert!(parse_floor("0").is_err());
        assert!(parse_floor("17").is_err());
        assert!(parse_floor("six").is_err());
    }

    #[test]
    fn ramps_parse() {
        assert_eq!(parse_ramp("flat").unwrap(), Ramp::Flat);
        assert_eq!(
            parse_ramp("linear:2.5").unwrap(),
            Ramp::Linear { peak: 2.5 }
        );
        assert_eq!(
            parse_ramp("square:4:32").unwrap(),
            Ramp::Square {
                peak: 4.0,
                period: 32
            }
        );
        assert!(parse_ramp("linear:0.5").is_err()); // a ramp never slows down
        assert!(parse_ramp("square:2:0").is_err());
        assert!(parse_ramp("sawtooth:2").is_err());
    }

    #[test]
    fn classes_parse() {
        assert_eq!(parse_class("normal").unwrap(), Class::Normal);
        assert_eq!(parse_class("interactive").unwrap(), Class::Interactive);
        assert_eq!(parse_class("batch").unwrap(), Class::Batch);
        assert!(parse_class("urgent").is_err());
    }

    #[test]
    fn shapes_parse() {
        assert_eq!(parse_shape("3,16,16").unwrap(), [3, 16, 16]);
        assert!(parse_shape("3,16").is_err());
        assert!(parse_shape("3,0,16").is_err());
    }
}
