//! The adaptive precision control loop: feedback-driven graceful
//! degradation with per-class SLO floors.
//!
//! Under overload the EDF batcher sheds expired requests outright; the
//! paper's random-precision-switching knob offers a gentler trade — serve
//! *faster at lower precision* before dropping anything. This module
//! closes that loop: a [`Controller`] watches per-cycle pressure signals
//! (EDF window fill, deadline-shed fraction, windowed per-class p99 from
//! the metrics registry) and steps the engine's degradation level up under
//! pressure and back down when it clears. Hysteresis bands (`enter_*` >
//! `exit_*`) plus a post-shift cooldown keep it from oscillating on noisy
//! load.
//!
//! Per-class precision **floors** make SLOs first-class: a class with a
//! floor never samples below it, however degraded the engine is, so
//! degradation is bounded and declared rather than emergent. Floors bind
//! only policy-driven (`WirePolicy::Server`) requests — a client that pins
//! its own precision has already chosen.
//!
//! # Determinism contract
//!
//! The controller is a pure state machine: [`Controller::step`] consumes
//! one [`CycleSample`] at each engine-cycle boundary (never wall time —
//! cycles are counted on the batcher thread, timestamps come from the
//! injectable [`crate::clock::Clock`] seam) and every decision is a
//! function of the sample sequence alone. Degradation changes which value
//! a policy draw maps to, never the seeded stream position (see
//! [`tia_engine::PrecisionPolicy::sample_degraded`]), so a run's schedule
//! stays a pure function of the seed, the submission order and the sample
//! sequence.

use crate::wire::Class;
use tia_quant::Precision;

/// Tuning for the graceful-degradation feedback loop.
///
/// The enter thresholds must sit strictly above their exit counterparts
/// (a hysteresis band); [`ControlConfig::validate`] enforces it at server
/// spawn so a misconfigured band fails loudly instead of oscillating.
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// EDF window fill ratio at or above which the controller degrades.
    pub enter_fill: f64,
    /// Window fill ratio at or below which (jointly with the other exit
    /// conditions) it recovers one level.
    pub exit_fill: f64,
    /// Per-cycle deadline-shed fraction at or above which it degrades.
    pub enter_miss: f64,
    /// Per-cycle shed fraction at or below which it may recover.
    pub exit_miss: f64,
    /// Per-class p99 latency budgets in nanoseconds ([`Class::ALL`] wire
    /// order; `None` = unbudgeted). Compared against the *windowed* p99
    /// recorded since the previous controller step, so the signal clears
    /// when latency does.
    pub p99_budget_ns: [Option<u64>; 3],
    /// Engine cycles to hold after any shift before the next decision —
    /// the loop's damping term.
    pub cooldown: u32,
    /// Per-class precision floors ([`Class::ALL`] wire order). A floored
    /// class never samples below its floor, at any degradation level.
    pub floors: [Option<Precision>; 3],
}

impl Default for ControlConfig {
    fn default() -> Self {
        Self {
            enter_fill: 0.75,
            exit_fill: 0.25,
            enter_miss: 0.05,
            exit_miss: 0.0,
            p99_budget_ns: [None; 3],
            cooldown: 8,
            floors: [None; 3],
        }
    }
}

impl ControlConfig {
    /// Sets `class`'s precision floor.
    pub fn with_floor(mut self, class: Class, floor: Precision) -> Self {
        self.floors[class.as_u8() as usize] = Some(floor);
        self
    }

    /// Sets the window-fill hysteresis band (degrade at or above `enter`,
    /// recover at or below `exit`).
    pub fn with_fill_band(mut self, enter: f64, exit: f64) -> Self {
        self.enter_fill = enter;
        self.exit_fill = exit;
        self
    }

    /// Sets the deadline-shed-fraction hysteresis band.
    pub fn with_miss_band(mut self, enter: f64, exit: f64) -> Self {
        self.enter_miss = enter;
        self.exit_miss = exit;
        self
    }

    /// Sets `class`'s windowed p99 latency budget.
    pub fn with_p99_budget(mut self, class: Class, budget: std::time::Duration) -> Self {
        self.p99_budget_ns[class.as_u8() as usize] = Some(budget.as_nanos() as u64);
        self
    }

    /// Sets the post-shift cooldown in engine cycles.
    pub fn with_cooldown(mut self, cycles: u32) -> Self {
        self.cooldown = cycles;
        self
    }

    /// `class`'s configured floor, if any.
    pub fn floor_for(&self, class: Class) -> Option<Precision> {
        self.floors[class.as_u8() as usize]
    }

    /// Checks the hysteresis bands are well-formed: thresholds in range
    /// and each enter bound strictly above its exit bound.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.enter_fill) || !(0.0..=1.0).contains(&self.exit_fill) {
            return Err("fill thresholds must be within 0.0..=1.0".to_string());
        }
        if !(0.0..=1.0).contains(&self.enter_miss) || !(0.0..=1.0).contains(&self.exit_miss) {
            return Err("miss thresholds must be within 0.0..=1.0".to_string());
        }
        if self.enter_fill <= self.exit_fill {
            return Err(format!(
                "fill band inverted: enter {} must exceed exit {}",
                self.enter_fill, self.exit_fill
            ));
        }
        if self.enter_miss <= self.exit_miss {
            return Err(format!(
                "miss band inverted: enter {} must exceed exit {}",
                self.enter_miss, self.exit_miss
            ));
        }
        Ok(())
    }
}

/// The pressure signals measured over one engine cycle, consumed by
/// [`Controller::step`].
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleSample {
    /// Occupancy of the batcher's EDF window when the cycle formed,
    /// `0.0..=1.0` (queue-depth pressure).
    pub fill: f64,
    /// Fraction of this cycle's candidates shed for expired deadlines,
    /// `0.0..=1.0` (deadline-miss pressure).
    pub miss: f64,
    /// Windowed per-class p99 latency in nanoseconds since the previous
    /// step ([`Class::ALL`] wire order; 0 = no samples, treated as within
    /// budget).
    pub p99_ns: [u64; 3],
}

/// What one controller step decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// No shift: signals inside the hysteresis band, already at a rail, or
    /// cooling down.
    Hold,
    /// Pressure: the degradation level rose to the carried value.
    Degrade(u8),
    /// Pressure cleared: the level fell to the carried value.
    Recover(u8),
}

/// The feedback state machine. One instance lives on the batcher thread;
/// [`Controller::step`] runs once per engine cycle and its decisions drive
/// [`tia_engine::ShardedEngine::set_degrade_level`].
#[derive(Debug, Clone)]
pub struct Controller {
    cfg: ControlConfig,
    max_level: u8,
    level: u8,
    cooldown_left: u32,
}

impl Controller {
    /// Creates a controller at level 0. `max_level` is the highest level
    /// the engine's policy can express
    /// ([`tia_engine::PrecisionPolicy::max_degrade_level`]).
    pub fn new(cfg: ControlConfig, max_level: u8) -> Self {
        Self {
            cfg,
            max_level,
            level: 0,
            cooldown_left: 0,
        }
    }

    /// The live degradation level.
    pub fn level(&self) -> u8 {
        self.level
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControlConfig {
        &self.cfg
    }

    /// Whether any enter threshold is met.
    fn pressure(&self, s: &CycleSample) -> bool {
        s.fill >= self.cfg.enter_fill || s.miss >= self.cfg.enter_miss || self.over_budget(s)
    }

    /// Whether every exit condition is met.
    fn clear(&self, s: &CycleSample) -> bool {
        s.fill <= self.cfg.exit_fill && s.miss <= self.cfg.exit_miss && !self.over_budget(s)
    }

    fn over_budget(&self, s: &CycleSample) -> bool {
        self.cfg
            .p99_budget_ns
            .iter()
            .zip(s.p99_ns.iter())
            .any(|(budget, &p99)| budget.is_some_and(|b| p99 > b))
    }

    /// Consumes one cycle's pressure sample and decides. The decision
    /// table, in priority order:
    ///
    /// 1. cooling down → hold (and tick the cooldown);
    /// 2. any enter threshold met and below `max_level` → degrade one
    ///    level, start the cooldown;
    /// 3. every exit condition met and above 0 → recover one level, start
    ///    the cooldown;
    /// 4. otherwise (inside the hysteresis band, or at a rail) → hold.
    pub fn step(&mut self, s: &CycleSample) -> Decision {
        if self.cooldown_left > 0 {
            self.cooldown_left -= 1;
            return Decision::Hold;
        }
        if self.pressure(s) && self.level < self.max_level {
            self.level += 1;
            self.cooldown_left = self.cfg.cooldown;
            return Decision::Degrade(self.level);
        }
        if self.clear(s) && self.level > 0 {
            self.level -= 1;
            self.cooldown_left = self.cfg.cooldown;
            return Decision::Recover(self.level);
        }
        Decision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> CycleSample {
        CycleSample::default()
    }

    fn storm() -> CycleSample {
        CycleSample {
            fill: 1.0,
            miss: 0.5,
            p99_ns: [0; 3],
        }
    }

    fn controller(cooldown: u32) -> Controller {
        Controller::new(ControlConfig::default().with_cooldown(cooldown), 4)
    }

    #[test]
    fn hysteresis_enter_and_exit_edges() {
        let mut c = controller(0);
        let cfg = c.config().clone();
        // Exactly at the enter threshold degrades (>= semantics)…
        let at_enter = CycleSample {
            fill: cfg.enter_fill,
            ..quiet()
        };
        assert_eq!(c.step(&at_enter), Decision::Degrade(1));
        // …just below it, inside the band, holds: neither enter nor exit.
        let in_band = CycleSample {
            fill: (cfg.exit_fill + cfg.enter_fill) / 2.0,
            ..quiet()
        };
        assert_eq!(c.step(&in_band), Decision::Hold);
        assert_eq!(c.level(), 1);
        // Exactly at the exit threshold recovers (<= semantics).
        let at_exit = CycleSample {
            fill: cfg.exit_fill,
            ..quiet()
        };
        assert_eq!(c.step(&at_exit), Decision::Recover(0));
        // At level 0 a quiet sample holds — no shift below the rail.
        assert_eq!(c.step(&quiet()), Decision::Hold);
    }

    #[test]
    fn miss_fraction_is_an_independent_enter_signal() {
        let mut c = controller(0);
        let shed_storm = CycleSample {
            miss: c.config().enter_miss,
            ..quiet()
        };
        assert_eq!(c.step(&shed_storm), Decision::Degrade(1));
        // Recovery demands the miss fraction back at or below exit_miss.
        let lingering = CycleSample {
            miss: c.config().enter_miss / 2.0,
            ..quiet()
        };
        assert_eq!(c.step(&lingering), Decision::Hold);
        assert_eq!(c.step(&quiet()), Decision::Recover(0));
    }

    #[test]
    fn p99_budget_enters_and_blocks_recovery() {
        let cfg = ControlConfig::default()
            .with_cooldown(0)
            .with_p99_budget(Class::Interactive, std::time::Duration::from_millis(5));
        let mut c = Controller::new(cfg, 4);
        let mut slow = quiet();
        slow.p99_ns[Class::Interactive.as_u8() as usize] = 6_000_000;
        assert_eq!(c.step(&slow), Decision::Degrade(1));
        // Still over budget: holds, does not recover.
        assert_eq!(c.step(&slow), Decision::Degrade(2));
        let mut ok = quiet();
        ok.p99_ns[Class::Interactive.as_u8() as usize] = 4_000_000;
        assert_eq!(c.step(&ok), Decision::Recover(1));
        // An unbudgeted class's p99 never registers.
        let mut batch_slow = quiet();
        batch_slow.p99_ns[Class::Batch.as_u8() as usize] = u64::MAX;
        assert_eq!(c.step(&batch_slow), Decision::Recover(0));
    }

    #[test]
    fn cooldown_suppresses_consecutive_shifts() {
        let mut c = controller(3);
        assert_eq!(c.step(&storm()), Decision::Degrade(1));
        // Three cycles of continued storm: all held by the cooldown.
        for _ in 0..3 {
            assert_eq!(c.step(&storm()), Decision::Hold);
        }
        // Cooldown spent: the storm degrades another level.
        assert_eq!(c.step(&storm()), Decision::Degrade(2));
        // Recovery is damped by the same cooldown.
        for _ in 0..3 {
            assert_eq!(c.step(&quiet()), Decision::Hold);
        }
        assert_eq!(c.step(&quiet()), Decision::Recover(1));
    }

    #[test]
    fn level_rails_at_zero_and_max() {
        let mut c = controller(0);
        for want in 1..=4u8 {
            assert_eq!(c.step(&storm()), Decision::Degrade(want));
        }
        // At the max level continued pressure holds — no overshoot.
        assert_eq!(c.step(&storm()), Decision::Hold);
        assert_eq!(c.level(), 4);
        for want in (0..=3u8).rev() {
            assert_eq!(c.step(&quiet()), Decision::Recover(want));
        }
        assert_eq!(c.step(&quiet()), Decision::Hold);
        assert_eq!(c.level(), 0);
    }

    #[test]
    fn no_oscillation_under_square_wave_load() {
        // A square wave alternating storm/quiet every cycle. Without
        // damping the controller would shift every cycle; the cooldown
        // bounds shifts to at most one per (cooldown + 1) cycles.
        let cooldown = 4u32;
        let mut c = controller(cooldown);
        let mut shifts = 0u32;
        let cycles = 200u32;
        for i in 0..cycles {
            let s = if i % 2 == 0 { storm() } else { quiet() };
            if c.step(&s) != Decision::Hold {
                shifts += 1;
            }
        }
        assert!(
            shifts <= cycles / (cooldown + 1) + 1,
            "{shifts} shifts in {cycles} square-wave cycles — oscillating"
        );
        // And the level never left its rails.
        assert!(c.level() <= 4);
    }

    #[test]
    fn floors_map_per_class() {
        let cfg = ControlConfig::default()
            .with_floor(Class::Interactive, Precision::new(6))
            .with_floor(Class::Batch, Precision::new(4));
        assert_eq!(cfg.floor_for(Class::Interactive), Some(Precision::new(6)));
        assert_eq!(cfg.floor_for(Class::Batch), Some(Precision::new(4)));
        assert_eq!(cfg.floor_for(Class::Normal), None);
    }

    #[test]
    fn validate_rejects_inverted_bands() {
        assert!(ControlConfig::default().validate().is_ok());
        assert!(ControlConfig::default()
            .with_fill_band(0.3, 0.3)
            .validate()
            .is_err());
        assert!(ControlConfig::default()
            .with_miss_band(0.0, 0.1)
            .validate()
            .is_err());
        assert!(ControlConfig::default()
            .with_fill_band(1.5, 0.2)
            .validate()
            .is_err());
    }
}
