//! Loopback integration tests: a real `tia-serve` server on 127.0.0.1
//! driven through real sockets, pinned against the in-process engine.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;
use tia_engine::{EngineConfig, PrecisionPolicy, ShardedEngine};
use tia_nn::zoo;
use tia_quant::{Precision, PrecisionSet};
use tia_serve::wire::{Class, Frame, InferResponse, RejectCode, WireError};
use tia_serve::{
    fetch_metrics, infer_frame, infer_frame_with, Client, Clock, ControlConfig, LoadConfig, Server,
    ServerConfig, WirePolicy,
};
use tia_tensor::{SeededRng, Tensor};

const SHAPE: [usize; 3] = [3, 8, 8];

fn replica() -> tia_nn::Network {
    zoo::preact_resnet18_rps(3, 4, 5, PrecisionSet::range(4, 8), &mut SeededRng::new(1))
}

fn base_config() -> ServerConfig {
    ServerConfig::default()
        .with_input_shape(SHAPE)
        .with_workers(2)
        .with_policy(PrecisionPolicy::Random(PrecisionSet::range(4, 8)))
        .with_engine(EngineConfig::default().with_max_batch(4).with_seed(7))
}

fn images(n: usize, seed: u64) -> Tensor {
    let mut rng = SeededRng::new(seed);
    Tensor::rand_uniform(&[n, SHAPE[0], SHAPE[1], SHAPE[2]], 0.0, 1.0, &mut rng)
}

/// The acceptance criterion of the subsystem: logits served over TCP are
/// bitwise identical to the in-process sharded engine under the same seed
/// and submission order, and the precision schedule matches draw for draw.
#[test]
fn tcp_served_logits_are_bitwise_identical_to_in_process_engine() {
    const N: usize = 12;
    let server = Server::spawn(base_config(), |_| replica()).unwrap();
    let x = images(N, 2);

    let mut client = Client::connect(server.addr()).unwrap();
    // Pipeline all requests on one connection: wire order = submission
    // order, exactly what the in-process reference sees.
    for i in 0..N {
        client
            .send(&infer_frame(
                i as u64,
                &x.index_axis0(i),
                WirePolicy::Server,
            ))
            .unwrap();
    }
    let mut over_tcp: Vec<InferResponse> = (0..N)
        .map(|_| match client.recv().unwrap() {
            Frame::Logits(r) => r,
            other => panic!("expected logits, got {other:?}"),
        })
        .collect();
    over_tcp.sort_by_key(|r| r.id);

    let mut reference = ShardedEngine::with_factory(
        2,
        |_| replica(),
        PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
        EngineConfig::default().with_max_batch(4).with_seed(7),
    );
    let in_process = reference.serve(&x);

    for (tcp, local) in over_tcp.iter().zip(&in_process) {
        assert_eq!(tcp.id, local.id, "response ids must align");
        assert_eq!(
            tcp.precision, local.precision,
            "request {} diverged from the seeded schedule",
            tcp.id
        );
        assert_eq!(tcp.top1, local.top1);
        let tcp_bits: Vec<u32> = tcp.logits.iter().map(|v| v.to_bits()).collect();
        let local_bits: Vec<u32> = local.logits.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            tcp_bits, local_bits,
            "request {} logits not bitwise equal",
            tcp.id
        );
    }

    let engine = server.shutdown();
    assert_eq!(engine.stats().requests, N);
}

/// Explicit per-request policies: pinned precisions execute as pinned and
/// consume no draw from the server's seeded schedule.
#[test]
fn pinned_wire_policies_execute_at_the_pinned_precision() {
    let server = Server::spawn(base_config(), |_| replica()).unwrap();
    let x = images(3, 3);
    let mut client = Client::connect(server.addr()).unwrap();

    let pin = WirePolicy::Fixed(Some(Precision::new(5)));
    match client.infer(0, &x.index_axis0(0), pin).unwrap() {
        Frame::Logits(r) => assert_eq!(r.precision, Some(Precision::new(5))),
        other => panic!("expected logits, got {other:?}"),
    }
    match client
        .infer(1, &x.index_axis0(1), WirePolicy::Fixed(None))
        .unwrap()
    {
        Frame::Logits(r) => assert_eq!(r.precision, None, "fp32 pin must run full precision"),
        other => panic!("expected logits, got {other:?}"),
    }
    match client
        .infer(
            2,
            &x.index_axis0(2),
            WirePolicy::Random(PrecisionSet::range(6, 7)),
        )
        .unwrap()
    {
        Frame::Logits(r) => {
            let p = r.precision.expect("explicit random set never fp32");
            assert!((6..=7).contains(&p.bits()));
        }
        other => panic!("expected logits, got {other:?}"),
    }
    server.shutdown();
}

/// Admission control: with the batcher paused and a 2-deep queue, a burst
/// of 6 yields exactly 4 queue-full rejects, and the admitted 2 are served
/// after resume.
#[test]
fn full_queue_rejects_with_503_style_frames() {
    let cfg = base_config().with_queue_capacity(2).paused();
    let server = Server::spawn(cfg, |_| replica()).unwrap();
    let x = images(6, 4);
    let mut client = Client::connect(server.addr()).unwrap();
    for i in 0..6 {
        client
            .send(&infer_frame(
                i as u64,
                &x.index_axis0(i),
                WirePolicy::Server,
            ))
            .unwrap();
    }
    // The reader processes frames sequentially, so rejects are determined:
    // ids 2..6 bounce immediately while the batcher sleeps.
    let mut rejected = Vec::new();
    for _ in 0..4 {
        match client.recv().unwrap() {
            Frame::Reject { id, code } => {
                assert_eq!(code, RejectCode::QueueFull);
                rejected.push(id);
            }
            other => panic!("expected queue-full reject, got {other:?}"),
        }
    }
    assert_eq!(rejected, vec![2, 3, 4, 5]);

    server.resume();
    let mut served = Vec::new();
    for _ in 0..2 {
        match client.recv().unwrap() {
            Frame::Logits(r) => served.push(r.id),
            other => panic!("expected logits, got {other:?}"),
        }
    }
    served.sort_unstable();
    assert_eq!(served, vec![0, 1]);

    assert_eq!(
        server
            .metrics()
            .rejected_queue_full
            .load(std::sync::atomic::Ordering::Relaxed),
        4
    );
    server.shutdown();
}

/// Wrong geometry is refused per request; the connection stays usable.
#[test]
fn bad_shape_is_rejected_but_connection_survives() {
    let server = Server::spawn(base_config(), |_| replica()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let wrong = Tensor::zeros(&[1, 4, 4]);
    match client.infer(9, &wrong, WirePolicy::Server).unwrap() {
        Frame::Reject { id, code } => {
            assert_eq!(id, 9);
            assert_eq!(code, RejectCode::BadShape);
        }
        other => panic!("expected bad-shape reject, got {other:?}"),
    }
    // Same connection, correct shape: served normally.
    let ok = images(1, 5);
    assert!(matches!(
        client
            .infer(10, &ok.index_axis0(0), WirePolicy::Server)
            .unwrap(),
        Frame::Logits(_)
    ));
    server.shutdown();
}

/// A malformed frame earns an error report and a closed connection — and
/// the server keeps serving everyone else.
#[test]
fn malformed_frames_get_an_error_and_a_closed_connection() {
    let server = Server::spawn(base_config(), |_| replica()).unwrap();

    let mut raw = TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n garbage that is not a frame")
        .unwrap();
    raw.flush().unwrap();
    match Frame::read_from(&mut raw) {
        Ok(Frame::Error { msg }) => assert!(!msg.is_empty()),
        Ok(other) => panic!("expected error frame, got {other:?}"),
        Err(e) => panic!("expected error frame, got {e}"),
    }
    // The server hangs up after the error frame.
    assert!(matches!(
        Frame::read_from(&mut raw),
        Err(WireError::Closed) | Err(WireError::Io(_))
    ));

    // A well-behaved client on a fresh connection is unaffected.
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();
    let x = images(1, 6);
    assert!(matches!(
        client
            .infer(0, &x.index_axis0(0), WirePolicy::Server)
            .unwrap(),
        Frame::Logits(_)
    ));

    assert!(
        server
            .metrics()
            .bad_frames_total
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    server.shutdown();
}

/// Graceful drain: pipelined requests followed by a shutdown frame all get
/// answered before the acknowledgement, then the socket closes cleanly and
/// new work is refused as draining.
#[test]
fn shutdown_drains_admitted_work_before_acking() {
    const N: usize = 5;
    let server = Server::spawn(base_config(), |_| replica()).unwrap();
    let x = images(N, 7);
    let mut client = Client::connect(server.addr()).unwrap();
    for i in 0..N {
        client
            .send(&infer_frame(
                i as u64,
                &x.index_axis0(i),
                WirePolicy::Server,
            ))
            .unwrap();
    }
    let mut served = 0;
    client
        .shutdown_server(|frame| {
            if matches!(frame, Frame::Logits(_)) {
                served += 1;
            }
        })
        .unwrap();
    assert_eq!(served, N, "every admitted request must be served pre-ack");
    // The remote shutdown completes without local help; wait() just joins.
    let metrics = server.metrics_handle();
    let engine = server.wait();
    assert_eq!(engine.stats().requests, N);
    // Quiescence ledger: reader threads joined, queue gauge back to zero,
    // and the counters conserve (admitted = served + shed + errored).
    let snap = metrics.snapshot();
    assert_eq!(snap.readers_live, 0, "reader thread leaked past shutdown");
    assert_eq!(snap.queue_depth, 0, "queue gauge must return to zero");
    assert_eq!(snap.conservation_check(), Ok(()));
    // And once drained, the server has closed the connection.
    assert!(matches!(
        client.recv(),
        Err(WireError::Closed) | Err(WireError::Io(_))
    ));
}

/// The Prometheus endpoint reports live counters in exposition format.
#[test]
fn metrics_endpoint_serves_prometheus_text() {
    let cfg = base_config().with_metrics_addr("127.0.0.1:0");
    let server = Server::spawn(cfg, |_| replica()).unwrap();
    let metrics_addr = server.metrics_addr().expect("metrics listener enabled");

    let report = tia_serve::run_load(&LoadConfig {
        addr: server.addr().to_string(),
        connections: 2,
        requests: 10,
        inflight: 4,
        rate: None,
        shape: SHAPE,
        seed: 9,
        policy: WirePolicy::Server,
        ..LoadConfig::default()
    })
    .unwrap();
    assert_eq!(report.ok, 10);
    assert_eq!(report.errors, 0);
    assert!(report.latency.count() == 10 && report.rps() > 0.0);

    let text = fetch_metrics(metrics_addr).unwrap();
    assert!(text.contains("tia_serve_requests_total 10"), "{text}");
    assert!(text.contains("tia_serve_responses_total 10"), "{text}");
    assert!(
        text.contains("tia_serve_request_latency_seconds_count 10"),
        "{text}"
    );
    assert!(text.contains("tia_serve_connections_total 2"), "{text}");
    // 10 RPS draws from 4~8-bit: the per-precision mix sums to 10.
    let mix: u64 = text
        .lines()
        .filter(|l| l.starts_with("tia_serve_frames_by_precision_total"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(mix, 10);

    // Unknown scrape paths 404 without killing the listener.
    use std::io::{Read, Write as _};
    let mut s = TcpStream::connect(metrics_addr).unwrap();
    s.write_all(b"GET /nope HTTP/1.0\r\n\r\n").unwrap();
    let mut reply = String::new();
    s.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.0 404"), "{reply}");
    drop(s);
    assert!(fetch_metrics(metrics_addr).is_ok());

    server.shutdown();
}

/// Determinism re-pin for the EDF scheduler: a non-zero batch-forming wait
/// delays *when* batches form, but with no deadlines or classes on the
/// wire the engine must still see the exact wire order — logits and the
/// precision schedule stay bitwise identical to the in-process engine
/// (i.e. to PR 4's FIFO batcher, which the FIFO-identity test above pins
/// against the same reference).
#[test]
fn max_wait_delays_batches_without_perturbing_the_schedule() {
    const N: usize = 10;
    let cfg = base_config().with_max_wait(Duration::from_millis(5));
    let server = Server::spawn(cfg, |_| replica()).unwrap();
    let x = images(N, 21);
    let mut client = Client::connect(server.addr()).unwrap();
    for i in 0..N {
        client
            .send(&infer_frame(
                i as u64,
                &x.index_axis0(i),
                WirePolicy::Server,
            ))
            .unwrap();
    }
    let mut over_tcp: Vec<InferResponse> = (0..N)
        .map(|_| match client.recv().unwrap() {
            Frame::Logits(r) => r,
            other => panic!("expected logits, got {other:?}"),
        })
        .collect();
    over_tcp.sort_by_key(|r| r.id);

    let mut reference = ShardedEngine::with_factory(
        2,
        |_| replica(),
        PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
        EngineConfig::default().with_max_batch(4).with_seed(7),
    );
    let in_process = reference.serve(&x);
    for (tcp, local) in over_tcp.iter().zip(&in_process) {
        assert_eq!(tcp.precision, local.precision, "schedule diverged");
        let tcp_bits: Vec<u32> = tcp.logits.iter().map(|v| v.to_bits()).collect();
        let local_bits: Vec<u32> = local.logits.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(tcp_bits, local_bits, "request {} not bitwise", tcp.id);
    }
    server.shutdown();
}

/// Acceptance pin: expired requests are shed with a typed
/// `Reject{DeadlineExceeded}` and consume **no draw** from the seeded
/// precision schedule — the surviving requests get exactly the draws an
/// engine fed only them would produce, bitwise logits included.
#[test]
fn expired_requests_are_shed_and_consume_no_schedule_draw() {
    const N: usize = 6;
    let server = Server::spawn(base_config().paused(), |_| replica()).unwrap();
    let x = images(N, 22);
    let mut client = Client::connect(server.addr()).unwrap();
    // Odd ids carry a 1 ms deadline; the batcher is paused long past it.
    for i in 0..N {
        let deadline = if i % 2 == 1 { Some(1) } else { None };
        client
            .send(&infer_frame_with(
                i as u64,
                &x.index_axis0(i),
                WirePolicy::Server,
                deadline,
                Class::Normal,
            ))
            .unwrap();
    }
    std::thread::sleep(Duration::from_millis(100));
    server.resume();

    let mut shed = Vec::new();
    let mut served: Vec<InferResponse> = Vec::new();
    for _ in 0..N {
        match client.recv().unwrap() {
            Frame::Reject { id, code } => {
                assert_eq!(code, RejectCode::DeadlineExceeded);
                shed.push(id);
            }
            Frame::Logits(r) => served.push(r),
            other => panic!("unexpected frame {other:?}"),
        }
    }
    shed.sort_unstable();
    assert_eq!(shed, vec![1, 3, 5], "exactly the expired requests shed");
    served.sort_by_key(|r| r.id);
    assert_eq!(
        served.iter().map(|r| r.id).collect::<Vec<_>>(),
        vec![0, 2, 4]
    );

    // Reference: an engine that never saw the shed requests. If shedding
    // consumed schedule draws, the precisions (and logits) would diverge.
    let survivors = {
        let mut rng = SeededRng::new(0);
        let mut t = Tensor::rand_uniform(&[3, SHAPE[0], SHAPE[1], SHAPE[2]], 0.0, 1.0, &mut rng);
        for (row, i) in [0usize, 2, 4].iter().enumerate() {
            t.set_axis0(row, &x.index_axis0(*i));
        }
        t
    };
    let mut reference = ShardedEngine::with_factory(
        2,
        |_| replica(),
        PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
        EngineConfig::default().with_max_batch(4).with_seed(7),
    );
    let in_process = reference.serve(&survivors);
    for (tcp, local) in served.iter().zip(&in_process) {
        assert_eq!(
            tcp.precision, local.precision,
            "a shed request consumed a schedule draw"
        );
        let tcp_bits: Vec<u32> = tcp.logits.iter().map(|v| v.to_bits()).collect();
        let local_bits: Vec<u32> = local.logits.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(tcp_bits, local_bits);
    }
    let metrics = server.metrics();
    assert_eq!(
        metrics
            .rejected_deadline
            .load(std::sync::atomic::Ordering::Relaxed),
        3
    );
    let engine = server.shutdown();
    assert_eq!(engine.stats().requests, 3, "shed work never hit the engine");
}

/// Deadline shedding driven by the injected [`Clock`] seam instead of wall
/// time: with a manual clock, time passes only on `advance`, so a 5 ms
/// deadline expires deterministically — no sleeps, no timing slack — while
/// the undeadlined request on the same connection is served normally.
#[test]
fn manual_clock_expires_deadlines_without_wall_time() {
    let clock = Clock::manual();
    let server = Server::spawn(base_config().paused().with_clock(clock.clone()), |_| {
        replica()
    })
    .unwrap();
    let x = images(2, 33);
    let mut client = Client::connect(server.addr()).unwrap();
    client
        .send(&infer_frame_with(
            0,
            &x.index_axis0(0),
            WirePolicy::Server,
            Some(5),
            Class::Normal,
        ))
        .unwrap();
    client
        .send(&infer_frame_with(
            1,
            &x.index_axis0(1),
            WirePolicy::Server,
            None,
            Class::Normal,
        ))
        .unwrap();
    // Wait until both requests are admitted (the reader thread stamps their
    // enqueue time from the manual clock, which is still at zero).
    let metrics = server.metrics();
    for _ in 0..1000 {
        if metrics
            .queue_depth
            .load(std::sync::atomic::Ordering::Relaxed)
            == 2
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        metrics
            .queue_depth
            .load(std::sync::atomic::Ordering::Relaxed),
        2,
        "requests were not admitted"
    );
    // 50 virtual milliseconds pass; only the deadlined request expires.
    clock.advance(Duration::from_millis(50));
    server.resume();
    let mut shed = Vec::new();
    let mut served = Vec::new();
    for _ in 0..2 {
        match client.recv().unwrap() {
            Frame::Reject { id, code } => {
                assert_eq!(code, RejectCode::DeadlineExceeded);
                shed.push(id);
            }
            Frame::Logits(r) => served.push(r.id),
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(
        shed,
        vec![0],
        "the 5 ms deadline expired under advance(50ms)"
    );
    assert_eq!(served, vec![1], "the undeadlined request survived");
    let engine = server.shutdown();
    assert_eq!(engine.stats().requests, 1);
}

/// The EDF order inside one batch: interactive beats normal, a deadline
/// beats no deadline, and the schedule draws follow that order — pinned by
/// replaying the same images into an in-process engine in EDF order.
#[test]
fn edf_orders_classes_and_deadlines_within_a_batch() {
    let server = Server::spawn(base_config().paused(), |_| replica()).unwrap();
    let x = images(3, 23);
    let mut client = Client::connect(server.addr()).unwrap();
    // Wire order: plain normal, normal + far-future deadline, interactive.
    client
        .send(&infer_frame(0, &x.index_axis0(0), WirePolicy::Server))
        .unwrap();
    client
        .send(&infer_frame_with(
            1,
            &x.index_axis0(1),
            WirePolicy::Server,
            Some(10_000),
            Class::Normal,
        ))
        .unwrap();
    client
        .send(&infer_frame_with(
            2,
            &x.index_axis0(2),
            WirePolicy::Server,
            None,
            Class::Interactive,
        ))
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    server.resume();

    let mut served: Vec<InferResponse> = (0..3)
        .map(|_| match client.recv().unwrap() {
            Frame::Logits(r) => r,
            other => panic!("expected logits, got {other:?}"),
        })
        .collect();
    served.sort_by_key(|r| r.id);

    // EDF order is 2 (interactive), 1 (deadlined normal), 0 (plain
    // normal): replay the images in that order in-process and match the
    // draws position by position.
    let edf = {
        let mut rng = SeededRng::new(0);
        let mut t = Tensor::rand_uniform(&[3, SHAPE[0], SHAPE[1], SHAPE[2]], 0.0, 1.0, &mut rng);
        for (row, i) in [2usize, 1, 0].iter().enumerate() {
            t.set_axis0(row, &x.index_axis0(*i));
        }
        t
    };
    let mut reference = ShardedEngine::with_factory(
        2,
        |_| replica(),
        PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
        EngineConfig::default().with_max_batch(4).with_seed(7),
    );
    let in_process = reference.serve(&edf);
    for (wire_id, ref_pos) in [(2u64, 0usize), (1, 1), (0, 2)] {
        let tcp = &served[wire_id as usize];
        let local = &in_process[ref_pos];
        assert_eq!(
            tcp.precision, local.precision,
            "request {wire_id} did not occupy EDF draw position {ref_pos}"
        );
        let tcp_bits: Vec<u32> = tcp.logits.iter().map(|v| v.to_bits()).collect();
        let local_bits: Vec<u32> = local.logits.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(tcp_bits, local_bits);
    }
    server.shutdown();
}

/// The scheduling window spans several engine cycles, so EDF has real
/// authority: an interactive request admitted *behind* a 20-deep backlog
/// of normal work is pulled into the first batch instead of waiting out
/// the whole queue — the head-of-line-blocking fix, observed as response
/// order on the wire.
#[test]
fn interactive_request_overtakes_a_queued_backlog() {
    const BACKLOG: usize = 20;
    // max_take = workers(2) x max_batch(4) = 8; window = 4 cycles = 32.
    let server = Server::spawn(base_config().paused(), |_| replica()).unwrap();
    let x = images(BACKLOG + 1, 25);
    let mut client = Client::connect(server.addr()).unwrap();
    for i in 0..BACKLOG {
        client
            .send(&infer_frame(
                i as u64,
                &x.index_axis0(i),
                WirePolicy::Server,
            ))
            .unwrap();
    }
    client
        .send(&infer_frame_with(
            BACKLOG as u64,
            &x.index_axis0(BACKLOG),
            WirePolicy::Server,
            None,
            Class::Interactive,
        ))
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    server.resume();

    let order: Vec<u64> = (0..BACKLOG + 1)
        .map(|_| match client.recv().unwrap() {
            Frame::Logits(r) => r.id,
            other => panic!("expected logits, got {other:?}"),
        })
        .collect();
    let position = order
        .iter()
        .position(|&id| id == BACKLOG as u64)
        .expect("interactive request was served");
    assert!(
        position < 8,
        "the interactive request must ride the first engine cycle (got \
         position {position} in {order:?})"
    );
    server.shutdown();
}

/// Satellite pin: a `Shutdown` frame on one connection racing other
/// connections mid-submit. Everything admitted is drained — no lost
/// responses, no double `ShutdownAck` — including requests whose deadlines
/// expire during the drain (answered with a typed reject, not dropped).
#[test]
fn shutdown_races_inflight_submissions_across_connections() {
    const RACERS: usize = 50;
    let server = Server::spawn(base_config().paused(), |_| replica()).unwrap();
    let x = images(8, 24);

    // Connection A: two plain requests plus two whose 1 ms deadline will
    // have expired by the time the drain sweep reaches them.
    let mut conn_a = Client::connect(server.addr()).unwrap();
    for (id, deadline) in [(0u64, None), (1, Some(1)), (2, None), (3, Some(1))] {
        conn_a
            .send(&infer_frame_with(
                id,
                &x.index_axis0(id as usize),
                WirePolicy::Server,
                deadline,
                Class::Normal,
            ))
            .unwrap();
    }

    // Connection C: a racer pipelining submissions while the shutdown
    // lands. Admission is racy by construction; the invariant is that
    // every sent request gets exactly one answer.
    let addr = server.addr();
    let img = x.index_axis0(7);
    let racer = std::thread::spawn(move || {
        let mut conn = Client::connect(addr).unwrap();
        let mut sent = 0u64;
        for id in 0..RACERS as u64 {
            if conn
                .send(&infer_frame(id, &img, WirePolicy::Server))
                .is_err()
            {
                break;
            }
            sent += 1;
        }
        let (mut ok, mut rejected) = (0u64, 0u64);
        for _ in 0..sent {
            match conn.recv() {
                Ok(Frame::Logits(_)) => ok += 1,
                Ok(Frame::Reject { code, .. }) => {
                    assert!(
                        matches!(code, RejectCode::Draining | RejectCode::QueueFull),
                        "unexpected racer reject {code:?}"
                    );
                    rejected += 1;
                }
                Ok(other) => panic!("unexpected racer frame {other:?}"),
                Err(_) => break,
            }
        }
        (sent, ok, rejected)
    });

    // Connection B: three requests, then the shutdown — its admitted work
    // must be served before the single ack.
    let mut conn_b = Client::connect(server.addr()).unwrap();
    for id in 0..3u64 {
        conn_b
            .send(&infer_frame(
                id,
                &x.index_axis0(4 + id as usize),
                WirePolicy::Server,
            ))
            .unwrap();
    }
    conn_b.send(&Frame::Shutdown).unwrap();
    std::thread::sleep(Duration::from_millis(100));
    server.resume();

    // B: exactly 3 logits, then exactly one ack, then a closed socket.
    let (mut b_logits, mut b_acks) = (0, 0);
    loop {
        match conn_b.recv() {
            Ok(Frame::Logits(_)) => b_logits += 1,
            Ok(Frame::ShutdownAck) => {
                b_acks += 1;
                break;
            }
            Ok(other) => panic!("unexpected frame on B {other:?}"),
            Err(e) => panic!("B lost its ack: {e}"),
        }
    }
    assert_eq!(b_logits, 3, "B's admitted work must be served pre-ack");
    assert_eq!(b_acks, 1);

    // A: four answers — two served, two shed as DeadlineExceeded — and
    // crucially no ShutdownAck (only the requester is acked).
    let (mut a_logits, mut a_shed) = (Vec::new(), Vec::new());
    for _ in 0..4 {
        match conn_a.recv().unwrap() {
            Frame::Logits(r) => a_logits.push(r.id),
            Frame::Reject { id, code } => {
                assert_eq!(code, RejectCode::DeadlineExceeded);
                a_shed.push(id);
            }
            other => panic!("unexpected frame on A {other:?}"),
        }
    }
    a_logits.sort_unstable();
    a_shed.sort_unstable();
    assert_eq!(a_logits, vec![0, 2]);
    assert_eq!(
        a_shed,
        vec![1, 3],
        "deadlines expiring mid-drain still answered"
    );

    let (c_sent, c_ok, c_rejected) = racer.join().unwrap();
    assert_eq!(
        c_ok + c_rejected,
        c_sent,
        "every racer request needs exactly one answer"
    );

    let metrics = server.metrics_handle();
    let engine = server.wait();
    // No lost and no duplicated responses: the engine executed exactly the
    // requests that were answered with logits.
    assert_eq!(
        engine.stats().requests as u64,
        2 + 3 + c_ok,
        "admitted-and-unexpired work must be drained exactly once"
    );
    // Quiescence ledger even after the racing shutdown: no reader thread
    // survives the drain, the gauge is back to zero, counters conserve.
    let snap = metrics.snapshot();
    assert_eq!(snap.readers_live, 0, "reader thread leaked past shutdown");
    assert_eq!(snap.queue_depth, 0, "queue gauge must return to zero");
    assert_eq!(snap.conservation_check(), Ok(()));
    // After the drain the server closed both connections; A never sees a
    // second ack.
    assert!(matches!(
        conn_a.recv(),
        Err(WireError::Closed) | Err(WireError::Io(_))
    ));
    assert!(matches!(
        conn_b.recv(),
        Err(WireError::Closed) | Err(WireError::Io(_))
    ));
}

/// Slow-loris isolation, on virtual time: one connection drips the
/// 12-byte frame header a single byte per manual-clock tick. Per-frame
/// reads live on that connection's reader thread, so the batcher keeps
/// running and another client's infer is served to completion *while the
/// loris is still mid-header* — no wall-clock sleeps anywhere, only
/// `Clock::advance`. Once the loris finally finishes its frame, it too is
/// served (slow is not malformed).
#[test]
fn slow_loris_header_does_not_hold_the_batcher_or_starve_others() {
    let clock = Clock::manual();
    let server = Server::spawn(base_config().with_clock(clock.clone()), |_| replica()).unwrap();
    let x = images(2, 34);

    let mut loris = TcpStream::connect(server.addr()).unwrap();
    loris.set_nodelay(true).unwrap();
    let frame = infer_frame(77, &x.index_axis0(0), WirePolicy::Server).encode();

    // One header byte per virtual-clock tick. The write returns as soon as
    // the kernel buffers the byte; the server side sits in a partial
    // header read on the loris's own reader thread.
    for byte in &frame[..12] {
        loris.write_all(std::slice::from_ref(byte)).unwrap();
        loris.flush().unwrap();
        clock.advance(Duration::from_millis(1));
    }

    // Mid-header, a well-behaved client is served normally: the batcher
    // never blocked on the loris's unfinished frame.
    let mut client = Client::connect(server.addr()).unwrap();
    match client
        .infer(1, &x.index_axis0(1), WirePolicy::Server)
        .unwrap()
    {
        Frame::Logits(r) => assert_eq!(r.id, 1),
        other => panic!("victim client starved by the loris: {other:?}"),
    }

    // The loris completes its frame (payload in one write) and is served.
    loris.write_all(&frame[12..]).unwrap();
    loris.flush().unwrap();
    match Frame::read_from(&mut loris) {
        Ok(Frame::Logits(r)) => assert_eq!(r.id, 77),
        other => panic!("completed slow frame must be served, got {other:?}"),
    }

    let metrics = server.metrics_handle();
    let engine = server.shutdown();
    assert_eq!(engine.stats().requests, 2);
    let snap = metrics.snapshot();
    assert_eq!(snap.readers_live, 0);
    assert_eq!(snap.conservation_check(), Ok(()));
}

/// Tentpole acceptance: under a queued backlog the adaptive controller
/// walks the degradation level up cycle by cycle (shifting the precision
/// mix toward lower bit-widths), recovers once the pressure clears, and a
/// floored class never samples below its floor at any level.
///
/// The scenario is fully determined: 32 requests queued against a paused
/// server fill the 32-slot EDF window exactly, so the four 8-deep cycles
/// see fills 1.0, 0.75, 0.5 and 0.25. With a (0.5, 0.25) fill band and no
/// cooldown that is three degrade steps and then recovery — each step
/// landing *after* its cycle was served, so the cycles run at levels
/// 0, 1, 2, 3.
#[test]
fn adaptive_degradation_respects_per_class_floors() {
    const BACKLOG: usize = 32; // window_cap = WINDOW_CYCLES(4) x max_take(8)
    let ctrl = ControlConfig::default()
        .with_fill_band(0.5, 0.25)
        .with_cooldown(0)
        .with_floor(Class::Interactive, Precision::new(6));
    let cfg = base_config()
        .with_queue_capacity(64)
        .with_control(ctrl)
        .paused();
    let server = Server::spawn(cfg, |_| replica()).unwrap();
    let x = images(BACKLOG + 3, 41);
    let mut client = Client::connect(server.addr()).unwrap();
    for i in 0..BACKLOG {
        client
            .send(&infer_frame(
                i as u64,
                &x.index_axis0(i),
                WirePolicy::Server,
            ))
            .unwrap();
    }
    let metrics = server.metrics_handle();
    for _ in 0..1000 {
        if metrics
            .queue_depth
            .load(std::sync::atomic::Ordering::Relaxed)
            == BACKLOG as u64
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(
        metrics
            .queue_depth
            .load(std::sync::atomic::Ordering::Relaxed),
        BACKLOG as u64,
        "backlog was not admitted"
    );
    server.resume();

    let mut normals: Vec<InferResponse> = (0..BACKLOG)
        .map(|_| match client.recv().unwrap() {
            Frame::Logits(r) => r,
            other => panic!("expected logits, got {other:?}"),
        })
        .collect();
    normals.sort_by_key(|r| r.id);
    // The last cycle (ids 24..32) ran at level 3: its window is {4, 5}-bit
    // — strictly below the interactive floor, so degradation really bit.
    for r in &normals[24..] {
        let bits = r.precision.expect("server RPS policy never fp32").bits();
        assert!(
            bits < 6,
            "request {} should be degraded below 6 bits at level 3, got {bits}",
            r.id
        );
    }

    // Interactive requests one at a time, starting at level 2 (the recover
    // step after cycle four): every draw is clamped to the 6-bit floor or
    // above, at every level on the way back down to 0.
    for i in BACKLOG..BACKLOG + 3 {
        client
            .send(&infer_frame_with(
                i as u64,
                &x.index_axis0(i),
                WirePolicy::Server,
                None,
                Class::Interactive,
            ))
            .unwrap();
        match client.recv().unwrap() {
            Frame::Logits(r) => {
                let bits = r.precision.expect("server RPS policy never fp32").bits();
                assert!(
                    bits >= 6,
                    "interactive request {i} sampled {bits} bits, below its floor"
                );
            }
            other => panic!("expected logits, got {other:?}"),
        }
    }

    // The controller's ledger, exactly: three degrades under the backlog;
    // three recovers (after cycle four, then after each of the first two
    // interactive cycles); every interactive draw floor-clamped (the floor
    // lifts the 4~8-bit window's low edge at levels 2, 1 and 0 alike).
    use std::sync::atomic::Ordering as O;
    assert_eq!(metrics.degrade_shifts_down.load(O::Relaxed), 3);
    assert_eq!(metrics.degrade_shifts_up.load(O::Relaxed), 3);
    assert_eq!(metrics.floor_clamped_total.load(O::Relaxed), 3);
    assert_eq!(
        metrics.degrade_level.load(O::Relaxed),
        0,
        "level must return to 0 once pressure clears"
    );
    server.shutdown();
}

/// Adaptive runs are bitwise deterministic per seed: the same submissions
/// against the same configuration yield the same controller decisions,
/// hence the same precision schedule and identical logits bits, run to
/// run — degradation changes what a draw maps to, never the stream
/// position.
#[test]
fn adaptive_runs_are_bitwise_deterministic_per_seed() {
    fn run_once() -> Vec<(u64, Option<Precision>, Vec<u32>)> {
        const N: usize = 32;
        let ctrl = ControlConfig::default()
            .with_fill_band(0.5, 0.25)
            .with_cooldown(1)
            .with_floor(Class::Interactive, Precision::new(6));
        let cfg = base_config()
            .with_queue_capacity(64)
            .with_control(ctrl)
            .paused();
        let server = Server::spawn(cfg, |_| replica()).unwrap();
        let x = images(N, 42);
        let mut client = Client::connect(server.addr()).unwrap();
        for i in 0..N {
            let class = if i % 4 == 0 {
                Class::Interactive
            } else {
                Class::Normal
            };
            client
                .send(&infer_frame_with(
                    i as u64,
                    &x.index_axis0(i),
                    WirePolicy::Server,
                    None,
                    class,
                ))
                .unwrap();
        }
        let metrics = server.metrics();
        for _ in 0..1000 {
            if metrics
                .queue_depth
                .load(std::sync::atomic::Ordering::Relaxed)
                == N as u64
            {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        server.resume();
        let mut got: Vec<InferResponse> = (0..N)
            .map(|_| match client.recv().unwrap() {
                Frame::Logits(r) => r,
                other => panic!("expected logits, got {other:?}"),
            })
            .collect();
        got.sort_by_key(|r| r.id);
        server.shutdown();
        got.into_iter()
            .map(|r| {
                (
                    r.id,
                    r.precision,
                    r.logits.iter().map(|v| v.to_bits()).collect(),
                )
            })
            .collect()
    }
    assert_eq!(run_once(), run_once());
}

/// Arming the controller is free when there is no pressure: at level 0 an
/// adaptive server's schedule is draw-for-draw the plain-RPS schedule, so
/// logits stay bitwise identical to an in-process reference engine that
/// has never heard of the controller.
#[test]
fn idle_adaptive_server_matches_the_plain_rps_schedule_bitwise() {
    const N: usize = 12;
    let cfg = base_config().with_control(ControlConfig::default());
    let server = Server::spawn(cfg, |_| replica()).unwrap();
    let x = images(N, 43);
    let mut client = Client::connect(server.addr()).unwrap();
    for i in 0..N {
        client
            .send(&infer_frame(
                i as u64,
                &x.index_axis0(i),
                WirePolicy::Server,
            ))
            .unwrap();
    }
    let mut over_tcp: Vec<InferResponse> = (0..N)
        .map(|_| match client.recv().unwrap() {
            Frame::Logits(r) => r,
            other => panic!("expected logits, got {other:?}"),
        })
        .collect();
    over_tcp.sort_by_key(|r| r.id);

    let mut reference = ShardedEngine::with_factory(
        2,
        |_| replica(),
        PrecisionPolicy::Random(PrecisionSet::range(4, 8)),
        EngineConfig::default().with_max_batch(4).with_seed(7),
    );
    let in_process = reference.serve(&x);
    for (tcp, local) in over_tcp.iter().zip(&in_process) {
        assert_eq!(
            tcp.precision, local.precision,
            "an idle controller must not perturb the schedule"
        );
        let tcp_bits: Vec<u32> = tcp.logits.iter().map(|v| v.to_bits()).collect();
        let local_bits: Vec<u32> = local.logits.data().iter().map(|v| v.to_bits()).collect();
        assert_eq!(tcp_bits, local_bits);
    }
    server.shutdown();
}

/// An open-loop run against a paused, tiny-queue server sheds load via
/// rejects instead of queueing without bound.
#[test]
fn open_loop_overload_is_shed_with_rejects() {
    let cfg = base_config().with_queue_capacity(2).paused();
    let server = Server::spawn(cfg, |_| replica()).unwrap();
    // Resume the batcher only after the burst has been fired, so the
    // bounded queue is what absorbs (and sheds) the arrivals; the admitted
    // requests are then served, unblocking the load run.
    let report = std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(400));
            server.resume();
        });
        tia_serve::run_load(&LoadConfig {
            addr: server.addr().to_string(),
            connections: 1,
            requests: 12,
            inflight: 1,
            rate: Some(2000.0),
            shape: SHAPE,
            seed: 10,
            policy: WirePolicy::Server,
            ..LoadConfig::default()
        })
        .unwrap()
    });
    assert_eq!(report.sent, 12);
    assert_eq!(report.errors, 0);
    assert_eq!(report.ok + report.rejected, 12);
    assert!(
        report.rejected >= 1,
        "a paused 2-deep queue must shed load, got {report:?}"
    );
    let engine = server.shutdown();
    // Exactly the admitted requests got served — nothing lost, nothing
    // double-served.
    assert_eq!(engine.stats().requests as u64, report.ok);
}

/// The flight recorder under the manual [`Clock`]: with time frozen at
/// admission and advanced 50 virtual milliseconds before the batcher
/// runs, a 3-request scenario (one deadlined request shed, two served)
/// produces an exactly pinned event sequence — stages AND timestamps —
/// with every admitted span complete.
#[test]
fn manual_clock_pins_the_exact_trace_of_a_three_request_run() {
    use tia_serve::trace::{self, Stage};
    let clock = Clock::manual();
    let server = Server::spawn(
        base_config()
            .paused()
            .with_clock(clock.clone())
            .with_trace(),
        |_| replica(),
    )
    .unwrap();
    let x = images(3, 44);
    let mut client = Client::connect(server.addr()).unwrap();
    // Wire order on one connection = trace-id issue order: wire 0 carries
    // a 5 ms deadline (doomed), wires 1 and 2 none.
    for (wire, deadline) in [(0u64, Some(5u32)), (1, None), (2, None)] {
        client
            .send(&infer_frame_with(
                wire,
                &x.index_axis0(wire as usize),
                WirePolicy::Server,
                deadline,
                Class::Normal,
            ))
            .unwrap();
    }
    // Mid-flight, non-destructive: wait (wall time, not virtual — the
    // reader threads run free) until all three admissions hit the rings,
    // then pin the admission-side prefix, all stamped at virtual zero.
    let mut midflight = Vec::new();
    for _ in 0..1000 {
        midflight = server.drain_trace();
        if midflight.len() == 3 && midflight.iter().all(|s| s.events.len() == 3) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert_eq!(midflight.len(), 3, "three requests admitted");
    for (i, span) in midflight.iter().enumerate() {
        assert_eq!(span.trace_id, i as u64 + 1, "trace ids issue from 1");
        assert_eq!(span.wire_id, Some(i as u64), "wire ids ride along");
        assert_eq!(
            span.stages(),
            vec![Stage::FrameDecoded, Stage::Admitted, Stage::Enqueued]
        );
        assert!(span.events.iter().all(|e| e.ts_ns == 0));
        assert!(!span.complete(), "no terminal stage yet");
    }

    // 50 virtual milliseconds pass; the batcher wakes, sheds wire 0 and
    // serves wires 1 and 2.
    clock.advance(Duration::from_millis(50));
    server.resume();
    let (mut shed, mut served) = (Vec::new(), Vec::new());
    for _ in 0..3 {
        match client.recv().unwrap() {
            Frame::Reject { id, code } => {
                assert_eq!(code, RejectCode::DeadlineExceeded);
                shed.push(id);
            }
            Frame::Logits(r) => served.push(r.id),
            other => panic!("unexpected frame {other:?}"),
        }
    }
    assert_eq!(shed, vec![0]);
    assert_eq!(served, vec![1, 2]);

    let sink = server.trace_handle().expect("tracing armed");
    server.shutdown(); // quiesce every ring before the final snapshot

    const MS50: u64 = 50_000_000;
    let spans = trace::spans(&sink.drain());
    assert_eq!(spans.len(), 3);
    // Wire 0: admitted at virtual zero, shed when the clock jumped.
    assert_eq!(
        spans[0].stages(),
        vec![
            Stage::FrameDecoded,
            Stage::Admitted,
            Stage::Enqueued,
            Stage::WindowEnter,
            Stage::Shed,
        ]
    );
    assert_eq!(
        spans[0].events.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
        vec![0, 0, 0, MS50, MS50]
    );
    // Wires 1 and 2: the full served lifecycle, every post-advance stage
    // at exactly 50 virtual ms (the manual clock never moves in between).
    for span in &spans[1..] {
        assert_eq!(
            span.stages(),
            vec![
                Stage::FrameDecoded,
                Stage::Admitted,
                Stage::Enqueued,
                Stage::WindowEnter,
                Stage::EngineSubmit,
                Stage::Flushed,
                Stage::Encoded,
                Stage::Sent,
            ]
        );
        assert_eq!(
            span.events.iter().map(|e| e.ts_ns).collect::<Vec<_>>(),
            vec![0, 0, 0, MS50, MS50, MS50, MS50, MS50]
        );
    }
    for span in &spans {
        assert!(span.complete(), "span {} broken", span.trace_id);
    }
    assert_eq!(sink.overwritten(), 0, "nothing lost to ring wrap");
    // The scope events rode along: one batch formed, one engine cycle.
    let events = sink.drain();
    assert!(events.iter().any(|e| e.stage == Stage::BatchFormed));
    assert!(events.iter().any(|e| e.stage == Stage::EngineCycle));
}

/// With tracing off (the default) the recorder does not exist: no handle,
/// no spans, zero events anywhere, and the scrape port 404s `/trace`.
#[test]
fn tracing_disabled_records_nothing() {
    let cfg = base_config().with_metrics_addr("127.0.0.1:0");
    let server = Server::spawn(cfg, |_| replica()).unwrap();
    assert!(server.trace_handle().is_none());

    let x = images(2, 45);
    let mut client = Client::connect(server.addr()).unwrap();
    for i in 0..2 {
        match client.infer(i as u64, &x.index_axis0(i), WirePolicy::Server) {
            Ok(Frame::Logits(_)) => {}
            other => panic!("expected logits, got {other:?}"),
        }
    }
    assert!(server.drain_trace().is_empty(), "no trace when disabled");

    let metrics_addr = server.metrics_addr().expect("metrics listener enabled");
    use std::io::Read;
    let mut s = TcpStream::connect(metrics_addr).unwrap();
    s.write_all(b"GET /trace HTTP/1.0\r\n\r\n").unwrap();
    let mut reply = String::new();
    s.read_to_string(&mut reply).unwrap();
    assert!(reply.starts_with("HTTP/1.0 404"), "{reply}");
    assert!(reply.contains("tracing disabled"), "{reply}");

    server.shutdown();
}

/// The `/trace` scrape path serves live Chrome trace-event JSON with one
/// `request` envelope per request, fetchable through
/// [`tia_serve::fetch_trace`] — the export the loadgen's `--trace` flag
/// writes to disk.
#[test]
fn trace_endpoint_serves_chrome_trace_json() {
    const N: usize = 6;
    let cfg = base_config().with_metrics_addr("127.0.0.1:0").with_trace();
    let server = Server::spawn(cfg, |_| replica()).unwrap();
    let metrics_addr = server.metrics_addr().expect("metrics listener enabled");

    let report = tia_serve::run_load(&LoadConfig {
        addr: server.addr().to_string(),
        connections: 2,
        requests: N,
        inflight: 2,
        shape: SHAPE,
        seed: 46,
        ..LoadConfig::default()
    })
    .unwrap();
    assert_eq!(report.ok, N as u64);

    let json = tia_serve::fetch_trace(metrics_addr).unwrap();
    assert!(
        json.starts_with('[') && json.trim_end().ends_with(']'),
        "{json}"
    );
    let envelopes = json.matches("\"name\":\"request\"").count();
    assert_eq!(envelopes, N, "one request envelope per served request");
    assert!(
        json.contains("\"thread_name\""),
        "thread metadata names the rings: {json}"
    );
    // Serving also filled the stage histograms the scrape reports.
    let text = fetch_metrics(metrics_addr).unwrap();
    assert!(
        text.contains("tia_serve_stage_seconds_count{stage=\"total\"} 6"),
        "{text}"
    );
    assert!(
        text.contains("tia_serve_slow_request_seconds"),
        "slow-request exemplars render: {text}"
    );
    server.shutdown();
}
