//! Wire-protocol coverage: seeded round-trip property tests over every
//! policy and precision variant, plus truncation/corruption rejection.
//!
//! The workspace is dependency-free, so "property test" means the same
//! seeded-loop construction the rest of the repo uses: enumerate the
//! variant space exhaustively where it is small (policies × precisions),
//! and drive sizes/contents from a `SeededRng` where it is not.

use tia_quant::{Precision, PrecisionSet};
use tia_serve::wire::{
    Class, Frame, InferRequest, InferResponse, RejectCode, WireError, HEADER_LEN,
};
use tia_serve::WirePolicy;
use tia_tensor::SeededRng;

/// Every `Option<Precision>` the wire can carry: fp32 plus 1..=16 bits.
fn all_precisions() -> Vec<Option<Precision>> {
    std::iter::once(None)
        .chain((1..=16).map(|b| Some(Precision::new(b))))
        .collect()
}

/// A spread of candidate sets: singletons, dense ranges, sparse sets.
fn some_sets(rng: &mut SeededRng) -> Vec<PrecisionSet> {
    let mut sets = vec![
        PrecisionSet::new(&[4]),
        PrecisionSet::range(4, 8),
        PrecisionSet::range(1, 16),
        PrecisionSet::new(&[4, 8, 16]),
    ];
    for _ in 0..8 {
        let n = 1 + rng.below(6);
        let bits: Vec<u8> = (0..n).map(|_| 1 + rng.below(16) as u8).collect();
        sets.push(PrecisionSet::new(&bits));
    }
    sets
}

/// Every policy variant the protocol defines.
fn all_policies(rng: &mut SeededRng) -> Vec<WirePolicy> {
    let mut policies = vec![WirePolicy::Server];
    policies.extend(all_precisions().into_iter().map(WirePolicy::Fixed));
    policies.extend(some_sets(rng).into_iter().map(WirePolicy::Random));
    policies
}

fn rand_pixels(n: usize, rng: &mut SeededRng) -> Vec<f32> {
    (0..n).map(|_| rng.uniform_in(-4.0, 4.0)).collect()
}

fn roundtrip(frame: &Frame) {
    let bytes = frame.encode();
    let (decoded, used) = Frame::decode(&bytes).expect("decode of encoded frame");
    assert_eq!(&decoded, frame);
    assert_eq!(used, bytes.len(), "decode must consume the whole frame");
    // The stream path must agree with the slice path.
    let mut r = &bytes[..];
    assert_eq!(&Frame::read_from(&mut r).expect("stream decode"), frame);
}

#[test]
fn infer_round_trips_for_every_policy_variant() {
    // Scheduling-field combinations: the plain one encodes as frame v1,
    // everything carrying a deadline or a non-default class as v2.
    let scheduling = [
        (None, Class::Normal),
        (Some(5u32), Class::Normal),
        (Some(u32::MAX), Class::Interactive),
        (None, Class::Interactive),
        (Some(250), Class::Batch),
        (None, Class::Batch),
    ];
    let mut rng = SeededRng::new(11);
    for (i, policy) in all_policies(&mut rng).into_iter().enumerate() {
        let (deadline_ms, class) = scheduling[i % scheduling.len()];
        let shape = [1 + rng.below(4), 1 + rng.below(16), 1 + rng.below(16)];
        let n = shape.iter().product();
        let frame = Frame::Infer(InferRequest {
            id: rng.next_u64(),
            policy,
            deadline_ms,
            class,
            shape,
            pixels: rand_pixels(n, &mut rng),
        });
        roundtrip(&frame);
        // Encoders emit the lowest version that can represent the frame.
        let want_version = if deadline_ms.is_some() || class != Class::Normal {
            2
        } else {
            1
        };
        assert_eq!(
            frame.encode()[4],
            want_version,
            "wrong version byte for deadline {deadline_ms:?} class {class:?}"
        );
        // Also exercise tiny and single-pixel geometries now and then.
        if i % 3 == 0 {
            roundtrip(&Frame::Infer(InferRequest {
                id: u64::MAX - i as u64,
                policy: WirePolicy::Server,
                deadline_ms,
                class,
                shape: [1, 1, 1],
                pixels: vec![f32::MIN_POSITIVE],
            }));
        }
    }
}

/// The frame-version compatibility rule: a v1 `Infer` payload (no
/// scheduling fields) must keep decoding, as "no deadline, normal class".
#[test]
fn v1_infer_frames_decode_as_no_deadline_normal_class() {
    let mut rng = SeededRng::new(16);
    let plain = InferRequest {
        id: 31,
        policy: WirePolicy::Fixed(Some(Precision::new(6))),
        deadline_ms: None,
        class: Class::Normal,
        shape: [2, 3, 3],
        pixels: rand_pixels(18, &mut rng),
    };
    let bytes = Frame::Infer(plain.clone()).encode();
    assert_eq!(bytes[4], 1, "a plain request encodes as v1");
    let (decoded, _) = Frame::decode(&bytes).unwrap();
    assert_eq!(decoded, Frame::Infer(plain));
}

/// A hand-rolled v2 layout (deadline + class spliced after the id, version
/// byte bumped) decodes to the same request with the fields populated —
/// including the zero deadline byte meaning "no deadline".
#[test]
fn v2_layout_decodes_scheduling_fields() {
    let mut rng = SeededRng::new(17);
    let plain = InferRequest {
        id: 32,
        policy: WirePolicy::Server,
        deadline_ms: None,
        class: Class::Normal,
        shape: [1, 2, 2],
        pixels: rand_pixels(4, &mut rng),
    };
    let v1 = Frame::Infer(plain.clone()).encode();
    // Splice `deadline_ms: u32 = 7, class: u8 = 2` after the 8-byte id.
    let mut v2 = Vec::new();
    v2.extend_from_slice(&v1[..HEADER_LEN + 8]);
    v2.extend_from_slice(&7u32.to_le_bytes());
    v2.push(2); // batch class
    v2.extend_from_slice(&v1[HEADER_LEN + 8..]);
    v2[4] = 2; // version
    v2[8..12].copy_from_slice(&((v1.len() - HEADER_LEN + 5) as u32).to_le_bytes());
    match Frame::decode(&v2).unwrap().0 {
        Frame::Infer(req) => {
            assert_eq!(req.deadline_ms, Some(7));
            assert_eq!(req.class, Class::Batch);
            assert_eq!(req.pixels, plain.pixels);
        }
        other => panic!("expected Infer, got {other:?}"),
    }

    // Zero deadline on the wire = no deadline.
    let mut zero = v2.clone();
    zero[HEADER_LEN + 8..HEADER_LEN + 12].copy_from_slice(&0u32.to_le_bytes());
    match Frame::decode(&zero).unwrap().0 {
        Frame::Infer(req) => assert_eq!(req.deadline_ms, None),
        other => panic!("expected Infer, got {other:?}"),
    }

    // An out-of-range class byte is strictly rejected.
    let mut bad_class = v2.clone();
    bad_class[HEADER_LEN + 12] = 3;
    assert!(matches!(
        Frame::decode(&bad_class),
        Err(WireError::Malformed(_))
    ));

    // A v1 header with the v2 payload has 5 unexplained bytes: rejected,
    // never misparsed.
    let mut v1_header = v2.clone();
    v1_header[4] = 1;
    assert!(Frame::decode(&v1_header).is_err());

    // Versions outside [MIN_VERSION, VERSION] stay rejected.
    let mut v3 = v2.clone();
    v3[4] = 3;
    assert!(matches!(Frame::decode(&v3), Err(WireError::BadVersion(3))));
}

#[test]
fn logits_round_trip_for_every_precision() {
    let mut rng = SeededRng::new(12);
    for precision in all_precisions() {
        let n = 1 + rng.below(64);
        roundtrip(&Frame::Logits(InferResponse {
            id: rng.next_u64(),
            precision,
            top1: rng.below(n),
            logits: rand_pixels(n, &mut rng),
        }));
    }
}

#[test]
fn control_frames_round_trip() {
    for code in [
        RejectCode::QueueFull,
        RejectCode::Draining,
        RejectCode::BadShape,
        RejectCode::DeadlineExceeded,
    ] {
        roundtrip(&Frame::Reject { id: 77, code });
    }
    roundtrip(&Frame::Error {
        msg: "queue exploded (not really)".to_string(),
    });
    roundtrip(&Frame::Ping);
    roundtrip(&Frame::Pong);
    roundtrip(&Frame::Shutdown);
    roundtrip(&Frame::ShutdownAck);
}

#[test]
fn every_truncation_of_a_frame_is_rejected() {
    let mut rng = SeededRng::new(13);
    let frame = Frame::Infer(InferRequest {
        id: 42,
        policy: WirePolicy::Random(PrecisionSet::range(4, 8)),
        // Scheduling fields set, so this exercises the v2 layout's
        // truncation points too (mid-deadline, mid-class).
        deadline_ms: Some(40),
        class: Class::Interactive,
        shape: [2, 3, 3],
        pixels: rand_pixels(18, &mut rng),
    });
    let bytes = frame.encode();
    assert_eq!(bytes[4], 2, "scheduling fields force the v2 layout");
    for len in 0..bytes.len() {
        match Frame::decode(&bytes[..len]) {
            Err(WireError::Truncated) => {}
            other => panic!("prefix of {len} bytes gave {other:?}"),
        }
    }
    // Stream reads must classify the same prefixes as truncation (except
    // the empty prefix, which is a clean close).
    for len in [1, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
        let mut r = &bytes[..len];
        assert!(
            matches!(Frame::read_from(&mut r), Err(WireError::Truncated)),
            "stream prefix of {len} bytes must be Truncated"
        );
    }
    let mut empty: &[u8] = &[];
    assert!(matches!(
        Frame::read_from(&mut empty),
        Err(WireError::Closed)
    ));
}

#[test]
fn corrupting_any_header_byte_never_panics_and_structural_bytes_reject() {
    let mut rng = SeededRng::new(14);
    let frame = Frame::Logits(InferResponse {
        id: 7,
        precision: Some(Precision::new(6)),
        top1: 1,
        logits: rand_pixels(5, &mut rng),
    });
    let bytes = frame.encode();
    assert_eq!(bytes[4], 1, "a Logits frame always encodes as v1");
    // Flip every byte of the frame through a few corruption values: the
    // decoder must never panic, and corruption of magic/version/kind or the
    // reserved bytes must be rejected outright. The one benign header flip
    // is version 1 -> 2 — both are accepted, and a Logits payload has the
    // identical layout under both, so the frame must decode *unchanged*.
    for pos in 0..bytes.len() {
        for delta in [1u8, 0x80, 0xFF] {
            let mut bad = bytes.clone();
            bad[pos] = bad[pos].wrapping_add(delta);
            let result = Frame::decode(&bad);
            if pos == 4 && bad[4] == 2 {
                let (f, _) = result.expect("v2 header over a v1-layout payload");
                assert_eq!(f, frame, "version bump must not change the decode");
                continue;
            }
            if pos < 8 {
                assert!(result.is_err(), "header byte {pos} corruption accepted");
            }
            // Payload corruption may still decode (flipped float bits are
            // legal floats) — the assertion is simply "no panic, and any
            // Ok() parses to a well-formed frame".
            if let Ok((f, used)) = result {
                assert_eq!(used, bad.len());
                drop(f);
            }
        }
    }
}

#[test]
fn payload_validation_rejects_bad_fields() {
    // Precision byte out of range in a Logits frame.
    let good = Frame::Logits(InferResponse {
        id: 1,
        precision: None,
        top1: 0,
        logits: vec![0.0],
    })
    .encode();
    let mut bad = good.clone();
    bad[HEADER_LEN + 8] = 17; // precision byte right after the id
    assert!(matches!(Frame::decode(&bad), Err(WireError::Malformed(_))));

    // Pixel count disagreeing with the shape in an Infer frame.
    let infer = Frame::Infer(InferRequest {
        id: 2,
        policy: WirePolicy::Server,
        deadline_ms: None,
        class: Class::Normal,
        shape: [1, 2, 2],
        pixels: vec![0.0; 4],
    })
    .encode();
    let mut bad = infer.clone();
    // Grow the claimed width: shape says more pixels than the payload has.
    let shape_off = HEADER_LEN + 8 + 1; // id + policy tag
    bad[shape_off] = 3;
    assert!(matches!(Frame::decode(&bad), Err(WireError::Malformed(_))));

    // A declared-empty image is meaningless.
    let mut empty_shape = infer.clone();
    empty_shape[shape_off] = 0;
    assert!(Frame::decode(&empty_shape).is_err());

    // Trailing garbage after a structurally complete payload.
    let mut trailing = Frame::Ping.encode();
    trailing[8..12].copy_from_slice(&4u32.to_le_bytes());
    trailing.extend_from_slice(&[9, 9, 9, 9]);
    assert!(matches!(
        Frame::decode(&trailing),
        Err(WireError::Malformed(_))
    ));
}

/// Differential decode: mutate *valid* frames and hold the decoder to a
/// two-sided contract — every mutant either yields a typed [`WireError`]
/// or decodes to a frame that survives a re-encode round-trip bit-exactly.
/// There is no third outcome: no panic, no out-of-bounds `used`, and no
/// silent misread (an `Ok` whose re-encoding parses differently).
#[test]
fn differential_decode_of_mutated_frames() {
    let mut rng = SeededRng::new(21);
    let corpus: Vec<Vec<u8>> = vec![
        Frame::Infer(InferRequest {
            id: 91,
            policy: WirePolicy::Random(PrecisionSet::range(4, 8)),
            deadline_ms: None,
            class: Class::Normal,
            shape: [2, 4, 4],
            pixels: rand_pixels(32, &mut rng),
        })
        .encode(),
        Frame::Infer(InferRequest {
            id: 92,
            policy: WirePolicy::Fixed(Some(Precision::new(5))),
            deadline_ms: Some(75),
            class: Class::Interactive,
            shape: [1, 3, 3],
            pixels: rand_pixels(9, &mut rng),
        })
        .encode(),
        Frame::Logits(InferResponse {
            id: 93,
            precision: Some(Precision::new(8)),
            top1: 2,
            logits: rand_pixels(10, &mut rng),
        })
        .encode(),
        Frame::Reject {
            id: 94,
            code: RejectCode::QueueFull,
        }
        .encode(),
        Frame::Error {
            msg: "differential seed frame".to_string(),
        }
        .encode(),
        Frame::Ping.encode(),
    ];
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    for _ in 0..4000 {
        let mut bytes = corpus[rng.below(corpus.len())].clone();
        // One of four mutation families per iteration.
        match rng.below(4) {
            0 => {
                // Flip 1..=4 bytes anywhere.
                for _ in 0..=rng.below(4) {
                    let pos = rng.below(bytes.len());
                    bytes[pos] ^= 1 << rng.below(8);
                }
            }
            1 => {
                // Skew the declared payload length.
                let skew = rng.next_u64() as u32;
                bytes[8..12].copy_from_slice(&skew.to_le_bytes());
            }
            2 => {
                // Truncate, optionally padding noise back on.
                bytes.truncate(rng.below(bytes.len().max(1)));
                for _ in 0..rng.below(8) {
                    bytes.push(rng.next_u64() as u8);
                }
            }
            _ => {
                // Splice a second frame's bytes into the middle.
                let other = &corpus[rng.below(corpus.len())];
                let at = rng.below(bytes.len());
                let take = rng.below(other.len());
                bytes.splice(at..at, other[..take].iter().copied());
            }
        }
        match Frame::decode(&bytes) {
            Ok((frame, used)) => {
                accepted += 1;
                assert!(used <= bytes.len(), "decode over-read: {used}");
                assert!(used >= HEADER_LEN, "an Ok decode consumed no frame");
                // Re-encode round-trip: whatever was accepted must be a
                // well-formed frame in its own right, bit-exactly.
                // (Compared via bytes, not `PartialEq`: a mutant float can
                // be NaN, which is unequal to itself but round-trips its
                // bit pattern exactly.)
                let re = frame.encode();
                let (again, used2) = Frame::decode(&re).expect("re-encode of accepted mutant");
                assert_eq!(again.encode(), re, "silent misread: re-decode disagrees");
                assert_eq!(used2, re.len());
            }
            Err(
                WireError::Closed
                | WireError::Truncated
                | WireError::BadMagic([_, _, _, _])
                | WireError::BadVersion(_)
                | WireError::BadKind(_)
                | WireError::Oversize(_)
                | WireError::Malformed(_)
                | WireError::Io(_),
            ) => rejected += 1,
        }
    }
    // The mutation families are gentle enough that both arms must be
    // exercised; a dead arm means the test mutated too hard or too soft.
    assert!(accepted > 0, "no mutant ever decoded");
    assert!(rejected > 0, "no mutant was ever rejected");
}

#[test]
fn seeded_fuzz_decode_never_panics() {
    // Pure-noise buffers: decode must reject (or, astronomically unlikely,
    // accept) without panicking, under- or over-reading.
    let mut rng = SeededRng::new(15);
    for _ in 0..2000 {
        let n = rng.below(96);
        let buf: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        let _ = Frame::decode(&buf);
    }
    // Noise behind a valid header prefix exercises the payload parsers —
    // under both accepted protocol versions.
    for _ in 0..2000 {
        let version = 1 + rng.below(2) as u8;
        let kind = 1 + rng.below(8) as u8;
        let n = rng.below(64);
        let mut buf = Vec::with_capacity(HEADER_LEN + n);
        buf.extend_from_slice(b"TIAS");
        buf.push(version);
        buf.push(kind);
        buf.extend_from_slice(&[0, 0]);
        buf.extend_from_slice(&(n as u32).to_le_bytes());
        buf.extend((0..n).map(|_| rng.next_u64() as u8));
        let _ = Frame::decode(&buf);
    }
}
