//! End-to-end smoke for the chaos harness itself: every scenario passes
//! against the real server, clean runs are deterministic, and a
//! deliberately broken server (double-ack sabotage) is caught by the
//! exactly-once checker and minimized to a prefix that still reproduces.

use tia_chaos::{minimize, run, run_checked, ChaosConfig, Scenario, Violation};

/// A small config every test shares: 3 peers x 8 events keeps one run in
/// the tens of milliseconds while still interleaving lifecycles.
fn small(scenario: Scenario, seed: u64) -> ChaosConfig {
    let mut cfg = ChaosConfig::new(scenario, seed);
    cfg.peers = 3;
    cfg.events_per_peer = 8;
    cfg
}

#[test]
fn every_scenario_passes_small() {
    for scenario in Scenario::ALL {
        let cfg = small(scenario, 0xFACE);
        let report = run_checked(&cfg).expect("harness env failure");
        assert!(
            report.passed(),
            "{}: unexpected violations: {:?}\nrepro: {}",
            scenario.name(),
            report.violations,
            report.repro_command(),
        );
        assert!(report.counters.lifecycles > 0, "{}", scenario.name());
    }
}

#[test]
fn clean_runs_are_bitwise_deterministic_per_seed() {
    let cfg = small(Scenario::Clean, 0xD00D);
    let a = run(&cfg).expect("harness env failure");
    let b = run(&cfg).expect("harness env failure");
    assert!(a.passed(), "{:?}", a.violations);
    assert!(b.passed(), "{:?}", b.violations);
    assert_eq!(a.digest, b.digest, "same seed must yield the same answers");
    assert_eq!(a.counters.answers, b.counters.answers);
    // And a different seed yields different traffic.
    let c = run(&small(Scenario::Clean, 0xD00E)).expect("harness env failure");
    assert_ne!(a.digest, c.digest);
}

#[test]
fn double_ack_sabotage_is_caught_and_minimized() {
    let mut cfg = small(Scenario::Clean, 0xBAD);
    cfg.sabotage = true;
    let report = run(&cfg).expect("harness env failure");
    assert!(!report.passed(), "sabotaged server must violate");
    let dup = report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::DuplicateAnswer { .. }));
    let over = report
        .violations
        .iter()
        .any(|v| matches!(v, Violation::Conservation(_)));
    assert!(
        dup || over,
        "double-ack must trip exactly-once or conservation, got {:?}",
        report.violations
    );
    // The repro line reproduces the run from its seed alone.
    let line = report.repro_command();
    assert!(line.contains("--sabotage"), "{line}");
    assert!(line.contains("--seed 2989"), "{line}");

    let outcome = minimize(&cfg)
        .expect("harness env failure")
        .expect("a violating run must minimize");
    assert!(outcome.prefix >= 1 && outcome.prefix <= outcome.total);
    assert!(!outcome.report.passed(), "confirming replay must violate");

    // Replaying the minimized prefix from the printed parameters alone
    // reproduces the violation (what the CI repro line promises).
    let mut replay = small(Scenario::Clean, 0xBAD);
    replay.sabotage = true;
    replay.prefix = Some(outcome.prefix);
    let again = run(&replay).expect("harness env failure");
    assert!(!again.passed(), "minimized prefix must still violate");
}

#[test]
fn passing_config_has_nothing_to_minimize() {
    let cfg = small(Scenario::Clean, 0x600D);
    assert!(minimize(&cfg).expect("harness env failure").is_none());
}
