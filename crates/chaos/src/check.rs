//! The invariant ledger: what every chaos run is held to, regardless of
//! scenario.
//!
//! Server side (from the metrics registry, after a full drain):
//! conservation (`admitted = served + shed + errored`, queue gauge back at
//! zero), no leaked reader threads. Client side (from the merged peer
//! logs): every id answered at most once per send (`Logits` xor `Reject`),
//! strict ids answered exactly once, no answers to ids never sent, no
//! undecodable or role-reversed frames from the server, pings answered,
//! a requested `ShutdownAck` delivered. Clean runs additionally pin a
//! bitwise digest across re-runs of the same seed.

use crate::peer::{AnswerKind, PeerLog, FNV_SEED};
use crate::plan::Scenario;
use std::collections::BTreeMap;
use tia_serve::{ConservationViolation, MetricsSnapshot, Span, Stage};

/// One invariant violation found after a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The server's own ledger does not balance (see
    /// [`tia_serve::MetricsSnapshot::conservation_check`]).
    Conservation(ConservationViolation),
    /// Reader threads still registered live after the full drain.
    ReadersLeaked {
        /// The gauge's post-drain value.
        live: u64,
    },
    /// An id was answered more often than it was sent.
    DuplicateAnswer {
        /// The over-answered id.
        id: u64,
        /// Answers received.
        got: usize,
        /// Sends (including accidental ghost sends) of that id.
        sent: u32,
    },
    /// A strict id (valid request, cleanly drained connection) was never
    /// answered.
    Unanswered {
        /// The silently dropped id.
        id: u64,
    },
    /// The server answered an id no peer ever sent.
    UnknownId {
        /// The invented id.
        id: u64,
    },
    /// Bytes from the server failed to decode as any frame.
    GarbageFromServer {
        /// Occurrence count across peers.
        count: u64,
    },
    /// The server sent a client-to-server frame kind.
    RoleReversedFrame {
        /// Occurrence count across peers.
        count: u64,
    },
    /// Pings outnumbered pongs on peers with clean transports.
    PingUnanswered {
        /// Pings written.
        pings: u64,
        /// Pongs received.
        pongs: u64,
    },
    /// A floored request executed below its class's precision floor.
    FloorViolated {
        /// The under-served id.
        id: u64,
        /// Executed precision in bits.
        bits: u8,
        /// The configured floor in bits.
        floor: u8,
    },
    /// An admitted request's flight-recorder span is broken: it never
    /// reached exactly one terminal stage (sent / shed / errored), or its
    /// stage timestamps run backwards.
    TraceSpanBroken {
        /// The request's wire id (or its trace id if the frame-decode
        /// event was lost to ring overwrite).
        id: u64,
        /// What broke, in the span checker's words.
        why: &'static str,
    },
    /// A `Shutdown` frame was sent but no `ShutdownAck` ever arrived.
    MissingShutdownAck,
    /// Two runs of the same seed produced different answer digests.
    DeterminismDrift {
        /// First run's digest.
        first: u64,
        /// Second run's digest.
        second: u64,
    },
    /// The run panicked (server thread or harness).
    Panicked {
        /// The panic payload, if it was a string.
        what: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Conservation(v) => write!(f, "conservation: {v}"),
            Violation::ReadersLeaked { live } => {
                write!(f, "{live} reader thread(s) still live after drain")
            }
            Violation::DuplicateAnswer { id, got, sent } => {
                write!(f, "id {id:#x} answered {got} time(s) for {sent} send(s)")
            }
            Violation::Unanswered { id } => {
                write!(
                    f,
                    "strict id {id:#x} was admitted-or-rejected by contract but never answered"
                )
            }
            Violation::UnknownId { id } => write!(f, "answer for never-sent id {id:#x}"),
            Violation::GarbageFromServer { count } => {
                write!(f, "{count} undecodable byte run(s) from the server")
            }
            Violation::RoleReversedFrame { count } => {
                write!(
                    f,
                    "{count} client-to-server frame kind(s) sent by the server"
                )
            }
            Violation::PingUnanswered { pings, pongs } => {
                write!(f, "{pings} ping(s) but only {pongs} pong(s)")
            }
            Violation::FloorViolated { id, bits, floor } => write!(
                f,
                "id {id:#x} executed at {bits} bits, below its {floor}-bit class floor"
            ),
            Violation::TraceSpanBroken { id, why } => {
                write!(f, "trace span for request {id:#x}: {why}")
            }
            Violation::MissingShutdownAck => write!(f, "shutdown requested but never acked"),
            Violation::DeterminismDrift { first, second } => write!(
                f,
                "same seed, different digests: {first:#018x} vs {second:#018x}"
            ),
            Violation::Panicked { what } => write!(f, "panic: {what}"),
        }
    }
}

/// Aggregate counters a run reports alongside its violations.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunCounters {
    /// Connections opened across all peers.
    pub lifecycles: u64,
    /// Frames (or fragments) written.
    pub frames_sent: u64,
    /// Answers (`Logits` + `Reject`) received.
    pub answers: u64,
    /// Pongs received.
    pub pongs: u64,
}

/// Merges peer logs against the server snapshot and returns every
/// violation plus the run's order-independent answer digest.
///
/// `floored` lists `(id, floor_bits)` pairs — planned requests whose
/// executed precision must sit at or above their class floor. Full
/// precision (wire byte 0) satisfies any floor; rejects are not executions
/// and never violate one.
///
/// The digest folds each answered id's `(id, answers)` into FNV-1a in
/// ascending id order, so thread interleaving between peers cannot change
/// it — only the actual bytes answered can.
pub fn check_run(
    scenario: Scenario,
    logs: &[PeerLog],
    snapshot: MetricsSnapshot,
    ghost_ids: &[u64],
    floored: &[(u64, u8)],
    expect_ack: bool,
) -> (Vec<Violation>, u64, RunCounters) {
    let mut violations = Vec::new();
    if let Err(v) = snapshot.conservation_check() {
        violations.push(Violation::Conservation(v));
    }
    if snapshot.readers_live != 0 {
        violations.push(Violation::ReadersLeaked {
            live: snapshot.readers_live,
        });
    }

    // Merge the peers' books.
    let mut expected: BTreeMap<u64, u32> = BTreeMap::new();
    let mut answers: BTreeMap<u64, Vec<AnswerKind>> = BTreeMap::new();
    let mut counters = RunCounters::default();
    let mut garbage = 0u64;
    let mut role_reversed = 0u64;
    let mut acks = 0u64;
    let (mut clean_pings, mut clean_pongs) = (0u64, 0u64);
    for log in logs {
        counters.lifecycles += log.lifecycles;
        counters.frames_sent += log.frames_sent;
        counters.pongs += log.pongs_recv;
        garbage += log.garbage_from_server;
        role_reversed += log.unexpected_frames;
        acks += log.acks;
        if log.io_errors == 0 {
            clean_pings += log.pings_sent;
            clean_pongs += log.pongs_recv;
        }
        for (&id, &n) in &log.expected {
            *expected.entry(id).or_insert(0) += n;
        }
        for (&id, kinds) in &log.answers {
            answers.entry(id).or_default().extend(kinds.iter().copied());
        }
    }
    for &id in ghost_ids {
        *expected.entry(id).or_insert(0) += 1;
    }

    for (&id, kinds) in &answers {
        counters.answers += kinds.len() as u64;
        match expected.get(&id) {
            None => violations.push(Violation::UnknownId { id }),
            Some(&sent) if kinds.len() > sent as usize => {
                violations.push(Violation::DuplicateAnswer {
                    id,
                    got: kinds.len(),
                    sent,
                });
            }
            Some(_) => {}
        }
    }
    for log in logs {
        for &id in &log.strict_ids {
            if !answers.contains_key(&id) {
                violations.push(Violation::Unanswered { id });
            }
        }
    }
    if garbage > 0 {
        violations.push(Violation::GarbageFromServer { count: garbage });
    }
    if role_reversed > 0 {
        violations.push(Violation::RoleReversedFrame {
            count: role_reversed,
        });
    }
    if scenario.strict() && clean_pongs < clean_pings {
        violations.push(Violation::PingUnanswered {
            pings: clean_pings,
            pongs: clean_pongs,
        });
    }
    for &(id, floor) in floored {
        for kind in answers.get(&id).map_or(&[][..], Vec::as_slice) {
            if let AnswerKind::Logits { precision, .. } = kind {
                if *precision != 0 && *precision < floor {
                    violations.push(Violation::FloorViolated {
                        id,
                        bits: *precision,
                        floor,
                    });
                }
            }
        }
    }
    if expect_ack && acks == 0 {
        violations.push(Violation::MissingShutdownAck);
    }

    // Order-independent digest over everything answered.
    let mut digest = FNV_SEED;
    for (&id, kinds) in &answers {
        digest = crate::peer::fnv1a(digest, &id.to_le_bytes());
        for kind in kinds {
            match kind {
                AnswerKind::Logits {
                    precision,
                    top1,
                    logits_fnv,
                } => {
                    digest = crate::peer::fnv1a(digest, &[1, *precision]);
                    digest = crate::peer::fnv1a(digest, &top1.to_le_bytes());
                    digest = crate::peer::fnv1a(digest, &logits_fnv.to_le_bytes());
                }
                AnswerKind::Reject(code) => {
                    digest = crate::peer::fnv1a(digest, &[2, *code]);
                }
            }
        }
    }
    (violations, digest, counters)
}

/// Holds every admitted request's flight-recorder span to the lifecycle
/// contract: exactly one terminal stage — served ([`Stage::Sent`]), shed
/// ([`Stage::Shed`]) or errored ([`Stage::Errored`]) — and monotonically
/// non-decreasing stage timestamps. Spans rejected at admission carry no
/// such contract and are skipped, as are scope events (which form no
/// spans at all).
pub fn check_trace(spans: &[Span]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for span in spans {
        if !span.admitted() {
            continue;
        }
        let terminals = span.events.iter().filter(|e| e.stage.is_terminal()).count();
        let why = match span.terminal() {
            None if terminals > 1 => Some("more than one terminal stage event"),
            None => Some("admitted but never sent, shed or errored"),
            Some(Stage::Rejected) => Some("admitted yet terminated by an admission reject"),
            Some(_) if !span.monotonic() => Some("stage timestamps run backwards"),
            Some(_) => None,
        };
        if let Some(why) = why {
            violations.push(Violation::TraceSpanBroken {
                id: span.wire_id.unwrap_or(span.trace_id),
                why,
            });
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(admitted: u64, served: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            admitted,
            served,
            shed: 0,
            errored: 0,
            queue_depth: 0,
            readers_live: 0,
        }
    }

    fn log_with(id: u64, sent: u32, answers: Vec<AnswerKind>, strict: bool) -> PeerLog {
        let mut log = PeerLog::default();
        if sent > 0 {
            log.expected.insert(id, sent);
        }
        if !answers.is_empty() {
            log.answers.insert(id, answers);
        }
        if strict {
            log.strict_ids.insert(id);
        }
        log
    }

    #[test]
    fn balanced_run_is_quiet() {
        let logs = vec![log_with(7, 1, vec![AnswerKind::Reject(1)], true)];
        let (v, _, c) = check_run(Scenario::Clean, &logs, snapshot(1, 1), &[], &[], false);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(c.answers, 1);
    }

    #[test]
    fn double_answer_is_flagged() {
        let logs = vec![log_with(
            7,
            1,
            vec![AnswerKind::Reject(1), AnswerKind::Reject(2)],
            true,
        )];
        let (v, _, _) = check_run(Scenario::Clean, &logs, snapshot(1, 1), &[], &[], false);
        assert!(v.iter().any(|x| matches!(
            x,
            Violation::DuplicateAnswer {
                id: 7,
                got: 2,
                sent: 1
            }
        )));
    }

    #[test]
    fn strict_unanswered_and_unknown_ids_are_flagged() {
        let mut logs = vec![log_with(7, 1, vec![], true)];
        logs.push(log_with(9, 0, vec![AnswerKind::Reject(1)], false));
        let (v, _, _) = check_run(Scenario::Clean, &logs, snapshot(0, 0), &[], &[], false);
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::Unanswered { id: 7 })));
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::UnknownId { id: 9 })));
        // A ghost id legitimizes the "unknown" answer.
        let logs = vec![log_with(9, 0, vec![AnswerKind::Reject(1)], false)];
        let (v, _, _) = check_run(Scenario::Hostile, &logs, snapshot(0, 0), &[9], &[], false);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn digest_is_order_independent_but_content_sensitive() {
        let a = vec![
            log_with(1, 1, vec![AnswerKind::Reject(1)], false),
            log_with(2, 1, vec![AnswerKind::Reject(4)], false),
        ];
        let b = vec![
            log_with(2, 1, vec![AnswerKind::Reject(4)], false),
            log_with(1, 1, vec![AnswerKind::Reject(1)], false),
        ];
        let snap = snapshot(2, 2);
        let (_, da, _) = check_run(Scenario::Hostile, &a, snap, &[], &[], false);
        let (_, db, _) = check_run(Scenario::Hostile, &b, snap, &[], &[], false);
        assert_eq!(da, db);
        let c = vec![
            log_with(1, 1, vec![AnswerKind::Reject(2)], false),
            log_with(2, 1, vec![AnswerKind::Reject(4)], false),
        ];
        let (_, dc, _) = check_run(Scenario::Hostile, &c, snap, &[], &[], false);
        assert_ne!(da, dc);
    }

    #[test]
    fn floor_violations_surface_only_below_the_floor() {
        let answer = |bits| AnswerKind::Logits {
            precision: bits,
            top1: 0,
            logits_fnv: 0,
        };
        // id 1 under-served, id 2 at the floor, id 3 full precision
        // (satisfies any floor), id 4 rejected (not an execution).
        let logs = vec![
            log_with(1, 1, vec![answer(4)], false),
            log_with(2, 1, vec![answer(6)], false),
            log_with(3, 1, vec![answer(0)], false),
            log_with(4, 1, vec![AnswerKind::Reject(4)], false),
        ];
        let floored = [(1u64, 6u8), (2, 6), (3, 6), (4, 6)];
        let (v, _, _) = check_run(
            Scenario::OverloadStorm,
            &logs,
            snapshot(4, 4),
            &[],
            &floored,
            false,
        );
        assert_eq!(
            v,
            vec![Violation::FloorViolated {
                id: 1,
                bits: 4,
                floor: 6
            }]
        );
    }

    #[test]
    fn trace_checker_accepts_complete_spans_and_flags_broken_ones() {
        use tia_serve::trace::{spans, wire_id_args, TraceEvent};
        let ev = |id: u64, stage: Stage, ts_ns: u64| {
            // Admission-side events carry the wire id; make it the trace
            // id so the checker's reports name the ids below.
            let (arg0, arg1) = wire_id_args(id);
            TraceEvent {
                ts_ns,
                id,
                stage,
                arg0,
                arg1,
                tid: 0,
            }
        };
        // id 1: admitted and served in order; id 2: admitted, shed; id 3:
        // rejected at admission (no contract); id 4: admitted, never
        // terminated; id 5: admitted, served, but the clock ran backwards.
        let events = vec![
            ev(1, Stage::Admitted, 0),
            ev(1, Stage::Enqueued, 0),
            ev(1, Stage::Sent, 10),
            ev(2, Stage::Admitted, 0),
            ev(2, Stage::Shed, 5),
            ev(3, Stage::Rejected, 0),
            ev(4, Stage::Admitted, 0),
            ev(4, Stage::Enqueued, 1),
            ev(5, Stage::Admitted, 9),
            ev(5, Stage::Sent, 3),
        ];
        let v = check_trace(&spans(&events));
        assert_eq!(
            v,
            vec![
                Violation::TraceSpanBroken {
                    id: 4,
                    why: "admitted but never sent, shed or errored"
                },
                Violation::TraceSpanBroken {
                    id: 5,
                    why: "stage timestamps run backwards"
                },
            ]
        );
        // A double terminal (e.g. served *and* shed) is its own report.
        let twice = vec![
            ev(6, Stage::Admitted, 0),
            ev(6, Stage::Shed, 1),
            ev(6, Stage::Sent, 2),
        ];
        assert_eq!(
            check_trace(&spans(&twice)),
            vec![Violation::TraceSpanBroken {
                id: 6,
                why: "more than one terminal stage event"
            }]
        );
    }

    #[test]
    fn missing_ack_and_conservation_surface() {
        let logs = vec![PeerLog::default()];
        let (v, _, _) = check_run(
            Scenario::ShutdownRace,
            &logs,
            snapshot(3, 2),
            &[],
            &[],
            true,
        );
        assert!(v.iter().any(|x| matches!(x, Violation::MissingShutdownAck)));
        assert!(v.iter().any(|x| matches!(x, Violation::Conservation(_))));
    }
}
