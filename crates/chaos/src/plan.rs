//! The event model: a run's entire peer schedule is a pure function of
//! `(scenario, seed, peers, events_per_peer)`.
//!
//! Every RNG draw happens here, at *plan* time — each [`Event`] carries its
//! concrete wire bytes (valid frames come from the real `serve::wire`
//! encoders, corrupt ones from byte-level mutation of a valid frame), so
//! replaying a schedule, or any prefix of it, is exact. The minimizer
//! leans on this: truncating to a global-event prefix and re-running is
//! guaranteed to send the same bytes in the same per-peer order.
//!
//! Global event order is the round-robin interleave used everywhere in the
//! harness: event `j` of peer `p` has global index `j * peers + p`.

use tia_quant::{Precision, PrecisionSet};
use tia_serve::wire::{Class, Frame, InferRequest, WirePolicy};
use tia_tensor::SeededRng;

/// The one image geometry every chaos run serves: tiny, so a run is
/// dominated by scheduling and connection churn, not arithmetic.
pub const SHAPE: [usize; 3] = [1, 8, 8];

/// Pixel count implied by [`SHAPE`].
pub const PIXELS: usize = SHAPE[0] * SHAPE[1] * SHAPE[2];

/// A named fault profile: the traffic mix the peers script plus the
/// [`tia_serve::FaultPlan`] the harness arms on the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Valid, pinned-precision traffic with no faults — the baseline whose
    /// per-seed run must be bitwise deterministic (digest-checked).
    Clean,
    /// Bursty valid traffic against a tiny queue plus induced queue-full
    /// windows ([`tia_serve::FaultPlan::queue_full_every`]).
    QueueFull,
    /// Deadline storms across all priority classes against an induced
    /// slow batcher ([`tia_serve::FaultPlan::slow_batch_every`]).
    SlowBatch,
    /// Corrupt and truncated frames, slow-loris pacing, ping floods and
    /// mid-request disconnects — the protocol-hostile peer.
    Hostile,
    /// Valid traffic racing a client-initiated `Shutdown` mid-run: the
    /// drain contract (everything admitted is answered) under fire.
    ShutdownRace,
    /// Deadline storms plus interactive server-policy traffic against an
    /// *adaptive* server (slow-batch stalls supplying the pressure): the
    /// graceful-degradation controller shifts the precision mix under
    /// fire, and the interactive class's SLO floor must hold at every
    /// degradation level.
    OverloadStorm,
}

impl Scenario {
    /// Every scenario, in the order the profile sweep visits them.
    pub const ALL: [Scenario; 6] = [
        Scenario::Clean,
        Scenario::QueueFull,
        Scenario::SlowBatch,
        Scenario::Hostile,
        Scenario::ShutdownRace,
        Scenario::OverloadStorm,
    ];

    /// The CLI name of this scenario.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Clean => "clean",
            Scenario::QueueFull => "queue-full",
            Scenario::SlowBatch => "slow-batch",
            Scenario::Hostile => "hostile",
            Scenario::ShutdownRace => "shutdown-race",
            Scenario::OverloadStorm => "overload-storm",
        }
    }

    /// Parses a CLI scenario name.
    pub fn parse(s: &str) -> Result<Self, String> {
        Scenario::ALL
            .into_iter()
            .find(|sc| sc.name() == s)
            .ok_or_else(|| {
                format!(
                    "bad scenario {s:?}, expected one of: clean, queue-full, \
                     slow-batch, hostile, shutdown-race, overload-storm"
                )
            })
    }

    /// Whether peers in this scenario may hold the server to the *strict*
    /// client-side ledger: every valid request sent on a cleanly drained
    /// connection must be answered exactly once. Hostile peers corrupt
    /// their own framing mid-connection, which forfeits delivery of
    /// answers already in flight — the server-side conservation check
    /// still applies there, the per-id ledger does not.
    pub fn strict(self) -> bool {
        !matches!(self, Scenario::Hostile)
    }

    /// Whether the scenario's digest must be bitwise identical across two
    /// runs of the same seed (only meaningful where every request pins its
    /// precision and nothing depends on arrival interleaving).
    pub fn deterministic(self) -> bool {
        matches!(self, Scenario::Clean)
    }
}

/// One scripted action in a peer's lifecycle, fully concrete at plan time.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Write one valid `Infer` frame (encoded at plan time).
    Infer {
        /// Globally unique wire id (`peer << 32 | ordinal`).
        id: u64,
        /// The full encoded frame.
        bytes: Vec<u8>,
    },
    /// Write the same valid frame, dribbled `chunk` bytes at a time with
    /// pacing between writes (slow-loris at the frame boundary).
    SlowInfer {
        /// Globally unique wire id.
        id: u64,
        /// The full encoded frame.
        bytes: Vec<u8>,
        /// Bytes per paced write (>= 1).
        chunk: usize,
    },
    /// Write one `Ping` frame (the reader must answer `Pong` inline).
    Ping,
    /// Write a mutated frame; the server is expected to answer `Error` and
    /// drop the connection, so the peer abandons it afterwards.
    Corrupt {
        /// The mutated bytes.
        bytes: Vec<u8>,
    },
    /// Write only the first `keep` bytes of a valid frame, then hard
    /// disconnect mid-frame.
    Truncate {
        /// The full frame the prefix is cut from.
        bytes: Vec<u8>,
        /// How many leading bytes to send (< `bytes.len()`).
        keep: usize,
    },
    /// Drain the current connection, close it, and open a fresh one on the
    /// next write — one complete connection lifecycle boundary.
    Reconnect,
    /// Send the wire `Shutdown` frame (drain request); the peer then waits
    /// for the `ShutdownAck` while collecting in-flight answers.
    Shutdown,
}

impl Event {
    /// The infer id this event carries, if any.
    pub fn infer_id(&self) -> Option<u64> {
        match self {
            Event::Infer { id, .. } | Event::SlowInfer { id, .. } => Some(*id),
            _ => None,
        }
    }
}

/// A full run schedule: one event script per peer.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// `scripts[p]` is peer `p`'s event list, in send order.
    pub scripts: Vec<Vec<Event>>,
}

impl Schedule {
    /// Generates the schedule for `(scenario, seed, peers, events_per_peer)`
    /// — a pure function of its arguments.
    pub fn generate(scenario: Scenario, seed: u64, peers: usize, events_per_peer: usize) -> Self {
        let peers = peers.max(1);
        let scripts = (0..peers)
            .map(|p| {
                // Per-peer stream decorrelated from the run seed; the
                // multiplier is an odd constant so distinct peers never
                // collapse onto one stream.
                let mut rng = SeededRng::new(
                    seed ^ (p as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC4A0_5C4A_05C4_A05C,
                );
                generate_script(scenario, p, events_per_peer, &mut rng)
            })
            .collect();
        Schedule { scripts }
    }

    /// Total event count across all peers.
    pub fn total_events(&self) -> usize {
        self.scripts.iter().map(Vec::len).sum()
    }

    /// Keeps only events with global round-robin index below `prefix`
    /// (event `j` of peer `p` has global index `j * peers + p`).
    pub fn truncate_prefix(&mut self, prefix: usize) {
        let peers = self.scripts.len().max(1);
        for (p, script) in self.scripts.iter_mut().enumerate() {
            let keep = script
                .iter()
                .enumerate()
                .take_while(|(j, _)| j * peers + p < prefix)
                .count();
            script.truncate(keep);
        }
    }

    /// Ids of requests the server may legitimately answer that no peer
    /// *meant* to send: a byte-level mutation can accidentally produce a
    /// fully valid `Infer` frame, whose id the server will answer. These
    /// must not trip the unknown-id check.
    pub fn ghost_ids(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        for script in &self.scripts {
            for ev in script {
                if let Event::Corrupt { bytes } = ev {
                    // Mutations that flip only payload bytes leave a valid
                    // frame (possibly more than one, if the length field
                    // shrank and the tail re-frames); walk every decodable
                    // frame the server's reader would see.
                    let mut rest: &[u8] = bytes;
                    while let Ok((frame, used)) = Frame::decode(rest) {
                        if let Frame::Infer(req) = frame {
                            ids.push(req.id);
                        }
                        rest = &rest[used.min(rest.len())..];
                        if used == 0 {
                            break;
                        }
                    }
                }
            }
        }
        ids
    }

    /// Ids of planned requests that ride the server's seeded schedule
    /// (`WirePolicy::Server`) under `class` — the requests a per-class
    /// precision floor binds. Decoded from the planned bytes, so the set
    /// matches exactly what goes on the wire after any prefix truncation.
    pub fn server_policy_ids(&self, class: Class) -> Vec<u64> {
        let mut ids = Vec::new();
        for script in &self.scripts {
            for ev in script {
                if let Event::Infer { bytes, .. } | Event::SlowInfer { bytes, .. } = ev {
                    if let Ok((Frame::Infer(req), _)) = Frame::decode(bytes) {
                        if req.policy == WirePolicy::Server && req.class == class {
                            ids.push(req.id);
                        }
                    }
                }
            }
        }
        ids
    }

    /// Whether any (post-truncation) script still carries a `Shutdown`.
    pub fn has_shutdown(&self) -> bool {
        self.scripts
            .iter()
            .any(|s| s.iter().any(|e| matches!(e, Event::Shutdown)))
    }
}

/// One peer's script for the given scenario.
fn generate_script(
    scenario: Scenario,
    peer: usize,
    events: usize,
    rng: &mut SeededRng,
) -> Vec<Event> {
    let mut script = Vec::with_capacity(events);
    for ordinal in 0..events {
        let id = ((peer as u64) << 32) | ordinal as u64;
        // The shutdown racer: peer 0 fires the drain request mid-script
        // while every other peer is still submitting.
        if scenario == Scenario::ShutdownRace && peer == 0 && ordinal == events / 2 {
            script.push(Event::Shutdown);
            continue;
        }
        let roll = rng.below(100);
        let ev = match scenario {
            Scenario::Clean => match roll {
                0..=69 => infer(id, rng, Deadline::None, Pinning::Pinned),
                70..=84 => slow_infer(id, rng, Deadline::None, Pinning::Pinned),
                85..=94 => Event::Ping,
                _ => Event::Reconnect,
            },
            Scenario::QueueFull => match roll {
                0..=74 => infer(id, rng, Deadline::None, Pinning::Any),
                75..=84 => Event::Ping,
                _ => Event::Reconnect,
            },
            Scenario::SlowBatch => match roll {
                0..=69 => infer(id, rng, Deadline::Storm, Pinning::Any),
                70..=79 => slow_infer(id, rng, Deadline::Storm, Pinning::Any),
                80..=84 => Event::Ping,
                _ => Event::Reconnect,
            },
            Scenario::Hostile => match roll {
                0..=34 => infer(id, rng, Deadline::Sometimes, Pinning::Any),
                35..=44 => slow_infer(id, rng, Deadline::None, Pinning::Any),
                45..=59 => Event::Ping,
                60..=79 => corrupt(id, rng),
                80..=89 => truncate(id, rng),
                _ => Event::Reconnect,
            },
            Scenario::ShutdownRace => match roll {
                0..=74 => infer(id, rng, Deadline::Sometimes, Pinning::Any),
                75..=84 => Event::Ping,
                _ => Event::Reconnect,
            },
            Scenario::OverloadStorm => match roll {
                // The storm: tight deadlines across classes and policies,
                // feeding the controller's deadline-miss signal.
                0..=49 => infer(id, rng, Deadline::Storm, Pinning::Any),
                // The floored class: interactive traffic on the server's
                // seeded schedule, whose executed precision must never
                // fall below the floor however degraded the engine gets.
                50..=79 => interactive_infer(id, rng),
                80..=89 => Event::Ping,
                _ => Event::Reconnect,
            },
        };
        script.push(ev);
    }
    script
}

/// Deadline flavor of a generated request.
enum Deadline {
    /// No deadline, ever.
    None,
    /// Always a tight deadline, any class — the storm.
    Storm,
    /// A deadline roughly a third of the time.
    Sometimes,
}

/// Precision-policy flavor of a generated request.
enum Pinning {
    /// Always `WirePolicy::Fixed` — a pinned request's logits are a pure
    /// function of `(image, precision)`, independent of arrival
    /// interleaving, which is what makes the clean digest comparable.
    Pinned,
    /// Any policy, including the server's seeded schedule and explicit
    /// random sets.
    Any,
}

fn draw_request(id: u64, rng: &mut SeededRng, deadline: Deadline, pinning: Pinning) -> Vec<u8> {
    let pixels: Vec<f32> = (0..PIXELS).map(|_| rng.uniform_in(0.0, 1.0)).collect();
    let policy = match pinning {
        Pinning::Pinned => pinned_policy(rng),
        Pinning::Any => match rng.below(4) {
            0 => WirePolicy::Server,
            1 => WirePolicy::Random(PrecisionSet::range(4, 8)),
            _ => pinned_policy(rng),
        },
    };
    let deadline_ms = match deadline {
        Deadline::None => None,
        Deadline::Storm => Some(1 + rng.below(40) as u32),
        Deadline::Sometimes => {
            if rng.below(3) == 0 {
                Some(1 + rng.below(60) as u32)
            } else {
                None
            }
        }
    };
    let class = match deadline_ms {
        // v1 frames can only carry Normal; deadlined (v2) traffic spreads
        // across all classes so the EDF order is actually exercised.
        None => Class::Normal,
        Some(_) => *rng.choose(&Class::ALL),
    };
    Frame::Infer(InferRequest {
        id,
        policy,
        deadline_ms,
        class,
        shape: SHAPE,
        pixels,
    })
    .encode()
}

fn pinned_policy(rng: &mut SeededRng) -> WirePolicy {
    match rng.below(6) {
        0 => WirePolicy::Fixed(None),
        n => WirePolicy::Fixed(Some(Precision::new(3 + n as u8))),
    }
}

fn infer(id: u64, rng: &mut SeededRng, deadline: Deadline, pinning: Pinning) -> Event {
    Event::Infer {
        id,
        bytes: draw_request(id, rng, deadline, pinning),
    }
}

/// An interactive request on the server's seeded schedule, with a
/// deadline generous enough that it is normally served, not shed (the
/// class byte only rides v2 — deadlined — frames). These are the requests
/// [`Schedule::server_policy_ids`] surfaces for the floor check.
fn interactive_infer(id: u64, rng: &mut SeededRng) -> Event {
    let pixels: Vec<f32> = (0..PIXELS).map(|_| rng.uniform_in(0.0, 1.0)).collect();
    let bytes = Frame::Infer(InferRequest {
        id,
        policy: WirePolicy::Server,
        deadline_ms: Some(200 + rng.below(200) as u32),
        class: Class::Interactive,
        shape: SHAPE,
        pixels,
    })
    .encode();
    Event::Infer { id, bytes }
}

fn slow_infer(id: u64, rng: &mut SeededRng, deadline: Deadline, pinning: Pinning) -> Event {
    Event::SlowInfer {
        id,
        bytes: draw_request(id, rng, deadline, pinning),
        chunk: 1 + rng.below(7),
    }
}

/// A mutated frame: start from a valid encoding and break it one of eight
/// ways. The decoder contract under test: a typed [`tia_serve::WireError`]
/// or a valid frame — never a panic, never a silent misread.
fn corrupt(id: u64, rng: &mut SeededRng) -> Event {
    let mut bytes = draw_request(id, rng, Deadline::Sometimes, Pinning::Any);
    match rng.below(8) {
        0 => bytes[rng.below(4)] ^= 1 << rng.below(8), // magic
        1 => bytes[4] = 3 + rng.below(250) as u8,      // version
        2 => bytes[5] = 9 + rng.below(200) as u8,      // kind
        3 => bytes[6 + rng.below(2)] = 1 + rng.below(255) as u8, // reserved
        4 => {
            // Oversize length field: must be refused before allocation.
            let huge = (65 << 20) + rng.below(1 << 20) as u32;
            bytes[8..12].copy_from_slice(&huge.to_le_bytes());
        }
        5 => {
            // Length field off by a little: payload no longer matches.
            let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
            let skew = 1 + rng.below(9) as u32;
            let bad = if rng.below(2) == 0 {
                len.wrapping_add(skew)
            } else {
                len.saturating_sub(skew)
            };
            bytes[8..12].copy_from_slice(&bad.to_le_bytes());
        }
        6 => {
            // A handful of random byte flips anywhere in the frame.
            for _ in 0..(1 + rng.below(8)) {
                let i = rng.below(bytes.len());
                bytes[i] ^= 1 << rng.below(8);
            }
        }
        _ => {
            // Pure garbage, not even a header's worth sometimes.
            let n = 4 + rng.below(40);
            bytes = (0..n).map(|_| rng.below(256) as u8).collect();
        }
    }
    Event::Corrupt { bytes }
}

/// The first `keep` bytes of a valid frame, then a hard disconnect. `keep`
/// is always short of the full frame, so the server sees a mid-frame EOF.
fn truncate(id: u64, rng: &mut SeededRng) -> Event {
    let bytes = draw_request(id, rng, Deadline::None, Pinning::Any);
    let keep = 1 + rng.below(bytes.len() - 1);
    Event::Truncate { bytes, keep }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_a_pure_function_of_its_inputs() {
        for scenario in Scenario::ALL {
            let a = Schedule::generate(scenario, 42, 3, 12);
            let b = Schedule::generate(scenario, 42, 3, 12);
            assert_eq!(
                a,
                b,
                "{} schedule drifted across generations",
                scenario.name()
            );
            let c = Schedule::generate(scenario, 43, 3, 12);
            assert_ne!(a, c, "{} schedule ignores its seed", scenario.name());
        }
    }

    #[test]
    fn prefix_truncation_follows_round_robin_order() {
        let mut s = Schedule::generate(Scenario::Clean, 7, 3, 10);
        let total = s.total_events();
        assert_eq!(total, 30);
        s.truncate_prefix(7);
        // Global indices 0..7 round-robin over 3 peers: peer 0 gets events
        // 0,3,6 (3 events), peer 1 gets 1,4 (2), peer 2 gets 2,5 (2).
        assert_eq!(s.scripts[0].len(), 3);
        assert_eq!(s.scripts[1].len(), 2);
        assert_eq!(s.scripts[2].len(), 2);
        let mut full = Schedule::generate(Scenario::Clean, 7, 3, 10);
        full.truncate_prefix(usize::MAX);
        assert_eq!(full.total_events(), total);
    }

    #[test]
    fn infer_ids_are_globally_unique() {
        let s = Schedule::generate(Scenario::Hostile, 9, 4, 20);
        let mut seen = std::collections::BTreeSet::new();
        for script in &s.scripts {
            for id in script.iter().filter_map(Event::infer_id) {
                assert!(seen.insert(id), "duplicate planned id {id}");
            }
        }
    }

    #[test]
    fn valid_events_carry_decodable_frames() {
        let s = Schedule::generate(Scenario::SlowBatch, 11, 2, 24);
        for script in &s.scripts {
            for ev in script {
                if let Event::Infer { id, bytes } | Event::SlowInfer { id, bytes, .. } = ev {
                    let (frame, used) = Frame::decode(bytes).expect("planned frame must decode");
                    assert_eq!(used, bytes.len());
                    match frame {
                        Frame::Infer(req) => assert_eq!(req.id, *id),
                        other => panic!("planned infer decoded as {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn truncated_frames_never_form_a_complete_frame() {
        let s = Schedule::generate(Scenario::Hostile, 13, 4, 30);
        for script in &s.scripts {
            for ev in script {
                if let Event::Truncate { bytes, keep } = ev {
                    assert!(*keep < bytes.len());
                    assert!(
                        matches!(
                            Frame::decode(&bytes[..*keep]),
                            Err(tia_serve::WireError::Truncated)
                        ),
                        "a truncated prefix must read as Truncated"
                    );
                }
            }
        }
    }
}
