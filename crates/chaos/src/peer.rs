//! One scripted peer: replays its event list against the live server and
//! keeps the client half of the invariant ledger.
//!
//! A peer is deliberately dumb about *timing* (the schedule fixes what is
//! sent, the OS fixes when) and strict about *accounting*: every infer id
//! it sends is tallied, every answer it receives is tallied, and the
//! checker later compares the two against the server's own metrics.

use crate::plan::Event;
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpStream};
use std::time::Duration;
use tia_serve::{Frame, WireError};

/// How long one blocked read waits before counting a miss.
const READ_TIMEOUT: Duration = Duration::from_millis(200);
/// Consecutive read timeouts before a drain gives up (the per-drain wall
/// cap is `MAX_MISSES × READ_TIMEOUT`; a passing run never gets near it).
const MAX_MISSES: u32 = 25;
/// Pacing between slow-loris chunk writes.
const SLOW_PACE: Duration = Duration::from_micros(300);
/// How many leading chunks of a slow-loris frame are paced (the rest is
/// written in one go) — bounds one event's wall cost.
const SLOW_PACED_CHUNKS: usize = 16;

/// What one answer to an infer id was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnswerKind {
    /// A `Logits` frame: executed precision byte, top-1 index, and an
    /// FNV-1a digest over the logit bit patterns (enough to compare runs
    /// bitwise without retaining every vector).
    Logits {
        /// Executed precision (0 = full precision).
        precision: u8,
        /// Top-1 class index.
        top1: u32,
        /// FNV-1a64 over the logits' `f32::to_bits` stream.
        logits_fnv: u64,
    },
    /// A typed `Reject` frame (the wire code byte).
    Reject(u8),
}

/// The client half of the ledger, as one peer recorded it.
#[derive(Debug, Default)]
pub struct PeerLog {
    /// Connections this peer opened (each is one lifecycle).
    pub lifecycles: u64,
    /// Frames (or frame fragments) written.
    pub frames_sent: u64,
    /// Pings written successfully.
    pub pings_sent: u64,
    /// Pongs received.
    pub pongs_recv: u64,
    /// `ShutdownAck` frames received.
    pub acks: u64,
    /// `Error` frames received (expected after a corrupt frame).
    pub server_errors: u64,
    /// Transport-level failures (refused writes, resets).
    pub io_errors: u64,
    /// Undecodable bytes *from* the server — always a violation.
    pub garbage_from_server: u64,
    /// Frames the server must never send (client-to-server kinds).
    pub unexpected_frames: u64,
    /// How many times each infer id was sent.
    pub expected: BTreeMap<u64, u32>,
    /// Ids sent on a strict segment: answered-exactly-once applies.
    pub strict_ids: BTreeSet<u64>,
    /// Every answer received, per id.
    pub answers: BTreeMap<u64, Vec<AnswerKind>>,
}

/// FNV-1a 64-bit over a byte stream — the workspace-local stand-in for a
/// real hash crate, good enough to compare runs for bitwise equality.
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The FNV-1a 64-bit offset basis.
pub const FNV_SEED: u64 = 0xCBF2_9CE4_8422_2325;

/// Live connection state for the current segment.
struct Segment {
    stream: TcpStream,
    /// Infer ids sent on this segment and not yet answered.
    outstanding: BTreeSet<u64>,
    /// Pings sent / pongs seen on this segment (drained before close).
    pings: u64,
    pongs: u64,
    /// Whether this segment may hold the exactly-once ledger (scenario is
    /// strict, the planned segment is hostile-free, and no write failed).
    strict: bool,
    /// Set once a `Shutdown` frame went out on this segment: the drain at
    /// segment end also waits for the `ShutdownAck`.
    await_ack: bool,
}

/// Replays `script` against the server at `addr`. `strict_scenario` gates
/// the exactly-once ledger (see [`crate::plan::Scenario::strict`]).
pub fn run_peer(addr: SocketAddr, script: &[Event], strict_scenario: bool) -> PeerLog {
    let strict_flags = segment_strictness(script, strict_scenario);
    let mut log = PeerLog::default();
    let mut seg: Option<Segment> = None;
    for (i, ev) in script.iter().enumerate() {
        match ev {
            Event::Infer { id, bytes } => {
                if let Some(s) = ensure_conn(&mut seg, addr, strict_flags[i], &mut log) {
                    log.frames_sent += 1;
                    *log.expected.entry(*id).or_insert(0) += 1;
                    if write_all(s, bytes, &mut log) {
                        s.outstanding.insert(*id);
                        if s.strict {
                            log.strict_ids.insert(*id);
                        }
                    }
                }
            }
            Event::SlowInfer { id, bytes, chunk } => {
                if let Some(s) = ensure_conn(&mut seg, addr, strict_flags[i], &mut log) {
                    log.frames_sent += 1;
                    *log.expected.entry(*id).or_insert(0) += 1;
                    // Drip the leading chunks (header and then some) with
                    // pacing — that is where slow-loris bites framing —
                    // then finish the payload in one write so a single
                    // event costs milliseconds, not a pacing per pixel.
                    let mut ok = true;
                    for (n, piece) in bytes.chunks(*chunk.max(&1)).enumerate() {
                        if !write_all(s, piece, &mut log) {
                            ok = false;
                            break;
                        }
                        if n < SLOW_PACED_CHUNKS {
                            std::thread::sleep(SLOW_PACE);
                        }
                    }
                    if ok {
                        s.outstanding.insert(*id);
                        if s.strict {
                            log.strict_ids.insert(*id);
                        }
                    }
                }
            }
            Event::Ping => {
                if let Some(s) = ensure_conn(&mut seg, addr, strict_flags[i], &mut log) {
                    log.frames_sent += 1;
                    if write_all(s, &Frame::Ping.encode(), &mut log) {
                        log.pings_sent += 1;
                        s.pings += 1;
                    }
                }
            }
            Event::Corrupt { bytes } => {
                if let Some(s) = ensure_conn(&mut seg, addr, strict_flags[i], &mut log) {
                    log.frames_sent += 1;
                    write_all(s, bytes, &mut log);
                    // Give the server one beat to deliver its Error frame
                    // and any in-flight answers, then abandon the wreck —
                    // once the Error arrives the connection is doomed and
                    // waiting out further read timeouts buys nothing.
                    drain_until(s, &mut log, 2, true);
                }
                close(&mut seg);
            }
            Event::Truncate { bytes, keep } => {
                if let Some(s) = ensure_conn(&mut seg, addr, strict_flags[i], &mut log) {
                    log.frames_sent += 1;
                    write_all(s, &bytes[..*keep.min(&bytes.len())], &mut log);
                    // Mid-frame hard disconnect: no drain, no goodbye.
                    best_effort(s.stream.shutdown(SockShutdown::Both));
                }
                close(&mut seg);
            }
            Event::Reconnect => {
                if let Some(s) = seg.as_mut() {
                    drain(s, &mut log, MAX_MISSES);
                }
                close(&mut seg);
            }
            Event::Shutdown => {
                if let Some(s) = ensure_conn(&mut seg, addr, strict_flags[i], &mut log) {
                    log.frames_sent += 1;
                    if write_all(s, &Frame::Shutdown.encode(), &mut log) {
                        s.await_ack = true;
                    }
                }
            }
        }
    }
    if let Some(s) = seg.as_mut() {
        drain(s, &mut log, MAX_MISSES);
    }
    close(&mut seg);
    log
}

/// Per-event strictness: an event's segment (the connection it runs on) is
/// strict iff the scenario allows it and the segment ends at a clean
/// boundary (`Reconnect` or end-of-script) rather than a `Corrupt` or
/// `Truncate` teardown. Teardown forfeits answers already in flight for
/// *earlier* events on the same connection, so the whole segment opts out.
fn segment_strictness(script: &[Event], strict_scenario: bool) -> Vec<bool> {
    let mut flags = vec![strict_scenario; script.len()];
    if !strict_scenario {
        return flags;
    }
    let mut start = 0usize;
    for (i, ev) in script.iter().enumerate() {
        match ev {
            Event::Corrupt { .. } | Event::Truncate { .. } => {
                for f in &mut flags[start..=i] {
                    *f = false;
                }
                start = i + 1;
            }
            Event::Reconnect => start = i + 1,
            _ => {}
        }
    }
    flags
}

/// Returns the live segment, connecting a fresh one (a new lifecycle) if
/// none is open. `None` only when the connect itself failed.
fn ensure_conn<'a>(
    seg: &'a mut Option<Segment>,
    addr: SocketAddr,
    strict: bool,
    log: &mut PeerLog,
) -> Option<&'a mut Segment> {
    if seg.is_none() {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                best_effort(stream.set_nodelay(true));
                best_effort(stream.set_read_timeout(Some(READ_TIMEOUT)));
                log.lifecycles += 1;
                *seg = Some(Segment {
                    stream,
                    outstanding: BTreeSet::new(),
                    pings: 0,
                    pongs: 0,
                    strict,
                    await_ack: false,
                });
            }
            Err(_) => {
                log.io_errors += 1;
                return None;
            }
        }
    }
    seg.as_mut()
}

/// Writes `bytes`, demoting the segment from strict on failure (its
/// in-flight requests can no longer be held to exactly-once delivery).
fn write_all(s: &mut Segment, bytes: &[u8], log: &mut PeerLog) -> bool {
    match s.stream.write_all(bytes) {
        Ok(()) => true,
        Err(_) => {
            log.io_errors += 1;
            demote(s, log);
            false
        }
    }
}

/// Drops a segment's strict status and retracts its ids from the ledger.
fn demote(s: &mut Segment, log: &mut PeerLog) {
    if s.strict {
        s.strict = false;
        for id in &s.outstanding {
            log.strict_ids.remove(id);
        }
    }
}

/// Reads frames until the segment's books balance (outstanding empty,
/// pongs caught up, awaited ack seen) or `max_misses` consecutive read
/// timeouts pass. Every decoded frame is recorded.
fn drain(s: &mut Segment, log: &mut PeerLog, max_misses: u32) {
    drain_until(s, log, max_misses, false);
}

/// [`drain`] with an opt-in early exit once a server `Error` frame lands
/// (used after a deliberately corrupt frame: the server closes next, so
/// the peer stops paying read timeouts for answers that cannot come).
fn drain_until(s: &mut Segment, log: &mut PeerLog, max_misses: u32, stop_on_error: bool) {
    let mut misses = 0u32;
    loop {
        let settled = s.outstanding.is_empty() && s.pongs >= s.pings && !s.await_ack;
        // Timeout exhaustion deliberately does NOT demote: a healthy
        // server answers rejects inline and logits within batcher latency,
        // so seconds of consecutive silence with ids outstanding IS the
        // lost-answer bug — the strict-unanswered check must see it.
        if settled || misses >= max_misses {
            return;
        }
        match Frame::read_from(&mut s.stream) {
            Ok(frame) => {
                misses = 0;
                let doomed = matches!(frame, Frame::Error { .. });
                record(s, log, frame);
                if stop_on_error && doomed {
                    return;
                }
            }
            Err(WireError::Closed) | Err(WireError::Truncated) => {
                demote(s, log);
                return;
            }
            Err(WireError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                misses += 1;
            }
            Err(WireError::Io(_)) => {
                log.io_errors += 1;
                demote(s, log);
                return;
            }
            Err(_) => {
                // The *server* wrote bytes that do not decode: that is a
                // violation in any scenario, and framing is gone.
                log.garbage_from_server += 1;
                demote(s, log);
                return;
            }
        }
    }
}

/// Records one server frame into the ledger.
fn record(s: &mut Segment, log: &mut PeerLog, frame: Frame) {
    match frame {
        Frame::Logits(resp) => {
            let mut h = fnv1a(FNV_SEED, &(resp.logits.len() as u64).to_le_bytes());
            for v in &resp.logits {
                h = fnv1a(h, &v.to_bits().to_le_bytes());
            }
            let kind = AnswerKind::Logits {
                precision: resp.precision.map_or(0, |p| p.bits()),
                top1: resp.top1 as u32,
                logits_fnv: h,
            };
            log.answers.entry(resp.id).or_default().push(kind);
            s.outstanding.remove(&resp.id);
        }
        Frame::Reject { id, code } => {
            log.answers
                .entry(id)
                .or_default()
                .push(AnswerKind::Reject(code as u8));
            s.outstanding.remove(&id);
        }
        Frame::Pong => {
            log.pongs_recv += 1;
            s.pongs += 1;
        }
        Frame::Error { .. } => log.server_errors += 1,
        Frame::ShutdownAck => {
            log.acks += 1;
            s.await_ack = false;
        }
        // Client-to-server kinds arriving *from* the server are a protocol
        // violation no scenario forgives.
        Frame::Infer(_) | Frame::Ping | Frame::Shutdown => log.unexpected_frames += 1,
    }
}

fn close(seg: &mut Option<Segment>) {
    if let Some(s) = seg.take() {
        best_effort(s.stream.shutdown(SockShutdown::Both));
    }
}

/// Discards a best-effort result (socket teardown and option tweaks whose
/// failure is benign); keeps the error-hygiene lint meaningful elsewhere.
fn best_effort<T, E>(res: Result<T, E>) {
    drop(res);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Event, Scenario, Schedule};

    #[test]
    fn strictness_is_per_segment_not_per_event() {
        let infer = |id| Event::Infer { id, bytes: vec![] };
        let script = vec![
            infer(1),
            Event::Reconnect,
            infer(2),
            Event::Corrupt { bytes: vec![] },
            infer(3),
        ];
        let flags = segment_strictness(&script, true);
        assert_eq!(flags, vec![true, true, false, false, true]);
        assert_eq!(segment_strictness(&script, false), vec![false; 5]);
    }

    #[test]
    fn hostile_schedules_never_claim_strict_ids() {
        let s = Schedule::generate(Scenario::Hostile, 3, 2, 16);
        for script in &s.scripts {
            let flags = segment_strictness(script, Scenario::Hostile.strict());
            assert!(flags.iter().all(|f| !f));
        }
    }

    #[test]
    fn fnv_is_stable_and_order_sensitive() {
        let a = fnv1a(FNV_SEED, b"abc");
        assert_eq!(a, fnv1a(FNV_SEED, b"abc"));
        assert_ne!(a, fnv1a(FNV_SEED, b"acb"));
        assert_ne!(a, FNV_SEED);
    }
}
