//! The run harness: spawns a real [`tia_serve::Server`] on loopback,
//! drives the scheduled peers against it, drains, and checks the ledger.
//!
//! Everything observable is a function of [`ChaosConfig`]; a violation
//! report therefore reproduces from its config alone (see
//! [`RunReport::repro_command`]).

use crate::check::{check_run, check_trace, RunCounters, Violation};
use crate::peer::run_peer;
use crate::plan::{Scenario, Schedule, SHAPE};
use std::panic::AssertUnwindSafe;
use std::time::Duration;
use tia_engine::{EngineConfig, PrecisionPolicy};
use tia_nn::zoo;
use tia_quant::{Precision, PrecisionSet};
use tia_serve::wire::Class;
use tia_serve::{ControlConfig, FaultPlan, MetricsSnapshot, Server, ServerConfig};
use tia_tensor::{KernelMode, SeededRng};

/// Engine worker shards per chaos server.
const WORKERS: usize = 2;
/// Engine micro-batch size per chaos server.
const MAX_BATCH: usize = 4;
/// The interactive class's precision floor in the overload-storm scenario,
/// in bits — inside the 4~8-bit serving set, so degradation would sample
/// below it if the floor failed to bind.
const STORM_FLOOR_BITS: u8 = 6;

/// One chaos run, fully specified. The schedule, the server's fault plan
/// and every peer's byte stream derive from these fields alone.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The fault profile to run.
    pub scenario: Scenario,
    /// The one seed everything derives from.
    pub seed: u64,
    /// Concurrent scripted peers.
    pub peers: usize,
    /// Events per peer script.
    pub events_per_peer: usize,
    /// Replay only the first N events in global round-robin order
    /// (`None` = the whole schedule). Used by the minimizer.
    pub prefix: Option<usize>,
    /// Arm the server's double-ack sabotage — the checker's self-test
    /// (a correct checker MUST flag such a run).
    pub sabotage: bool,
}

impl ChaosConfig {
    /// A small default run of `scenario` under `seed`.
    pub fn new(scenario: Scenario, seed: u64) -> Self {
        ChaosConfig {
            scenario,
            seed,
            peers: 4,
            events_per_peer: 16,
            prefix: None,
            sabotage: false,
        }
    }
}

/// Everything one run reports.
#[derive(Debug)]
pub struct RunReport {
    /// The config that produced this report.
    pub config: ChaosConfig,
    /// Total planned events after prefix truncation.
    pub total_events: usize,
    /// Order-independent FNV digest over every answer received.
    pub digest: u64,
    /// Aggregate counters (lifecycles, frames, answers).
    pub counters: RunCounters,
    /// The server's post-drain metrics snapshot (`None` if the run
    /// panicked before the drain).
    pub snapshot: Option<MetricsSnapshot>,
    /// Every invariant violation found; empty means the run passed.
    pub violations: Vec<Violation>,
}

impl RunReport {
    /// Whether the run upheld every invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The single command line that reproduces this run from its seed.
    pub fn repro_command(&self) -> String {
        let c = &self.config;
        let mut cmd = format!(
            "tia-chaos --scenario {} --seed {} --peers {} --events {}",
            c.scenario.name(),
            c.seed,
            c.peers,
            c.events_per_peer
        );
        if let Some(p) = c.prefix {
            cmd.push_str(&format!(" --prefix {p}"));
        }
        if c.sabotage {
            cmd.push_str(" --sabotage");
        }
        cmd
    }
}

/// The server configuration a scenario runs against.
fn server_config(cfg: &ChaosConfig) -> ServerConfig {
    // Engine seed decorrelated from (but determined by) the run seed.
    let engine_seed = cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1CEB_00DA;
    let mut faults = match cfg.scenario {
        Scenario::QueueFull => FaultPlan::none().with_queue_full_every(5),
        Scenario::SlowBatch => FaultPlan::none().with_slow_batch(3, Duration::from_millis(2)),
        // Induced stalls make the deadline storm actually shed, so the
        // adaptive controller sees real miss pressure and degrades.
        Scenario::OverloadStorm => FaultPlan::none().with_slow_batch(2, Duration::from_millis(3)),
        _ => FaultPlan::none(),
    };
    if cfg.sabotage {
        faults = faults.with_double_ack();
    }
    // Every chaos server flies with the recorder on: the span-completeness
    // invariant (admit -> exactly one of sent/shed/errored) is checked on
    // every run, whatever the scenario.
    // Digest-checked scenarios pin the scalar reference kernels so the
    // per-seed logits digest is comparable across hosts and across
    // `TIA_KERNEL` settings; fault scenarios serve whatever this process
    // serves in production.
    let kernel = if cfg.scenario.deterministic() {
        KernelMode::Scalar
    } else {
        KernelMode::global_default()
    };
    let base = ServerConfig::default()
        .with_addr("127.0.0.1:0")
        .with_trace()
        .with_workers(WORKERS)
        .with_input_shape(SHAPE)
        .with_policy(PrecisionPolicy::Random(PrecisionSet::range(4, 8)))
        .with_engine(
            EngineConfig::default()
                .with_max_batch(MAX_BATCH)
                .with_seed(engine_seed)
                .with_kernel(kernel),
        )
        .with_faults(faults);
    match cfg.scenario {
        // A tiny queue so organic queue-full rejects join the injected ones.
        Scenario::QueueFull => base.with_queue_capacity(8),
        // A small forming wait gives the EDF window real candidates while
        // the injected stalls back traffic up.
        Scenario::SlowBatch => base.with_max_wait(Duration::from_millis(1)),
        // The adaptive server: an aggressive fill/miss band plus a short
        // cooldown so degradation and recovery both happen inside a small
        // run, with the interactive SLO floor the checker holds the
        // answers to.
        Scenario::OverloadStorm => base
            .with_queue_capacity(16)
            .with_max_wait(Duration::from_millis(1))
            .with_control(
                ControlConfig::default()
                    .with_fill_band(0.5, 0.25)
                    .with_miss_band(0.05, 0.0)
                    .with_cooldown(2)
                    .with_floor(Class::Interactive, Precision::new(STORM_FLOOR_BITS)),
            ),
        _ => base,
    }
}

/// Builds one backend replica. Every replica is built from the *same*
/// fresh RNG, so all shards hold identical weights — which shard a request
/// lands on (a race between peers) then cannot change its logits, and the
/// clean scenario's digest stays comparable across runs.
fn replica() -> tia_nn::Network {
    zoo::preact_resnet18_rps(
        SHAPE[0],
        2,
        3,
        PrecisionSet::range(4, 8),
        &mut SeededRng::new(0x5EED_CAFE),
    )
}

/// Executes one chaos run end to end: spawn, drive, drain, check.
///
/// `Err` is reserved for environment failures (could not bind loopback);
/// invariant violations — including panics in server or peer threads —
/// come back inside the [`RunReport`].
pub fn run(cfg: &ChaosConfig) -> Result<RunReport, String> {
    let mut schedule = Schedule::generate(cfg.scenario, cfg.seed, cfg.peers, cfg.events_per_peer);
    if let Some(p) = cfg.prefix {
        schedule.truncate_prefix(p);
    }
    let total_events = schedule.total_events();
    let ghost_ids = schedule.ghost_ids();
    let expect_ack = schedule.has_shutdown();
    // The floor ledger: in the overload-storm scenario every interactive
    // server-policy request must execute at or above the armed floor.
    let floored: Vec<(u64, u8)> = if cfg.scenario == Scenario::OverloadStorm {
        schedule
            .server_policy_ids(Class::Interactive)
            .into_iter()
            .map(|id| (id, STORM_FLOOR_BITS))
            .collect()
    } else {
        Vec::new()
    };

    let server = Server::spawn(server_config(cfg), |_| replica())
        .map_err(|e| format!("could not spawn chaos server: {e}"))?;
    let metrics = server.metrics_handle();
    let trace = server.trace_handle();
    let addr = server.addr();
    let strict = cfg.scenario.strict();

    let handles: Vec<_> = schedule
        .scripts
        .iter()
        .map(|script| {
            let script = script.clone();
            std::thread::spawn(move || run_peer(addr, &script, strict))
        })
        .collect();
    let mut logs = Vec::new();
    let mut violations = Vec::new();
    for h in handles {
        match h.join() {
            Ok(log) => logs.push(log),
            Err(payload) => violations.push(Violation::Panicked {
                what: format!("peer thread: {}", panic_text(&payload)),
            }),
        }
    }
    // Graceful drain; a batcher-thread panic surfaces at the join inside
    // shutdown(), which is itself an invariant violation, not a crash of
    // the harness.
    if let Err(payload) = std::panic::catch_unwind(AssertUnwindSafe(|| drop(server.shutdown()))) {
        violations.push(Violation::Panicked {
            what: format!("server drain: {}", panic_text(&payload)),
        });
    }
    let snapshot = metrics.snapshot();
    // Post-drain the recorder is quiescent, so the snapshot is exact:
    // every admitted request's span must be complete and monotonic.
    if let Some(sink) = &trace {
        violations.extend(check_trace(&tia_serve::trace::spans(&sink.drain())));
    }
    let (mut found, digest, counters) = check_run(
        cfg.scenario,
        &logs,
        snapshot,
        &ghost_ids,
        &floored,
        expect_ack,
    );
    violations.append(&mut found);
    Ok(RunReport {
        config: cfg.clone(),
        total_events,
        digest,
        counters,
        snapshot: Some(snapshot),
        violations,
    })
}

/// [`run`], with any harness-level panic converted into a
/// [`Violation::Panicked`] report instead of unwinding the caller.
pub fn run_captured(cfg: &ChaosConfig) -> Result<RunReport, String> {
    match std::panic::catch_unwind(AssertUnwindSafe(|| run(cfg))) {
        Ok(res) => res,
        Err(payload) => Ok(RunReport {
            config: cfg.clone(),
            total_events: 0,
            digest: 0,
            counters: RunCounters::default(),
            snapshot: None,
            violations: vec![Violation::Panicked {
                what: panic_text(&payload),
            }],
        }),
    }
}

/// Runs `cfg`, and — for digest-checked scenarios
/// ([`Scenario::deterministic`]) — runs it a second time and holds both
/// runs to bitwise-identical answer digests.
pub fn run_checked(cfg: &ChaosConfig) -> Result<RunReport, String> {
    let mut first = run_captured(cfg)?;
    if !cfg.scenario.deterministic() || !first.passed() {
        return Ok(first);
    }
    let second = run_captured(cfg)?;
    if !second.passed() {
        return Ok(second);
    }
    if second.digest != first.digest || second.counters.answers != first.counters.answers {
        first.violations.push(Violation::DeterminismDrift {
            first: first.digest,
            second: second.digest,
        });
    }
    Ok(first)
}

/// Renders a panic payload's message, when it carried one.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
