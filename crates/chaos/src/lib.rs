//! # tia-chaos
//!
//! A seeded connection-lifecycle fuzzer and fault-injection chaos harness
//! for the `tia-serve` stack — ROADMAP item 5, and the regression net the
//! hot-path rewrites (SIMD kernels, epoll front-end, adaptive precision,
//! router tier) land behind.
//!
//! Where the PR-4 frame fuzzer attacked the *decoder* with isolated
//! inputs, this harness attacks the *stateful* surface the way MicroFuzz
//! attacks serving systems: whole connection lifecycles against a live
//! [`tia_serve::Server`] on loopback — interleaved valid/corrupt/truncated
//! frames, slow-loris pacing, mid-request disconnects, deadline storms
//! across priority classes, ping floods, shutdown racing in-flight
//! submits, and overload storms against the adaptive-precision controller
//! (per-class SLO floors held under degradation) — with induced overload
//! windows threaded through the server's [`tia_serve::FaultPlan`] knob.
//!
//! Everything derives from **one printed u64**: the schedule (every frame
//! byte is fixed at plan time — [`plan`]), the server's engine seed, and
//! the fault plan. A violating run therefore reproduces from a single
//! command line, and the [`mod@minimize`] module shrinks it to the
//! shortest violating event prefix.
//!
//! The invariant ledger ([`check`]) holds every run, whatever the
//! scenario, to: every admitted request answered exactly once (`Logits`
//! xor typed `Reject`), conservation (`admitted = served + shed +
//! errored`, queue gauge back to zero), no panics, no leaked reader
//! threads — and clean runs bitwise-deterministic per seed.
//!
//! Use it as a library from `#[test]`s ([`run_checked`]) or via the
//! `tia-chaos` binary (`--profile quick` in CI, `--scenario ... --seed
//! ...` to reproduce a report).

#![deny(missing_docs)]

pub mod check;
pub mod harness;
pub mod minimize;
pub mod peer;
pub mod plan;

pub use check::{RunCounters, Violation};
pub use harness::{run, run_captured, run_checked, ChaosConfig, RunReport};
pub use minimize::{minimize, MinimizeOutcome};
pub use plan::{Event, Scenario, Schedule};
