//! Schedule minimization: shrink a violating run to the shortest global
//! event prefix that still violates.
//!
//! Events are totally ordered by the round-robin global index (event `j`
//! of peer `p` is index `j * peers + p`), so "a prefix" is well defined
//! across peers and replays exactly (every event's bytes were fixed at
//! plan time). The search is a binary chop for the smallest violating
//! prefix length, followed by one confirming replay — at most
//! `log2(total) + 2` extra runs.

use crate::harness::{run_captured, ChaosConfig, RunReport};
use crate::plan::Schedule;

/// The minimizer's result: the shortest violating prefix it found and the
/// confirming run's report.
#[derive(Debug)]
pub struct MinimizeOutcome {
    /// Smallest prefix length (in global events) that still violates.
    pub prefix: usize,
    /// Total events in the unminimized schedule.
    pub total: usize,
    /// The confirming replay at `prefix` (its violations are non-empty).
    pub report: RunReport,
    /// How many replays the search spent.
    pub runs: usize,
}

/// Shrinks `cfg` (which is expected to violate when run whole) to the
/// shortest violating event prefix. Returns `None` if the full run does
/// not violate — there is nothing to minimize.
///
/// Violations are not always prefix-monotone (dropping an event can mask a
/// race), so the chop keeps the *smallest prefix observed to violate*
/// rather than assuming monotonicity; the confirming replay at the end
/// guarantees the returned prefix really fails.
pub fn minimize(cfg: &ChaosConfig) -> Result<Option<MinimizeOutcome>, String> {
    let total = {
        let mut schedule =
            Schedule::generate(cfg.scenario, cfg.seed, cfg.peers, cfg.events_per_peer);
        if let Some(p) = cfg.prefix {
            schedule.truncate_prefix(p);
        }
        schedule.total_events()
    };
    let mut runs = 1usize;
    let full = run_captured(cfg)?;
    if full.passed() || total == 0 {
        return Ok(None);
    }
    let violates = |prefix: usize, runs: &mut usize| -> Result<bool, String> {
        *runs += 1;
        let mut sub = cfg.clone();
        sub.prefix = Some(prefix);
        Ok(!run_captured(&sub)?.passed())
    };
    // Smallest prefix in [1, total] observed to violate.
    let (mut lo, mut hi) = (1usize, total);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if violates(mid, &mut runs)? {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // Confirming replay; if the chop landed on a non-reproducing length
    // (non-monotone violation), fall back to the full schedule, which is
    // known to fail.
    let mut best = hi;
    let mut sub = cfg.clone();
    sub.prefix = Some(best);
    runs += 1;
    let mut report = run_captured(&sub)?;
    if report.passed() {
        best = total;
        sub.prefix = Some(best);
        runs += 1;
        report = run_captured(&sub)?;
        if report.passed() {
            // The full run violated moments ago but no longer does: a
            // flaky, timing-dependent violation. Surface the original.
            return Ok(Some(MinimizeOutcome {
                prefix: total,
                total,
                report: full,
                runs,
            }));
        }
    }
    Ok(Some(MinimizeOutcome {
        prefix: best,
        total,
        report,
        runs,
    }))
}
