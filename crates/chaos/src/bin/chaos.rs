//! `tia-chaos` — the chaos harness CLI.
//!
//! Two modes:
//!
//! * **Profile sweep** (default): `tia-chaos --profile quick` cycles every
//!   scenario with seeds derived from `--seed` until the lifecycle target
//!   is met (quick: >= 500 connection lifecycles across all six fault
//!   profiles) or, for `--profile soak`, until `--duration-ms` expires.
//! * **Single run**: `tia-chaos --scenario hostile --seed 7 --peers 4
//!   --events 16` replays exactly one schedule — the form every violation
//!   report prints as its repro line.
//!
//! On any invariant violation the process minimizes the failing schedule,
//! prints one `repro:` command line that reproduces it from its seed
//! alone, and exits nonzero.

use tia_chaos::{minimize, run_checked, ChaosConfig, RunReport, Scenario};
use tia_serve::cli::Args;
use tia_serve::clock;
use tia_tensor::SeededRng;

/// Lifecycle floor the quick profile must clear before it may pass.
const QUICK_LIFECYCLES: u64 = 500;

fn main() -> std::process::ExitCode {
    match main_impl() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("tia-chaos: {e}");
            std::process::ExitCode::from(2)
        }
    }
}

fn main_impl() -> Result<std::process::ExitCode, String> {
    let args = Args::parse(
        &[
            "profile",
            "scenario",
            "seed",
            "peers",
            "events",
            "prefix",
            "duration-ms",
        ],
        &["sabotage"],
    )?;
    let seed: u64 = args.get_or("seed", 0xD1CE_5EED)?;
    let peers: usize = args.get_or("peers", 4)?;
    let events: usize = args.get_or("events", 16)?;
    let sabotage = args.has("sabotage");

    if let Some(name) = args.get("scenario") {
        let mut cfg = ChaosConfig::new(Scenario::parse(name)?, seed);
        cfg.peers = peers.max(1);
        cfg.events_per_peer = events.max(1);
        cfg.sabotage = sabotage;
        cfg.prefix = match args.get("prefix") {
            None => None,
            Some(_) => Some(args.get_or("prefix", 0usize)?),
        };
        return single_run(&cfg);
    }

    let profile = args.get("profile").unwrap_or("quick");
    let duration_ms: u64 =
        args.get_or("duration-ms", if profile == "soak" { 60_000 } else { 0 })?;
    match profile {
        "quick" | "soak" => sweep(profile, seed, peers, events, sabotage, duration_ms),
        other => Err(format!("bad profile {other:?}, expected quick or soak")),
    }
}

/// Replays one schedule, minimizing on violation.
fn single_run(cfg: &ChaosConfig) -> Result<std::process::ExitCode, String> {
    let report = run_checked(cfg)?;
    print_report(&report);
    if report.passed() {
        println!("ok: no invariant violations");
        return Ok(std::process::ExitCode::SUCCESS);
    }
    // A replay of an already-minimized prefix should not re-minimize.
    if cfg.prefix.is_none() {
        print_minimized(cfg)?;
    } else {
        println!("repro: {}", report.repro_command());
    }
    Ok(std::process::ExitCode::FAILURE)
}

/// The scenario sweep behind `--profile quick|soak`.
fn sweep(
    profile: &str,
    seed: u64,
    peers: usize,
    events: usize,
    sabotage: bool,
    duration_ms: u64,
) -> Result<std::process::ExitCode, String> {
    let started = clock::monotonic_now();
    let mut derive = SeededRng::new(seed);
    let mut lifecycles = 0u64;
    let mut runs = 0u64;
    let mut per_scenario = [0u64; Scenario::ALL.len()];
    println!("tia-chaos --profile {profile} --seed {seed} (peers {peers}, events {events})");
    'sweep: loop {
        for (i, scenario) in Scenario::ALL.into_iter().enumerate() {
            let mut cfg = ChaosConfig::new(scenario, derive.next_u64());
            cfg.peers = peers.max(1);
            cfg.events_per_peer = events.max(1);
            cfg.sabotage = sabotage;
            let report = run_checked(&cfg)?;
            runs += 1;
            lifecycles += report.counters.lifecycles;
            per_scenario[i] += report.counters.lifecycles;
            if !report.passed() {
                print_report(&report);
                print_minimized(&cfg)?;
                return Ok(std::process::ExitCode::FAILURE);
            }
            if duration_ms > 0 && clock::since(started).as_millis() as u64 >= duration_ms {
                break 'sweep;
            }
        }
        // quick: stop once the lifecycle floor is cleared (every scenario
        // has run at least once per round by construction).
        if profile == "quick" && lifecycles >= QUICK_LIFECYCLES && duration_ms == 0 {
            break;
        }
    }
    let elapsed = clock::since(started).as_millis();
    for (i, scenario) in Scenario::ALL.into_iter().enumerate() {
        println!(
            "  {:>14}: {:>5} lifecycles",
            scenario.name(),
            per_scenario[i]
        );
    }
    println!(
        "ok: {runs} runs, {lifecycles} connection lifecycles, {} fault profiles, \
         0 violations ({elapsed} ms)",
        Scenario::ALL.len()
    );
    if profile == "quick" && lifecycles < QUICK_LIFECYCLES {
        return Err(format!(
            "quick profile ended below the lifecycle floor: {lifecycles} < {QUICK_LIFECYCLES}"
        ));
    }
    Ok(std::process::ExitCode::SUCCESS)
}

/// Prints one run's outcome.
fn print_report(report: &RunReport) {
    let c = &report.config;
    println!(
        "run: scenario {} seed {} peers {} events {}{} — {} lifecycles, {} frames, \
         {} answers, digest {:#018x}",
        c.scenario.name(),
        c.seed,
        c.peers,
        c.events_per_peer,
        c.prefix.map_or(String::new(), |p| format!(" prefix {p}")),
        report.counters.lifecycles,
        report.counters.frames_sent,
        report.counters.answers,
        report.digest,
    );
    for v in &report.violations {
        println!("VIOLATION: {v}");
    }
}

/// Minimizes a violating config and prints the one-line repro.
fn print_minimized(cfg: &ChaosConfig) -> Result<(), String> {
    match minimize(cfg)? {
        Some(outcome) => {
            println!(
                "minimized: {} of {} events still violate ({} replays)",
                outcome.prefix, outcome.total, outcome.runs
            );
            for v in &outcome.report.violations {
                println!("  still violating: {v}");
            }
            println!("repro: {}", outcome.report.repro_command());
        }
        None => {
            // The violation did not survive re-running (timing flake or a
            // determinism drift, which pair-runs detect but single replays
            // cannot); reproduce from the unminimized schedule.
            let mut full = cfg.clone();
            full.prefix = None;
            println!("minimize: violation did not reproduce under replay");
            println!(
                "repro: tia-chaos --scenario {} --seed {} --peers {} --events {}{}",
                full.scenario.name(),
                full.seed,
                full.peers,
                full.events_per_peer,
                if full.sabotage { " --sabotage" } else { "" }
            );
        }
    }
    Ok(())
}
