//! # tia-quant
//!
//! Linear quantization for the Random Precision Switch (RPS) algorithm.
//!
//! The paper quantizes both weights and activations with a linear quantizer
//! (Jacob et al., CVPR'18 style) to a precision drawn from a candidate set
//! (4–16 bit by default). Quantization here is *fake quantization*: values are
//! rounded to the b-bit grid but kept in `f32`, exactly as quantization-aware
//! training frameworks do. The backward pass uses the straight-through
//! estimator, which the `tia-nn` layers implement by passing gradients through
//! the quantization nodes unchanged.
//!
//! The quantization *noise* — the gap between the grids of two different
//! precisions — is the mechanism the whole paper rests on: adversarial
//! perturbations crafted against the b₁-bit model are "shielded" by the noise
//! when the model is evaluated at b₂ bits.
//!
//! # Example
//!
//! ```
//! use tia_quant::{Precision, fake_quant_symmetric};
//! use tia_tensor::Tensor;
//!
//! let w = Tensor::from_vec(vec![-1.0, -0.4, 0.3, 0.9], &[4]);
//! let q4 = fake_quant_symmetric(&w, Precision::new(4));
//! let q8 = fake_quant_symmetric(&w, Precision::new(8));
//! // Higher precision quantizes with smaller error.
//! let e4: f32 = w.sub(&q4).data().iter().map(|v| v.abs()).sum();
//! let e8: f32 = w.sub(&q8).data().iter().map(|v| v.abs()).sum();
//! assert!(e8 <= e4);
//! ```

#![deny(missing_docs)]

mod packed;
mod precision;
mod quantizer;

pub use packed::{gemm_quant, quantize_affine_levels, LevelParams, QuantizedWeights};
pub use precision::{Precision, PrecisionSet};
pub use quantizer::{
    fake_quant_affine, fake_quant_affine_slice, fake_quant_symmetric, fake_quant_symmetric_into,
    AffineParams, LinearQuantizer, QuantMode,
};
