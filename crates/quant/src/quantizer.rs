//! Linear (uniform) quantizers in the style of Jacob et al., CVPR'18.

use crate::Precision;
use tia_tensor::Tensor;

/// Whether a quantizer uses a symmetric (signed, zero-centred) or affine
/// (asymmetric, zero-point) grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantMode {
    /// Symmetric grid: `q = round(x / s)`, `s = max|x| / (2^{b-1} - 1)`.
    /// Standard for weights.
    Symmetric,
    /// Affine grid: `q = round(x / s) + z` with scale from the `[min, max]`
    /// range. Standard for activations.
    Affine,
}

/// Scale/zero-point pair of an affine quantizer, exposed so accelerator-side
/// code can fold switchable-BN multiplications into the scale factor exactly
/// as §2.4 of the paper describes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineParams {
    /// Grid step.
    pub scale: f32,
    /// Real value mapped to integer level 0.
    pub zero_point: f32,
}

/// A per-tensor linear quantizer.
///
/// The quantizer is stateless with respect to the data: the grid is derived
/// from the tensor being quantized (dynamic range calibration), matching the
/// paper's in-situ precision switch where the same fp32 master weights are
/// re-quantized to the sampled precision on every iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinearQuantizer {
    precision: Precision,
    mode: QuantMode,
}

impl LinearQuantizer {
    /// Creates a symmetric quantizer (weights).
    pub fn symmetric(precision: Precision) -> Self {
        Self {
            precision,
            mode: QuantMode::Symmetric,
        }
    }

    /// Creates an affine quantizer (activations).
    pub fn affine(precision: Precision) -> Self {
        Self {
            precision,
            mode: QuantMode::Affine,
        }
    }

    /// The quantizer's precision.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The quantizer's mode.
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// Fake-quantizes a tensor: rounds onto the b-bit grid, returns `f32`.
    pub fn quantize(&self, x: &Tensor) -> Tensor {
        match self.mode {
            QuantMode::Symmetric => fake_quant_symmetric(x, self.precision),
            QuantMode::Affine => fake_quant_affine(x, self.precision).0,
        }
    }
}

/// Symmetric fake quantization with a per-tensor scale.
///
/// `s = max|x| / (2^{b-1} - 1)`; values round to `s * round(x/s)` and clamp to
/// the signed range. For `b = 1` the grid degenerates to `{-s, 0, +s}` with
/// `s = max|x|` (binary-connect style sign quantization with magnitude).
pub fn fake_quant_symmetric(x: &Tensor, precision: Precision) -> Tensor {
    let mut out = Tensor::zeros(x.shape());
    fake_quant_symmetric_into(x.data(), out.data_mut(), precision);
    out
}

/// Allocation-free core of [`fake_quant_symmetric`]: quantizes `src` into
/// `dst` with per-slice calibration, returning the grid step used (0 for an
/// all-zero input, which passes through unchanged). Hot paths (memoized
/// weight quantization in `tia_nn::Conv2d`/`Linear`) call this directly on
/// workspace buffers.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn fake_quant_symmetric_into(src: &[f32], dst: &mut [f32], precision: Precision) -> f32 {
    assert_eq!(
        src.len(),
        dst.len(),
        "fake_quant_symmetric_into length mismatch"
    );
    let b = precision.bits() as i32;
    let qmax = if b <= 1 {
        1.0
    } else {
        ((1i64 << (b - 1)) - 1) as f32
    };
    let amax = src.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if amax == 0.0 {
        dst.copy_from_slice(src);
        return 0.0;
    }
    let s = amax / qmax;
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = ((v / s).round().clamp(-qmax, qmax)) * s;
    }
    s
}

/// Affine fake quantization with per-tensor `[min, max]` calibration.
///
/// Returns the quantized tensor and the `(scale, zero_point)` used, so BN
/// folding code can consume the parameters.
pub fn fake_quant_affine(x: &Tensor, precision: Precision) -> (Tensor, AffineParams) {
    let mut out = vec![0.0f32; x.len()];
    let params = fake_quant_affine_slice(x.data(), &mut out, precision);
    (Tensor::from_vec(out, x.shape()), params)
}

/// Allocation-free core of [`fake_quant_affine`]: quantizes `src` into
/// `dst` with per-slice calibration. Hot paths (per-row activation
/// quantization in `tia_nn::Linear`) call this directly on sub-slices.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn fake_quant_affine_slice(src: &[f32], dst: &mut [f32], precision: Precision) -> AffineParams {
    assert_eq!(
        src.len(),
        dst.len(),
        "fake_quant_affine_slice length mismatch"
    );
    let b = precision.bits() as u32;
    let levels = ((1u64 << b) - 1) as f32;
    let lo = src.iter().copied().fold(f32::INFINITY, f32::min).min(0.0);
    let hi = src
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max)
        .max(0.0);
    if hi == lo {
        dst.copy_from_slice(src);
        return AffineParams {
            scale: 1.0,
            zero_point: 0.0,
        };
    }
    let scale = (hi - lo) / levels;
    let zero_point = (-lo / scale).round();
    for (d, &v) in dst.iter_mut().zip(src) {
        let qv = (v / scale + zero_point).round().clamp(0.0, levels);
        *d = (qv - zero_point) * scale;
    }
    AffineParams { scale, zero_point }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec(v, &[n])
    }

    #[test]
    fn symmetric_idempotent() {
        let x = t(vec![-1.0, -0.25, 0.0, 0.5, 1.0]);
        let p = Precision::new(8);
        let q1 = fake_quant_symmetric(&x, p);
        let q2 = fake_quant_symmetric(&q1, p);
        for (a, b) in q1.data().iter().zip(q2.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn symmetric_error_bounded_by_half_step() {
        let x = t(vec![-0.9, -0.33, 0.12, 0.77, 0.9]);
        let p = Precision::new(6);
        let q = fake_quant_symmetric(&x, p);
        let s = x.abs_max() / 31.0; // 2^(6-1)-1
        for (a, b) in x.data().iter().zip(q.data()) {
            assert!((a - b).abs() <= s / 2.0 + 1e-6);
        }
    }

    #[test]
    fn symmetric_preserves_zero_and_extremes() {
        let x = t(vec![-2.0, 0.0, 2.0]);
        let q = fake_quant_symmetric(&x, Precision::new(4));
        assert_eq!(q.data()[1], 0.0);
        assert!((q.data()[0] + 2.0).abs() < 1e-6);
        assert!((q.data()[2] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn higher_precision_lower_error() {
        let x = t((0..64).map(|i| (i as f32 * 0.37).sin()).collect());
        let mut prev = f32::INFINITY;
        for b in [2u8, 4, 6, 8, 12] {
            let q = fake_quant_symmetric(&x, Precision::new(b));
            let err: f32 = x.sub(&q).data().iter().map(|v| v * v).sum();
            assert!(err <= prev + 1e-9, "error should not grow with precision");
            prev = err;
        }
    }

    #[test]
    fn affine_covers_unsigned_range() {
        let x = t(vec![0.0, 0.1, 0.5, 1.0]);
        let (q, params) = fake_quant_affine(&x, Precision::new(8));
        assert!(params.scale > 0.0);
        // Endpoints representable.
        assert!((q.data()[0] - 0.0).abs() < 1e-6);
        assert!((q.data()[3] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn affine_slice_matches_tensor_version() {
        let x = t((0..48).map(|i| (i as f32 * 0.23).sin()).collect());
        for bits in [2u8, 4, 8, 16] {
            let p = Precision::new(bits);
            let (q, params) = fake_quant_affine(&x, p);
            let mut dst = vec![0.0f32; x.len()];
            let params_s = fake_quant_affine_slice(x.data(), &mut dst, p);
            assert_eq!(q.data(), &dst[..], "{} bits", bits);
            assert_eq!(params, params_s);
        }
    }

    #[test]
    fn symmetric_into_matches_tensor_version() {
        let x = t((0..40).map(|i| (i as f32 * 0.41).sin()).collect());
        for bits in [1u8, 2, 4, 8, 16] {
            let p = Precision::new(bits);
            let q = fake_quant_symmetric(&x, p);
            let mut dst = vec![0.0f32; x.len()];
            let s = fake_quant_symmetric_into(x.data(), &mut dst, p);
            assert_eq!(q.data(), &dst[..], "{} bits", bits);
            assert!(s > 0.0);
        }
        // All-zero input passes through with zero step.
        let z = vec![0.0f32; 4];
        let mut dst = vec![1.0f32; 4];
        assert_eq!(
            fake_quant_symmetric_into(&z, &mut dst, Precision::new(4)),
            0.0
        );
        assert_eq!(dst, z);
    }

    #[test]
    fn affine_handles_constant_tensor() {
        let x = t(vec![0.0, 0.0]);
        let (q, _) = fake_quant_affine(&x, Precision::new(4));
        assert_eq!(q.data(), x.data());
    }

    #[test]
    fn different_precisions_give_different_grids() {
        // The core RPS mechanism: the same tensor lands on different values
        // under different precisions.
        let x = t((0..32).map(|i| (i as f32 * 0.61).cos()).collect());
        let q4 = fake_quant_symmetric(&x, Precision::new(4));
        let q5 = fake_quant_symmetric(&x, Precision::new(5));
        assert_ne!(q4.data(), q5.data());
    }

    #[test]
    fn zero_tensor_passthrough() {
        let x = t(vec![0.0; 8]);
        let q = fake_quant_symmetric(&x, Precision::new(4));
        assert_eq!(q.data(), x.data());
    }

    #[test]
    fn quantizer_object_dispatch() {
        let x = t(vec![-1.0, 1.0]);
        let q = LinearQuantizer::symmetric(Precision::new(8));
        assert_eq!(q.precision().bits(), 8);
        assert_eq!(q.mode(), QuantMode::Symmetric);
        let y = q.quantize(&x);
        assert!((y.data()[0] + 1.0).abs() < 1e-6);
    }
}
