//! True integer storage and compute for inference-time quantization.
//!
//! The fake-quant path (see [`crate::quantizer`]) rounds values onto the
//! b-bit grid but keeps them in `f32`, which is what training and the
//! attack-side gradients need. At serving time under the `native` kernel
//! mode, quantized layers instead run *genuinely* quantized: weights are
//! stored as packed `i8`/`i4` integers with per-row scales, activations as
//! unsigned levels with a per-sample affine grid, and the matmul accumulates
//! exactly in `i32` through [`tia_tensor::simd`]'s widening dot products.
//!
//! The arithmetic identity this rests on: with activations
//! `x_j = s_a · (q_j − z)` and weight row `w_j = s_w · t_j`,
//!
//! ```text
//! Σ_j x_j · w_j  =  s_a · s_w · (Σ_j q_j t_j  −  z · Σ_j t_j)
//! ```
//!
//! so one integer dot product plus a precomputed weight-row sum replaces the
//! f32 inner loop. Integer accumulation is exact, making the result
//! independent of summation order — the dispatched backends are bitwise
//! identical to scalar by construction, and batched results are trivially
//! equal to per-sample results (each output element is one dot product).

use crate::Precision;
use tia_tensor::simd::SimdOps;
use tia_tensor::AlignedBytes;

/// Affine grid of one quantized activation slice, with the zero point as
/// the integer *level* it is (contrast [`crate::AffineParams`], which keeps
/// it in `f32` for the fake-quant path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelParams {
    /// Grid step.
    pub scale: f32,
    /// Level that represents the real value `0.0` (in `0..=levels`).
    pub zero_point: i32,
}

/// Quantizes `src` onto the same affine grid as
/// [`crate::fake_quant_affine_slice`], but emits the integer *levels*
/// instead of the dequantized values. `(level - zero_point) * scale`
/// reproduces the fake-quant output exactly.
///
/// # Panics
///
/// Panics if the slice lengths differ or `precision` exceeds 8 bits (levels
/// must fit a byte).
pub fn quantize_affine_levels(src: &[f32], dst: &mut [u8], precision: Precision) -> LevelParams {
    assert_eq!(
        src.len(),
        dst.len(),
        "quantize_affine_levels length mismatch"
    );
    let b = precision.bits() as u32;
    assert!(b <= 8, "activation levels beyond 8 bits do not fit a byte");
    let levels = ((1u64 << b) - 1) as f32;
    let lo = src.iter().copied().fold(f32::INFINITY, f32::min).min(0.0);
    let hi = src
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max)
        .max(0.0);
    if hi == lo {
        // All-zero slice (lo ≤ 0 ≤ hi forces lo = hi = 0): level 0 is 0.0.
        dst.fill(0);
        return LevelParams {
            scale: 1.0,
            zero_point: 0,
        };
    }
    let scale = (hi - lo) / levels;
    let zero_point = (-lo / scale).round();
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = (v / scale + zero_point).round().clamp(0.0, levels) as u8;
    }
    LevelParams {
        scale,
        zero_point: zero_point as i32,
    }
}

/// A weight matrix stored as true integers: `rows` rows of `k` symmetric
/// b-bit values with one scale per row, packed two-per-byte when `b ≤ 4`.
///
/// Row layout matches the f32 weight-matrix rows the layer would otherwise
/// multiply (`[out_features, in_features]` for linear, `[f, c·kh·kw]` for
/// im2col conv), so each output element is one contiguous dot product.
#[derive(Debug, Clone)]
pub struct QuantizedWeights {
    rows: usize,
    k: usize,
    bits: u8,
    /// Bytes per stored row: `k` (`i8`) or `ceil(k/2)` (packed `i4`).
    row_stride: usize,
    /// All rows, concatenated; 64-byte aligned for the SIMD dot kernels.
    data: AlignedBytes,
    /// Per-row symmetric grid step (`0.0` for an all-zero row).
    scales: Vec<f32>,
    /// Per-row integer sums `Σ_j t_j`, consumed by the zero-point
    /// correction in [`gemm_quant`].
    row_sums: Vec<i32>,
}

impl QuantizedWeights {
    /// Quantizes a row-major `rows x k` f32 matrix to symmetric `bits`-bit
    /// integers with per-row scales: `t = round(w / s)` with
    /// `s = max|row| / (2^{b-1} − 1)`.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ bits ≤ 8` and `w.len() == rows * k`.
    pub fn quantize_rows(w: &[f32], rows: usize, k: usize, bits: u8) -> Self {
        assert!((2..=8).contains(&bits), "integer path covers 2..=8 bits");
        assert_eq!(w.len(), rows * k, "quantize_rows shape mismatch");
        let sub_byte = bits <= 4;
        let row_stride = if sub_byte { k.div_ceil(2) } else { k };
        let qmax = ((1i32 << (bits - 1)) - 1) as f32;
        let mut data = AlignedBytes::zeroed(rows * row_stride);
        let mut scales = Vec::with_capacity(rows);
        let mut row_sums = Vec::with_capacity(rows);
        for r in 0..rows {
            let src = &w[r * k..(r + 1) * k];
            let drow = &mut data[r * row_stride..(r + 1) * row_stride];
            let amax = src.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            if amax == 0.0 {
                scales.push(0.0);
                row_sums.push(0);
                continue;
            }
            let s = amax / qmax;
            let mut sum = 0i32;
            for (j, &v) in src.iter().enumerate() {
                let t = (v / s).round().clamp(-qmax, qmax) as i32;
                sum += t;
                if sub_byte {
                    // Element 2i in the low nibble of byte i, 2i+1 in the
                    // high nibble (the layout `SimdOps::dot_u4i4` decodes).
                    let nib = (t & 0x0F) as u8;
                    if j % 2 == 0 {
                        drow[j / 2] |= nib;
                    } else {
                        drow[j / 2] |= nib << 4;
                    }
                } else {
                    drow[j] = (t & 0xFF) as u8;
                }
            }
            scales.push(s);
            row_sums.push(sum);
        }
        Self {
            rows,
            k,
            bits,
            row_stride,
            data,
            scales,
            row_sums,
        }
    }

    /// Number of weight rows (output features).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dot-product depth (input features).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Stored precision in bits.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Bytes of packed integer storage (capacity planning / tests).
    pub fn packed_len(&self) -> usize {
        self.data.len()
    }

    /// Per-row grid steps.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Dequantizes row `r` element `j` (test/debug helper).
    pub fn dequant_at(&self, r: usize, j: usize) -> f32 {
        let row = &self.data[r * self.row_stride..(r + 1) * self.row_stride];
        let t = if self.bits <= 4 {
            let nib = if j.is_multiple_of(2) {
                row[j / 2] & 0x0F
            } else {
                row[j / 2] >> 4
            };
            (nib ^ 8) as i32 - 8
        } else {
            (row[j] as i8) as i32
        };
        self.scales[r] * t as f32
    }
}

/// The one integer GEMM driver: `out[i][j] = s_a(i) · s_w(j) · (acc − z·Σt)
/// (+ bias[j])` over `m` activation rows of `k` levels against the `n = rows`
/// quantized weight rows.
///
/// `a_scales`/`a_zps` hold one affine grid per *group* of consecutive
/// activation rows (`m` must be a multiple of their length): linear layers
/// pass one grid per sample row, conv layers one grid per image covering all
/// its `oh·ow` patch rows. The dequantization expression lives here and only
/// here, so every layer and every backend agrees on it bit for bit.
///
/// # Panics
///
/// Panics (in debug builds) on shape mismatches.
// tia-lint: hot-path(begin)
#[allow(clippy::too_many_arguments)] // a GEMM signature is its operand list
pub fn gemm_quant(
    ops: &dyn SimdOps,
    m: usize,
    k: usize,
    a_levels: &[u8],
    a_scales: &[f32],
    a_zps: &[i32],
    w: &QuantizedWeights,
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    let n = w.rows;
    debug_assert_eq!(k, w.k, "depth mismatch");
    debug_assert_eq!(a_levels.len(), m * k);
    debug_assert_eq!(a_scales.len(), a_zps.len());
    debug_assert!(
        m == 0 || m.is_multiple_of(a_scales.len()),
        "rows must group evenly"
    );
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    let rows_per_group = m / a_scales.len();
    let sub_byte = w.bits <= 4;
    let wrow = |j: usize| &w.data[j * w.row_stride..(j + 1) * w.row_stride];
    for i in 0..m {
        let g = i / rows_per_group;
        let (s_a, z) = (a_scales[g], a_zps[g] as i64);
        let arow = &a_levels[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        // The dequantization expression — defined once, used everywhere.
        let deq = |acc: i32, j: usize| {
            let v = (s_a * w.scales[j]) * ((acc as i64 - z * w.row_sums[j] as i64) as f32);
            match bias {
                Some(b) => v + b[j],
                None => v,
            }
        };
        // Quad-row inner loop: one activation widening per four weight
        // rows. Exact i32 sums make the grouping bitwise-irrelevant.
        let mut j = 0;
        while j + 4 <= n {
            let q = if sub_byte {
                ops.dot_u4i4_x4(k, arow, wrow(j), wrow(j + 1), wrow(j + 2), wrow(j + 3))
            } else {
                ops.dot_u8i8_x4(arow, wrow(j), wrow(j + 1), wrow(j + 2), wrow(j + 3))
            };
            for (l, acc) in q.into_iter().enumerate() {
                orow[j + l] = deq(acc, j + l);
            }
            j += 4;
        }
        while j < n {
            let acc = if sub_byte {
                ops.dot_u4i4(k, arow, wrow(j))
            } else {
                ops.dot_u8i8(arow, wrow(j))
            };
            orow[j] = deq(acc, j);
            j += 1;
        }
    }
}
// tia-lint: hot-path(end)

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fake_quant_affine_slice;
    use tia_tensor::simd::{self, KernelMode};
    use tia_tensor::SeededRng;

    #[test]
    fn levels_reproduce_fake_quant_exactly() {
        let mut rng = SeededRng::new(21);
        for bits in [2u8, 4, 5, 8] {
            let p = Precision::new(bits);
            let x: Vec<f32> = (0..97).map(|_| rng.normal()).collect();
            let mut fq = vec![0.0f32; x.len()];
            fake_quant_affine_slice(&x, &mut fq, p);
            let mut lv = vec![0u8; x.len()];
            let params = quantize_affine_levels(&x, &mut lv, p);
            for (i, (&l, &f)) in lv.iter().zip(&fq).enumerate() {
                let deq = (l as i32 - params.zero_point) as f32 * params.scale;
                assert_eq!(deq.to_bits(), f.to_bits(), "bits={} elem {}", bits, i);
            }
        }
    }

    #[test]
    fn all_zero_slice_maps_to_level_zero() {
        let mut lv = vec![9u8; 5];
        let p = quantize_affine_levels(&[0.0; 5], &mut lv, Precision::new(4));
        assert_eq!(lv, vec![0; 5]);
        assert_eq!(p.zero_point, 0);
    }

    #[test]
    fn quantized_rows_roundtrip_within_half_step() {
        let mut rng = SeededRng::new(22);
        let (rows, k) = (6, 33);
        let w: Vec<f32> = (0..rows * k).map(|_| rng.normal()).collect();
        for bits in [2u8, 3, 4, 7, 8] {
            let q = QuantizedWeights::quantize_rows(&w, rows, k, bits);
            assert_eq!((q.rows(), q.k(), q.bits()), (rows, k, bits));
            let expect_stride = if bits <= 4 { k.div_ceil(2) } else { k };
            assert_eq!(q.packed_len(), rows * expect_stride);
            for r in 0..rows {
                let s = q.scales()[r];
                assert!(s > 0.0);
                for j in 0..k {
                    let err = (q.dequant_at(r, j) - w[r * k + j]).abs();
                    assert!(err <= s / 2.0 + 1e-6, "bits={} ({},{})", bits, r, j);
                }
            }
        }
    }

    #[test]
    fn all_zero_row_has_zero_scale_and_contributes_nothing() {
        let mut w = vec![0.5f32; 2 * 8];
        w[8..].fill(0.0);
        let q = QuantizedWeights::quantize_rows(&w, 2, 8, 8);
        assert_eq!(q.scales()[1], 0.0);
        let a = vec![200u8; 8];
        let mut out = vec![9.0f32; 2];
        gemm_quant(
            simd::backend(KernelMode::Scalar),
            1,
            8,
            &a,
            &[0.01],
            &[3],
            &q,
            None,
            &mut out,
        );
        assert_eq!(out[1], 0.0);
    }

    #[test]
    fn gemm_quant_matches_dequantized_reference_on_every_backend() {
        // The integer driver against a plain f32 matmul over the
        // *dequantized* operands: exact up to f32 rounding of the reference.
        let mut rng = SeededRng::new(23);
        for bits in [3u8, 4, 6, 8] {
            let (m, k, n) = (5, 37, 4);
            let x: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
            let w: Vec<f32> = (0..n * k).map(|_| rng.normal()).collect();
            let bias: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
            let q = QuantizedWeights::quantize_rows(&w, n, k, bits);
            let p = Precision::new(bits);
            let mut levels = vec![0u8; m * k];
            let mut scales = Vec::new();
            let mut zps = Vec::new();
            for i in 0..m {
                let lp = quantize_affine_levels(
                    &x[i * k..(i + 1) * k],
                    &mut levels[i * k..(i + 1) * k],
                    p,
                );
                scales.push(lp.scale);
                zps.push(lp.zero_point);
            }
            let mut want = vec![0.0f64; m * n];
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f64;
                    for t in 0..k {
                        let a = (levels[i * k + t] as i32 - zps[i]) as f64 * scales[i] as f64;
                        acc += a * q.dequant_at(j, t) as f64;
                    }
                    want[i * n + j] = acc + bias[j] as f64;
                }
            }
            let scalar = simd::backend(KernelMode::Scalar);
            let mut out_scalar = vec![0.0f32; m * n];
            gemm_quant(
                scalar,
                m,
                k,
                &levels,
                &scales,
                &zps,
                &q,
                Some(&bias),
                &mut out_scalar,
            );
            for (got, want) in out_scalar.iter().zip(&want) {
                assert!(
                    (*got as f64 - want).abs() < 1e-3,
                    "bits={}: {} vs {}",
                    bits,
                    got,
                    want
                );
            }
            // Dispatched backend must agree with scalar *bitwise*.
            let native = simd::backend(KernelMode::Native);
            let mut out_native = vec![0.0f32; m * n];
            gemm_quant(
                native,
                m,
                k,
                &levels,
                &scales,
                &zps,
                &q,
                Some(&bias),
                &mut out_native,
            );
            assert_eq!(
                out_native.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                out_scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "bits={}: {} diverged from scalar",
                bits,
                native.name()
            );
        }
    }

    #[test]
    fn grouped_scales_cover_multiple_rows() {
        // One affine grid covering all rows of an "image" (the conv case)
        // must equal calling the driver per group.
        let mut rng = SeededRng::new(24);
        let (groups, rows_per, k, n) = (2, 3, 16, 2);
        let m = groups * rows_per;
        let w: Vec<f32> = (0..n * k).map(|_| rng.normal()).collect();
        let q = QuantizedWeights::quantize_rows(&w, n, k, 8);
        let levels: Vec<u8> = (0..m * k).map(|_| rng.below(256) as u8).collect();
        let scales = [0.02f32, 0.05];
        let zps = [7i32, 130];
        let ops = simd::backend(KernelMode::Scalar);
        let mut all = vec![0.0f32; m * n];
        gemm_quant(ops, m, k, &levels, &scales, &zps, &q, None, &mut all);
        for g in 0..groups {
            let mut part = vec![0.0f32; rows_per * n];
            gemm_quant(
                ops,
                rows_per,
                k,
                &levels[g * rows_per * k..(g + 1) * rows_per * k],
                &scales[g..g + 1],
                &zps[g..g + 1],
                &q,
                None,
                &mut part,
            );
            assert_eq!(
                part.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                all[g * rows_per * n..(g + 1) * rows_per * n]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>()
            );
        }
    }
}
