//! Precision (bit-width) newtype and candidate precision sets.

use tia_tensor::SeededRng;

/// A quantization bit-width in `1..=16`.
///
/// The paper's RPS algorithm draws precisions from a candidate set (default
/// 4–16 bit); the accelerator supports 1–16 bit execution. A newtype keeps
/// bit-widths from being confused with other integers throughout the
/// workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Precision(u8);

impl Precision {
    /// Maximum supported bit-width.
    pub const MAX_BITS: u8 = 16;

    /// Creates a precision.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    pub fn new(bits: u8) -> Self {
        assert!(
            (1..=Self::MAX_BITS).contains(&bits),
            "precision must be 1..=16, got {}",
            bits
        );
        Self(bits)
    }

    /// The bit-width as an integer.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Number of representable levels, `2^bits`.
    pub fn levels(self) -> u32 {
        1u32 << self.0
    }

    /// Full precision sentinel used in tables ("no quantization").
    /// Represented as 16-bit quantization being close enough to fp32 for the
    /// small models in this reproduction; use `Option<Precision>` when true
    /// full precision must be distinguished.
    pub fn highest() -> Self {
        Self(Self::MAX_BITS)
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-bit", self.0)
    }
}

impl From<Precision> for u8 {
    fn from(p: Precision) -> u8 {
        p.0
    }
}

/// An ordered set of candidate precisions for RPS training/inference.
///
/// # Example
///
/// ```
/// use tia_quant::PrecisionSet;
/// let set = PrecisionSet::range(4, 8);
/// assert_eq!(set.len(), 5);
/// assert_eq!(set.iter().map(|p| p.bits()).collect::<Vec<_>>(), vec![4, 5, 6, 7, 8]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecisionSet {
    bits: Vec<Precision>,
}

impl PrecisionSet {
    /// Builds a set from explicit bit-widths (sorted, deduplicated).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty or any width is invalid.
    pub fn new(bits: &[u8]) -> Self {
        assert!(!bits.is_empty(), "precision set must be non-empty");
        let mut v: Vec<Precision> = bits.iter().map(|&b| Precision::new(b)).collect();
        v.sort_unstable();
        v.dedup();
        Self { bits: v }
    }

    /// Inclusive range `lo..=hi` of bit-widths.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is invalid.
    pub fn range(lo: u8, hi: u8) -> Self {
        assert!(lo <= hi, "range lo > hi");
        Self::new(&(lo..=hi).collect::<Vec<_>>())
    }

    /// The paper's default RPS candidate set: 4–16 bit.
    pub fn paper_default() -> Self {
        Self::range(4, 16)
    }

    /// Number of candidate precisions.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the set is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether `p` is a member.
    pub fn contains(&self, p: Precision) -> bool {
        self.bits.binary_search(&p).is_ok()
    }

    /// Iterates over precisions in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Precision> + '_ {
        self.bits.iter().copied()
    }

    /// Uniformly samples one precision (the RPS random switch).
    pub fn sample(&self, rng: &mut SeededRng) -> Precision {
        *rng.choose(&self.bits)
    }

    /// The live sub-range adaptive serving samples from at degradation
    /// `level` with an optional per-class `floor`: members at or above the
    /// floor, with the `level` *highest* dropped, always keeping at least
    /// one. Returned as `(start_index, count)` into the ascending member
    /// order, for use with [`PrecisionSet::sample_window`].
    ///
    /// Level 0 with no floor is the whole set; at the maximum useful level
    /// only the lowest eligible member remains. A floor above every member
    /// clamps to the single highest member (the closest the set can honor).
    pub fn degraded_window(&self, level: usize, floor: Option<Precision>) -> (usize, usize) {
        let lo = floor
            .map_or(0, |f| self.bits.partition_point(|&p| p < f))
            .min(self.bits.len() - 1);
        let avail = self.bits.len() - lo;
        (lo, avail - level.min(avail - 1))
    }

    /// Uniformly samples one member of the ascending index window
    /// `[start, start + count)`. Exactly one draw from `rng` — the same
    /// stream cost as [`PrecisionSet::sample`] — so narrowing the window
    /// never shifts the seeded stream position, only the value the draw
    /// maps to.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or reaches past the last member.
    pub fn sample_window(&self, rng: &mut SeededRng, window: (usize, usize)) -> Precision {
        let (start, count) = window;
        assert!(
            count > 0 && start + count <= self.bits.len(),
            "window {:?} out of bounds for a {}-member set",
            window,
            self.bits.len()
        );
        self.bits[start + rng.below(count)]
    }

    /// The lowest precision in the set.
    pub fn min(&self) -> Precision {
        self.bits[0]
    }

    /// The highest precision in the set.
    pub fn max(&self) -> Precision {
        *self.bits.last().expect("non-empty by construction")
    }

    /// Mean bit-width of the set (average cost of random switching).
    pub fn mean_bits(&self) -> f32 {
        self.bits.iter().map(|p| p.bits() as f32).sum::<f32>() / self.bits.len() as f32
    }
}

impl std::fmt::Display for PrecisionSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let lo = self.min().bits();
        let hi = self.max().bits();
        if self.len() as u8 == hi - lo + 1 {
            write!(f, "{}~{}-bit", lo, hi)
        } else {
            let parts: Vec<String> = self.bits.iter().map(|p| p.bits().to_string()).collect();
            write!(f, "{{{}}}-bit", parts.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_bounds() {
        assert_eq!(Precision::new(1).bits(), 1);
        assert_eq!(Precision::new(16).bits(), 16);
        assert_eq!(Precision::new(8).levels(), 256);
    }

    #[test]
    #[should_panic(expected = "precision must be 1..=16")]
    fn precision_zero_panics() {
        let _ = Precision::new(0);
    }

    #[test]
    #[should_panic(expected = "precision must be 1..=16")]
    fn precision_too_large_panics() {
        let _ = Precision::new(17);
    }

    #[test]
    fn set_dedup_and_sort() {
        let s = PrecisionSet::new(&[8, 4, 8, 6]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.min().bits(), 4);
        assert_eq!(s.max().bits(), 8);
    }

    #[test]
    fn paper_default_is_4_to_16() {
        let s = PrecisionSet::paper_default();
        assert_eq!(s.len(), 13);
        assert!(s.contains(Precision::new(4)));
        assert!(s.contains(Precision::new(16)));
        assert!(!s.contains(Precision::new(3)));
    }

    #[test]
    fn sampling_covers_the_set() {
        let s = PrecisionSet::range(4, 6);
        let mut rng = SeededRng::new(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.sample(&mut rng).bits());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn degraded_window_drops_highest_and_respects_floor() {
        let s = PrecisionSet::range(4, 8); // members 4,5,6,7,8
        assert_eq!(s.degraded_window(0, None), (0, 5));
        assert_eq!(s.degraded_window(2, None), (0, 3)); // 4,5,6
                                                        // Over-degrading keeps the single lowest member.
        assert_eq!(s.degraded_window(99, None), (0, 1));
        // A floor filters before the level drops members.
        let floor = Some(Precision::new(6));
        assert_eq!(s.degraded_window(0, floor), (2, 3)); // 6,7,8
        assert_eq!(s.degraded_window(2, floor), (2, 1)); // 6 alone
        assert_eq!(s.degraded_window(99, floor), (2, 1));
        // A floor above the whole set clamps to the highest member.
        assert_eq!(s.degraded_window(0, Some(Precision::new(12))), (4, 1));
    }

    #[test]
    fn sample_window_is_one_draw_and_stays_inside() {
        let s = PrecisionSet::range(4, 8);
        // Same seed, different windows: the next draw after each sample is
        // identical, i.e. the window never changes the stream position.
        let next_after = |window| {
            let mut rng = SeededRng::new(9);
            let p = s.sample_window(&mut rng, window);
            assert!(s.contains(p));
            rng.next_u64()
        };
        assert_eq!(next_after((0, 5)), next_after((2, 1)));
        // Window of one is deterministic regardless of the draw.
        let mut rng = SeededRng::new(10);
        assert_eq!(s.sample_window(&mut rng, (2, 1)).bits(), 6);
        // Samples stay inside the window.
        let mut rng = SeededRng::new(11);
        for _ in 0..50 {
            let b = s.sample_window(&mut rng, (1, 3)).bits();
            assert!((5..=7).contains(&b), "{b} escaped the window");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn sample_window_rejects_overrun() {
        let s = PrecisionSet::range(4, 8);
        let mut rng = SeededRng::new(1);
        let _ = s.sample_window(&mut rng, (3, 3));
    }

    #[test]
    fn mean_bits() {
        let s = PrecisionSet::new(&[4, 8]);
        assert!((s.mean_bits() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn display_forms() {
        assert_eq!(PrecisionSet::range(4, 8).to_string(), "4~8-bit");
        assert_eq!(PrecisionSet::new(&[4, 8]).to_string(), "{4,8}-bit");
    }
}
