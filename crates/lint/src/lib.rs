#![deny(missing_docs)]
//! `tia-lint` — the workspace's static invariant checker.
//!
//! The runtime test suite samples behavior; this crate checks *every line
//! of every PR* for the static footprint of the contracts the tests
//! sample: panic-freedom in the serving stack, bitwise determinism (no
//! ambient clock reads, no unordered-map iteration in scheduler code), the
//! zero-allocation hot path, justified atomic orderings, and error
//! hygiene. It is dependency-free by construction: a hand-written Rust
//! token scanner ([`lexer`]), a self-parsed `lint.toml` ([`config`]) and a
//! rule engine ([`rules`]).
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p tia-lint -- --check
//! ```

pub mod config;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::Config;
pub use rules::Diagnostic;

/// Result of linting a tree: findings plus how many files were scanned
/// (so callers can detect a mis-rooted scan that silently checked nothing).
#[derive(Debug)]
pub struct LintReport {
    /// All findings, sorted by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Recursively collects `.rs` files under the configured roots, skipping
/// the configured directory names, in sorted (deterministic) order.
pub fn collect_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for r in &cfg.roots {
        let dir = root.join(r);
        if dir.is_dir() {
            walk(&dir, cfg, &mut files)?;
        } else if dir.extension().is_some_and(|e| e == "rs") && dir.is_file() {
            files.push(dir);
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, cfg: &Config, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || cfg.skip_dirs.iter().any(|s| s.as_str() == name) {
                continue;
            }
            walk(&path, cfg, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `.rs` file under `root` using `cfg`.
pub fn lint_root(root: &Path, cfg: &Config) -> std::io::Result<LintReport> {
    let files = collect_files(root, cfg)?;
    let mut diagnostics = Vec::new();
    for path in &files {
        let src = std::fs::read_to_string(path)?;
        let rel = config::relative_slash(root, path);
        diagnostics.extend(rules::check_file(&rel, &src, cfg));
    }
    Ok(LintReport {
        diagnostics,
        files_scanned: files.len(),
    })
}

/// Lints the workspace rooted at `root` using its `lint.toml`.
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let cfg_path = root.join("lint.toml");
    let src = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = Config::parse(&src).map_err(|e| format!("{}: {e}", cfg_path.display()))?;
    lint_root(root, &cfg).map_err(|e| format!("scan failed: {e}"))
}
