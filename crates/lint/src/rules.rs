//! The rule engine: six invariant-contract rules plus the suppression and
//! hot-path-region annotation machinery.
//!
//! | rule | contract it guards |
//! |------|--------------------|
//! | `panic-freedom`   | the serving stack never panics on untrusted input |
//! | `determinism`     | same seed ⇒ same logits/schedule: no ambient clock reads outside the `serve::clock` seam, no `HashMap`/`HashSet` iteration in engine/scheduler code |
//! | `hot-path-alloc`  | the zero-allocation steady state: no allocating calls inside `tia-lint: hot-path(begin)`/`hot-path(end)` regions |
//! | `atomic-ordering` | every `Ordering::` site carries an `// ordering:` justification; `Relaxed` must not be used for cross-thread handoff |
//! | `error-hygiene`   | no `let _ =` silently discarding results in serve |
//! | `unsafe-safety`   | every `unsafe` site (block, fn, impl) carries a `// safety:` justification — the SIMD kernel layer's audit trail |
//!
//! Rules run on the lexer's masked code channel, skip `cfg(test)` regions,
//! and honor `// tia-lint: allow(<rule>, <reason>)` on the same line or on
//! a comment line directly above the offending code.

use crate::config::{in_scope, Config};
use crate::lexer::{lex, LexedFile, Line};

/// Rule identifier: panics banned in the serving stack.
pub const PANIC_FREEDOM: &str = "panic-freedom";
/// Rule identifier: ambient time and unordered-map iteration banned.
pub const DETERMINISM: &str = "determinism";
/// Rule identifier: allocation banned inside marked hot regions.
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Rule identifier: atomic orderings must be justified.
pub const ATOMIC_ORDERING: &str = "atomic-ordering";
/// Rule identifier: results must not be silently discarded.
pub const ERROR_HYGIENE: &str = "error-hygiene";
/// Rule identifier: `unsafe` sites must be justified.
pub const UNSAFE_SAFETY: &str = "unsafe-safety";
/// Pseudo-rule for malformed `tia-lint:` annotations themselves.
pub const ANNOTATION: &str = "annotation";

/// Every real (suppressible) rule.
pub const RULES: [&str; 6] = [
    PANIC_FREEDOM,
    DETERMINISM,
    HOT_PATH_ALLOC,
    ATOMIC_ORDERING,
    ERROR_HYGIENE,
    UNSAFE_SAFETY,
];

/// One finding: `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired (or [`ANNOTATION`] for malformed markers).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Per-file annotation state extracted from the comment channel.
struct Annotations {
    /// `allows[i]` = rules suppressed on line index `i`.
    allows: Vec<Vec<String>>,
    /// Hot-path regions as inclusive (start, end) line-index pairs.
    hot_regions: Vec<(usize, usize)>,
    /// Malformed-annotation findings.
    diags: Vec<Diagnostic>,
}

/// Lints one file's source text under the given config.
pub fn check_file(rel: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let ann = parse_annotations(rel, &lexed);
    let mut diags = ann.diags.clone();

    if in_scope(rel, &cfg.panic_freedom) {
        panic_freedom(rel, &lexed, &ann, &mut diags);
    }
    if in_scope(rel, &cfg.time_include) && !in_scope(rel, &cfg.time_seam) {
        determinism_time(rel, &lexed, &ann, &mut diags);
    }
    if in_scope(rel, &cfg.map_iter_include) {
        determinism_map_iter(rel, &lexed, &ann, &mut diags);
    }
    if in_scope(rel, &cfg.hot_path) {
        hot_path_alloc(rel, &lexed, &ann, &mut diags);
    }
    if in_scope(rel, &cfg.atomic_ordering) {
        atomic_ordering(rel, &lexed, &ann, &mut diags);
    }
    if in_scope(rel, &cfg.error_hygiene) {
        error_hygiene(rel, &lexed, &ann, &mut diags);
    }
    if in_scope(rel, &cfg.unsafe_safety) {
        unsafe_safety(rel, &lexed, &ann, &mut diags);
    }

    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

/// Extracts `tia-lint:` annotations (suppressions and hot-path markers).
fn parse_annotations(rel: &str, lexed: &LexedFile) -> Annotations {
    let n = lexed.lines.len();
    let mut raw: Vec<Vec<String>> = vec![Vec::new(); n];
    let mut hot_regions = Vec::new();
    let mut diags = Vec::new();
    let mut open: Option<usize> = None;

    for (i, line) in lexed.lines.iter().enumerate() {
        // Annotations must *lead* the comment (`// tia-lint: ...`) so that
        // prose documenting the syntax mid-sentence is never parsed.
        let lead = line.comment.trim_start_matches(['/', '!', '*', ' ']);
        let Some(body) = lead.strip_prefix("tia-lint:") else {
            continue;
        };
        let body = body.trim_start();
        let mut bad = |msg: String| {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: i + 1,
                rule: ANNOTATION,
                message: msg,
            });
        };
        if let Some(args) = body.strip_prefix("allow(") {
            let Some(close) = args.rfind(')') else {
                bad("unterminated `allow(` annotation".to_string());
                continue;
            };
            let inner = &args[..close];
            let Some((rule, reason)) = inner.split_once(',') else {
                bad(format!(
                    "`allow({inner})` is missing a reason: use allow(<rule>, <reason>)"
                ));
                continue;
            };
            let rule = rule.trim();
            let reason = reason.trim().trim_matches('"').trim();
            if !RULES.contains(&rule) {
                bad(format!("unknown rule `{rule}` in allow annotation"));
                continue;
            }
            if reason.is_empty() {
                bad(format!("allow({rule}) has an empty reason"));
                continue;
            }
            raw[i].push(rule.to_string());
        } else if body.starts_with("hot-path(begin") {
            if open.is_some() {
                bad("nested hot-path(begin) — close the previous region first".to_string());
            } else {
                open = Some(i);
            }
        } else if body.starts_with("hot-path(end") {
            match open.take() {
                Some(start) => hot_regions.push((start, i)),
                None => bad("hot-path(end) without a matching begin".to_string()),
            }
        } else {
            bad(format!(
                "unrecognized tia-lint annotation `{}`",
                body.chars().take(40).collect::<String>()
            ));
        }
    }
    if let Some(start) = open {
        diags.push(Diagnostic {
            file: rel.to_string(),
            line: start + 1,
            rule: ANNOTATION,
            message: "hot-path(begin) region is never closed".to_string(),
        });
    }

    // A suppression on a comment-only line applies to the next code line.
    let mut allows: Vec<Vec<String>> = vec![Vec::new(); n];
    for (i, rules) in raw.into_iter().enumerate() {
        if rules.is_empty() {
            continue;
        }
        let target = if lexed.lines[i].code.trim().is_empty() {
            (i + 1..n).find(|&j| !lexed.lines[j].code.trim().is_empty())
        } else {
            Some(i)
        };
        if let Some(t) = target {
            allows[t].extend(rules);
        }
    }

    Annotations {
        allows,
        hot_regions,
        diags,
    }
}

impl Annotations {
    fn allowed(&self, idx: usize, rule: &str) -> bool {
        self.allows[idx].iter().any(|r| r == rule)
    }

    fn in_hot_region(&self, idx: usize) -> bool {
        self.hot_regions.iter().any(|&(s, e)| idx > s && idx < e)
    }
}

/// Whether `code[pos..]` starts `token` at an identifier boundary.
fn token_at(code: &str, pos: usize) -> bool {
    pos == 0
        || !code[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c == '_' || c.is_alphanumeric())
}

/// Finds boundary-checked occurrences of `token` in `code`. Tokens that
/// start with a punctuation character (`.unwrap(`) are their own boundary.
fn has_token(code: &str, token: &str) -> bool {
    let needs_boundary = token
        .chars()
        .next()
        .is_some_and(|c| c == '_' || c.is_alphanumeric());
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let abs = start + pos;
        if !needs_boundary || token_at(code, abs) {
            return true;
        }
        start = abs + 1;
    }
    false
}

fn push(diags: &mut Vec<Diagnostic>, rel: &str, idx: usize, rule: &'static str, message: String) {
    diags.push(Diagnostic {
        file: rel.to_string(),
        line: idx + 1,
        rule,
        message,
    });
}

// ---------------------------------------------------------------- rules --

const PANIC_TOKENS: [&str; 6] = [
    ".unwrap(",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

fn panic_freedom(rel: &str, lexed: &LexedFile, ann: &Annotations, diags: &mut Vec<Diagnostic>) {
    for (i, line) in lexed.lines.iter().enumerate() {
        if line.in_test || ann.allowed(i, PANIC_FREEDOM) {
            continue;
        }
        for tok in PANIC_TOKENS {
            if has_token(&line.code, tok) {
                push(
                    diags,
                    rel,
                    i,
                    PANIC_FREEDOM,
                    format!(
                        "`{}` in panic-free serving code — return a typed error, \
                         or annotate the invariant: // tia-lint: allow(panic-freedom, <why>)",
                        tok.trim_end_matches('(')
                    ),
                );
                break;
            }
        }
    }
}

const TIME_TOKENS: [&str; 3] = ["Instant::now", "SystemTime", ".elapsed("];

fn determinism_time(rel: &str, lexed: &LexedFile, ann: &Annotations, diags: &mut Vec<Diagnostic>) {
    for (i, line) in lexed.lines.iter().enumerate() {
        if line.in_test || ann.allowed(i, DETERMINISM) {
            continue;
        }
        for tok in TIME_TOKENS {
            if has_token(&line.code, tok) {
                push(
                    diags,
                    rel,
                    i,
                    DETERMINISM,
                    format!(
                        "ambient wall-clock read `{}` outside the serve::clock seam — \
                         route time through serve::clock so tests can inject it",
                        tok.trim_end_matches('(')
                    ),
                );
                break;
            }
        }
    }
}

const MAP_ITER_METHODS: [&str; 8] = [
    "iter(",
    "iter_mut(",
    "keys(",
    "values(",
    "values_mut(",
    "drain(",
    "retain(",
    "into_iter(",
];

fn determinism_map_iter(
    rel: &str,
    lexed: &LexedFile,
    ann: &Annotations,
    diags: &mut Vec<Diagnostic>,
) {
    let names = collect_map_bindings(lexed);
    if names.is_empty() {
        return;
    }
    for (i, line) in lexed.lines.iter().enumerate() {
        if line.in_test || ann.allowed(i, DETERMINISM) {
            continue;
        }
        for name in &names {
            if iterates_map(&line.code, name) {
                push(
                    diags,
                    rel,
                    i,
                    DETERMINISM,
                    format!(
                        "iteration over HashMap/HashSet `{name}` in deterministic scope — \
                         iteration order is seed-dependent; use a BTreeMap/Vec or sort first"
                    ),
                );
                break;
            }
        }
    }
}

/// Collects identifiers bound to a `HashMap`/`HashSet` anywhere in the file
/// (lets, params, struct fields), conservatively file-global.
fn collect_map_bindings(lexed: &LexedFile) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for line in &lexed.lines {
        let code = &line.code;
        let mut start = 0;
        while let Some(pos) = code[start..].find("Hash") {
            let abs = start + pos;
            start = abs + 4;
            let rest = &code[abs..];
            if !(rest.starts_with("HashMap") || rest.starts_with("HashSet")) {
                continue;
            }
            if !token_at(code, abs) {
                continue;
            }
            if let Some(name) = binding_before(&code[..abs]) {
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
    }
    names
}

/// Given the code preceding a `HashMap`/`HashSet` token, extracts the bound
/// identifier from `name: HashMap<..>` / `name = HashMap::new()` forms.
fn binding_before(prefix: &str) -> Option<String> {
    let mut p = prefix.trim_end();
    for path in ["std::collections::", "collections::"] {
        if let Some(s) = p.strip_suffix(path) {
            p = s.trim_end();
        }
    }
    // Skip reference/mutability noise in type position: `&`, `&mut`.
    loop {
        let q = p.trim_end();
        if let Some(s) = q.strip_suffix("mut") {
            if s.ends_with([' ', '&']) || s.is_empty() {
                p = s;
                continue;
            }
        }
        if let Some(s) = q.strip_suffix('&') {
            p = s;
            continue;
        }
        p = q;
        break;
    }
    let binder = if let Some(s) = p.strip_suffix(':') {
        if s.ends_with(':') {
            return None; // `::HashMap` path remnant — not a binding
        }
        s
    } else if let Some(s) = p.strip_suffix('=') {
        s.trim_end()
    } else {
        return None;
    };
    let name: String = binder
        .chars()
        .rev()
        .take_while(|c| *c == '_' || c.is_alphanumeric())
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        None
    } else {
        Some(name)
    }
}

/// Whether `code` iterates the map named `name` (method call or `for .. in`).
fn iterates_map(code: &str, name: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(name) {
        let abs = start + pos;
        start = abs + name.len();
        if !token_at(code, abs) {
            continue;
        }
        let after = &code[abs + name.len()..];
        if after
            .chars()
            .next()
            .is_some_and(|c| c == '_' || c.is_alphanumeric())
        {
            continue; // longer identifier
        }
        if let Some(call) = after.strip_prefix('.') {
            if MAP_ITER_METHODS.iter().any(|m| call.starts_with(m)) {
                return true;
            }
        }
        // `for x in name` / `in &name` / `in &mut name`
        let mut before = code[..abs].trim_end();
        while let Some(s) = before.strip_suffix('&').or_else(|| {
            before
                .strip_suffix("mut")
                .filter(|s| s.ends_with([' ', '&']))
        }) {
            before = s.trim_end();
        }
        if before.ends_with("in") && token_at(before, before.len() - 2) {
            return true;
        }
    }
    false
}

const ALLOC_TOKENS: [&str; 12] = [
    "Vec::new",
    "vec![",
    "vec!(",
    ".to_vec(",
    "Box::new",
    "format!(",
    ".clone()",
    "String::new",
    ".to_string(",
    "with_capacity(",
    ".collect(",
    ".to_owned(",
];

fn hot_path_alloc(rel: &str, lexed: &LexedFile, ann: &Annotations, diags: &mut Vec<Diagnostic>) {
    for (i, line) in lexed.lines.iter().enumerate() {
        if !ann.in_hot_region(i) || line.in_test || ann.allowed(i, HOT_PATH_ALLOC) {
            continue;
        }
        for tok in ALLOC_TOKENS {
            if has_token(&line.code, tok) {
                push(
                    diags,
                    rel,
                    i,
                    HOT_PATH_ALLOC,
                    format!(
                        "allocating call `{}` inside a hot-path region — reuse a \
                         workspace buffer (see the zero-allocation contract)",
                        tok.trim_end_matches(['(', '['])
                    ),
                );
                break;
            }
        }
    }
}

fn atomic_ordering(rel: &str, lexed: &LexedFile, ann: &Annotations, diags: &mut Vec<Diagnostic>) {
    for (i, line) in lexed.lines.iter().enumerate() {
        if line.in_test || ann.allowed(i, ATOMIC_ORDERING) {
            continue;
        }
        if !has_atomic_ordering(&line.code) {
            continue;
        }
        match statement_justification(&lexed.lines, i, "ordering:") {
            None => push(
                diags,
                rel,
                i,
                ATOMIC_ORDERING,
                "`Ordering::` site without an `// ordering:` justification comment".to_string(),
            ),
            Some(just) => {
                if line.code.contains("Ordering::Relaxed")
                    && just.to_ascii_lowercase().contains("handoff")
                {
                    push(
                        diags,
                        rel,
                        i,
                        ATOMIC_ORDERING,
                        "Relaxed ordering justified as a cross-thread handoff — \
                         handoffs need Acquire/Release pairing"
                            .to_string(),
                    );
                }
            }
        }
    }
}

/// Whether the line uses `std::sync::atomic::Ordering::` (and not
/// `std::cmp::Ordering::`).
fn has_atomic_ordering(code: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find("Ordering::") {
        let abs = start + pos;
        start = abs + "Ordering::".len();
        if !token_at(code, abs) {
            continue;
        }
        if code[..abs].ends_with("cmp::") {
            continue;
        }
        return true;
    }
    false
}

/// Finds the comment carrying `marker` that justifies the site at line `i`:
/// on the line itself, on comment-only lines directly above, or on an
/// earlier line of the same (unterminated) statement. Shared by the
/// `atomic-ordering` (`ordering:`) and `unsafe-safety` (`safety:`) rules.
fn statement_justification(lines: &[Line], i: usize, marker: &str) -> Option<String> {
    let has = |l: &Line| l.comment.to_ascii_lowercase().contains(marker);
    if has(&lines[i]) {
        return Some(lines[i].comment.clone());
    }
    let mut j = i;
    while j > 0 {
        j -= 1;
        let l = &lines[j];
        if l.is_comment_only() {
            if has(l) {
                return Some(l.comment.clone());
            }
            continue;
        }
        if l.is_blank() {
            return None;
        }
        let t = l.code.trim_end();
        if t.ends_with(';') || t.ends_with('{') || t.ends_with('}') {
            return None;
        }
        if has(l) {
            return Some(l.comment.clone());
        }
    }
    None
}

fn unsafe_safety(rel: &str, lexed: &LexedFile, ann: &Annotations, diags: &mut Vec<Diagnostic>) {
    for (i, line) in lexed.lines.iter().enumerate() {
        if line.in_test || ann.allowed(i, UNSAFE_SAFETY) {
            continue;
        }
        if !has_unsafe_keyword(&line.code) {
            continue;
        }
        if statement_justification(&lexed.lines, i, "safety:").is_none() {
            push(
                diags,
                rel,
                i,
                UNSAFE_SAFETY,
                "`unsafe` without a `// safety:` justification comment — state \
                 the invariant that makes this sound"
                    .to_string(),
            );
        }
    }
}

/// Whether the line uses the `unsafe` *keyword* — bounded on both sides, so
/// identifiers like `unsafe_count` never match ([`has_token`] only checks
/// the left boundary, which suffices for tokens ending in punctuation).
fn has_unsafe_keyword(code: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find("unsafe") {
        let abs = start + pos;
        start = abs + "unsafe".len();
        if !token_at(code, abs) {
            continue;
        }
        let right_bounded = !code[abs + "unsafe".len()..]
            .chars()
            .next()
            .is_some_and(|c| c == '_' || c.is_alphanumeric());
        if right_bounded {
            return true;
        }
    }
    false
}

fn error_hygiene(rel: &str, lexed: &LexedFile, ann: &Annotations, diags: &mut Vec<Diagnostic>) {
    for (i, line) in lexed.lines.iter().enumerate() {
        if line.in_test || ann.allowed(i, ERROR_HYGIENE) {
            continue;
        }
        if discards_result(&line.code) {
            push(
                diags,
                rel,
                i,
                ERROR_HYGIENE,
                "`let _ =` silently discards a result — handle it, log it, or \
                 annotate why dropping is correct"
                    .to_string(),
            );
        }
    }
}

/// Detects `let _ =` / `let _:` discards (but not `let _name =`).
fn discards_result(code: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find("let _") {
        let abs = start + pos;
        start = abs + 5;
        if !token_at(code, abs) {
            continue;
        }
        let after = &code[abs + 5..];
        if after
            .chars()
            .next()
            .is_some_and(|c| c == '_' || c.is_alphanumeric())
        {
            continue; // `let _something`
        }
        if matches!(after.trim_start().chars().next(), Some('=') | Some(':')) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Diagnostic> {
        check_file("x.rs", src, &Config::all_rules_at("x.rs"))
    }

    fn rules_fired(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn panic_freedom_fires_and_suppresses() {
        let d = check("fn f() { x.unwrap(); }\n");
        assert_eq!(rules_fired(&d), vec![PANIC_FREEDOM]);
        let d = check("fn f() { x.unwrap(); } // tia-lint: allow(panic-freedom, checked above)\n");
        assert!(d.is_empty(), "{d:?}");
        let d = check("// tia-lint: allow(panic-freedom, invariant)\nfn f() { x.unwrap(); }\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn suppression_needs_reason_and_known_rule() {
        let d = check("x.unwrap(); // tia-lint: allow(panic-freedom)\n");
        assert!(d.iter().any(|d| d.rule == ANNOTATION));
        let d = check("x(); // tia-lint: allow(made-up-rule, because)\n");
        assert_eq!(rules_fired(&d), vec![ANNOTATION]);
    }

    #[test]
    fn test_code_is_exempt() {
        let d = check("#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); let _ = y(); }\n}\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn tokens_in_strings_and_comments_do_not_fire() {
        let d = check("// calling unwrap() here would panic\nlet s = \"x.unwrap()\";\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn determinism_time_fires() {
        let d = check("let t = Instant::now();\n");
        assert_eq!(rules_fired(&d), vec![DETERMINISM]);
        let d = check("let d = started.elapsed();\n");
        assert_eq!(rules_fired(&d), vec![DETERMINISM]);
    }

    #[test]
    fn map_iteration_is_flagged() {
        let src =
            "struct S { routes: HashMap<u64, R> }\nfn f(s: &S) { for k in s.routes.keys() { } }\n";
        let d = check(src);
        assert_eq!(rules_fired(&d), vec![DETERMINISM]);
        // Keyed access is fine.
        let d = check(
            "struct S { routes: HashMap<u64, R> }\nfn f(s: &mut S) { s.routes.remove(&1); }\n",
        );
        assert!(d.is_empty(), "{d:?}");
        // `for .. in &map` without an explicit method call.
        let d = check("let mut seen = HashSet::new();\nfor v in &seen { use_it(v); }\n");
        assert_eq!(rules_fired(&d), vec![DETERMINISM]);
    }

    #[test]
    fn hot_region_alloc_fires_only_inside_markers() {
        let src = "fn cold() { let v = Vec::new(); }\n// tia-lint: hot-path(begin)\nfn hot(w: &mut W) { let v = x.to_vec(); }\n// tia-lint: hot-path(end)\n";
        let d = check(src);
        assert_eq!(rules_fired(&d), vec![HOT_PATH_ALLOC]);
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn unclosed_hot_region_is_reported() {
        let d = check("// tia-lint: hot-path(begin)\nfn f() {}\n");
        assert_eq!(rules_fired(&d), vec![ANNOTATION]);
    }

    #[test]
    fn atomic_ordering_justifications() {
        let d = check("x.load(Ordering::Acquire);\n");
        assert_eq!(rules_fired(&d), vec![ATOMIC_ORDERING]);
        let d = check("x.load(Ordering::Acquire); // ordering: pairs with release store\n");
        assert!(d.is_empty(), "{d:?}");
        let d = check("// ordering: counter, no sync needed\nx.fetch_add(1, Ordering::Relaxed);\n");
        assert!(d.is_empty(), "{d:?}");
        // cmp::Ordering is not atomic.
        let d = check("let o = a.cmp(&b); if o == std::cmp::Ordering::Less { }\n");
        assert!(d.is_empty(), "{d:?}");
        // Relaxed justified as a handoff is itself a finding.
        let d = check("flag.store(true, Ordering::Relaxed); // ordering: handoff to reader\n");
        assert_eq!(rules_fired(&d), vec![ATOMIC_ORDERING]);
    }

    #[test]
    fn multiline_statement_shares_one_justification() {
        let src =
            "let v = cell\n    .swap(1, Ordering::AcqRel); // ordering: read-modify-write sync\n";
        let d = check(src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let d = check("let v = unsafe { load(p) };\n");
        assert_eq!(rules_fired(&d), vec![UNSAFE_SAFETY]);
        let d = check("let v = unsafe { load(p) }; // safety: p is in-bounds (asserted above)\n");
        assert!(d.is_empty(), "{d:?}");
        let d = check("// safety: caller proved the AVX2 probe passed\nunsafe fn kernel() {}\n");
        assert!(d.is_empty(), "{d:?}");
        // A justification earlier in the same multi-line statement counts.
        let d =
            check("let v = // safety: slice len checked by the packer\n    unsafe { sum(p) };\n");
        assert!(d.is_empty(), "{d:?}");
        // `unsafe` inside an identifier or a string must not fire.
        let d = check("let unsafe_count = 0;\nlet s = \"unsafe\";\n");
        assert!(d.is_empty(), "{d:?}");
        // Suppression works like every other rule.
        let d = check("unsafe { x() } // tia-lint: allow(unsafe-safety, audited in review)\n");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn error_hygiene_fires_but_not_on_named_underscores() {
        let d = check("let _ = send(msg);\n");
        assert_eq!(rules_fired(&d), vec![ERROR_HYGIENE]);
        let d = check("let _guard = lock();\n");
        assert!(d.is_empty(), "{d:?}");
    }
}
