#![deny(missing_docs)]
//! `tia-lint` command-line entry point.
//!
//! ```text
//! tia-lint [--check] [--root DIR]
//! ```
//!
//! Prints findings as `path:line: [rule] message`. With `--check` the exit
//! code is 1 when any finding exists (the CI gate); without it the run is
//! advisory and always exits 0 unless the scan itself fails.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("tia-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: tia-lint [--check] [--root DIR]");
                println!("  --check   exit non-zero when any finding exists (CI gate)");
                println!("  --root    workspace root holding lint.toml (default: cwd)");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("tia-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));

    let report = match tia_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tia-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        println!("{d}");
    }
    if report.diagnostics.is_empty() {
        println!(
            "tia-lint: clean — {} files scanned, 0 findings",
            report.files_scanned
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "tia-lint: {} finding(s) across {} file(s) ({} scanned)",
            report.diagnostics.len(),
            {
                let mut files: Vec<&str> =
                    report.diagnostics.iter().map(|d| d.file.as_str()).collect();
                files.dedup();
                files.len()
            },
            report.files_scanned
        );
        if check {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
