//! A line-oriented Rust token scanner.
//!
//! `tia-lint` rules match on *code*, never on the contents of comments or
//! string/char literals — a doc example mentioning `unwrap()` must not trip
//! the panic-freedom rule, and the lint's own token tables must not lint
//! themselves. This scanner separates every source line into two channels:
//!
//! * **code** — the line with comments and literal contents removed,
//! * **comment** — the concatenated text of every comment on the line
//!   (line, block and doc comments), which is where suppressions
//!   (`tia-lint: allow(...)`), hot-path region markers and `// ordering:`
//!   justifications live.
//!
//! It handles line comments, nested block comments, string / raw-string /
//! byte-string / char / byte-char literals (including escapes and the
//! char-literal-vs-lifetime ambiguity), and raw identifiers (`r#match`).
//! A post-pass marks every line inside a `#[cfg(test)]` or `#[test]`
//! item's brace block so rules can skip test code.

/// One scanned source line, split into its code and comment channels.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code with comments and literal contents stripped.
    pub code: String,
    /// The concatenated comment text on this line (may be empty).
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
}

impl Line {
    /// Whether the line carries no code at all (blank or comment-only).
    pub fn is_comment_only(&self) -> bool {
        self.code.trim().is_empty() && !self.comment.trim().is_empty()
    }

    /// Whether the line is entirely blank (no code, no comment).
    pub fn is_blank(&self) -> bool {
        self.code.trim().is_empty() && self.comment.trim().is_empty()
    }
}

/// A fully scanned source file: one [`Line`] per physical line.
#[derive(Debug)]
pub struct LexedFile {
    /// The scanned lines, in file order (index 0 = line 1).
    pub lines: Vec<Line>,
}

/// Scanner state across characters (and lines — block comments and string
/// literals may span several).
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

/// Scans `src` into per-line code/comment channels and marks test regions.
pub fn lex(src: &str) -> LexedFile {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    // The last character emitted to the code channel — used to tell a raw
    // string prefix (`r"`, `br#"`) from an identifier that happens to end
    // in `r` or `b`.
    let mut prev_code: Option<char> = None;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            lines.push(Line {
                code: std::mem::take(&mut code),
                comment: std::mem::take(&mut comment),
                in_test: false,
            });
            prev_code = None;
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !is_ident_char(prev_code) {
                    if let Some(consumed) = literal_prefix(&chars, i, &mut state) {
                        i += consumed;
                    } else {
                        code.push(c);
                        prev_code = Some(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal or lifetime? `'x'` and `'\n'` are
                    // literals; `'a` followed by anything but a closing
                    // quote is a lifetime (`&'a T`, `'static`).
                    let n1 = chars.get(i + 1).copied();
                    let n2 = chars.get(i + 2).copied();
                    let lifetime = matches!(n1, Some(ch) if ch == '_' || ch.is_alphanumeric())
                        && n2 != Some('\'');
                    if lifetime {
                        code.push('\'');
                        prev_code = Some('\'');
                        i += 1;
                    } else {
                        state = State::CharLit;
                        i += 1;
                    }
                } else {
                    code.push(c);
                    prev_code = Some(c);
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth <= 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' && matches!(chars.get(i + 1), Some(&e) if e != '\n') {
                    i += 2; // skip the escaped character (incl. \")
                } else if c == '"' {
                    state = State::Code;
                    prev_code = None; // a literal breaks identifier runs
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i, hashes) {
                    state = State::Code;
                    prev_code = None;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' && matches!(chars.get(i + 1), Some(&e) if e != '\n') {
                    i += 2;
                } else if c == '\'' {
                    state = State::Code;
                    prev_code = None;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !code.is_empty() || !comment.is_empty() {
        lines.push(Line {
            code,
            comment,
            in_test: false,
        });
    }
    mark_test_regions(&mut lines);
    LexedFile { lines }
}

fn is_ident_char(c: Option<char>) -> bool {
    matches!(c, Some(ch) if ch == '_' || ch.is_alphanumeric())
}

/// If position `i` (at an `r` or `b`) starts a raw/byte string or byte-char
/// literal, switches `state` accordingly and returns how many chars the
/// prefix (incl. the opening quote) consumed. Returns `None` for plain
/// identifiers and raw identifiers (`r#match`).
fn literal_prefix(chars: &[char], i: usize, state: &mut State) -> Option<usize> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        match chars.get(j) {
            Some('\'') => {
                *state = State::CharLit;
                return Some(j - i + 1);
            }
            Some('"') => {
                *state = State::Str;
                return Some(j - i + 1);
            }
            Some('r') => {} // fall through to the raw-string scan below
            _ => return None,
        }
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        *state = State::RawStr(hashes);
        Some(j - i + 1)
    } else {
        None // raw identifier (r#ident) or a bare `r`/`br` identifier
    }
}

/// Whether the `"` at `chars[i]` is followed by exactly the closing hashes.
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Marks every line inside a `#[cfg(test)]` or `#[test]` item's block.
///
/// From the attribute line, the first `{` in the code channel opens the
/// item's block; lines through its matching `}` are test lines. A `;`
/// before any `{` means a brace-less item (e.g. `#[cfg(test)] use ...;`).
fn mark_test_regions(lines: &mut [Line]) {
    let n = lines.len();
    let mut i = 0;
    while i < n {
        let code = &lines[i].code;
        if !(code.contains("#[cfg(test)]") || code.contains("#[test]")) {
            i += 1;
            continue;
        }
        let mut j = i;
        let mut depth = 0usize;
        let mut found_open = false;
        'scan: while j < n {
            for ch in lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        found_open = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if found_open && depth == 0 {
                            break 'scan;
                        }
                    }
                    ';' if !found_open => break 'scan,
                    _ => {}
                }
            }
            j += 1;
        }
        let end = j.min(n.saturating_sub(1));
        for line in lines.iter_mut().take(end + 1).skip(i) {
            line.in_test = true;
        }
        i = end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_split_from_code() {
        let f = lex("let x = 1; // trailing unwrap() mention\n/* block */ let y = 2;\n");
        assert_eq!(f.lines[0].code.trim(), "let x = 1;");
        assert!(f.lines[0].comment.contains("unwrap()"));
        assert!(!f.lines[0].code.contains("unwrap"));
        assert_eq!(f.lines[1].code.trim(), "let y = 2;");
        assert!(f.lines[1].comment.contains("block"));
    }

    #[test]
    fn string_contents_are_masked() {
        let f = lex("let s = \"panic!(boom) .unwrap()\"; call();\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(!f.lines[0].code.contains("panic"));
        assert!(f.lines[0].code.contains("call();"));
    }

    #[test]
    fn raw_strings_and_hashes_are_masked() {
        let f = lex("let s = r#\"has \"quotes\" and .unwrap()\"#; after();\n");
        assert!(!f.lines[0].code.contains("unwrap"));
        assert!(f.lines[0].code.contains("after();"));
        let f = lex("let s = br\"bytes .expect(\"; after();\n");
        assert!(!f.lines[0].code.contains("expect"));
        assert!(f.lines[0].code.contains("after();"));
    }

    #[test]
    fn raw_identifiers_stay_code() {
        let f = lex("let r#match = 1; use_it(r#match);\n");
        assert!(f.lines[0].code.contains("r#match"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) -> &'static str { x }\nlet c = 'x'; done();\n");
        assert!(f.lines[0].code.contains("&'a str"));
        assert!(f.lines[0].code.contains("'static"));
        assert!(!f.lines[1].code.contains('x'));
        assert!(f.lines[1].code.contains("done();"));
    }

    #[test]
    fn escaped_quotes_and_multiline_strings() {
        let f = lex("let s = \"a\\\"b\"; tail();\nlet t = \"line one\nline two\"; after();\n");
        assert!(f.lines[0].code.contains("tail();"));
        assert!(!f.lines[1].code.contains("line one"));
        assert!(!f.lines[2].code.contains("line two"));
        assert!(f.lines[2].code.contains("after();"));
    }

    #[test]
    fn nested_block_comments() {
        let f = lex("/* outer /* inner */ still comment */ code();\n");
        assert!(f.lines[0].code.contains("code();"));
        assert!(!f.lines[0].code.contains("still"));
        assert!(f.lines[0].comment.contains("inner"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = lex(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn braceless_cfg_test_item_marks_only_itself() {
        let src = "#[cfg(test)]\nuse helper::thing;\nfn live() { real(); }\n";
        let f = lex(src);
        assert!(f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn byte_char_literals_are_masked() {
        let f = lex("let b = b'x'; let q = b'\\''; tail();\n");
        assert!(f.lines[0].code.contains("tail();"));
        assert!(!f.lines[0].code.contains('x'));
    }
}
