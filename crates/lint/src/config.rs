//! Self-parsed `lint.toml` configuration.
//!
//! The workspace is dependency-free, so the lint reads its own minimal TOML
//! subset: `[section]` / `[section.sub]` headers, `key = "string"`,
//! `key = ["a", "b"]` string arrays, booleans and integers, with `#`
//! comments. That covers everything `lint.toml` needs — rule scopes, the
//! determinism clock seam, and scan roots — without a TOML crate.
//!
//! Scopes are path prefixes relative to the workspace root with forward
//! slashes (`crates/serve/src`); a file is in scope when its relative path
//! starts with any listed prefix.

use std::collections::BTreeMap;
use std::path::Path;

/// A parsed configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An array of quoted strings.
    List(Vec<String>),
    /// `true` / `false`.
    Bool(bool),
    /// A decimal integer.
    Int(i64),
}

/// The raw parsed file: section name → key → value.
///
/// Sections are stored by their full dotted header (`rules.panic-freedom`).
#[derive(Debug, Default)]
pub struct Toml {
    /// Parsed sections in deterministic (sorted) order.
    pub sections: BTreeMap<String, BTreeMap<String, Value>>,
}

impl Toml {
    /// Parses the TOML subset, reporting the first malformed line.
    pub fn parse(src: &str) -> Result<Toml, String> {
        let mut out = Toml::default();
        let mut section = String::new();
        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest
                    .strip_suffix(']')
                    .ok_or_else(|| format!("line {lineno}: unterminated section header"))?;
                section = name.trim().to_string();
                out.sections.entry(section.clone()).or_default();
                continue;
            }
            let (key, val) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
            let value = parse_value(val.trim()).map_err(|e| format!("line {lineno}: {e}"))?;
            out.sections
                .entry(section.clone())
                .or_default()
                .insert(key.trim().to_string(), value);
        }
        Ok(out)
    }

    /// Looks up a string-list value; a single string is promoted to a
    /// one-element list. Missing keys yield an empty list.
    pub fn list(&self, section: &str, key: &str) -> Vec<String> {
        match self.sections.get(section).and_then(|s| s.get(key)) {
            Some(Value::List(v)) => v.clone(),
            Some(Value::Str(s)) => vec![s.clone()],
            _ => Vec::new(),
        }
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in line.char_indices() {
        if escape {
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => escape = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> Result<Value, String> {
    if v == "true" {
        return Ok(Value::Bool(true));
    }
    if v == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(s) = unquote(v) {
        return Ok(Value::Str(s));
    }
    if let Some(body) = v.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or("unterminated array (arrays must be single-line)")?;
        let mut items = Vec::new();
        for part in split_array(body) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            items.push(unquote(part).ok_or("array items must be quoted strings")?);
        }
        return Ok(Value::List(items));
    }
    v.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unsupported value `{v}`"))
}

/// Splits an array body on commas outside quotes.
fn split_array(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escape = false;
    for c in body.chars() {
        if escape {
            cur.push(c);
            escape = false;
            continue;
        }
        match c {
            '\\' if in_str => {
                cur.push(c);
                escape = true;
            }
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => parts.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur);
    }
    parts
}

fn unquote(v: &str) -> Option<String> {
    let body = v.strip_prefix('"')?.strip_suffix('"')?;
    // Minimal escape handling: \" and \\ (enough for paths and reasons).
    let mut out = String::with_capacity(body.len());
    let mut escape = false;
    for c in body.chars() {
        if escape {
            out.push(c);
            escape = false;
        } else if c == '\\' {
            escape = true;
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// The lint's resolved configuration: scan roots and per-rule scopes.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (relative to the root) to scan for `.rs` files.
    pub roots: Vec<String>,
    /// Directory *names* skipped anywhere in the tree (`target`, `tests`...).
    pub skip_dirs: Vec<String>,
    /// Scope of the panic-freedom rule.
    pub panic_freedom: Vec<String>,
    /// Scope of the determinism rule's wall-clock ban.
    pub time_include: Vec<String>,
    /// Files exempt from the wall-clock ban (the clock seam itself).
    pub time_seam: Vec<String>,
    /// Scope of the determinism rule's map-iteration ban.
    pub map_iter_include: Vec<String>,
    /// Scope of the hot-path allocation rule (regions still need markers).
    pub hot_path: Vec<String>,
    /// Scope of the atomic-ordering justification rule.
    pub atomic_ordering: Vec<String>,
    /// Scope of the error-hygiene rule.
    pub error_hygiene: Vec<String>,
    /// Scope of the unsafe-safety justification rule.
    pub unsafe_safety: Vec<String>,
}

impl Config {
    /// Builds a [`Config`] from parsed TOML, applying defaults for the
    /// scan section.
    pub fn from_toml(t: &Toml) -> Config {
        let mut roots = t.list("scan", "roots");
        if roots.is_empty() {
            roots = vec!["crates".to_string(), "src".to_string()];
        }
        let mut skip = t.list("scan", "skip-dirs");
        if skip.is_empty() {
            skip = ["target", "tests", "benches", "examples", "fixtures"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        }
        Config {
            roots,
            skip_dirs: skip,
            panic_freedom: t.list("rules.panic-freedom", "include"),
            time_include: t.list("rules.determinism", "time-include"),
            time_seam: t.list("rules.determinism", "time-seam"),
            map_iter_include: t.list("rules.determinism", "map-iter-include"),
            hot_path: t.list("rules.hot-path-alloc", "include"),
            atomic_ordering: t.list("rules.atomic-ordering", "include"),
            error_hygiene: t.list("rules.error-hygiene", "include"),
            unsafe_safety: t.list("rules.unsafe-safety", "include"),
        }
    }

    /// Parses a `lint.toml` source string into a resolved configuration.
    pub fn parse(src: &str) -> Result<Config, String> {
        Ok(Config::from_toml(&Toml::parse(src)?))
    }

    /// A configuration that scopes *every* rule to the given path prefix —
    /// used by the fixture tests.
    pub fn all_rules_at(prefix: &str) -> Config {
        let p = vec![prefix.to_string()];
        Config {
            roots: p.clone(),
            skip_dirs: vec!["target".to_string()],
            panic_freedom: p.clone(),
            time_include: p.clone(),
            time_seam: Vec::new(),
            map_iter_include: p.clone(),
            hot_path: p.clone(),
            atomic_ordering: p.clone(),
            error_hygiene: p.clone(),
            unsafe_safety: p,
        }
    }
}

/// Whether `rel` (forward-slash relative path) falls under any prefix.
pub fn in_scope(rel: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| {
        rel == p.as_str()
            || rel
                .strip_prefix(p.as_str())
                .is_some_and(|rest| rest.starts_with('/'))
    })
}

/// Normalizes a path to forward slashes relative to `root`.
pub fn relative_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_strings_and_arrays() {
        let t = Toml::parse(
            "# top comment\n[scan]\nroots = [\"crates\", \"src\"] # trailing\n\n[rules.panic-freedom]\ninclude = \"crates/serve/src\"\nstrict = true\nmax = 3\n",
        )
        .unwrap();
        assert_eq!(t.list("scan", "roots"), vec!["crates", "src"]);
        assert_eq!(
            t.list("rules.panic-freedom", "include"),
            vec!["crates/serve/src"]
        );
        assert_eq!(
            t.sections["rules.panic-freedom"]["strict"],
            Value::Bool(true)
        );
        assert_eq!(t.sections["rules.panic-freedom"]["max"], Value::Int(3));
    }

    #[test]
    fn hash_inside_quotes_is_not_a_comment() {
        let t = Toml::parse("[s]\nk = \"a#b\"\n").unwrap();
        assert_eq!(t.list("s", "k"), vec!["a#b"]);
    }

    #[test]
    fn malformed_lines_are_reported_with_numbers() {
        let err = Toml::parse("[s]\nnonsense\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = Toml::parse("[unterminated\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn scope_matching_is_prefix_by_component() {
        let scopes = vec!["crates/serve/src".to_string()];
        assert!(in_scope("crates/serve/src/server.rs", &scopes));
        assert!(in_scope("crates/serve/src", &scopes));
        assert!(!in_scope("crates/serve/src2/server.rs", &scopes));
        assert!(!in_scope("crates/engine/src/engine.rs", &scopes));
    }
}
