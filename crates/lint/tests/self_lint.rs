//! The tool must be *true*: the workspace it ships in lints clean under its
//! own `lint.toml`. Any new violation (an unwrap in serve, a raw clock
//! read, an unjustified ordering…) fails this test before it reaches CI.

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = tia_lint::lint_workspace(&root)
        .unwrap_or_else(|e| panic!("workspace lint failed to run: {e}"));
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — is the scan mis-rooted?",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "the workspace must lint clean; findings:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
