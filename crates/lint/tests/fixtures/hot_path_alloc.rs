//! Fixture: the hot-path-alloc rule. Allocations are only flagged strictly
//! between `hot-path(begin)` and `hot-path(end)` markers.

fn cold_setup() -> Vec<u32> {
    let mut v = Vec::new(); // outside any region: allocations are fine
    v.push(1);
    let s = format!("{}", v.len());
    drop(s);
    v
}

// tia-lint: hot-path(begin)
fn steady_state(xs: &[u32], out: &mut Vec<u32>) {
    let copy = xs.to_vec(); //~ hot-path-alloc
    let boxed = Box::new(copy); //~ hot-path-alloc
    let label = format!("{}", boxed.len()); //~ hot-path-alloc
    let owned = label.clone(); //~ hot-path-alloc
    let gathered: Vec<u32> = xs.iter().copied().collect(); //~ hot-path-alloc
    drop(owned);
    out.extend_from_slice(&gathered);
    // tia-lint: allow(hot-path-alloc, one-time staging buffer reused for the whole run)
    let staged = gathered.to_vec();
    drop(staged);
}
// tia-lint: hot-path(end)

fn cold_again() -> String {
    String::new()
}
