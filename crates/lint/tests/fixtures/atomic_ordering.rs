//! Fixture: the atomic-ordering rule. Every `Ordering::` site needs an
//! `// ordering:` justification; Relaxed must not be justified as a handoff.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn unjustified(c: &AtomicU64, f: &AtomicBool) -> u64 {
    c.fetch_add(1, Ordering::SeqCst); //~ atomic-ordering
    f.store(true, Ordering::Release); //~ atomic-ordering
    c.load(Ordering::Acquire) //~ atomic-ordering
}

fn justified_inline(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed) // ordering: relaxed — monitoring snapshot, no synchronization.
}

fn justified_above(c: &AtomicU64) {
    // ordering: SeqCst — participates in the stop/drain handshake's total order.
    c.fetch_add(1, Ordering::SeqCst);
}

fn justified_multiline_statement(c: &AtomicU64) -> bool {
    // ordering: acquire — pairs with the Release store in justified_above's caller.
    c.compare_exchange(
        0,
        1,
        Ordering::Acquire,
        Ordering::Relaxed,
    )
    .is_ok()
}

fn relaxed_handoff_is_wrong(f: &AtomicBool) {
    // ordering: relaxed — cross-thread handoff of the finished buffer.
    f.store(true, Ordering::Relaxed); //~ atomic-ordering
}

fn cmp_ordering_is_not_atomic(a: u32, b: u32) -> std::cmp::Ordering {
    a.cmp(&b)
}

fn suppressed(c: &AtomicU64) -> u64 {
    // tia-lint: allow(atomic-ordering, fixture demonstrating the escape hatch)
    c.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unjustified_orderings_in_tests_are_fine() {
        let c = AtomicU64::new(0);
        assert_eq!(c.load(Ordering::SeqCst), 0);
    }
}
