//! Fixture: the panic-freedom rule. Tagged lines must produce exactly one
//! diagnostic of the named rule; untagged lines must stay silent.

fn violations(opt: Option<u32>) -> u32 {
    let a = opt.unwrap(); //~ panic-freedom
    let b = opt.expect("present"); //~ panic-freedom
    if a == 0 {
        panic!("zero"); //~ panic-freedom
    }
    match b {
        0 => unreachable!(), //~ panic-freedom
        1 => todo!(), //~ panic-freedom
        2 => unimplemented!(), //~ panic-freedom
        _ => b,
    }
}

fn suppressed(opt: Option<u32>) -> u32 {
    // tia-lint: allow(panic-freedom, the caller guarantees Some by construction)
    opt.unwrap()
}

fn suppressed_inline(opt: Option<u32>) -> u32 {
    opt.unwrap() // tia-lint: allow(panic-freedom, invariant: populated at startup)
}

/// Mentioning `.unwrap()` or `panic!(..)` in a doc comment is not a call.
fn masked_in_literals() -> &'static str {
    "a string containing .unwrap() and panic!(boom) is data, not code"
}

fn an_unwrap_phase_is_not_the_method(x: UnwrapPhase) -> UnwrapPhase {
    x
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_test_code_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
