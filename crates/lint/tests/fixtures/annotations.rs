//! Fixture: malformed `tia-lint:` annotations are themselves diagnosed.

// tia-lint: allow(unknown-rule, some reason) //~ annotation
fn a() {}

// tia-lint: allow(panic-freedom) //~ annotation
fn b() {}

// tia-lint: allow(panic-freedom, ) //~ annotation
fn c() {}

// tia-lint: frobnicate the widgets //~ annotation
fn d() {}

// tia-lint: hot-path(end) //~ annotation
fn e() {}

// tia-lint: hot-path(begin) //~ annotation
fn f() {}
