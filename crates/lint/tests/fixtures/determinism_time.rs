//! Fixture: the determinism rule's wall-clock ban.

use std::time::{Duration, Instant};

fn violations() -> Duration {
    let t = Instant::now(); //~ determinism
    let epoch = std::time::SystemTime::UNIX_EPOCH; //~ determinism
    drop(epoch);
    t.elapsed() //~ determinism
}

fn suppressed() -> Instant {
    // tia-lint: allow(determinism, this fixture documents the escape hatch)
    Instant::now()
}

/// Prose about `Instant::now()` and `SystemTime` is not a clock read.
fn masked() -> &'static str {
    "Instant::now() inside a string is data"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_reads_in_tests_are_fine() {
        let t = Instant::now();
        assert!(t.elapsed() >= Duration::ZERO);
    }
}
