//! Fixture: the determinism rule's HashMap/HashSet iteration ban.

use std::collections::{BTreeMap, HashMap, HashSet};

fn violations(routes: &HashMap<u64, u32>, seen: &mut HashSet<u64>) -> u64 {
    let mut sum = 0;
    for (k, v) in routes.iter() { //~ determinism
        sum += k + u64::from(*v);
    }
    for k in seen.drain() { //~ determinism
        sum += k;
    }
    let local: HashSet<u64> = HashSet::new();
    for k in &local { //~ determinism
        sum += k;
    }
    sum
}

fn keyed_lookup_is_fine(routes: &HashMap<u64, u32>) -> Option<u32> {
    routes.get(&7).copied()
}

fn ordered_maps_are_fine(stats: &BTreeMap<u64, u32>) -> u64 {
    stats.iter().map(|(k, _)| k).sum()
}

fn suppressed(routes: &HashMap<u64, u32>) -> u64 {
    // tia-lint: allow(determinism, the sum is order-independent)
    routes.values().map(|v| u64::from(*v)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_in_tests_is_fine() {
        let m: HashMap<u64, u32> = HashMap::new();
        assert_eq!(m.iter().count(), 0);
    }
}
