//! Fixture: the unsafe-safety rule. Every `unsafe` site — block, fn or
//! impl — needs a `// safety:` comment stating the invariant that makes it
//! sound, on the line, directly above, or earlier in the same statement.

unsafe fn unjustified_fn(p: *const f32) -> f32 { //~ unsafe-safety
    *p
}

fn unjustified_block(p: *const f32) -> f32 {
    unsafe { *p } //~ unsafe-safety
}

// safety: caller guarantees the AVX2 feature probe passed on this host.
unsafe fn justified_above(x: &[f32]) -> f32 {
    x[0]
}

fn justified_inline(p: *const f32) -> f32 {
    unsafe { *p } // safety: p points into the caller-pinned panel (len asserted).
}

fn justified_multiline_statement(p: *const f32, n: usize) -> &'static [f32] {
    // safety: the packer allocated exactly `n` elements at `p` and leaks them.
    unsafe {
        std::slice::from_raw_parts(p, n)
    }
}

fn identifier_and_string_are_not_sites() -> usize {
    let unsafe_count = 1;
    let s = "unsafe";
    unsafe_count + s.len()
}

fn suppressed(p: *const f32) -> f32 {
    // tia-lint: allow(unsafe-safety, fixture demonstrating the escape hatch)
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unsafe_in_tests_is_fine() {
        let v = [1.0f32];
        let x = unsafe { *v.as_ptr() };
        assert_eq!(x, 1.0);
    }
}
