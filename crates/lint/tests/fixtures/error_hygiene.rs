//! Fixture: the error-hygiene rule — no `let _ =` silent discards.

use std::fmt::Write as _;

fn violations(out: &mut String) {
    let _ = writeln!(out, "dropped error"); //~ error-hygiene
    let _: Result<(), std::fmt::Error> = writeln!(out, "typed discard"); //~ error-hygiene
}

fn named_placeholders_are_fine(pair: (u32, u32)) -> u32 {
    let (_unused, keep) = pair;
    let _ignored = keep + 1;
    keep
}

fn suppressed(out: &mut String) {
    // tia-lint: allow(error-hygiene, best-effort debug output, failure is acceptable)
    let _ = writeln!(out, "tolerated");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discards_in_tests_are_fine() {
        let mut s = String::new();
        let _ = writeln!(&mut s, "x");
        assert!(!s.is_empty());
    }
}
