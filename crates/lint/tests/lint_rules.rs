//! Fixture tests for every rule: each file under `tests/fixtures/` encodes
//! its expected diagnostics as trailing `//~ <rule>` comments. The harness
//! runs the full rule engine over the fixture (every rule scoped to the
//! fixture directory) and requires the `(line, rule)` sets to match
//! *exactly* — so tagged lines prove a rule fires, and untagged violations
//! with `tia-lint: allow(...)` suppressions prove suppressions work.

use std::path::Path;
use tia_lint::config::Config;
use tia_lint::rules;

/// Parses `//~ <rule>` expectation tags (one or more rules per tag).
fn expectations(src: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("//~") {
            for rule in line[pos + 3..].split_whitespace() {
                out.push((i + 1, rule.to_string()));
            }
        }
    }
    out
}

fn run_fixture(name: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    let cfg = Config::all_rules_at("fixtures");
    let diags = rules::check_file(&format!("fixtures/{name}"), &src, &cfg);
    let mut got: Vec<(usize, String)> =
        diags.iter().map(|d| (d.line, d.rule.to_string())).collect();
    got.sort();
    let mut want = expectations(&src);
    want.sort();
    assert_eq!(
        got,
        want,
        "fixture {name}: diagnostics do not match the //~ tags.\nreported:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn panic_freedom_fixture() {
    run_fixture("panic_freedom.rs");
}

#[test]
fn determinism_time_fixture() {
    run_fixture("determinism_time.rs");
}

#[test]
fn determinism_map_iter_fixture() {
    run_fixture("determinism_map_iter.rs");
}

#[test]
fn hot_path_alloc_fixture() {
    run_fixture("hot_path_alloc.rs");
}

#[test]
fn atomic_ordering_fixture() {
    run_fixture("atomic_ordering.rs");
}

#[test]
fn error_hygiene_fixture() {
    run_fixture("error_hygiene.rs");
}

#[test]
fn unsafe_safety_fixture() {
    run_fixture("unsafe_safety.rs");
}

#[test]
fn annotations_fixture() {
    run_fixture("annotations.rs");
}

#[test]
fn every_fixture_has_a_test_and_vice_versa() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures directory exists")
        .map(|e| {
            e.expect("readable entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec![
            "annotations.rs",
            "atomic_ordering.rs",
            "determinism_map_iter.rs",
            "determinism_time.rs",
            "error_hygiene.rs",
            "hot_path_alloc.rs",
            "panic_freedom.rs",
            "unsafe_safety.rs",
        ],
        "fixture set changed — add or remove the matching #[test]"
    );
}

/// A fixture scoped *outside* every rule's include list reports nothing,
/// whatever it contains.
#[test]
fn out_of_scope_files_are_ignored() {
    let cfg = Config::all_rules_at("fixtures");
    let src = "fn f(o: Option<u32>) -> u32 { o.unwrap() }\n";
    let diags = rules::check_file("elsewhere/f.rs", src, &cfg);
    assert!(diags.is_empty(), "{diags:?}");
}
