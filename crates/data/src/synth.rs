//! Synthetic dataset generation: smooth class prototypes + jittered samples.

use crate::{Dataset, DatasetProfile};
use tia_tensor::{SeededRng, Tensor};

/// Generates `(train, test)` datasets for a profile, deterministically from a
/// seed.
///
/// Each class gets a *prototype*: a smooth random field built by bilinearly
/// upsampling a coarse Gaussian grid (per channel). A sample is
/// `clamp(0.5 + contrast * prototype + shift + noise, 0, 1)`, where contrast
/// and shift are per-sample jitters. Train and test draw from the same class
/// distributions with independent noise.
pub fn generate(profile: &DatasetProfile, seed: u64) -> (Dataset, Dataset) {
    let mut rng = SeededRng::new(seed);
    let prototypes: Vec<Tensor> = (0..profile.classes)
        .map(|_| prototype(profile, &mut rng))
        .collect();
    let train = sample_split(profile, &prototypes, profile.train_size, &mut rng);
    let test = sample_split(profile, &prototypes, profile.test_size, &mut rng);
    (train, test)
}

fn prototype(p: &DatasetProfile, rng: &mut SeededRng) -> Tensor {
    let g = p.prototype_grid.max(2);
    let mut out = Tensor::zeros(&[p.channels, p.height, p.width]);
    for c in 0..p.channels {
        // Coarse grid of N(0,1), bilinearly upsampled to (height, width).
        let coarse: Vec<f32> = (0..g * g).map(|_| rng.normal()).collect();
        for y in 0..p.height {
            for x in 0..p.width {
                let fy = y as f32 / (p.height - 1).max(1) as f32 * (g - 1) as f32;
                let fx = x as f32 / (p.width - 1).max(1) as f32 * (g - 1) as f32;
                let (y0, x0) = (fy.floor() as usize, fx.floor() as usize);
                let (y1, x1) = ((y0 + 1).min(g - 1), (x0 + 1).min(g - 1));
                let (dy, dx) = (fy - y0 as f32, fx - x0 as f32);
                let v = coarse[y0 * g + x0] * (1.0 - dy) * (1.0 - dx)
                    + coarse[y0 * g + x1] * (1.0 - dy) * dx
                    + coarse[y1 * g + x0] * dy * (1.0 - dx)
                    + coarse[y1 * g + x1] * dy * dx;
                *out.at4_like_mut(c, y, x, p.height, p.width) = v;
            }
        }
    }
    // Normalize prototype energy so class margins are comparable.
    let norm = out.norm().max(1e-6);
    out.scale(1.0 / norm * (p.image_len() as f32).sqrt() * 0.14);
    out
}

trait At3Mut {
    fn at4_like_mut(&mut self, c: usize, y: usize, x: usize, h: usize, w: usize) -> &mut f32;
}

impl At3Mut for Tensor {
    fn at4_like_mut(&mut self, c: usize, y: usize, x: usize, h: usize, w: usize) -> &mut f32 {
        let idx = (c * h + y) * w + x;
        &mut self.data_mut()[idx]
    }
}

fn sample_split(
    p: &DatasetProfile,
    prototypes: &[Tensor],
    n: usize,
    rng: &mut SeededRng,
) -> Dataset {
    let mut images = Tensor::zeros(&[n, p.channels, p.height, p.width]);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % p.classes; // balanced classes
        let proto = &prototypes[class];
        let contrast = 0.8 + 0.4 * rng.uniform();
        let shift = 0.1 * (rng.uniform() - 0.5);
        let mut img = proto.map(|v| 0.5 + contrast * v + shift);
        for v in img.data_mut() {
            *v = (*v + p.noise_std * rng.normal()).clamp(0.0, 1.0);
        }
        images.set_axis0(i, &img);
        labels.push(class);
    }
    // Shuffle sample order so mini-batches are not class-periodic.
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut shuffled = Tensor::zeros(images.shape());
    let mut shuffled_labels = vec![0usize; n];
    for (dst, &src) in order.iter().enumerate() {
        shuffled.set_axis0(dst, &images.index_axis0(src));
        shuffled_labels[dst] = labels[src];
    }
    Dataset::new(shuffled, shuffled_labels, p.classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = DatasetProfile::tiny(3, 8, 24, 12);
        let (a, _) = generate(&p, 7);
        let (b, _) = generate(&p, 7);
        assert_eq!(a.images().data(), b.images().data());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let p = DatasetProfile::tiny(3, 8, 24, 12);
        let (a, _) = generate(&p, 1);
        let (b, _) = generate(&p, 2);
        assert_ne!(a.images().data(), b.images().data());
    }

    #[test]
    fn images_in_unit_range() {
        let p = DatasetProfile::cifar10_like().with_sizes(64, 32);
        let (train, test) = generate(&p, 3);
        for d in [train, test] {
            assert!(d.images().data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn classes_are_balanced() {
        let p = DatasetProfile::tiny(4, 8, 40, 20);
        let (train, _) = generate(&p, 5);
        let mut counts = vec![0usize; 4];
        for &l in train.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{:?}", counts);
    }

    #[test]
    fn classes_are_linearly_separable_enough() {
        // Nearest-prototype classification on clean data should beat chance
        // by a wide margin; otherwise training experiments are meaningless.
        let p = DatasetProfile::cifar10_like().with_sizes(200, 100);
        let (train, test) = generate(&p, 11);
        // Estimate class means from train.
        let dim = p.image_len();
        let mut means = vec![vec![0.0f32; dim]; p.classes];
        let mut counts = vec![0usize; p.classes];
        for i in 0..train.len() {
            let img = train.image(i);
            let l = train.labels()[i];
            for (m, &v) in means[l].iter_mut().zip(img.data()) {
                *m += v;
            }
            counts[l] += 1;
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c.max(1) as f32;
            }
        }
        let mut correct = 0;
        for i in 0..test.len() {
            let img = test.image(i);
            let mut best = (f32::INFINITY, 0);
            for (cl, m) in means.iter().enumerate() {
                let d: f32 = img
                    .data()
                    .iter()
                    .zip(m)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                if d < best.0 {
                    best = (d, cl);
                }
            }
            if best.1 == test.labels()[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        assert!(acc > 0.5, "nearest-mean accuracy too low: {}", acc);
    }
}
