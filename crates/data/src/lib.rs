//! # tia-data
//!
//! Synthetic image-classification datasets for the RPS experiments.
//!
//! The paper evaluates on CIFAR-10/100, SVHN and ImageNet. Those corpora are
//! not available to this reproduction, so we substitute *synthetic* datasets
//! that preserve what the experiments actually exercise:
//!
//! * images in `[0, 1]` with the same channel count (so `ε = 8/255`-style
//!   attack budgets carry over),
//! * a configurable number of classes and spatial resolution,
//! * classes that are separable but noisy — each class is a smooth random
//!   prototype field, and samples are contrast/shift-jittered noisy copies —
//!   so adversarial training has a real margin structure to robustify.
//!
//! The RPS mechanism under test (poor transferability of gradient attacks
//! across quantization precisions) is a property of quantized networks, not
//! of natural images, so the qualitative orderings reproduce on this
//! substrate. See DESIGN.md ("Substitutions").
//!
//! # Example
//!
//! ```
//! use tia_data::{DatasetProfile, generate};
//! let profile = DatasetProfile::tiny(4, 8, 64, 32);
//! let (train, test) = generate(&profile, 42);
//! assert_eq!(train.len(), 64);
//! assert_eq!(test.len(), 32);
//! assert!(train.images().data().iter().all(|&v| (0.0..=1.0).contains(&v)));
//! ```

#![deny(missing_docs)]

mod augment;
mod dataset;
mod profile;
mod synth;

pub use augment::Augment;
pub use dataset::{BatchIter, Dataset};
pub use profile::DatasetProfile;
pub use synth::generate;
