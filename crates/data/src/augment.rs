//! Training-time data augmentation: random crop with padding and random
//! horizontal flip — the standard CIFAR recipe used by the adversarial
//! training setups the paper follows (Madry et al. / Wong et al.).

use tia_tensor::{SeededRng, Tensor};

/// Augmentation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Augment {
    /// Zero padding before the random crop (4 for CIFAR).
    pub pad: usize,
    /// Whether to randomly flip horizontally.
    pub flip: bool,
}

impl Default for Augment {
    fn default() -> Self {
        Self { pad: 2, flip: true }
    }
}

impl Augment {
    /// Applies random crop+flip independently to every image of an NCHW
    /// batch, returning a batch of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not 4-D.
    pub fn apply(&self, x: &Tensor, rng: &mut SeededRng) -> Tensor {
        assert_eq!(x.shape().len(), 4, "Augment expects NCHW");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let mut out = Tensor::zeros(x.shape());
        for ni in 0..n {
            let dy = rng.below(2 * self.pad + 1) as isize - self.pad as isize;
            let dx = rng.below(2 * self.pad + 1) as isize - self.pad as isize;
            let flip = self.flip && rng.uniform() < 0.5;
            for ci in 0..c {
                for yi in 0..h {
                    for xi in 0..w {
                        let src_x = if flip { w - 1 - xi } else { xi };
                        let sy = yi as isize + dy;
                        let sx = src_x as isize + dx;
                        let v = if sy >= 0 && sy < h as isize && sx >= 0 && sx < w as isize {
                            x.at4(ni, ci, sy as usize, sx as usize)
                        } else {
                            0.0
                        };
                        *out.at4_mut(ni, ci, yi, xi) = v;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_when_disabled() {
        let aug = Augment {
            pad: 0,
            flip: false,
        };
        let mut rng = SeededRng::new(1);
        let x = Tensor::rand_uniform(&[2, 3, 4, 4], 0.0, 1.0, &mut rng);
        let y = aug.apply(&x, &mut rng);
        assert_eq!(x.data(), y.data());
    }

    #[test]
    fn preserves_shape_and_range() {
        let aug = Augment::default();
        let mut rng = SeededRng::new(2);
        let x = Tensor::rand_uniform(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let y = aug.apply(&x, &mut rng);
        assert_eq!(y.shape(), x.shape());
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn flip_only_reverses_rows() {
        let aug = Augment { pad: 0, flip: true };
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 1, 4]);
        // Flip is random; over many seeds both orders must appear.
        let mut saw_flipped = false;
        let mut saw_original = false;
        for seed in 0..32 {
            let mut rng = SeededRng::new(seed);
            let y = aug.apply(&x, &mut rng);
            if y.data() == [4.0, 3.0, 2.0, 1.0] {
                saw_flipped = true;
            }
            if y.data() == x.data() {
                saw_original = true;
            }
        }
        assert!(saw_flipped && saw_original);
    }

    #[test]
    fn crop_shifts_content() {
        let aug = Augment {
            pad: 2,
            flip: false,
        };
        let x = Tensor::ones(&[1, 1, 6, 6]);
        let mut changed = false;
        for seed in 0..16 {
            let mut rng = SeededRng::new(seed);
            let y = aug.apply(&x, &mut rng);
            if y.data().contains(&0.0) {
                changed = true; // padding entered the frame
            }
        }
        assert!(changed, "random crop should sometimes shift padding in");
    }
}
