//! Dataset profiles mirroring the corpora used in the paper's evaluation.

/// Configuration of a synthetic dataset.
///
/// Profiles named after the paper's corpora keep the class count and channel
/// structure of the original while shrinking spatial size and sample count to
/// laptop scale. The `difficulty` knobs (`noise_std`, `prototype_smoothness`)
/// are tuned so adversarially trained models land in a regime with a
/// meaningful natural-vs-robust accuracy gap, as in the paper's tables.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Human-readable name used in printed tables.
    pub name: String,
    /// Number of classes.
    pub classes: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Training samples.
    pub train_size: usize,
    /// Test samples.
    pub test_size: usize,
    /// Per-pixel Gaussian noise std added to each sample.
    pub noise_std: f32,
    /// Coarse-grid side for the class prototype field; smaller = smoother
    /// prototypes = easier classes.
    pub prototype_grid: usize,
}

impl DatasetProfile {
    /// CIFAR-10-like: 10 classes, 3 channels. Reduced to 16×16 spatial size.
    pub fn cifar10_like() -> Self {
        Self {
            name: "cifar10-like".into(),
            classes: 10,
            channels: 3,
            height: 16,
            width: 16,
            train_size: 512,
            test_size: 256,
            noise_std: 0.22,
            prototype_grid: 4,
        }
    }

    /// CIFAR-100-like: 100 classes in the original; 20 here to keep per-class
    /// sample counts meaningful at laptop scale (fine-grained regime).
    pub fn cifar100_like() -> Self {
        Self {
            name: "cifar100-like".into(),
            classes: 20,
            channels: 3,
            height: 16,
            width: 16,
            train_size: 800,
            test_size: 400,
            noise_std: 0.26,
            prototype_grid: 4,
        }
    }

    /// SVHN-like: 10 digit classes, higher-contrast prototypes (digits are
    /// more structured than natural images), slightly less noise.
    pub fn svhn_like() -> Self {
        Self {
            name: "svhn-like".into(),
            classes: 10,
            channels: 3,
            height: 16,
            width: 16,
            train_size: 512,
            test_size: 256,
            noise_std: 0.18,
            prototype_grid: 8,
        }
    }

    /// ImageNet-lite: larger images, more classes (the paper uses ε = 4/255
    /// here rather than 8/255).
    pub fn imagenet_lite() -> Self {
        Self {
            name: "imagenet-lite".into(),
            classes: 16,
            channels: 3,
            height: 24,
            width: 24,
            train_size: 640,
            test_size: 320,
            noise_std: 0.24,
            prototype_grid: 6,
        }
    }

    /// A tiny profile for unit tests.
    pub fn tiny(classes: usize, hw: usize, train: usize, test: usize) -> Self {
        Self {
            name: "tiny".into(),
            classes,
            channels: 3,
            height: hw,
            width: hw,
            train_size: train,
            test_size: test,
            noise_std: 0.15,
            prototype_grid: 4,
        }
    }

    /// Returns a copy scaled to the given train/test sizes (for fast tests or
    /// deeper experiment runs).
    pub fn with_sizes(mut self, train: usize, test: usize) -> Self {
        self.train_size = train;
        self.test_size = test;
        self
    }

    /// Elements per image.
    pub fn image_len(&self) -> usize {
        self.channels * self.height * self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_profiles_are_consistent() {
        for p in [
            DatasetProfile::cifar10_like(),
            DatasetProfile::cifar100_like(),
            DatasetProfile::svhn_like(),
            DatasetProfile::imagenet_lite(),
        ] {
            assert!(p.classes >= 2);
            assert!(p.train_size >= p.classes, "{}", p.name);
            assert_eq!(p.channels, 3);
            assert!(p.noise_std > 0.0);
        }
    }

    #[test]
    fn with_sizes_overrides() {
        let p = DatasetProfile::cifar10_like().with_sizes(100, 50);
        assert_eq!(p.train_size, 100);
        assert_eq!(p.test_size, 50);
    }

    #[test]
    fn image_len() {
        let p = DatasetProfile::tiny(2, 8, 4, 4);
        assert_eq!(p.image_len(), 3 * 8 * 8);
    }
}
