//! In-memory labelled image datasets and batch iteration.

use tia_tensor::{SeededRng, Tensor};

/// A labelled image dataset held in memory as one `[N, C, H, W]` tensor.
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Creates a dataset from an image tensor and labels.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not 4-D, lengths disagree, or a label is out of
    /// range.
    pub fn new(images: Tensor, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(images.shape().len(), 4, "images must be NCHW");
        assert_eq!(
            images.shape()[0],
            labels.len(),
            "image/label count mismatch"
        );
        assert!(labels.iter().all(|&l| l < classes), "label out of range");
        Self {
            images,
            labels,
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The full image tensor `[N, C, H, W]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The label vector.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Copies out the `i`-th image as `[C, H, W]`.
    pub fn image(&self, i: usize) -> Tensor {
        self.images.index_axis0(i)
    }

    /// Gathers a batch `[B, C, H, W]` plus labels for the given indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let items: Vec<Tensor> = indices.iter().map(|&i| self.image(i)).collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        (Tensor::stack(&items), labels)
    }

    /// Takes the first `n` samples as a new dataset (deterministic subset for
    /// fast evaluations).
    pub fn take(&self, n: usize) -> Dataset {
        let n = n.min(self.len());
        let idx: Vec<usize> = (0..n).collect();
        let (images, labels) = self.batch(&idx);
        Dataset::new(images, labels, self.classes)
    }

    /// Iterates over shuffled mini-batches.
    pub fn batches<'a>(&'a self, batch_size: usize, rng: &mut SeededRng) -> BatchIter<'a> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut order);
        BatchIter {
            dataset: self,
            order,
            batch_size: batch_size.max(1),
            cursor: 0,
        }
    }
}

/// Iterator over shuffled mini-batches of a [`Dataset`].
#[derive(Debug)]
pub struct BatchIter<'a> {
    dataset: &'a Dataset,
    order: Vec<usize>,
    batch_size: usize,
    cursor: usize,
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.order.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let idx = &self.order[self.cursor..end];
        self.cursor = end;
        Some(self.dataset.batch(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let images = Tensor::from_vec(
            (0..2 * 3 * 2 * 2).map(|v| v as f32).collect(),
            &[2, 3, 2, 2],
        );
        Dataset::new(images, vec![0, 1], 2)
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 2);
        assert_eq!(d.classes(), 2);
        assert_eq!(d.image(1).shape(), &[3, 2, 2]);
        assert_eq!(d.image(1).data()[0], 12.0);
    }

    #[test]
    fn batch_gathers_in_order() {
        let d = toy();
        let (x, y) = d.batch(&[1, 0]);
        assert_eq!(x.shape(), &[2, 3, 2, 2]);
        assert_eq!(y, vec![1, 0]);
        assert_eq!(x.index_axis0(0), d.image(1));
    }

    #[test]
    fn batches_cover_everything_once() {
        let d = toy();
        let mut rng = SeededRng::new(1);
        let mut seen = vec![];
        for (_, labels) in d.batches(1, &mut rng) {
            seen.extend(labels);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn take_subsets() {
        let d = toy();
        let s = d.take(1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.labels(), &[0]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_bounds_checked() {
        let images = Tensor::zeros(&[1, 1, 1, 1]);
        let _ = Dataset::new(images, vec![5], 2);
    }
}
