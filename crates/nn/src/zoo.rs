//! Model zoo: trainable (reduced-scale) versions of the paper's networks.
//!
//! The paper trains PreActResNet-18 and WideResNet-32 on CIFAR-scale data and
//! ResNet-50 on ImageNet. This reproduction keeps the *topologies*
//! (pre-activation residual stages, stride schedule, BN placement — including
//! switchable BN for RPS) but exposes width/depth scale knobs so adversarial
//! training runs at laptop scale. Full-size layer shapes for the accelerator
//! experiments live in [`crate::workload`] instead.
//!
//! ResNet-50's bottleneck blocks are substituted with pre-activation basic
//! blocks at matched depth-per-stage (see DESIGN.md): the RPS algorithm is
//! agnostic to the block flavour, and the accelerator side uses the true
//! bottleneck shape table.

use crate::bn::{BatchNorm2d, SwitchableBatchNorm};
use crate::conv_layer::Conv2d;
use crate::flatten::Flatten;
use crate::layer::Layer;
use crate::linear::Linear;
use crate::network::Network;
use crate::pool_layer::GlobalAvgPool;
use crate::residual::PreActBlock;
use crate::ReLU;
use tia_quant::PrecisionSet;
use tia_tensor::{Conv2dGeometry, SeededRng};

/// Which batch-norm flavour a model uses.
#[derive(Debug, Clone)]
pub enum BnKind {
    /// One set of statistics (standard adversarial training baselines).
    Plain,
    /// Switchable BN with one state per candidate precision (RPS training).
    Switchable(PrecisionSet),
}

impl BnKind {
    fn factory(&self) -> impl Fn(usize) -> Box<dyn Layer> + '_ {
        move |c: usize| -> Box<dyn Layer> {
            match self {
                BnKind::Plain => Box::new(BatchNorm2d::new(c)),
                BnKind::Switchable(set) => Box::new(SwitchableBatchNorm::new(c, set.clone())),
            }
        }
    }
}

/// Configuration of a pre-activation ResNet.
#[derive(Debug, Clone)]
pub struct PreActResNetConfig {
    /// Input channels (3 for the image profiles).
    pub in_channels: usize,
    /// Output classes.
    pub classes: usize,
    /// Width of the first stage; stage `i` has width `base_width << i`.
    pub base_width: usize,
    /// Residual blocks per stage.
    pub stage_blocks: Vec<usize>,
    /// Stride of the first block in each stage.
    pub stage_strides: Vec<usize>,
    /// BN flavour.
    pub bn: BnKind,
}

impl PreActResNetConfig {
    /// PreActResNet-18 topology (4 stages × 2 blocks) at a given width.
    pub fn resnet18(in_channels: usize, base_width: usize, classes: usize, bn: BnKind) -> Self {
        Self {
            in_channels,
            classes,
            base_width,
            stage_blocks: vec![2, 2, 2, 2],
            stage_strides: vec![1, 2, 2, 2],
            bn,
        }
    }

    /// WideResNet-32 topology (3 stages × 5 blocks, widened) at a given base
    /// width; the canonical WRN-32-10 corresponds to `base_width = 160`.
    pub fn wide_resnet32(
        in_channels: usize,
        base_width: usize,
        classes: usize,
        bn: BnKind,
    ) -> Self {
        Self {
            in_channels,
            classes,
            base_width,
            stage_blocks: vec![5, 5, 5],
            stage_strides: vec![1, 2, 2],
            bn,
        }
    }

    /// A reduced-depth WideResNet-32 (3 stages × 2 blocks) for fast tests.
    pub fn wide_resnet32_lite(
        in_channels: usize,
        base_width: usize,
        classes: usize,
        bn: BnKind,
    ) -> Self {
        Self {
            in_channels,
            classes,
            base_width,
            stage_blocks: vec![2, 2, 2],
            stage_strides: vec![1, 2, 2],
            bn,
        }
    }

    /// ResNet-50-lite: 4 stages with `[3,4,6,3]` basic blocks (bottleneck
    /// substitution documented in DESIGN.md).
    pub fn resnet50(in_channels: usize, base_width: usize, classes: usize, bn: BnKind) -> Self {
        Self {
            in_channels,
            classes,
            base_width,
            stage_blocks: vec![3, 4, 6, 3],
            stage_strides: vec![1, 2, 2, 2],
            bn,
        }
    }
}

/// Builds a pre-activation ResNet from a config.
///
/// # Panics
///
/// Panics if `stage_blocks` and `stage_strides` lengths differ or are empty.
pub fn preact_resnet(cfg: &PreActResNetConfig, rng: &mut SeededRng) -> Network {
    assert_eq!(
        cfg.stage_blocks.len(),
        cfg.stage_strides.len(),
        "stage_blocks/stage_strides mismatch"
    );
    assert!(!cfg.stage_blocks.is_empty(), "need at least one stage");
    let bn = cfg.bn.factory();
    let mut net = Network::new();
    // Stem: 3x3 conv, CIFAR-style (no max-pool).
    net.push(Box::new(Conv2d::new(
        Conv2dGeometry::new(cfg.in_channels, cfg.base_width, 3, 1, 1),
        false,
        rng,
    )));
    let mut ch = cfg.base_width;
    for (stage, (&blocks, &stride)) in cfg.stage_blocks.iter().zip(&cfg.stage_strides).enumerate() {
        let out_ch = cfg.base_width << stage;
        for b in 0..blocks {
            let s = if b == 0 { stride } else { 1 };
            net.push(Box::new(PreActBlock::new(ch, out_ch, s, &bn, rng)));
            ch = out_ch;
        }
    }
    // Head: BN + ReLU + GAP + Linear.
    net.push(bn(ch));
    net.push(Box::new(ReLU::new()));
    net.push(Box::new(GlobalAvgPool::new()));
    net.push(Box::new(Flatten::new()));
    net.push(Box::new(Linear::new(ch, cfg.classes, true, rng)));
    net
}

/// PreActResNet-18 with plain BN at a reduced width (trainable at laptop
/// scale). `base_width` 8–16 reproduces the paper's qualitative results.
pub fn preact_resnet18_lite(
    in_channels: usize,
    base_width: usize,
    classes: usize,
    rng: &mut SeededRng,
) -> Network {
    preact_resnet(
        &PreActResNetConfig::resnet18(in_channels, base_width, classes, BnKind::Plain),
        rng,
    )
}

/// PreActResNet-18 with switchable BN over `set` (for RPS training).
pub fn preact_resnet18_rps(
    in_channels: usize,
    base_width: usize,
    classes: usize,
    set: PrecisionSet,
    rng: &mut SeededRng,
) -> Network {
    preact_resnet(
        &PreActResNetConfig::resnet18(in_channels, base_width, classes, BnKind::Switchable(set)),
        rng,
    )
}

/// Reduced-depth WideResNet-32 with plain BN.
pub fn wide_resnet32_lite(
    in_channels: usize,
    base_width: usize,
    classes: usize,
    rng: &mut SeededRng,
) -> Network {
    preact_resnet(
        &PreActResNetConfig::wide_resnet32_lite(in_channels, base_width, classes, BnKind::Plain),
        rng,
    )
}

/// Reduced-depth WideResNet-32 with switchable BN over `set`.
pub fn wide_resnet32_rps(
    in_channels: usize,
    base_width: usize,
    classes: usize,
    set: PrecisionSet,
    rng: &mut SeededRng,
) -> Network {
    preact_resnet(
        &PreActResNetConfig::wide_resnet32_lite(
            in_channels,
            base_width,
            classes,
            BnKind::Switchable(set),
        ),
        rng,
    )
}

/// ResNet-50-lite with plain BN (ImageNet-lite experiments).
pub fn resnet50_lite(
    in_channels: usize,
    base_width: usize,
    classes: usize,
    rng: &mut SeededRng,
) -> Network {
    preact_resnet(
        &PreActResNetConfig::resnet50(in_channels, base_width, classes, BnKind::Plain),
        rng,
    )
}

/// ResNet-50-lite with switchable BN over `set`.
pub fn resnet50_rps(
    in_channels: usize,
    base_width: usize,
    classes: usize,
    set: PrecisionSet,
    rng: &mut SeededRng,
) -> Network {
    preact_resnet(
        &PreActResNetConfig::resnet50(in_channels, base_width, classes, BnKind::Switchable(set)),
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Mode;
    use tia_quant::Precision;
    use tia_tensor::Tensor;

    #[test]
    fn resnet18_lite_forward_shape() {
        let mut rng = SeededRng::new(1);
        let mut net = preact_resnet18_lite(3, 4, 10, &mut rng);
        let x = Tensor::rand_uniform(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn resnet18_has_expected_block_count() {
        let mut rng = SeededRng::new(2);
        let net = preact_resnet18_lite(3, 4, 10, &mut rng);
        // stem + 8 blocks + head(BN, ReLU, GAP, Flatten, Linear) = 14
        assert_eq!(net.depth(), 14);
    }

    #[test]
    fn wrn_lite_forward_and_backward() {
        let mut rng = SeededRng::new(3);
        let mut net = wide_resnet32_lite(3, 4, 10, &mut rng);
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let (loss, gx) = net.loss_and_input_grad(&x, &[1, 2], Mode::Train);
        assert!(loss.is_finite());
        assert_eq!(gx.shape(), x.shape());
        assert!(gx.norm() > 0.0);
    }

    #[test]
    fn rps_model_switches_precision_everywhere() {
        let mut rng = SeededRng::new(4);
        let set = PrecisionSet::new(&[4, 8]);
        let mut net = preact_resnet18_rps(3, 4, 10, set, &mut rng);
        let x = Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, &mut rng);
        net.set_precision(Some(Precision::new(4)));
        let y4 = net.forward(&x, Mode::Eval);
        net.set_precision(Some(Precision::new(8)));
        let y8 = net.forward(&x, Mode::Eval);
        assert!(y4.sub(&y8).norm() > 0.0, "different precisions must differ");
        assert_eq!(net.precision(), Some(Precision::new(8)));
    }

    #[test]
    fn generic_config_validates() {
        let cfg = PreActResNetConfig {
            in_channels: 3,
            classes: 2,
            base_width: 2,
            stage_blocks: vec![1],
            stage_strides: vec![1],
            bn: BnKind::Plain,
        };
        let mut rng = SeededRng::new(5);
        let mut net = preact_resnet(&cfg, &mut rng);
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 2]);
    }
}
