//! Batch normalization, plain and switchable (SBN, paper §2.4).

use crate::layer::{Layer, Mode, Param};
use tia_quant::{Precision, PrecisionSet};
use tia_tensor::{simd, AlignedBuf, Tensor, Workspace};

const BN_EPS: f32 = 1e-5;
const BN_MOMENTUM: f32 = 0.2;

/// One set of BN statistics + affine parameters.
#[derive(Debug, Clone)]
struct BnCore {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
}

impl BnCore {
    fn new(channels: usize) -> Self {
        Self {
            gamma: Param::new(Tensor::ones(&[channels]), false),
            beta: Param::new(Tensor::zeros(&[channels]), false),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
        }
    }
}

#[derive(Debug, Clone)]
struct BnCache {
    xhat: Tensor,
    inv_std: AlignedBuf,
    mode: Mode,
    count: usize, // N * H * W per channel
}

// tia-lint: hot-path(begin)
fn bn_forward(
    core: &mut BnCore,
    cache: &mut Option<BnCache>,
    x: &Tensor,
    mode: Mode,
    ws: &mut Workspace,
) -> Tensor {
    assert_eq!(x.shape().len(), 4, "BatchNorm expects NCHW");
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let count = n * h * w;
    // Recycle the previous forward's cache storage before building (or
    // skipping) this one.
    if let Some(old) = cache.take() {
        ws.recycle_tensor(old.xhat);
        ws.recycle(old.inv_std);
    }
    let hw = h * w;
    let mut out = ws.tensor_spare(x.shape());
    // In Infer mode the normalized activations are not retained — backward
    // is never coming, so the layer writes the output alone.
    let mut xhat = mode.caches_backward().then(|| ws.tensor_spare(x.shape()));
    let mut inv_stds = ws.take_zeroed(c);
    // The no-cache (Infer) rows dispatch to the SIMD backend; its `bn_row`
    // applies the operations in the exact order of the scalar expression
    // below, so every backend stays in the bitwise determinism tier.
    let ops = simd::backend(ws.kernel());
    // All loops walk the contiguous per-(image, channel) rows of NCHW
    // directly — same element order (hence bitwise-identical accumulation)
    // as an elementwise traversal, without per-element index arithmetic.
    #[allow(clippy::needless_range_loop)] // ci indexes x, stats and inv_stds together
    for ci in 0..c {
        let (mean, var) = match mode {
            Mode::Train => {
                let mut s = 0.0;
                for ni in 0..n {
                    for &v in &x.data()[(ni * c + ci) * hw..(ni * c + ci + 1) * hw] {
                        s += v;
                    }
                }
                let mean = s / count as f32;
                let mut v = 0.0;
                for ni in 0..n {
                    for &xv in &x.data()[(ni * c + ci) * hw..(ni * c + ci + 1) * hw] {
                        let d = xv - mean;
                        v += d * d;
                    }
                }
                let var = v / count as f32;
                core.running_mean.data_mut()[ci] =
                    (1.0 - BN_MOMENTUM) * core.running_mean.data()[ci] + BN_MOMENTUM * mean;
                core.running_var.data_mut()[ci] =
                    (1.0 - BN_MOMENTUM) * core.running_var.data()[ci] + BN_MOMENTUM * var;
                (mean, var)
            }
            Mode::Eval | Mode::Infer => (core.running_mean.data()[ci], core.running_var.data()[ci]),
        };
        let inv_std = 1.0 / (var + BN_EPS).sqrt();
        inv_stds[ci] = inv_std;
        let g = core.gamma.value.data()[ci];
        let b = core.beta.value.data()[ci];
        for ni in 0..n {
            let (rs, re) = ((ni * c + ci) * hw, (ni * c + ci + 1) * hw);
            let xrow = &x.data()[rs..re];
            match xhat.as_mut() {
                Some(xhat) => {
                    let xhrow = &mut xhat.data_mut()[rs..re];
                    let orow = &mut out.data_mut()[rs..re];
                    for ((xh, o), &xv) in xhrow.iter_mut().zip(orow.iter_mut()).zip(xrow) {
                        let v = (xv - mean) * inv_std;
                        *xh = v;
                        *o = g * v + b;
                    }
                }
                None => {
                    let orow = &mut out.data_mut()[rs..re];
                    ops.bn_row(xrow, orow, mean, inv_std, g, b);
                }
            }
        }
    }
    match xhat {
        Some(xhat) => {
            *cache = Some(BnCache {
                xhat,
                inv_std: inv_stds,
                mode,
                count,
            });
        }
        None => ws.recycle(inv_stds),
    }
    out
}
// tia-lint: hot-path(end)

fn bn_backward(
    core: &mut BnCore,
    cache: &Option<BnCache>,
    grad_out: &Tensor,
    ws: &mut Workspace,
) -> Tensor {
    let cache = cache.as_ref().expect("BatchNorm::backward before forward");
    let (n, c, h, w) = (
        grad_out.shape()[0],
        grad_out.shape()[1],
        grad_out.shape()[2],
        grad_out.shape()[3],
    );
    let hw = h * w;
    let mut grad_in = ws.tensor_spare(grad_out.shape());
    let m = cache.count as f32;
    // Contiguous-row traversal, same element order as the elementwise loops
    // (see bn_forward).
    for ci in 0..c {
        let g = core.gamma.value.data()[ci];
        let inv_std = cache.inv_std[ci];
        // Accumulate the two reductions.
        let mut sum_dy = 0.0;
        let mut sum_dy_xhat = 0.0;
        for ni in 0..n {
            let row = (ni * c + ci) * hw..(ni * c + ci + 1) * hw;
            for (&dy, &xh) in grad_out.data()[row.clone()]
                .iter()
                .zip(&cache.xhat.data()[row])
            {
                sum_dy += dy;
                sum_dy_xhat += dy * xh;
            }
        }
        core.gamma.grad.data_mut()[ci] += sum_dy_xhat;
        core.beta.grad.data_mut()[ci] += sum_dy;
        match cache.mode {
            Mode::Train => {
                for ni in 0..n {
                    let row = (ni * c + ci) * hw..(ni * c + ci + 1) * hw;
                    let dyrow = &grad_out.data()[row.clone()];
                    let xhrow = &cache.xhat.data()[row.clone()];
                    for ((o, &dy), &xh) in grad_in.data_mut()[row].iter_mut().zip(dyrow).zip(xhrow)
                    {
                        *o = g * inv_std * (dy - sum_dy / m - xh * sum_dy_xhat / m);
                    }
                }
            }
            Mode::Eval | Mode::Infer => {
                // Running statistics are constants outside training (an
                // Infer cache never exists, so that arm is unreachable).
                for ni in 0..n {
                    let row = (ni * c + ci) * hw..(ni * c + ci + 1) * hw;
                    let dyrow = &grad_out.data()[row.clone()];
                    for (o, &dy) in grad_in.data_mut()[row].iter_mut().zip(dyrow) {
                        *o = g * inv_std * dy;
                    }
                }
            }
        }
    }
    grad_in
}

/// Plain batch normalization over NCHW (one set of statistics).
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    core: BnCore,
    cache: Option<BnCache>,
}

impl BatchNorm2d {
    /// Creates a BN layer for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        Self {
            core: BnCore::new(channels),
            cache: None,
        }
    }

    /// The running `(mean, var)` statistics (for BN folding, §2.4).
    pub fn running_stats(&self) -> (Vec<f32>, Vec<f32>) {
        (
            self.core.running_mean.data().to_vec(),
            self.core.running_var.data().to_vec(),
        )
    }
}

impl Layer for BatchNorm2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward_ws(&mut self, x: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        bn_forward(&mut self.core, &mut self.cache, x, mode, ws)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        bn_backward(&mut self.core, &self.cache, grad_out, ws)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.core.gamma);
        f(&mut self.core.beta);
    }
}

/// Switchable batch normalization: independent statistics and affine
/// parameters per candidate precision (paper §2.4, following AdaBits /
/// Switchable Precision Networks).
///
/// `set_precision(Some(p))` activates the slot whose precision is nearest to
/// `p` (exact match for members of the candidate set); `set_precision(None)`
/// activates the highest-precision slot. During inference the extra
/// multiplication/addition of SBN can be folded into the linear quantizer's
/// scale factors and the layer bias (paper §2.4), so SBN costs the
/// accelerator nothing — the simulator side therefore models no extra
/// modules for it.
#[derive(Debug, Clone)]
pub struct SwitchableBatchNorm {
    states: Vec<BnCore>,
    set: PrecisionSet,
    active: usize,
    cache: Option<BnCache>,
}

impl SwitchableBatchNorm {
    /// Creates an SBN layer with one state per precision in `set`.
    pub fn new(channels: usize, set: PrecisionSet) -> Self {
        let states = (0..set.len()).map(|_| BnCore::new(channels)).collect();
        let active = set.len() - 1;
        Self {
            states,
            set,
            active,
            cache: None,
        }
    }

    /// The candidate precision set.
    pub fn precision_set(&self) -> &PrecisionSet {
        &self.set
    }

    /// Index of the currently active state.
    pub fn active_slot(&self) -> usize {
        self.active
    }

    /// The running `(mean, var)` statistics of the active slot (for BN
    /// folding into the active precision's quantizer scales, §2.4).
    pub fn running_stats(&self) -> (Vec<f32>, Vec<f32>) {
        let s = &self.states[self.active];
        (
            s.running_mean.data().to_vec(),
            s.running_var.data().to_vec(),
        )
    }

    fn slot_for(&self, p: Precision) -> usize {
        let mut best = 0;
        let mut best_d = u8::MAX;
        for (i, cand) in self.set.iter().enumerate() {
            let d = cand.bits().abs_diff(p.bits());
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

impl Layer for SwitchableBatchNorm {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward_ws(&mut self, x: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        bn_forward(&mut self.states[self.active], &mut self.cache, x, mode, ws)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        bn_backward(&mut self.states[self.active], &self.cache, grad_out, ws)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        // Visit all slots so the optimizer can apply decay/zero-grad
        // uniformly; only the active slot accumulates gradients.
        for s in &mut self.states {
            f(&mut s.gamma);
            f(&mut s.beta);
        }
    }

    fn set_precision(&mut self, p: Option<Precision>) {
        self.active = match p {
            Some(p) => self.slot_for(p),
            None => self.states.len() - 1,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_tensor::SeededRng;

    #[test]
    fn train_forward_normalizes() {
        let mut rng = SeededRng::new(1);
        let mut bn = BatchNorm2d::new(2);
        let x = Tensor::randn(&[4, 2, 3, 3], 3.0, &mut rng);
        let y = bn.forward(&x, Mode::Train);
        // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
        for c in 0..2 {
            let mut vals = vec![];
            for n in 0..4 {
                for h in 0..3 {
                    for w in 0..3 {
                        vals.push(y.at4(n, c, h, w));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {}", mean);
            assert!((var - 1.0).abs() < 1e-2, "var {}", var);
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut rng = SeededRng::new(2);
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::randn(&[8, 1, 2, 2], 1.0, &mut rng);
        // Burn in running stats.
        for _ in 0..50 {
            let _ = bn.forward(&x, Mode::Train);
        }
        let y_train = bn.forward(&x, Mode::Train);
        let y_eval = bn.forward(&x, Mode::Eval);
        // After burn-in they should be close.
        assert!(y_train.sub(&y_eval).abs_max() < 0.2);
    }

    #[test]
    fn train_backward_matches_finite_difference() {
        let mut rng = SeededRng::new(3);
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::randn(&[2, 1, 2, 2], 1.0, &mut rng);
        // Loss = sum(bn(x) * w) with fixed random w to break symmetry.
        let wvec = Tensor::randn(&[2, 1, 2, 2], 1.0, &mut rng);
        let y = bn.forward(&x, Mode::Train);
        let _ = y; // forward populates cache
        let gx = bn.backward(&wvec);
        let eps = 1e-3;
        for idx in [0usize, 3, 6] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp: f32 = bn.forward(&xp, Mode::Train).mul(&wvec).sum();
            let lm: f32 = bn.forward(&xm, Mode::Train).mul(&wvec).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 2e-2,
                "idx {}: {} vs {}",
                idx,
                fd,
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn sbn_keeps_independent_statistics() {
        let set = PrecisionSet::new(&[4, 8]);
        let mut sbn = SwitchableBatchNorm::new(1, set);
        let x_low = Tensor::full(&[2, 1, 2, 2], 5.0);
        let x_high = Tensor::full(&[2, 1, 2, 2], -5.0);
        sbn.set_precision(Some(Precision::new(4)));
        for _ in 0..20 {
            let _ = sbn.forward(&x_low, Mode::Train);
        }
        sbn.set_precision(Some(Precision::new(8)));
        for _ in 0..20 {
            let _ = sbn.forward(&x_high, Mode::Train);
        }
        // Running means must differ strongly between slots.
        let m4 = sbn.states[0].running_mean.data()[0];
        let m8 = sbn.states[1].running_mean.data()[0];
        assert!(m4 > 2.0, "slot-4 mean {}", m4);
        assert!(m8 < -2.0, "slot-8 mean {}", m8);
    }

    #[test]
    fn sbn_nearest_slot_selection() {
        let set = PrecisionSet::new(&[4, 8, 16]);
        let mut sbn = SwitchableBatchNorm::new(1, set);
        sbn.set_precision(Some(Precision::new(5)));
        assert_eq!(sbn.active_slot(), 0); // 5 is nearest 4
        sbn.set_precision(Some(Precision::new(7)));
        assert_eq!(sbn.active_slot(), 1); // 7 is nearest 8
        sbn.set_precision(None);
        assert_eq!(sbn.active_slot(), 2); // full precision -> highest
    }

    #[test]
    fn eval_backward_is_linear_scaling() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let _ = bn.forward(&x, Mode::Eval);
        let g = Tensor::ones(&[1, 1, 2, 2]);
        let gx = bn.backward(&g);
        // gamma=1, running_var=1 -> inv_std ~ 1, so gradient passes scaled ~1.
        for v in gx.data() {
            assert!((v - 1.0).abs() < 1e-3);
        }
    }
}
