//! Flatten layer bridging conv (NCHW) and linear ([N, F]) stages.

use crate::layer::{Layer, Mode, Param};
use tia_tensor::{Tensor, Workspace};

/// Flattens `[N, C, H, W]` (or `[N, C]`) to `[N, F]`; backward restores the
/// original shape.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self { input_shape: None }
    }
}

impl Layer for Flatten {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward_ws(&mut self, x: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        assert!(!x.shape().is_empty(), "Flatten expects batched input");
        let n = x.shape()[0];
        let f: usize = x.shape()[1..].iter().product();
        if mode.caches_backward() {
            // Reuse the shape buffer across forwards.
            let shape = self.input_shape.get_or_insert_with(Vec::new);
            shape.clear();
            shape.extend_from_slice(x.shape());
        } else {
            self.input_shape = None;
        }
        ws.tensor_copy(x, &[n, f])
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let shape = self
            .input_shape
            .as_deref()
            .expect("Flatten::backward before forward")
            .to_vec();
        ws.tensor_copy(grad_out, &shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut fl = Flatten::new();
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 3, 1, 2]);
        let y = fl.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 6]);
        let gx = fl.backward(&y);
        assert_eq!(gx.shape(), x.shape());
        assert_eq!(gx.data(), x.data());
    }
}
