//! Flatten layer bridging conv (NCHW) and linear ([N, F]) stages.

use crate::layer::{Layer, Mode, Param};
use tia_tensor::Tensor;

/// Flattens `[N, C, H, W]` (or `[N, C]`) to `[N, F]`; backward restores the
/// original shape.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self { input_shape: None }
    }
}

impl Layer for Flatten {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert!(!x.shape().is_empty(), "Flatten expects batched input");
        let n = x.shape()[0];
        let f: usize = x.shape()[1..].iter().product();
        self.input_shape = Some(x.shape().to_vec());
        x.reshape(&[n, f])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .input_shape
            .clone()
            .expect("Flatten::backward before forward");
        grad_out.reshape(&shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut fl = Flatten::new();
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[2, 3, 1, 2]);
        let y = fl.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 6]);
        let gx = fl.backward(&y);
        assert_eq!(gx.shape(), x.shape());
        assert_eq!(gx.data(), x.data());
    }
}
