//! The `Layer` trait, training mode, and learnable parameters.

use tia_quant::Precision;
use tia_tensor::{Tensor, Workspace};

/// Forward-pass mode: training (update BN batch stats, cache for backward),
/// evaluation (use running stats), or pure inference serving.
///
/// Note that adversarial example *generation* runs in `Eval` mode but still
/// needs backward passes for input gradients; layers therefore cache
/// backward state in `Train` *and* `Eval`. `Infer` is the serving engine's
/// mode: numerically identical to `Eval` (frozen statistics), but layers
/// skip every backward cache — no im2col column retention, no activation
/// masks — so steady-state serving touches no training-only state and
/// recycles every intermediate. Calling `backward` after an `Infer` forward
/// panics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: batch statistics, running-stat updates.
    Train,
    /// Evaluation: frozen running statistics, backward caches retained
    /// (attacks differentiate through eval-mode forwards).
    Eval,
    /// Inference serving: frozen running statistics, **no** backward caches.
    Infer,
}

impl Mode {
    /// Whether layers must retain what `backward` needs.
    pub fn caches_backward(self) -> bool {
        !matches!(self, Mode::Infer)
    }
}

/// A learnable parameter: value, gradient accumulator and SGD momentum
/// buffer.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value (the fp32 "master copy" in quantization-aware training).
    pub value: Tensor,
    /// Accumulated gradient.
    pub grad: Tensor,
    /// SGD momentum buffer.
    pub velocity: Tensor,
    /// Whether weight decay applies (true for weights, false for BN/bias).
    pub decay: bool,
}

impl Param {
    /// Creates a parameter with zeroed gradient and momentum.
    pub fn new(value: Tensor, decay: bool) -> Self {
        let grad = Tensor::zeros(value.shape());
        let velocity = Tensor::zeros(value.shape());
        Self {
            value,
            grad,
            velocity,
            decay,
        }
    }

    /// Zeroes the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.map_in_place(|_| 0.0);
    }
}

/// A differentiable network layer.
///
/// Layers own their parameters and backward caches. `forward` must be called
/// before `backward`; `backward` consumes the cache of the most recent
/// forward and *accumulates* parameter gradients (callers zero them between
/// optimizer steps).
///
/// `Send` is a supertrait so a `Network` (a `Vec<Box<dyn Layer>>`) can move
/// onto a worker thread of the sharded serving runtime; layers are plain
/// owned data, so every implementation satisfies it for free.
pub trait Layer: std::fmt::Debug + Send {
    /// Computes the layer output, caching whatever `backward` needs (unless
    /// `mode` is [`Mode::Infer`]). Convenience wrapper over
    /// [`Layer::forward_ws`] with a throwaway workspace — hot paths
    /// (`Network`, the serving engine) call `forward_ws` with a long-lived
    /// arena instead.
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        self.forward_ws(x, mode, &mut Workspace::new())
    }

    /// Computes the layer output with scratch (and the output tensor's
    /// storage) drawn from `ws`. The returned tensor is the caller's to
    /// recycle; everything else the layer takes from `ws` it returns before
    /// this call ends, so a warm workspace makes the call allocation-free.
    fn forward_ws(&mut self, x: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor;

    /// Propagates `grad_out` to the layer input, accumulating parameter
    /// gradients along the way. Convenience wrapper over
    /// [`Layer::backward_ws`] with a throwaway workspace.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called without a preceding `forward`
    /// (which is always the case after a [`Mode::Infer`] forward).
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_ws(grad_out, &mut Workspace::new())
    }

    /// [`Layer::backward`] with scratch drawn from `ws`; the returned input
    /// gradient is the caller's to recycle.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called without a preceding `forward`.
    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor;

    /// Visits every learnable parameter (used by optimizers and grad-zeroing).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Sets the execution precision: `Some(p)` fake-quantizes weights and
    /// activations at `p` bits; `None` runs full precision. Layers without
    /// quantized arithmetic ignore this, except switchable BN which selects
    /// its per-precision statistics.
    fn set_precision(&mut self, _p: Option<Precision>) {}

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }

    /// Clones the layer behind the trait object — what makes a trained
    /// `Network` replicable across the shards of the serving runtime.
    /// Implementations are one line: `Box::new(self.clone())`.
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_new_zeroes_buffers() {
        let p = Param::new(Tensor::ones(&[3]), true);
        assert_eq!(p.grad.data(), &[0.0, 0.0, 0.0]);
        assert_eq!(p.velocity.data(), &[0.0, 0.0, 0.0]);
        assert!(p.decay);
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new(Tensor::ones(&[2]), false);
        p.grad = Tensor::ones(&[2]);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }
}
