//! Batch-norm folding (paper §2.4).
//!
//! The paper notes that SBN adds *no* inference-time cost on the
//! accelerator: "the multiplication and addition operations of SBN can be
//! fused into the scale factors of linear quantizers and the model bias".
//! This module implements that fusion and proves (in tests) that the folded
//! affine transform is exactly the BN eval-mode forward, which is why the
//! simulator side models no extra modules for SBN.

use tia_tensor::Tensor;

const BN_EPS: f32 = 1e-5;

/// The per-channel affine `y = scale * x + bias` equivalent to a BN layer in
/// eval mode. `scale` multiplies into the linear quantizer's scale factor;
/// `bias` folds into the layer bias.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldedBn {
    /// Per-channel multiplier `gamma / sqrt(var + eps)`.
    pub scale: Vec<f32>,
    /// Per-channel offset `beta - gamma * mean / sqrt(var + eps)`.
    pub bias: Vec<f32>,
}

impl FoldedBn {
    /// Folds BN statistics/affine parameters into a per-channel affine.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length.
    pub fn fold(gamma: &[f32], beta: &[f32], running_mean: &[f32], running_var: &[f32]) -> Self {
        assert!(
            gamma.len() == beta.len()
                && beta.len() == running_mean.len()
                && running_mean.len() == running_var.len(),
            "BN parameter length mismatch"
        );
        let mut scale = Vec::with_capacity(gamma.len());
        let mut bias = Vec::with_capacity(gamma.len());
        for i in 0..gamma.len() {
            let inv_std = 1.0 / (running_var[i] + BN_EPS).sqrt();
            let s = gamma[i] * inv_std;
            scale.push(s);
            bias.push(beta[i] - s * running_mean[i]);
        }
        Self { scale, bias }
    }

    /// Applies the folded affine to an NCHW tensor (reference semantics for
    /// tests; on hardware this work disappears into the quantizer scales).
    ///
    /// # Panics
    ///
    /// Panics if the channel count disagrees.
    pub fn apply(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape().len(), 4, "FoldedBn::apply expects NCHW");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.scale.len(), "channel mismatch");
        let mut out = Tensor::zeros(x.shape());
        for ni in 0..n {
            for ci in 0..c {
                let (s, b) = (self.scale[ci], self.bias[ci]);
                for yi in 0..h {
                    for xi in 0..w {
                        *out.at4_mut(ni, ci, yi, xi) = s * x.at4(ni, ci, yi, xi) + b;
                    }
                }
            }
        }
        out
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.scale.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn::BatchNorm2d;
    use crate::layer::{Layer, Mode};
    use tia_tensor::SeededRng;

    #[test]
    fn folded_affine_matches_bn_eval_forward() {
        let mut rng = SeededRng::new(1);
        let mut bn = BatchNorm2d::new(3);
        // Burn in non-trivial running stats and random affine params.
        let x_train = Tensor::randn(&[8, 3, 4, 4], 2.0, &mut rng);
        for _ in 0..30 {
            let _ = bn.forward(&x_train, Mode::Train);
        }
        let mut params = vec![];
        bn.visit_params(&mut |p| params.push(p.value.clone()));
        // Randomize gamma/beta to break the identity case.
        bn.visit_params(&mut |p| {
            let noise = Tensor::randn(p.value.shape(), 0.3, &mut rng);
            p.value.add_assign(&noise);
        });
        let (gamma, beta, mean, var) = extract(&mut bn);
        let folded = FoldedBn::fold(&gamma, &beta, &mean, &var);
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        let y_bn = bn.forward(&x, Mode::Eval);
        let y_folded = folded.apply(&x);
        let err = y_bn.sub(&y_folded).abs_max();
        assert!(
            err < 1e-4,
            "folded BN must match eval BN exactly, err {}",
            err
        );
    }

    #[test]
    fn identity_bn_folds_to_identity() {
        let folded = FoldedBn::fold(&[1.0, 1.0], &[0.0, 0.0], &[0.0, 0.0], &[1.0, 1.0]);
        for s in &folded.scale {
            assert!((s - 1.0).abs() < 1e-3);
        }
        for b in &folded.bias {
            assert!(b.abs() < 1e-6);
        }
        assert_eq!(folded.channels(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fold_validates_lengths() {
        let _ = FoldedBn::fold(&[1.0], &[0.0, 0.0], &[0.0], &[1.0]);
    }

    fn extract(bn: &mut BatchNorm2d) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        // gamma and beta are the two visited params, in order.
        let mut vals = vec![];
        bn.visit_params(&mut |p| vals.push(p.value.data().to_vec()));
        let (gamma, beta) = (vals[0].clone(), vals[1].clone());
        let (mean, var) = bn.running_stats();
        (gamma, beta, mean, var)
    }
}
