//! Sequential network container.

use crate::layer::{Layer, Mode, Param};
use crate::loss::{cross_entropy, LossGrad};
use tia_quant::Precision;
use tia_tensor::{KernelMode, Tensor, Workspace};

/// A sequential network of layers (blocks are layers too).
///
/// Besides plain forward/backward, `Network` provides the two compound
/// operations the rest of the workspace is built on:
///
/// * [`Network::loss_and_input_grad`] — one forward + cross-entropy +
///   backward returning the gradient w.r.t. the *input*, the primitive for
///   every gradient-based adversarial attack, and
/// * [`Network::set_precision`] — the in-situ precision switch broadcast to
///   every quantization-aware layer and SBN.
///
/// The network owns a [`Workspace`] scratch arena threaded through every
/// layer's `forward_ws`/`backward_ws`; each intermediate activation is
/// recycled as soon as the next layer has consumed it, so a warm forward
/// pass at a seen shape/precision allocates nothing but the returned output
/// (and callers can hand even that back via [`Network::recycle`]). Cloning
/// a network — replicating a trained model across serving shards — clones
/// the layers but starts the replica with an empty workspace; each shard
/// warms its own.
#[derive(Debug, Default, Clone)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
    precision: Option<Precision>,
    ws: Workspace,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self {
            layers: Vec::new(),
            precision: None,
            ws: Workspace::new(),
        }
    }

    /// Returns an output tensor's storage to the network's scratch arena.
    /// Serving loops that discard logits after reading them call this to
    /// close the reuse cycle and make steady-state inference allocation-free.
    pub fn recycle(&mut self, t: Tensor) {
        self.ws.recycle_tensor(t);
    }

    /// Appends a layer (builder style).
    pub fn push(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers (blocks count as one).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Currently active execution precision (None = full precision).
    pub fn precision(&self) -> Option<Precision> {
        self.precision
    }

    /// The kernel dispatch mode of the network's workspace.
    pub fn kernel(&self) -> KernelMode {
        self.ws.kernel()
    }

    /// Sets the kernel dispatch mode threaded to every layer via the
    /// workspace. `KernelMode::Scalar` pins the bitwise reference kernels
    /// (and with them the f32 fake-quant inference path); `Native` enables
    /// the runtime-detected SIMD backend and the true-integer serving path.
    pub fn set_kernel(&mut self, k: KernelMode) {
        self.ws.set_kernel(k);
    }

    /// Runs the forward pass, returning logits. Intermediate activations
    /// live in (and return to) the network's workspace; the returned tensor
    /// is the caller's, ideally handed back via [`Network::recycle`].
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut iter = self.layers.iter_mut();
        let mut cur = match iter.next() {
            Some(first) => first.forward_ws(x, mode, &mut self.ws),
            None => return x.clone(),
        };
        for layer in iter {
            let next = layer.forward_ws(&cur, mode, &mut self.ws);
            self.ws.recycle_tensor(cur);
            cur = next;
        }
        cur
    }

    /// Backpropagates `grad_logits`, accumulating parameter gradients and
    /// returning the gradient w.r.t. the network input.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Tensor {
        let mut iter = self.layers.iter_mut().rev();
        let mut cur = match iter.next() {
            Some(last) => last.backward_ws(grad_logits, &mut self.ws),
            None => return grad_logits.clone(),
        };
        for layer in iter {
            let next = layer.backward_ws(&cur, &mut self.ws);
            self.ws.recycle_tensor(cur);
            cur = next;
        }
        cur
    }

    /// Forward + cross-entropy + backward; returns `(loss, d loss/d input)`.
    pub fn loss_and_input_grad(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        mode: Mode,
    ) -> (f32, Tensor) {
        let logits = self.forward(x, mode);
        let LossGrad { loss, grad } = cross_entropy(&logits, labels);
        let gx = self.backward(&grad);
        (loss, gx)
    }

    /// Forward in eval mode and count of correct top-1 predictions.
    pub fn correct_count(&mut self, x: &Tensor, labels: &[usize]) -> usize {
        let logits = self.forward(x, Mode::Eval);
        tia_tensor::count_top1_correct(&logits, labels)
    }

    /// Broadcasts an execution precision to every layer.
    pub fn set_precision(&mut self, p: Option<Precision>) {
        self.precision = p;
        for layer in &mut self.layers {
            layer.set_precision(p);
        }
    }

    /// Zeroes every parameter gradient.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Visits every parameter in the network.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Total scalar parameter count.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.value.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::act::ReLU;
    use crate::flatten::Flatten;
    use crate::linear::Linear;
    use tia_tensor::SeededRng;

    fn tiny_mlp(rng: &mut SeededRng) -> Network {
        let mut net = Network::new();
        net.push(Box::new(Flatten::new()));
        net.push(Box::new(Linear::new(8, 16, true, rng)));
        net.push(Box::new(ReLU::new()));
        net.push(Box::new(Linear::new(16, 3, true, rng)));
        net
    }

    #[test]
    fn forward_shape_and_param_count() {
        let mut rng = SeededRng::new(1);
        let mut net = tiny_mlp(&mut rng);
        let x = Tensor::randn(&[4, 2, 2, 2], 1.0, &mut rng);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[4, 3]);
        assert_eq!(net.param_count(), 8 * 16 + 16 + 16 * 3 + 3);
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = SeededRng::new(2);
        let mut net = tiny_mlp(&mut rng);
        let x = Tensor::randn(&[8, 2, 2, 2], 1.0, &mut rng);
        let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();
        let (loss0, _) = net.loss_and_input_grad(&x, &labels, Mode::Train);
        // A few plain gradient-descent steps.
        for _ in 0..30 {
            net.zero_grad();
            let _ = net.loss_and_input_grad(&x, &labels, Mode::Train);
            net.visit_params(&mut |p| {
                let g = p.grad.clone();
                p.value.axpy(-0.1, &g);
            });
        }
        net.zero_grad();
        let (loss1, _) = net.loss_and_input_grad(&x, &labels, Mode::Train);
        assert!(
            loss1 < loss0 * 0.8,
            "loss did not drop: {} -> {}",
            loss0,
            loss1
        );
    }

    #[test]
    fn input_grad_flows_to_input() {
        let mut rng = SeededRng::new(3);
        let mut net = tiny_mlp(&mut rng);
        let x = Tensor::randn(&[2, 2, 2, 2], 1.0, &mut rng);
        let (_, gx) = net.loss_and_input_grad(&x, &[0, 1], Mode::Eval);
        assert_eq!(gx.shape(), x.shape());
        assert!(gx.norm() > 0.0, "input gradient must be non-zero");
    }

    #[test]
    fn correct_count_bounds() {
        let mut rng = SeededRng::new(4);
        let mut net = tiny_mlp(&mut rng);
        let x = Tensor::randn(&[5, 2, 2, 2], 1.0, &mut rng);
        let labels = vec![0, 1, 2, 0, 1];
        let c = net.correct_count(&x, &labels);
        assert!(c <= 5);
    }
}
