//! Activation layers.

use crate::layer::{Layer, Mode, Param};
use tia_tensor::{Tensor, Workspace};

/// Rectified linear unit.
#[derive(Debug, Default, Clone)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self { mask: None }
    }
}

impl Layer for ReLU {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward_ws(&mut self, x: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        let mut out = ws.tensor_spare(x.shape());
        for (o, &v) in out.data_mut().iter_mut().zip(x.data()) {
            *o = v.max(0.0);
        }
        if mode.caches_backward() {
            // Reuse the mask buffer across forwards instead of reallocating.
            let mask = self.mask.get_or_insert_with(Vec::new);
            mask.clear();
            mask.extend(x.data().iter().map(|&v| v > 0.0));
        } else {
            self.mask = None;
        }
        out
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let mask = self.mask.as_ref().expect("ReLU::backward before forward");
        assert_eq!(mask.len(), grad_out.len(), "ReLU grad shape mismatch");
        let mut out = ws.tensor_spare(grad_out.shape());
        for ((o, &g), &m) in out.data_mut().iter_mut().zip(grad_out.data()).zip(mask) {
            *o = if m { g } else { 0.0 };
        }
        out
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clips_negatives() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        let y = r.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]);
        let _ = r.forward(&x, Mode::Train);
        let g = r.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]));
        assert_eq!(g.data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn zero_input_blocks_gradient() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![0.0], &[1]);
        let _ = r.forward(&x, Mode::Train);
        let g = r.backward(&Tensor::from_vec(vec![5.0], &[1]));
        assert_eq!(g.data(), &[0.0]);
    }
}
