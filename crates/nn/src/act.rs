//! Activation layers.

use crate::layer::{Layer, Mode, Param};
use tia_tensor::Tensor;

/// Rectified linear unit.
#[derive(Debug, Default, Clone)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self { mask: None }
    }
}

impl Layer for ReLU {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        let mask: Vec<bool> = x.data().iter().map(|&v| v > 0.0).collect();
        let out = x.map(|v| v.max(0.0));
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("ReLU::backward before forward");
        assert_eq!(mask.len(), grad_out.len(), "ReLU grad shape mismatch");
        let data = grad_out
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(data, grad_out.shape())
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clips_negatives() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        let y = r.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]);
        let _ = r.forward(&x, Mode::Train);
        let g = r.backward(&Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]));
        assert_eq!(g.data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn zero_input_blocks_gradient() {
        let mut r = ReLU::new();
        let x = Tensor::from_vec(vec![0.0], &[1]);
        let _ = r.forward(&x, Mode::Train);
        let g = r.backward(&Tensor::from_vec(vec![5.0], &[1]));
        assert_eq!(g.data(), &[0.0]);
    }
}
