//! Per-precision quantized + prepacked weight memoization, shared by the
//! quantization-aware layers ([`crate::Conv2d`], [`crate::Linear`]).
//!
//! The memo is what makes the paper's random precision switch ~free at
//! serving time: the first forward at a precision quantizes the fp32
//! master weights and packs them into GEMM panels (or, on the integer
//! serving path, into packed `i8`/`i4` rows); every later forward at that
//! precision is a linear-scan lookup over a handful of entries.
//! Invalidation is the owner's job: whenever `visit_params` hands out
//! `&mut Param` the master weights may change, so owners call
//! [`PackMemo::clear`] there.

use crate::layer::Mode;
use tia_quant::{Precision, QuantizedWeights};
use tia_tensor::simd::KernelMode;
use tia_tensor::{PackedMatrix, Tensor, Workspace};

/// One memo entry: the fake-quantized weight tensor (backward passes
/// multiply by it) and the same values prepacked for the forward GEMM.
#[derive(Debug, Clone)]
pub(crate) struct PackedWeight {
    /// Quantized (or raw fp32) weight matrix.
    pub wq: Tensor,
    /// The identical values as prepacked micro-kernel panels.
    pub packed: PackedMatrix,
}

/// A small per-precision memo (`None` = full precision). Linear scan — the
/// candidate set is a handful of precisions, and scan beats hashing at
/// that size while staying allocation-free on hits.
///
/// The fake-quant f32 entries and the true-integer entries are memoized
/// independently: a serving process on the integer path never builds f32
/// panels, and a training process never packs integers.
#[derive(Debug, Clone, Default)]
pub(crate) struct PackMemo {
    entries: Vec<(Option<Precision>, PackedWeight)>,
    ints: Vec<(Precision, QuantizedWeights)>,
}

impl PackMemo {
    /// Number of distinct memoized precisions across both memo kinds
    /// (tests/diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
            + self
                .ints
                .iter()
                .filter(|(p, _)| self.entries.iter().all(|(q, _)| *q != Some(*p)))
                .count()
    }

    /// The f32 entry for `p`, if present. Borrows only the memo, so owners
    /// can populate via [`PackMemo::entry_or_insert`] first and then hold
    /// this shared view alongside mutable borrows of their other fields.
    pub fn get(&self, p: Option<Precision>) -> Option<&PackedWeight> {
        self.entries.iter().find(|(q, _)| *q == p).map(|(_, w)| w)
    }

    /// The f32 entry for `p`, built via `build` on first use. The miss path
    /// allocates (the artifact is persistent); hits are free.
    pub fn entry_or_insert(
        &mut self,
        p: Option<Precision>,
        build: impl FnOnce() -> PackedWeight,
    ) -> &PackedWeight {
        if let Some(i) = self.entries.iter().position(|(q, _)| *q == p) {
            return &self.entries[i].1;
        }
        self.entries.push((p, build()));
        &self.entries.last().expect("just pushed").1
    }

    /// The integer entry for `p`, if present (same borrow discipline as
    /// [`PackMemo::get`]).
    pub fn get_int(&self, p: Precision) -> Option<&QuantizedWeights> {
        self.ints.iter().find(|(q, _)| *q == p).map(|(_, w)| w)
    }

    /// The integer entry for `p`, built via `build` on first use.
    pub fn int_entry_or_insert(
        &mut self,
        p: Precision,
        build: impl FnOnce() -> QuantizedWeights,
    ) -> &QuantizedWeights {
        if let Some(i) = self.ints.iter().position(|(q, _)| *q == p) {
            return &self.ints[i].1;
        }
        self.ints.push((p, build()));
        &self.ints.last().expect("just pushed").1
    }

    /// Drops every entry — called when the master weights may have changed.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.ints.clear();
    }
}

/// BLIS-style crossover depth for the integer kernels: below this
/// reduction length the per-dot fixed costs (dispatch, horizontal sum,
/// tail) outweigh the wider integer arithmetic and the dispatched f32
/// panels win, so shallow layers stay on the f32 path even under
/// `native`. Sub-byte dots pay a nibble decode per weight element on
/// top, so their crossover sits higher.
const INT_CROSSOVER_K: usize = 48;
const INT_CROSSOVER_K_SUB_BYTE: usize = 96;

/// Whether a forward call takes the true-integer serving path: inference
/// mode, `native` kernel dispatch, a precision whose levels fit the
/// byte-wide kernels, and a reduction depth `k` past the kernel's
/// crossover. Everything else (training, eval/attack passes, the pinned
/// `scalar` mode, >8-bit grids, shallow reductions) keeps the f32
/// fake-quant path — which is also why `TIA_KERNEL=scalar` reproduces
/// historical logits bit for bit. The choice is a pure function of the
/// layer shape, never of the batch, so batched ≡ per-sample bitwise
/// identity survives the selection.
pub(crate) fn integer_path(
    mode: Mode,
    ws: &Workspace,
    p: Option<Precision>,
    k: usize,
) -> Option<Precision> {
    match p {
        Some(prec)
            if mode == Mode::Infer
                && ws.kernel() == KernelMode::Native
                && (2..=8).contains(&prec.bits())
                && k >= if prec.bits() <= 4 {
                    INT_CROSSOVER_K_SUB_BYTE
                } else {
                    INT_CROSSOVER_K
                } =>
        {
            Some(prec)
        }
        _ => None,
    }
}
