//! Per-precision quantized + prepacked weight memoization, shared by the
//! quantization-aware layers ([`crate::Conv2d`], [`crate::Linear`]).
//!
//! The memo is what makes the paper's random precision switch ~free at
//! serving time: the first forward at a precision quantizes the fp32
//! master weights and packs them into GEMM panels; every later forward at
//! that precision is a linear-scan lookup over a handful of entries.
//! Invalidation is the owner's job: whenever `visit_params` hands out
//! `&mut Param` the master weights may change, so owners call
//! [`PackMemo::clear`] there.

use tia_quant::Precision;
use tia_tensor::{PackedMatrix, Tensor};

/// One memo entry: the fake-quantized weight tensor (backward passes
/// multiply by it) and the same values prepacked for the forward GEMM.
#[derive(Debug, Clone)]
pub(crate) struct PackedWeight {
    /// Quantized (or raw fp32) weight matrix.
    pub wq: Tensor,
    /// The identical values as prepacked micro-kernel panels.
    pub packed: PackedMatrix,
}

/// A small per-precision memo (`None` = full precision). Linear scan — the
/// candidate set is a handful of precisions, and scan beats hashing at
/// that size while staying allocation-free on hits.
#[derive(Debug, Clone, Default)]
pub(crate) struct PackMemo {
    entries: Vec<(Option<Precision>, PackedWeight)>,
}

impl PackMemo {
    /// Number of live entries (tests/diagnostics).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The entry for `p`, if present. Borrows only the memo, so owners can
    /// populate via [`PackMemo::entry_or_insert`] first and then hold this
    /// shared view alongside mutable borrows of their other fields.
    pub fn get(&self, p: Option<Precision>) -> Option<&PackedWeight> {
        self.entries.iter().find(|(q, _)| *q == p).map(|(_, w)| w)
    }

    /// The entry for `p`, built via `build` on first use. The miss path
    /// allocates (the artifact is persistent); hits are free.
    pub fn entry_or_insert(
        &mut self,
        p: Option<Precision>,
        build: impl FnOnce() -> PackedWeight,
    ) -> &PackedWeight {
        if let Some(i) = self.entries.iter().position(|(q, _)| *q == p) {
            return &self.entries[i].1;
        }
        self.entries.push((p, build()));
        &self.entries.last().expect("just pushed").1
    }

    /// Drops every entry — called when the master weights may have changed.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}
