//! Pooling layers wrapping the tensor-crate kernels.

use crate::layer::{Layer, Mode, Param};
use tia_tensor::{
    avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward, Tensor, Workspace,
};

/// Average pooling with a square window.
#[derive(Debug, Clone)]
pub struct AvgPool2d {
    k: usize,
    input_hw: Option<(usize, usize)>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with window/stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "pool window must be positive");
        Self { k, input_hw: None }
    }
}

impl Layer for AvgPool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward_ws(&mut self, x: &Tensor, mode: Mode, _ws: &mut Workspace) -> Tensor {
        self.input_hw = mode.caches_backward().then(|| (x.shape()[2], x.shape()[3]));
        avg_pool2d(x, self.k)
    }

    fn backward_ws(&mut self, grad_out: &Tensor, _ws: &mut Workspace) -> Tensor {
        let (h, w) = self.input_hw.expect("AvgPool2d::backward before forward");
        avg_pool2d_backward(grad_out, self.k, h, w)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Max pooling with a square window.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    k: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (argmax indices, input shape)
}

impl MaxPool2d {
    /// Creates a max-pool layer with window/stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "pool window must be positive");
        Self { k, cache: None }
    }
}

impl Layer for MaxPool2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward_ws(&mut self, x: &Tensor, mode: Mode, _ws: &mut Workspace) -> Tensor {
        let (y, idx) = max_pool2d(x, self.k);
        self.cache = mode.caches_backward().then(|| (idx, x.shape().to_vec()));
        y
    }

    fn backward_ws(&mut self, grad_out: &Tensor, _ws: &mut Workspace) -> Tensor {
        let (idx, shape) = self
            .cache
            .as_ref()
            .expect("MaxPool2d::backward before forward");
        max_pool2d_backward(grad_out, idx, shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
#[derive(Debug, Default, Clone)]
pub struct GlobalAvgPool {
    input_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average-pool layer.
    pub fn new() -> Self {
        Self { input_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward_ws(&mut self, x: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        assert_eq!(x.shape().len(), 4, "GlobalAvgPool expects NCHW");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        if mode.caches_backward() {
            let shape = self.input_shape.get_or_insert_with(Vec::new);
            shape.clear();
            shape.extend_from_slice(x.shape());
        } else {
            self.input_shape = None;
        }
        let mut out = ws.tensor_zeroed(&[n, c]);
        let inv = 1.0 / (h * w) as f32;
        for ni in 0..n {
            for ci in 0..c {
                let mut acc = 0.0;
                for yi in 0..h {
                    for xi in 0..w {
                        acc += x.at4(ni, ci, yi, xi);
                    }
                }
                out.data_mut()[ni * c + ci] = acc * inv;
            }
        }
        out
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let shape = self
            .input_shape
            .clone()
            .expect("GlobalAvgPool::backward before forward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let inv = 1.0 / (h * w) as f32;
        let mut gx = ws.tensor_zeroed(&shape);
        for ni in 0..n {
            for ci in 0..c {
                let g = grad_out.data()[ni * c + ci] * inv;
                for yi in 0..h {
                    for xi in 0..w {
                        *gx.at4_mut(ni, ci, yi, xi) = g;
                    }
                }
            }
        }
        gx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_avg_pool_shapes_and_values() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let y = gap.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[1.5, 5.5]);
        let gx = gap.backward(&Tensor::ones(&[1, 2]));
        assert!((gx.sum() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn avg_pool_layer_roundtrip() {
        let mut p = AvgPool2d::new(2);
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let y = p.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        let gx = p.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.shape(), x.shape());
        assert!((gx.sum() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn max_pool_layer_routes_gradients() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = p.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[4.0]);
        let gx = p.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.data(), &[0.0, 0.0, 0.0, 1.0]);
    }
}
