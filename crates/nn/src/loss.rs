//! Classification losses with analytic gradients.

use tia_tensor::{log_softmax_rows, softmax_rows, Tensor};

/// A loss value together with the gradient of the loss w.r.t. the logits.
#[derive(Debug, Clone)]
pub struct LossGrad {
    /// Mean loss over the batch.
    pub loss: f32,
    /// `d loss / d logits`, shape `[n, classes]`.
    pub grad: Tensor,
}

/// Mean cross-entropy over a batch of logits `[n, c]` with integer labels.
///
/// # Panics
///
/// Panics if shapes/labels are inconsistent.
pub fn cross_entropy(logits: &Tensor, labels: &[usize]) -> LossGrad {
    assert_eq!(logits.shape().len(), 2, "cross_entropy expects [N, C]");
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(n, labels.len(), "label count mismatch");
    assert!(labels.iter().all(|&l| l < c), "label out of range");
    let logp = log_softmax_rows(logits);
    let probs = softmax_rows(logits);
    let mut loss = 0.0;
    let mut grad = probs.clone();
    let inv_n = 1.0 / n as f32;
    for (i, &y) in labels.iter().enumerate() {
        loss -= logp.at2(i, y);
        grad.data_mut()[i * c + y] -= 1.0;
    }
    grad.scale(inv_n);
    LossGrad {
        loss: loss * inv_n,
        grad,
    }
}

/// Carlini-Wagner ℓ∞ margin loss: mean over the batch of
/// `max_{j≠y} z_j − z_y`.
///
/// Maximizing this loss pushes a wrong class above the true class; its
/// gradient is `+1` at the best wrong class and `−1` at the true class. Used
/// by the CW-∞ attack in `tia-attack`.
///
/// # Panics
///
/// Panics if shapes/labels are inconsistent.
pub fn cw_margin_loss(logits: &Tensor, labels: &[usize]) -> LossGrad {
    assert_eq!(logits.shape().len(), 2, "cw_margin_loss expects [N, C]");
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(n, labels.len(), "label count mismatch");
    let mut loss = 0.0;
    let mut grad = Tensor::zeros(&[n, c]);
    let inv_n = 1.0 / n as f32;
    for (i, &y) in labels.iter().enumerate() {
        let row = &logits.data()[i * c..(i + 1) * c];
        let mut best_wrong = usize::MAX;
        let mut best_val = f32::NEG_INFINITY;
        for (j, &v) in row.iter().enumerate() {
            if j != y && v > best_val {
                best_val = v;
                best_wrong = j;
            }
        }
        loss += best_val - row[y];
        grad.data_mut()[i * c + best_wrong] += inv_n;
        grad.data_mut()[i * c + y] -= inv_n;
    }
    LossGrad {
        loss: loss * inv_n,
        grad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ce_perfect_prediction_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]);
        let lg = cross_entropy(&logits, &[0, 1]);
        assert!(lg.loss < 1e-3, "loss {}", lg.loss);
    }

    #[test]
    fn ce_uniform_logits_log_c() {
        let logits = Tensor::zeros(&[1, 4]);
        let lg = cross_entropy(&logits, &[2]);
        assert!((lg.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 1.1], &[1, 3]);
        let lg = cross_entropy(&logits, &[1]);
        let eps = 1e-3;
        for idx in 0..3 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let fd = (cross_entropy(&lp, &[1]).loss - cross_entropy(&lm, &[1]).loss) / (2.0 * eps);
            assert!((fd - lg.grad.data()[idx]).abs() < 1e-3);
        }
    }

    #[test]
    fn ce_gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![0.5, 1.5, -1.0, 2.0, 0.0, 0.1], &[2, 3]);
        let lg = cross_entropy(&logits, &[0, 2]);
        for i in 0..2 {
            let s: f32 = lg.grad.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cw_margin_sign() {
        // Correctly classified with margin 2 -> loss -2.
        let logits = Tensor::from_vec(vec![3.0, 1.0], &[1, 2]);
        let lg = cw_margin_loss(&logits, &[0]);
        assert!((lg.loss + 2.0).abs() < 1e-6);
        // Gradient: +1 on wrong class, -1 on true class.
        assert_eq!(lg.grad.data(), &[-1.0, 1.0]);
    }

    #[test]
    fn cw_margin_misclassified_positive() {
        let logits = Tensor::from_vec(vec![1.0, 3.0], &[1, 2]);
        let lg = cw_margin_loss(&logits, &[0]);
        assert!(lg.loss > 0.0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn ce_checks_labels() {
        let logits = Tensor::zeros(&[1, 2]);
        let _ = cross_entropy(&logits, &[5]);
    }
}
