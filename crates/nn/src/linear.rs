//! Quantization-aware fully-connected layer.

use crate::layer::{Layer, Mode, Param};
use tia_quant::{fake_quant_affine_slice, fake_quant_symmetric, Precision};
use tia_tensor::{matmul_a_bt, matmul_at_b, SeededRng, Tensor};

/// A fully-connected layer `y = x W^T + b` with optional fake quantization
/// (same straight-through scheme as [`crate::Conv2d`]).
///
/// Weight layout is `[out_features, in_features]` (row per output), which
/// maps directly to the `K x (C*R*S)` weight matrix view the accelerator
/// uses for FC workloads.
#[derive(Debug, Clone)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Option<Param>,
    precision: Option<Precision>,
    cache: Option<(Tensor, Tensor)>, // (xq [n,in], wq [out,in])
}

impl Linear {
    /// Creates a linear layer with Kaiming-initialised weights.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut SeededRng) -> Self {
        let weight = Tensor::kaiming(&[out_features, in_features], in_features, rng);
        let bias = bias.then(|| Param::new(Tensor::zeros(&[out_features]), false));
        Self {
            in_features,
            out_features,
            weight: Param::new(weight, true),
            bias,
            precision: None,
            cache: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Linear {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.shape().len(), 2, "Linear expects [N, F]");
        assert_eq!(x.shape()[1], self.in_features, "Linear feature mismatch");
        let n = x.shape()[0];
        let wq = match self.precision {
            Some(p) => fake_quant_symmetric(&self.weight.value, p),
            None => self.weight.value.clone(),
        };
        // Activations calibrate per sample (row), not per batch: the grid a
        // sample lands on must not depend on what it was batched with, so
        // micro-batched serving stays bitwise-identical to per-sample
        // inference (the tia-engine invariant).
        let xq = match self.precision {
            Some(p) => {
                let mut data = vec![0.0f32; n * self.in_features];
                for (dst, src) in data
                    .chunks_mut(self.in_features)
                    .zip(x.data().chunks(self.in_features))
                {
                    fake_quant_affine_slice(src, dst, p);
                }
                Tensor::from_vec(data, &[n, self.in_features])
            }
            None => x.clone(),
        };
        // y[n, out] = xq [n, in] * wq^T [in, out]
        let mut y = vec![0.0f32; n * self.out_features];
        matmul_a_bt(
            n,
            self.in_features,
            self.out_features,
            xq.data(),
            wq.data(),
            &mut y,
        );
        let mut out = Tensor::from_vec(y, &[n, self.out_features]);
        if let Some(b) = &self.bias {
            for i in 0..n {
                for (o, &bv) in out.data_mut()[i * self.out_features..(i + 1) * self.out_features]
                    .iter_mut()
                    .zip(b.value.data())
                {
                    *o += bv;
                }
            }
        }
        self.cache = Some((xq, wq));
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (xq, wq) = self
            .cache
            .as_ref()
            .expect("Linear::backward before forward");
        let n = grad_out.shape()[0];
        // dW [out, in] += grad_out^T [out, n] * xq [n, in]
        let mut dw = vec![0.0f32; self.out_features * self.in_features];
        matmul_at_b(
            n,
            self.out_features,
            self.in_features,
            grad_out.data(),
            xq.data(),
            &mut dw,
        );
        self.weight.grad.add_assign(&Tensor::from_vec(
            dw,
            &[self.out_features, self.in_features],
        ));
        if let Some(b) = &mut self.bias {
            for i in 0..n {
                for (g, &go) in b
                    .grad
                    .data_mut()
                    .iter_mut()
                    .zip(&grad_out.data()[i * self.out_features..(i + 1) * self.out_features])
                {
                    *g += go;
                }
            }
        }
        // dX [n, in] = grad_out [n, out] * wq [out, in]
        let mut dx = vec![0.0f32; n * self.in_features];
        tia_tensor::gemm(
            n,
            self.out_features,
            self.in_features,
            grad_out.data(),
            wq.data(),
            &mut dx,
        );
        Tensor::from_vec(dx, &[n, self.in_features])
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn set_precision(&mut self, p: Option<Precision>) {
        self.precision = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let mut rng = SeededRng::new(0);
        let mut lin = Linear::new(2, 2, true, &mut rng);
        lin.visit_params(&mut |p| {
            if p.decay {
                p.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
            } else {
                p.value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
            }
        });
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = lin.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = SeededRng::new(3);
        let mut lin = Linear::new(4, 3, true, &mut rng);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let y = lin.forward(&x, Mode::Train);
        let gx = lin.backward(&Tensor::ones(y.shape()));
        let eps = 1e-3;
        for idx in [0usize, 5] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (lin.forward(&xp, Mode::Train).sum() - lin.forward(&xm, Mode::Train).sum())
                / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 1e-2,
                "idx {}: {} vs {}",
                idx,
                fd,
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn weight_gradient_accumulates_over_calls() {
        let mut rng = SeededRng::new(4);
        let mut lin = Linear::new(2, 2, false, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let y = lin.forward(&x, Mode::Train);
        let g = Tensor::ones(y.shape());
        let _ = lin.backward(&g);
        let _ = lin.backward(&g);
        let mut total = 0.0;
        lin.visit_params(&mut |p| total = p.grad.sum());
        assert_eq!(total, 8.0); // each backward adds 1 per weight (4 weights)
    }

    #[test]
    fn quantization_changes_output() {
        let mut rng = SeededRng::new(9);
        let mut lin = Linear::new(16, 4, false, &mut rng);
        let x = Tensor::rand_uniform(&[1, 16], 0.0, 1.0, &mut rng);
        let fp = lin.forward(&x, Mode::Eval);
        lin.set_precision(Some(Precision::new(3)));
        let q = lin.forward(&x, Mode::Eval);
        assert!(fp.sub(&q).norm() > 0.0);
    }
}
