//! Quantization-aware fully-connected layer.

use crate::layer::{Layer, Mode, Param};
use crate::pack_memo::{integer_path, PackMemo, PackedWeight};
use tia_quant::{
    fake_quant_affine_slice, fake_quant_symmetric_into, gemm_quant, quantize_affine_levels,
    Precision, QuantizedWeights,
};
use tia_tensor::{gemm_ws, matmul_at_b_ws, simd, PackedMatrix, SeededRng, Tensor, Workspace};

/// A fully-connected layer `y = x W^T + b` with optional fake quantization
/// (same straight-through scheme as [`crate::Conv2d`]).
///
/// Weight layout is `[out_features, in_features]` (row per output), which
/// maps directly to the `K x (C*R*S)` weight matrix view the accelerator
/// uses for FC workloads.
///
/// Like [`crate::Conv2d`], the quantized weight is memoized per precision as
/// a prepacked GEMM right operand (`W^T` panels), invalidated whenever
/// [`Layer::visit_params`] exposes the weights; activation quantization
/// writes into workspace buffers, so the steady-state forward allocates
/// nothing.
#[derive(Debug, Clone)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Option<Param>,
    precision: Option<Precision>,
    /// Per-precision quantized + prepacked weight memo (`None` = fp32).
    packs: PackMemo,
    cache: Option<LinearCache>,
}

#[derive(Debug, Clone)]
struct LinearCache {
    /// Quantized (or raw) input `[n, in]`.
    xq: Tensor,
    /// Snapshot of the quantized weights `[out, in]` the forward ran with —
    /// backward must use *these* values even if the master weights (and
    /// hence the memo) change in between.
    wq: Tensor,
}

impl Linear {
    /// Creates a linear layer with Kaiming-initialised weights.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut SeededRng) -> Self {
        let weight = Tensor::kaiming(&[out_features, in_features], in_features, rng);
        let bias = bias.then(|| Param::new(Tensor::zeros(&[out_features]), false));
        Self {
            in_features,
            out_features,
            weight: Param::new(weight, true),
            bias,
            precision: None,
            packs: PackMemo::default(),
            cache: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Number of precisions with a live prepacked weight (tests/diagnostics).
    pub fn packed_precisions(&self) -> usize {
        self.packs.len()
    }

    /// The memo entry for the active precision, quantizing + packing the
    /// weights as the `W^T` right operand on first use.
    fn packed_weight(&mut self) -> &PackedWeight {
        let (out_f, in_f) = (self.out_features, self.in_features);
        let p = self.precision;
        let weight = &self.weight;
        self.packs.entry_or_insert(p, || {
            let wq = match p {
                Some(prec) => {
                    let mut buf = vec![0.0f32; weight.value.len()];
                    fake_quant_symmetric_into(weight.value.data(), &mut buf, prec);
                    Tensor::from_vec(buf, &[out_f, in_f])
                }
                None => weight.value.clone(),
            };
            let packed = PackedMatrix::pack_rhs_transposed(out_f, in_f, wq.data());
            PackedWeight { wq, packed }
        })
    }

    /// The integer memo entry for `p`: the master weights `[out, in]`
    /// quantized per-row to packed `i8`/`i4` on first use.
    fn int_weight(&mut self, p: Precision) -> &QuantizedWeights {
        let (out_f, in_f) = (self.out_features, self.in_features);
        let weight = &self.weight;
        self.packs.int_entry_or_insert(p, || {
            QuantizedWeights::quantize_rows(weight.value.data(), out_f, in_f, p.bits())
        })
    }

    /// The true-integer inference forward: each sample row quantized to its
    /// own affine level grid, then one integer GEMM against the packed
    /// weight rows produces `[n, out]` directly. Never caches (Infer only).
    fn forward_int(&mut self, x: &Tensor, p: Precision, ws: &mut Workspace) -> Tensor {
        let n = x.shape()[0];
        let in_f = self.in_features;
        self.int_weight(p); // populate the memo for the active precision
        let wq = self.packs.get_int(p).expect("int_weight populated above");
        let ops = simd::backend(ws.kernel());

        // Per-sample affine calibration (same grid as the fake-quant path):
        // one scale/zero-point pair per row, so batching never changes the
        // grid a sample lands on.
        let mut rows = ws.take_bytes_spare(n * in_f);
        let mut scales = ws.take_spare(n);
        let mut zps = ws.take_ints_spare(n);
        for ni in 0..n {
            let lp = quantize_affine_levels(
                &x.data()[ni * in_f..(ni + 1) * in_f],
                &mut rows[ni * in_f..(ni + 1) * in_f],
                p,
            );
            scales[ni] = lp.scale;
            zps[ni] = lp.zero_point;
        }

        let mut out = ws.tensor_spare(&[n, self.out_features]);
        gemm_quant(
            ops,
            n,
            in_f,
            &rows,
            &scales,
            &zps,
            wq,
            self.bias.as_ref().map(|b| b.value.data()),
            out.data_mut(),
        );
        ws.recycle(scales);
        ws.recycle_ints(zps);
        ws.recycle_bytes(rows);
        if let Some(old) = self.cache.take() {
            ws.recycle_tensor(old.xq);
            ws.recycle_tensor(old.wq);
        }
        out
    }
}

impl Layer for Linear {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward_ws(&mut self, x: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        assert_eq!(x.shape().len(), 2, "Linear expects [N, F]");
        assert_eq!(x.shape()[1], self.in_features, "Linear feature mismatch");
        if let Some(p) = integer_path(mode, ws, self.precision, self.in_features) {
            return self.forward_int(x, p, ws);
        }
        let n = x.shape()[0];
        self.packed_weight(); // populate the memo for the active precision
        let pw = self
            .packs
            .get(self.precision)
            .expect("packed_weight populated above");
        // Activations calibrate per sample (row), not per batch: the grid a
        // sample lands on must not depend on what it was batched with, so
        // micro-batched serving stays bitwise-identical to per-sample
        // inference (the tia-engine invariant).
        let xq_buf = match self.precision {
            Some(p) => {
                let mut data = ws.take_spare(n * self.in_features);
                for (dst, src) in data
                    .chunks_mut(self.in_features)
                    .zip(x.data().chunks(self.in_features))
                {
                    fake_quant_affine_slice(src, dst, p);
                }
                Some(data)
            }
            None => None,
        };
        let xq: &[f32] = xq_buf.as_deref().unwrap_or_else(|| x.data());
        // y[n, out] = xq [n, in] * wq^T [in, out], streaming prepacked W^T.
        let mut out = ws.tensor_zeroed(&[n, self.out_features]);
        pw.packed.gemm_rhs(n, xq, out.data_mut(), ws);
        if let Some(b) = &self.bias {
            for i in 0..n {
                for (o, &bv) in out.data_mut()[i * self.out_features..(i + 1) * self.out_features]
                    .iter_mut()
                    .zip(b.value.data())
                {
                    *o += bv;
                }
            }
        }
        if let Some(old) = self.cache.take() {
            ws.recycle_tensor(old.xq);
            ws.recycle_tensor(old.wq);
        }
        if mode.caches_backward() {
            let xq_t = match xq_buf {
                Some(buf) => Tensor::from_buf(buf, &[n, self.in_features]),
                None => ws.tensor_copy(x, &[n, self.in_features]),
            };
            self.cache = Some(LinearCache {
                xq: xq_t,
                // Snapshot the quantized weights the product actually used
                // (see LinearCache::wq).
                wq: ws.tensor_copy(&pw.wq, &[self.out_features, self.in_features]),
            });
        } else if let Some(buf) = xq_buf {
            ws.recycle(buf);
        }
        out
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("Linear::backward before forward");
        let n = grad_out.shape()[0];
        // dW [out, in] += grad_out^T [out, n] * xq [n, in]
        let mut dw = ws.take_zeroed(self.out_features * self.in_features);
        matmul_at_b_ws(
            n,
            self.out_features,
            self.in_features,
            grad_out.data(),
            cache.xq.data(),
            &mut dw,
            ws,
        );
        if let Some(b) = &mut self.bias {
            for i in 0..n {
                for (g, &go) in b
                    .grad
                    .data_mut()
                    .iter_mut()
                    .zip(&grad_out.data()[i * self.out_features..(i + 1) * self.out_features])
                {
                    *g += go;
                }
            }
        }
        // dX [n, in] = grad_out [n, out] * wq [out, in], against the
        // forward's own weight snapshot.
        let mut dx = ws.tensor_zeroed(&[n, self.in_features]);
        gemm_ws(
            n,
            self.out_features,
            self.in_features,
            grad_out.data(),
            cache.wq.data(),
            dx.data_mut(),
            ws,
        );
        for (g, d) in self.weight.grad.data_mut().iter_mut().zip(&dw) {
            *g += d;
        }
        ws.recycle(dw);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        // `&mut Param` escapes — every prepacked precision may be stale.
        self.packs.clear();
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn set_precision(&mut self, p: Option<Precision>) {
        self.precision = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_known_values() {
        let mut rng = SeededRng::new(0);
        let mut lin = Linear::new(2, 2, true, &mut rng);
        lin.visit_params(&mut |p| {
            if p.decay {
                p.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
            } else {
                p.value = Tensor::from_vec(vec![0.5, -0.5], &[2]);
            }
        });
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = lin.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = SeededRng::new(3);
        let mut lin = Linear::new(4, 3, true, &mut rng);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let y = lin.forward(&x, Mode::Train);
        let gx = lin.backward(&Tensor::ones(y.shape()));
        let eps = 1e-3;
        for idx in [0usize, 5] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (lin.forward(&xp, Mode::Train).sum() - lin.forward(&xm, Mode::Train).sum())
                / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 1e-2,
                "idx {}: {} vs {}",
                idx,
                fd,
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn weight_gradient_accumulates_over_calls() {
        let mut rng = SeededRng::new(4);
        let mut lin = Linear::new(2, 2, false, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        let y = lin.forward(&x, Mode::Train);
        let g = Tensor::ones(y.shape());
        let _ = lin.backward(&g);
        let _ = lin.backward(&g);
        let mut total = 0.0;
        lin.visit_params(&mut |p| total = p.grad.sum());
        assert_eq!(total, 8.0); // each backward adds 1 per weight (4 weights)
    }

    #[test]
    fn quantization_changes_output() {
        let mut rng = SeededRng::new(9);
        let mut lin = Linear::new(16, 4, false, &mut rng);
        let x = Tensor::rand_uniform(&[1, 16], 0.0, 1.0, &mut rng);
        let fp = lin.forward(&x, Mode::Eval);
        lin.set_precision(Some(Precision::new(3)));
        let q = lin.forward(&x, Mode::Eval);
        assert!(fp.sub(&q).norm() > 0.0);
    }

    #[test]
    fn prepacked_weights_memoize_and_invalidate() {
        let mut rng = SeededRng::new(10);
        let mut lin = Linear::new(8, 4, false, &mut rng);
        let x = Tensor::rand_uniform(&[2, 8], 0.0, 1.0, &mut rng);
        for bits in [4u8, 8, 4, 8] {
            lin.set_precision(Some(Precision::new(bits)));
            let _ = lin.forward(&x, Mode::Infer);
        }
        assert_eq!(lin.packed_precisions(), 2);
        assert!(lin.cache.is_none(), "Infer must not retain activations");
        lin.set_precision(Some(Precision::new(4)));
        let before = lin.forward(&x, Mode::Infer);
        lin.visit_params(&mut |p| p.value.data_mut()[0] += 1.0);
        assert_eq!(lin.packed_precisions(), 0);
        let after = lin.forward(&x, Mode::Infer);
        assert!(before.sub(&after).norm() > 0.0);
    }
}
