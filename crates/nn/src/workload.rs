//! Full-size layer-shape tables of the paper's six benchmark networks.
//!
//! The accelerator experiments (Figs. 2, 7–10) run on the *true* layer
//! geometries of WideResNet-32 / (PreAct)ResNet-18 on CIFAR (32×32 inputs)
//! and AlexNet / VGG-16 / ResNet-18 / ResNet-50 on ImageNet (224×224), even
//! though the trainable models in [`crate::zoo`] are width-reduced. These
//! specs carry no weights — only shapes — and are consumed by `tia-dataflow`
//! and `tia-sim`.

/// Layer flavour with the dimensions the accelerator cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Convolution: `c` input channels, `k` output channels, `r x s` kernel.
    Conv {
        /// Input channels.
        c: usize,
        /// Output channels.
        k: usize,
        /// Kernel height.
        r: usize,
        /// Kernel width.
        s: usize,
        /// Stride.
        stride: usize,
        /// Padding.
        pad: usize,
    },
    /// Fully connected: a GEMV of `out_f x in_f`.
    Fc {
        /// Input features.
        in_f: usize,
        /// Output features.
        out_f: usize,
    },
}

/// One layer of a network workload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerSpec {
    /// Layer name for reports, e.g. `"conv2_1a"`.
    pub name: String,
    /// Kind + dimensions.
    pub kind: LayerKind,
    /// Input feature-map height (1 for FC).
    pub in_h: usize,
    /// Input feature-map width (1 for FC).
    pub in_w: usize,
}

impl LayerSpec {
    /// Creates a conv layer spec.
    #[allow(clippy::too_many_arguments)] // a conv shape simply has this many dims
    pub fn conv(
        name: impl Into<String>,
        c: usize,
        k: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Conv {
                c,
                k,
                r: kernel,
                s: kernel,
                stride,
                pad,
            },
            in_h,
            in_w,
        }
    }

    /// Creates a depthwise conv layer spec: `channels` independent
    /// single-channel `kernel x kernel` filters (K = channels, C = 1).
    pub fn dwconv(
        name: impl Into<String>,
        channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        in_h: usize,
        in_w: usize,
    ) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Conv {
                c: 1,
                k: channels,
                r: kernel,
                s: kernel,
                stride,
                pad,
            },
            in_h,
            in_w,
        }
    }

    /// Creates an FC layer spec.
    pub fn fc(name: impl Into<String>, in_f: usize, out_f: usize) -> Self {
        Self {
            name: name.into(),
            kind: LayerKind::Fc { in_f, out_f },
            in_h: 1,
            in_w: 1,
        }
    }

    /// Output spatial size.
    pub fn out_hw(&self) -> (usize, usize) {
        match self.kind {
            LayerKind::Conv {
                r, s, stride, pad, ..
            } => (
                (self.in_h + 2 * pad - r) / stride + 1,
                (self.in_w + 2 * pad - s) / stride + 1,
            ),
            LayerKind::Fc { .. } => (1, 1),
        }
    }

    /// Multiply-accumulate count for batch 1.
    pub fn macs(&self) -> u64 {
        match self.kind {
            LayerKind::Conv { c, k, r, s, .. } => {
                let (oh, ow) = self.out_hw();
                (k * c * r * s) as u64 * (oh * ow) as u64
            }
            LayerKind::Fc { in_f, out_f } => (in_f * out_f) as u64,
        }
    }

    /// Weight element count.
    pub fn weight_elems(&self) -> u64 {
        match self.kind {
            LayerKind::Conv { c, k, r, s, .. } => (k * c * r * s) as u64,
            LayerKind::Fc { in_f, out_f } => (in_f * out_f) as u64,
        }
    }

    /// Input activation element count (batch 1).
    pub fn input_elems(&self) -> u64 {
        match self.kind {
            LayerKind::Conv { c, .. } => (c * self.in_h * self.in_w) as u64,
            LayerKind::Fc { in_f, .. } => in_f as u64,
        }
    }

    /// Output activation element count (batch 1).
    pub fn output_elems(&self) -> u64 {
        match self.kind {
            LayerKind::Conv { k, .. } => {
                let (oh, ow) = self.out_hw();
                (k * oh * ow) as u64
            }
            LayerKind::Fc { out_f, .. } => out_f as u64,
        }
    }

    /// The 7 loop bounds `(N, K, C, R, S, Y, X)` the dataflow optimizer tiles
    /// (batch fixed at 1; FC maps to K=out, C=in, R=S=Y=X=1).
    pub fn loop_bounds(&self) -> [usize; 7] {
        match self.kind {
            LayerKind::Conv { c, k, r, s, .. } => {
                let (oh, ow) = self.out_hw();
                [1, k, c, r, s, oh, ow]
            }
            LayerKind::Fc { in_f, out_f } => [1, out_f, in_f, 1, 1, 1, 1],
        }
    }
}

/// A named sequence of layers forming one benchmark workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkSpec {
    /// Network name as used in the paper's figures.
    pub name: String,
    /// Dataset tag ("CIFAR-10" or "ImageNet").
    pub dataset: String,
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
}

impl NetworkSpec {
    /// Total MACs for batch 1.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs()).sum()
    }

    /// Total weight elements.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_elems()).sum()
    }

    /// AlexNet on ImageNet (224×224).
    pub fn alexnet() -> Self {
        let layers = vec![
            LayerSpec::conv("conv1", 3, 64, 11, 4, 2, 224, 224),
            LayerSpec::conv("conv2", 64, 192, 5, 1, 2, 27, 27),
            LayerSpec::conv("conv3", 192, 384, 3, 1, 1, 13, 13),
            LayerSpec::conv("conv4", 384, 256, 3, 1, 1, 13, 13),
            LayerSpec::conv("conv5", 256, 256, 3, 1, 1, 13, 13),
            LayerSpec::fc("fc6", 256 * 6 * 6, 4096),
            LayerSpec::fc("fc7", 4096, 4096),
            LayerSpec::fc("fc8", 4096, 1000),
        ];
        Self {
            name: "AlexNet".into(),
            dataset: "ImageNet".into(),
            layers,
        }
    }

    /// VGG-16 on ImageNet (224×224).
    pub fn vgg16() -> Self {
        let mut layers = Vec::new();
        let cfg: &[(usize, usize, usize)] = &[
            // (in, out, spatial)
            (3, 64, 224),
            (64, 64, 224),
            (64, 128, 112),
            (128, 128, 112),
            (128, 256, 56),
            (256, 256, 56),
            (256, 256, 56),
            (256, 512, 28),
            (512, 512, 28),
            (512, 512, 28),
            (512, 512, 14),
            (512, 512, 14),
            (512, 512, 14),
        ];
        for (i, &(c, k, hw)) in cfg.iter().enumerate() {
            layers.push(LayerSpec::conv(
                format!("conv{}", i + 1),
                c,
                k,
                3,
                1,
                1,
                hw,
                hw,
            ));
        }
        layers.push(LayerSpec::fc("fc14", 512 * 7 * 7, 4096));
        layers.push(LayerSpec::fc("fc15", 4096, 4096));
        layers.push(LayerSpec::fc("fc16", 4096, 1000));
        Self {
            name: "VGG-16".into(),
            dataset: "ImageNet".into(),
            layers,
        }
    }

    /// ResNet-18 on ImageNet (basic blocks).
    pub fn resnet18_imagenet() -> Self {
        let mut layers = vec![LayerSpec::conv("conv1", 3, 64, 7, 2, 3, 224, 224)];
        // After maxpool: 56x56.
        let stages: &[(usize, usize, usize, usize)] = &[
            // (in_ch, out_ch, blocks, spatial at stage input)
            (64, 64, 2, 56),
            (64, 128, 2, 56),
            (128, 256, 2, 28),
            (256, 512, 2, 14),
        ];
        for (si, &(in_ch, out_ch, blocks, hw)) in stages.iter().enumerate() {
            push_basic_stage(&mut layers, si + 2, in_ch, out_ch, blocks, hw, si > 0);
        }
        layers.push(LayerSpec::fc("fc", 512, 1000));
        Self {
            name: "ResNet-18".into(),
            dataset: "ImageNet".into(),
            layers,
        }
    }

    /// ResNet-50 on ImageNet (bottleneck blocks).
    pub fn resnet50_imagenet() -> Self {
        let mut layers = vec![LayerSpec::conv("conv1", 3, 64, 7, 2, 3, 224, 224)];
        let stages: &[(usize, usize, usize, usize, usize, bool)] = &[
            // (in_ch, mid_ch, out_ch, blocks, spatial at stage input, downsample)
            (64, 64, 256, 3, 56, false),
            (256, 128, 512, 4, 56, true),
            (512, 256, 1024, 6, 28, true),
            (1024, 512, 2048, 3, 14, true),
        ];
        for (si, &(in_ch, mid, out_ch, blocks, hw, down)) in stages.iter().enumerate() {
            push_bottleneck_stage(&mut layers, si + 2, in_ch, mid, out_ch, blocks, hw, down);
        }
        layers.push(LayerSpec::fc("fc", 2048, 1000));
        Self {
            name: "ResNet-50".into(),
            dataset: "ImageNet".into(),
            layers,
        }
    }

    /// WideResNet-32 (×10) on CIFAR-10 (32×32).
    pub fn wide_resnet32_cifar() -> Self {
        let mut layers = vec![LayerSpec::conv("conv1", 3, 16, 3, 1, 1, 32, 32)];
        let stages: &[(usize, usize, usize, usize)] =
            &[(16, 160, 5, 32), (160, 320, 5, 32), (320, 640, 5, 16)];
        for (si, &(in_ch, out_ch, blocks, hw)) in stages.iter().enumerate() {
            push_basic_stage(&mut layers, si + 2, in_ch, out_ch, blocks, hw, si > 0);
        }
        layers.push(LayerSpec::fc("fc", 640, 10));
        Self {
            name: "WideResNet-32".into(),
            dataset: "CIFAR-10".into(),
            layers,
        }
    }

    /// PreActResNet-18 on CIFAR-10 (32×32).
    pub fn resnet18_cifar() -> Self {
        let mut layers = vec![LayerSpec::conv("conv1", 3, 64, 3, 1, 1, 32, 32)];
        let stages: &[(usize, usize, usize, usize)] = &[
            (64, 64, 2, 32),
            (64, 128, 2, 32),
            (128, 256, 2, 16),
            (256, 512, 2, 8),
        ];
        for (si, &(in_ch, out_ch, blocks, hw)) in stages.iter().enumerate() {
            push_basic_stage(&mut layers, si + 2, in_ch, out_ch, blocks, hw, si > 0);
        }
        layers.push(LayerSpec::fc("fc", 512, 10));
        Self {
            name: "ResNet-18".into(),
            dataset: "CIFAR-10".into(),
            layers,
        }
    }

    /// MobileNetV1 on ImageNet — an extension workload beyond the paper's
    /// six, exercising depthwise convolutions (modelled as K parallel
    /// single-channel convs, i.e. `C = 1` per output channel group, which
    /// the 7-dim loop nest supports natively).
    pub fn mobilenet_v1() -> Self {
        let mut layers = vec![LayerSpec::conv("conv1", 3, 32, 3, 2, 1, 224, 224)];
        // (channels_in, channels_out, stride, spatial at block input)
        let blocks: &[(usize, usize, usize, usize)] = &[
            (32, 64, 1, 112),
            (64, 128, 2, 112),
            (128, 128, 1, 56),
            (128, 256, 2, 56),
            (256, 256, 1, 28),
            (256, 512, 2, 28),
            (512, 512, 1, 14),
            (512, 512, 1, 14),
            (512, 512, 1, 14),
            (512, 512, 1, 14),
            (512, 512, 1, 14),
            (512, 1024, 2, 14),
            (1024, 1024, 1, 7),
        ];
        for (i, &(cin, cout, stride, hw)) in blocks.iter().enumerate() {
            layers.push(LayerSpec::dwconv(
                format!("dw{}", i + 2),
                cin,
                3,
                stride,
                1,
                hw,
                hw,
            ));
            let out_hw = hw / stride;
            layers.push(LayerSpec::conv(
                format!("pw{}", i + 2),
                cin,
                cout,
                1,
                1,
                0,
                out_hw,
                out_hw,
            ));
        }
        layers.push(LayerSpec::fc("fc", 1024, 1000));
        Self {
            name: "MobileNetV1".into(),
            dataset: "ImageNet".into(),
            layers,
        }
    }

    /// The six benchmark workloads of Figs. 7–9, in the paper's order.
    pub fn paper_six() -> Vec<NetworkSpec> {
        vec![
            Self::resnet18_cifar(),
            Self::wide_resnet32_cifar(),
            Self::resnet18_imagenet(),
            Self::resnet50_imagenet(),
            Self::vgg16(),
            Self::alexnet(),
        ]
    }
}

/// Appends one basic-block stage (two 3×3 convs per block, projection on the
/// first block when downsampling/widening).
fn push_basic_stage(
    layers: &mut Vec<LayerSpec>,
    stage_no: usize,
    in_ch: usize,
    out_ch: usize,
    blocks: usize,
    in_hw: usize,
    downsample: bool,
) {
    let stride = if downsample { 2 } else { 1 };
    let out_hw = if downsample { in_hw / 2 } else { in_hw };
    for b in 0..blocks {
        let (c_in, s, hw) = if b == 0 {
            (in_ch, stride, in_hw)
        } else {
            (out_ch, 1, out_hw)
        };
        layers.push(LayerSpec::conv(
            format!("conv{}_{}a", stage_no, b + 1),
            c_in,
            out_ch,
            3,
            s,
            1,
            hw,
            hw,
        ));
        layers.push(LayerSpec::conv(
            format!("conv{}_{}b", stage_no, b + 1),
            out_ch,
            out_ch,
            3,
            1,
            1,
            out_hw,
            out_hw,
        ));
        if b == 0 && (downsample || in_ch != out_ch) {
            layers.push(LayerSpec::conv(
                format!("conv{}_{}sc", stage_no, b + 1),
                in_ch,
                out_ch,
                1,
                stride,
                0,
                in_hw,
                in_hw,
            ));
        }
    }
}

/// Appends one bottleneck stage (1×1 reduce, 3×3, 1×1 expand per block).
#[allow(clippy::too_many_arguments)]
fn push_bottleneck_stage(
    layers: &mut Vec<LayerSpec>,
    stage_no: usize,
    in_ch: usize,
    mid: usize,
    out_ch: usize,
    blocks: usize,
    in_hw: usize,
    downsample: bool,
) {
    let stride = if downsample { 2 } else { 1 };
    let out_hw = if downsample { in_hw / 2 } else { in_hw };
    for b in 0..blocks {
        let (c_in, s, hw) = if b == 0 {
            (in_ch, stride, in_hw)
        } else {
            (out_ch, 1, out_hw)
        };
        layers.push(LayerSpec::conv(
            format!("conv{}_{}a", stage_no, b + 1),
            c_in,
            mid,
            1,
            1,
            0,
            hw,
            hw,
        ));
        layers.push(LayerSpec::conv(
            format!("conv{}_{}b", stage_no, b + 1),
            mid,
            mid,
            3,
            s,
            1,
            hw,
            hw,
        ));
        layers.push(LayerSpec::conv(
            format!("conv{}_{}c", stage_no, b + 1),
            mid,
            out_ch,
            1,
            1,
            0,
            out_hw,
            out_hw,
        ));
        if b == 0 {
            layers.push(LayerSpec::conv(
                format!("conv{}_{}sc", stage_no, b + 1),
                in_ch,
                out_ch,
                1,
                stride,
                0,
                in_hw,
                in_hw,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_macs_in_known_ballpark() {
        // AlexNet is ~0.7 GMACs (conv) + ~59 MMACs (fc).
        let net = NetworkSpec::alexnet();
        let macs = net.total_macs();
        assert!(macs > 600_000_000 && macs < 1_000_000_000, "{}", macs);
    }

    #[test]
    fn vgg16_macs_in_known_ballpark() {
        // VGG-16 is ~15.5 GMACs.
        let net = NetworkSpec::vgg16();
        let macs = net.total_macs();
        assert!(macs > 14_000_000_000 && macs < 16_500_000_000, "{}", macs);
    }

    #[test]
    fn resnet50_macs_in_known_ballpark() {
        // ResNet-50 is ~3.8-4.1 GMACs.
        let net = NetworkSpec::resnet50_imagenet();
        let macs = net.total_macs();
        assert!(macs > 3_300_000_000 && macs < 4_500_000_000, "{}", macs);
    }

    #[test]
    fn resnet18_imagenet_macs_in_known_ballpark() {
        // ResNet-18 is ~1.8 GMACs.
        let net = NetworkSpec::resnet18_imagenet();
        let macs = net.total_macs();
        assert!(macs > 1_500_000_000 && macs < 2_200_000_000, "{}", macs);
    }

    #[test]
    fn conv_layer_geometry() {
        let l = LayerSpec::conv("x", 3, 64, 11, 4, 2, 224, 224);
        assert_eq!(l.out_hw(), (55, 55));
        assert_eq!(l.weight_elems(), 64 * 3 * 11 * 11);
        assert_eq!(l.loop_bounds(), [1, 64, 3, 11, 11, 55, 55]);
    }

    #[test]
    fn fc_layer_geometry() {
        let l = LayerSpec::fc("fc", 4096, 1000);
        assert_eq!(l.macs(), 4096 * 1000);
        assert_eq!(l.loop_bounds(), [1, 1000, 4096, 1, 1, 1, 1]);
        assert_eq!(l.out_hw(), (1, 1));
    }

    #[test]
    fn mobilenet_macs_in_known_ballpark() {
        // MobileNetV1 is ~0.57 GMACs.
        let net = NetworkSpec::mobilenet_v1();
        let macs = net.total_macs();
        assert!(macs > 450_000_000 && macs < 700_000_000, "{}", macs);
    }

    #[test]
    fn dwconv_geometry() {
        let l = LayerSpec::dwconv("dw", 32, 3, 1, 1, 16, 16);
        assert_eq!(l.out_hw(), (16, 16));
        assert_eq!(l.weight_elems(), 32 * 9);
        assert_eq!(l.macs(), 32 * 9 * 256);
    }

    #[test]
    fn paper_six_names() {
        let nets = NetworkSpec::paper_six();
        assert_eq!(nets.len(), 6);
        let names: Vec<&str> = nets.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "ResNet-18",
                "WideResNet-32",
                "ResNet-18",
                "ResNet-50",
                "VGG-16",
                "AlexNet"
            ]
        );
    }

    #[test]
    fn wrn32_is_wide() {
        let net = NetworkSpec::wide_resnet32_cifar();
        // WRN-32-10 has ~few hundred MMACs at CIFAR scale... actually several GMACs.
        assert!(net.total_macs() > 1_000_000_000, "{}", net.total_macs());
        assert!(net
            .layers
            .iter()
            .any(|l| matches!(l.kind, LayerKind::Conv { k: 640, .. })));
    }

    #[test]
    fn output_shapes_chain_consistently() {
        // For each network, conv layer inputs must equal previous main-path
        // conv output spatial dims after accounting for stride-2 stem/pool.
        for net in NetworkSpec::paper_six() {
            for l in &net.layers {
                let (oh, ow) = l.out_hw();
                assert!(
                    oh > 0 && ow > 0,
                    "{} {} produced empty output",
                    net.name,
                    l.name
                );
            }
        }
    }
}
