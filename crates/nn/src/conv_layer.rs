//! Quantization-aware 2-D convolution layer.

use crate::layer::{Layer, Mode, Param};
use crate::pack_memo::{integer_path, PackMemo, PackedWeight};
use tia_quant::{
    fake_quant_affine_slice, fake_quant_symmetric_into, gemm_quant, quantize_affine_levels,
    Precision, QuantizedWeights,
};
use tia_tensor::{
    col2im_add_into, im2col_into, im2col_levels_rows, matmul_a_bt_ws, matmul_at_b_ws, simd,
    Conv2dGeometry, PackedMatrix, SeededRng, Tensor, Workspace,
};

/// A 2-D convolution with optional fake quantization of weights and input
/// activations.
///
/// When a precision is set (via [`Layer::set_precision`]), the forward pass
/// computes with `Q_b(W)` and `Q_b(X)` — symmetric per-tensor quantization for
/// weights, affine for activations — exactly the in-situ precision switch of
/// the paper. The backward pass uses the straight-through estimator: the
/// quantized values participate in the products, but gradients flow through
/// the rounding unchanged.
///
/// # Hot-path structure
///
/// The forward pass is *batched*: all `n` images lower (per-image quantized)
/// into one `[C·KH·KW, N·OH·OW]` column matrix and multiply the weight in a
/// single GEMM — the GEMM's batch-size-invariant accumulation keeps each
/// sample's output bitwise identical to a batch-of-one forward. The
/// quantized + packed weight matrix is memoized per precision
/// ([`PackedMatrix`]), so a random precision switch costs a lookup; the memo
/// is invalidated whenever [`Layer::visit_params`] exposes the weights for
/// mutation. All scratch comes from the caller's [`Workspace`].
#[derive(Debug, Clone)]
pub struct Conv2d {
    geo: Conv2dGeometry,
    weight: Param,
    bias: Option<Param>,
    precision: Option<Precision>,
    /// Per-precision quantized + prepacked weight memo (`None` = fp32).
    /// Cleared by `visit_params` — any caller holding `&mut Param` may have
    /// rewritten the master weights.
    packs: PackMemo,
    // Backward cache from the most recent forward (absent after `Infer`).
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    /// Quantized (or raw) input columns for the whole batch:
    /// `[C·KH·KW, N·OH·OW]`, sample `i` owning columns `i·OH·OW ..`.
    cols: Tensor,
    /// Snapshot of the quantized weight matrix `[K, C·KH·KW]` the forward
    /// ran with — backward must use *these* values even if the master
    /// weights (and hence the memo) change in between.
    wq: Tensor,
    input_h: usize,
    input_w: usize,
    batch: usize,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialised weights.
    pub fn new(geo: Conv2dGeometry, bias: bool, rng: &mut SeededRng) -> Self {
        let fan_in = geo.in_channels * geo.kernel_h * geo.kernel_w;
        let weight = Tensor::kaiming(
            &[
                geo.out_channels,
                geo.in_channels,
                geo.kernel_h,
                geo.kernel_w,
            ],
            fan_in,
            rng,
        );
        let bias = bias.then(|| Param::new(Tensor::zeros(&[geo.out_channels]), false));
        Self {
            geo,
            weight: Param::new(weight, true),
            bias,
            precision: None,
            packs: PackMemo::default(),
            cache: None,
        }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geo
    }

    /// Number of precisions with a live prepacked weight (tests/diagnostics).
    pub fn packed_precisions(&self) -> usize {
        self.packs.len()
    }

    /// The memo entry for the active precision, quantizing + packing the
    /// weight matrix `[K, C·KH·KW]` on first use.
    fn packed_weight(&mut self) -> &PackedWeight {
        let k = self.geo.out_channels;
        let f = self.geo.in_channels * self.geo.kernel_h * self.geo.kernel_w;
        let p = self.precision;
        let weight = &self.weight;
        self.packs.entry_or_insert(p, || {
            let wq = match p {
                Some(prec) => {
                    let mut buf = vec![0.0f32; k * f];
                    fake_quant_symmetric_into(weight.value.data(), &mut buf, prec);
                    Tensor::from_vec(buf, &[k, f])
                }
                None => weight.value.reshape(&[k, f]),
            };
            let packed = PackedMatrix::pack_lhs(k, f, wq.data());
            PackedWeight { wq, packed }
        })
    }

    /// The integer memo entry for `p`: the master weights `[K, C·KH·KW]`
    /// quantized per-row to packed `i8`/`i4` on first use.
    fn int_weight(&mut self, p: Precision) -> &QuantizedWeights {
        let k = self.geo.out_channels;
        let f = self.geo.in_channels * self.geo.kernel_h * self.geo.kernel_w;
        let weight = &self.weight;
        self.packs.int_entry_or_insert(p, || {
            QuantizedWeights::quantize_rows(weight.value.data(), k, f, p.bits())
        })
    }

    /// The true-integer inference forward: per-image affine levels lowered
    /// patch-per-row, one integer GEMM against the packed weight rows, then
    /// a transpose-scatter into NCHW. Never caches (Infer only).
    fn forward_int(&mut self, x: &Tensor, p: Precision, ws: &mut Workspace) -> Tensor {
        let (n, h, w) = (x.shape()[0], x.shape()[2], x.shape()[3]);
        let (oh, ow) = self.geo.output_hw(h, w);
        let k = self.geo.out_channels;
        let f = self.geo.in_channels * self.geo.kernel_h * self.geo.kernel_w;
        let (ohw, chw) = (oh * ow, self.geo.in_channels * h * w);
        self.int_weight(p); // populate the memo for the active precision
        let wq = self.packs.get_int(p).expect("int_weight populated above");
        let ops = simd::backend(ws.kernel());

        // Per-image affine calibration (same grid as the fake-quant path),
        // kept per image so batching never changes a sample's grid.
        let mut img_levels = ws.take_bytes_spare(chw);
        let mut rows = ws.take_bytes_spare(n * ohw * f);
        let mut scales = ws.take_spare(n);
        let mut zps = ws.take_ints_spare(n);
        for ni in 0..n {
            let lp =
                quantize_affine_levels(&x.data()[ni * chw..(ni + 1) * chw], &mut img_levels, p);
            scales[ni] = lp.scale;
            zps[ni] = lp.zero_point;
            im2col_levels_rows(
                &img_levels,
                &self.geo,
                h,
                w,
                lp.zero_point as u8,
                &mut rows[ni * ohw * f..(ni + 1) * ohw * f],
            );
        }

        // o[n·oh·ow, k]: each patch row dotted against every weight row.
        let mut o = ws.take_spare(n * ohw * k);
        gemm_quant(
            ops,
            n * ohw,
            f,
            &rows,
            &scales,
            &zps,
            wq,
            self.bias.as_ref().map(|b| b.value.data()),
            &mut o,
        );

        // Transpose-scatter [n·oh·ow, k] into NCHW.
        let mut out = ws.tensor_spare(&[n, k, oh, ow]);
        let od = out.data_mut();
        for ni in 0..n {
            for s in 0..ohw {
                let orow = &o[(ni * ohw + s) * k..(ni * ohw + s + 1) * k];
                for (ki, &v) in orow.iter().enumerate() {
                    od[(ni * k + ki) * ohw + s] = v;
                }
            }
        }
        ws.recycle(o);
        ws.recycle(scales);
        ws.recycle_ints(zps);
        ws.recycle_bytes(rows);
        ws.recycle_bytes(img_levels);
        if let Some(old) = self.cache.take() {
            ws.recycle_tensor(old.cols);
            ws.recycle_tensor(old.wq);
        }
        out
    }
}

impl Layer for Conv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward_ws(&mut self, x: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        assert_eq!(x.shape().len(), 4, "Conv2d expects NCHW input");
        let depth = self.geo.in_channels * self.geo.kernel_h * self.geo.kernel_w;
        if let Some(p) = integer_path(mode, ws, self.precision, depth) {
            return self.forward_int(x, p, ws);
        }
        let (n, _c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = self.geo.output_hw(h, w);
        let k = self.geo.out_channels;
        let f = self.geo.in_channels * self.geo.kernel_h * self.geo.kernel_w;
        let (ohw, chw) = (oh * ow, self.geo.in_channels * h * w);
        let cols_n = n * ohw;
        self.packed_weight(); // populate the memo for the active precision
        let pw = self
            .packs
            .get(self.precision)
            .expect("packed_weight populated above");

        // One shared column matrix for the whole batch; activations still
        // calibrate per image, preserving batched-vs-per-sample identity.
        let mut cols = ws.take_zeroed(f * cols_n);
        match self.precision {
            Some(p) => {
                let mut q = ws.take_spare(chw);
                for ni in 0..n {
                    fake_quant_affine_slice(&x.data()[ni * chw..(ni + 1) * chw], &mut q, p);
                    im2col_into(&q, &self.geo, h, w, &mut cols, cols_n, ni * ohw);
                }
                ws.recycle(q);
            }
            None => {
                for ni in 0..n {
                    im2col_into(
                        &x.data()[ni * chw..(ni + 1) * chw],
                        &self.geo,
                        h,
                        w,
                        &mut cols,
                        cols_n,
                        ni * ohw,
                    );
                }
            }
        }

        // out[k, n·oh·ow] = Wq [k,f] x cols [f, n·oh·ow] — one GEMM per
        // layer per batch, streaming the prepacked weight panels.
        let mut o = ws.take_zeroed(k * cols_n);
        pw.packed.gemm_lhs(cols_n, &cols, &mut o, ws);
        if let Some(b) = &self.bias {
            for ki in 0..k {
                let bv = b.value.data()[ki];
                for v in &mut o[ki * cols_n..(ki + 1) * cols_n] {
                    *v += bv;
                }
            }
        }

        // Scatter [k, n·oh·ow] into NCHW output.
        let mut out = ws.tensor_spare(&[n, k, oh, ow]);
        let od = out.data_mut();
        for ni in 0..n {
            for ki in 0..k {
                od[(ni * k + ki) * ohw..(ni * k + ki + 1) * ohw]
                    .copy_from_slice(&o[ki * cols_n + ni * ohw..ki * cols_n + (ni + 1) * ohw]);
            }
        }
        ws.recycle(o);

        if let Some(old) = self.cache.take() {
            ws.recycle_tensor(old.cols);
            ws.recycle_tensor(old.wq);
        }
        if mode.caches_backward() {
            self.cache = Some(Cache {
                cols: Tensor::from_buf(cols, &[f, cols_n]),
                // Snapshot the quantized weight the products actually used,
                // so backward stays correct even if the master weights (and
                // hence the memo) change in between.
                wq: ws.tensor_copy(&pw.wq, &[k, f]),
                input_h: h,
                input_w: w,
                batch: n,
            });
        } else {
            ws.recycle(cols);
        }
        out
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("Conv2d::backward before forward");
        let (input_h, input_w) = (cache.input_h, cache.input_w);
        let (n, k) = (grad_out.shape()[0], grad_out.shape()[1]);
        assert_eq!(
            n, cache.batch,
            "batch mismatch between forward and backward"
        );
        let (oh, ow) = (grad_out.shape()[2], grad_out.shape()[3]);
        let f = self.geo.in_channels * self.geo.kernel_h * self.geo.kernel_w;
        let (ohw, chw) = (oh * ow, self.geo.in_channels * input_h * input_w);
        let cols_n = n * ohw;

        // Reorder grad_out [n,k,oh,ow] -> [k, n·oh·ow] to match the batched
        // column layout.
        let mut go = ws.take_spare(k * cols_n);
        for ni in 0..n {
            for ki in 0..k {
                go[ki * cols_n + ni * ohw..ki * cols_n + (ni + 1) * ohw].copy_from_slice(
                    &grad_out.data()[(ni * k + ki) * ohw..(ni * k + ki + 1) * ohw],
                );
            }
        }

        // dW += go [k, n·oh·ow] x cols^T — one batched product.
        let mut dw = ws.take_zeroed(k * f);
        matmul_a_bt_ws(k, cols_n, f, &go, cache.cols.data(), &mut dw, ws);
        // dcols = wq^T [f,k] x go [k, n·oh·ow], against the forward's own
        // weight snapshot.
        let mut dcols = ws.take_zeroed(f * cols_n);
        matmul_at_b_ws(k, f, cols_n, cache.wq.data(), &go, &mut dcols, ws);
        let mut grad_in = ws.tensor_zeroed(&[n, self.geo.in_channels, input_h, input_w]);
        for ni in 0..n {
            col2im_add_into(
                &dcols,
                cols_n,
                ni * ohw,
                &self.geo,
                input_h,
                input_w,
                &mut grad_in.data_mut()[ni * chw..(ni + 1) * chw],
            );
        }
        if let Some(b) = &mut self.bias {
            for ki in 0..k {
                for ni in 0..n {
                    let s: f32 = go[ki * cols_n + ni * ohw..ki * cols_n + (ni + 1) * ohw]
                        .iter()
                        .sum();
                    b.grad.data_mut()[ki] += s;
                }
            }
        }
        ws.recycle(go);
        ws.recycle(dcols);
        // Straight-through: gradient w.r.t. the fp32 master weights equals the
        // gradient w.r.t. the quantized weights.
        for (g, d) in self.weight.grad.data_mut().iter_mut().zip(&dw) {
            *g += d;
        }
        ws.recycle(dw);
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        // Handing out `&mut Param` means the master weights may change under
        // the memo — every prepacked precision is stale.
        self.packs.clear();
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn set_precision(&mut self, p: Option<Precision>) {
        self.precision = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_quant::PrecisionSet;

    fn finite_diff_input_grad() -> (f32, f32) {
        // Compare analytic input gradient against finite differences on a
        // scalar loss sum(conv(x)).
        let mut rng = SeededRng::new(10);
        let geo = Conv2dGeometry::new(2, 3, 3, 1, 1);
        let mut conv = Conv2d::new(geo, true, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train);
        let g = Tensor::ones(y.shape());
        let gx = conv.backward(&g);
        // finite diff at a fixed coordinate
        let idx = 7;
        let eps = 1e-3;
        let mut xp = x.clone();
        xp.data_mut()[idx] += eps;
        let mut xm = x.clone();
        xm.data_mut()[idx] -= eps;
        let yp = conv.forward(&xp, Mode::Train).sum();
        let ym = conv.forward(&xm, Mode::Train).sum();
        ((yp - ym) / (2.0 * eps), gx.data()[idx])
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let (fd, an) = finite_diff_input_grad();
        assert!((fd - an).abs() < 1e-2, "fd {} vs analytic {}", fd, an);
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = SeededRng::new(11);
        let geo = Conv2dGeometry::new(1, 2, 3, 1, 1);
        let mut conv = Conv2d::new(geo, false, &mut rng);
        let x = Tensor::randn(&[2, 1, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train);
        conv.zero_grad();
        let g = Tensor::ones(y.shape());
        let _ = conv.backward(&g);
        let mut analytic = 0.0;
        conv.visit_params(&mut |p| {
            if p.decay {
                analytic = p.grad.data()[3];
            }
        });
        let eps = 1e-3;
        let get_loss = |delta: f32, conv: &mut Conv2d| {
            conv.visit_params(&mut |p| {
                if p.decay {
                    p.value.data_mut()[3] += delta;
                }
            });
            let l = conv.forward(&x, Mode::Train).sum();
            conv.visit_params(&mut |p| {
                if p.decay {
                    p.value.data_mut()[3] -= delta;
                }
            });
            l
        };
        let fd = (get_loss(eps, &mut conv) - get_loss(-eps, &mut conv)) / (2.0 * eps);
        assert!(
            (fd - analytic).abs() < 5e-2,
            "fd {} vs analytic {}",
            fd,
            analytic
        );
    }

    #[test]
    fn output_shape() {
        let mut rng = SeededRng::new(1);
        let geo = Conv2dGeometry::new(3, 8, 3, 2, 1);
        let mut conv = Conv2d::new(geo, true, &mut rng);
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 8, 4, 4]);
    }

    #[test]
    fn quantized_forward_differs_from_full_precision() {
        let mut rng = SeededRng::new(5);
        let geo = Conv2dGeometry::new(3, 4, 3, 1, 1);
        let mut conv = Conv2d::new(geo, false, &mut rng);
        let x = Tensor::rand_uniform(&[1, 3, 6, 6], 0.0, 1.0, &mut rng);
        let y_fp = conv.forward(&x, Mode::Eval);
        conv.set_precision(Some(Precision::new(4)));
        let y_q4 = conv.forward(&x, Mode::Eval);
        conv.set_precision(Some(Precision::new(8)));
        let y_q8 = conv.forward(&x, Mode::Eval);
        let d4 = y_fp.sub(&y_q4).norm();
        let d8 = y_fp.sub(&y_q8).norm();
        assert!(
            d4 > d8,
            "lower precision should deviate more: {} vs {}",
            d4,
            d8
        );
        assert!(d8 > 0.0);
    }

    #[test]
    fn bias_gradient_sums_spatial() {
        let mut rng = SeededRng::new(2);
        let geo = Conv2dGeometry::new(1, 1, 1, 1, 0);
        let mut conv = Conv2d::new(geo, true, &mut rng);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv.forward(&x, Mode::Train);
        let _ = conv.backward(&Tensor::ones(y.shape()));
        let mut bias_grad = 0.0;
        conv.visit_params(&mut |p| {
            if !p.decay {
                bias_grad = p.grad.data()[0];
            }
        });
        assert_eq!(bias_grad, 4.0);
    }

    #[test]
    fn batched_forward_bitwise_equals_per_sample() {
        // The batched single-GEMM path must reproduce batch-of-one forwards
        // bit for bit at every candidate precision and fp32 — the conv-level
        // statement of the engine's batched-vs-per-sample identity.
        let mut rng = SeededRng::new(21);
        let geo = Conv2dGeometry::new(3, 5, 3, 2, 1);
        let mut conv = Conv2d::new(geo, true, &mut rng);
        let x = Tensor::rand_uniform(&[6, 3, 9, 9], 0.0, 1.0, &mut rng);
        let precisions: Vec<Option<Precision>> = std::iter::once(None)
            .chain(PrecisionSet::range(4, 8).iter().map(Some))
            .collect();
        for &p in &precisions {
            conv.set_precision(p);
            let batched = conv.forward(&x, Mode::Infer);
            for i in 0..x.shape()[0] {
                let img = x.index_axis0(i);
                let one = conv.forward(&img.reshape(&[1, 3, 9, 9]), Mode::Infer);
                let got: Vec<u32> = batched
                    .index_axis0(i)
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let want: Vec<u32> = one.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "sample {} at {:?} not bitwise equal", i, p);
            }
        }
    }

    #[test]
    fn infer_mode_skips_backward_cache() {
        let mut rng = SeededRng::new(22);
        let geo = Conv2dGeometry::new(2, 2, 3, 1, 1);
        let mut conv = Conv2d::new(geo, false, &mut rng);
        let x = Tensor::rand_uniform(&[2, 2, 5, 5], 0.0, 1.0, &mut rng);
        let _ = conv.forward(&x, Mode::Infer);
        assert!(conv.cache.is_none(), "Infer must not retain columns");
        let _ = conv.forward(&x, Mode::Eval);
        assert!(conv.cache.is_some(), "Eval must retain columns for attacks");
    }

    #[test]
    fn prepacked_weights_memoize_per_precision_and_invalidate() {
        let mut rng = SeededRng::new(23);
        let geo = Conv2dGeometry::new(2, 3, 3, 1, 1);
        let mut conv = Conv2d::new(geo, false, &mut rng);
        let x = Tensor::rand_uniform(&[1, 2, 5, 5], 0.0, 1.0, &mut rng);
        for bits in [4u8, 6, 8, 4, 6, 8] {
            conv.set_precision(Some(Precision::new(bits)));
            let _ = conv.forward(&x, Mode::Infer);
        }
        assert_eq!(conv.packed_precisions(), 3, "one entry per precision");
        conv.set_precision(Some(Precision::new(4)));
        let before = conv.forward(&x, Mode::Infer);
        // Mutating the weights through visit_params must invalidate.
        conv.visit_params(&mut |p| {
            if p.decay {
                p.value.data_mut()[0] += 1.0;
            }
        });
        assert_eq!(conv.packed_precisions(), 0, "visit_params clears memo");
        let after = conv.forward(&x, Mode::Infer);
        assert!(
            before.sub(&after).norm() > 0.0,
            "stale packed weights served after mutation"
        );
    }
}
