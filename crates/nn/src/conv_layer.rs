//! Quantization-aware 2-D convolution layer.

use crate::layer::{Layer, Mode, Param};
use tia_quant::{fake_quant_affine, fake_quant_symmetric, Precision};
use tia_tensor::{col2im, im2col, matmul_a_bt, matmul_at_b, Conv2dGeometry, SeededRng, Tensor};

/// A 2-D convolution with optional fake quantization of weights and input
/// activations.
///
/// When a precision is set (via [`Layer::set_precision`]), the forward pass
/// computes with `Q_b(W)` and `Q_b(X)` — symmetric per-tensor quantization for
/// weights, affine for activations — exactly the in-situ precision switch of
/// the paper. The backward pass uses the straight-through estimator: the
/// quantized values participate in the products, but gradients flow through
/// the rounding unchanged.
#[derive(Debug, Clone)]
pub struct Conv2d {
    geo: Conv2dGeometry,
    weight: Param,
    bias: Option<Param>,
    precision: Option<Precision>,
    // Backward cache from the most recent forward.
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    /// Quantized (or raw) input columns per batch item: `[C*KH*KW, OH*OW]`.
    cols: Vec<Tensor>,
    /// Quantized (or raw) weight matrix used in the products `[K, C*KH*KW]`.
    wq: Tensor,
    input_h: usize,
    input_w: usize,
    batch: usize,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialised weights.
    pub fn new(geo: Conv2dGeometry, bias: bool, rng: &mut SeededRng) -> Self {
        let fan_in = geo.in_channels * geo.kernel_h * geo.kernel_w;
        let weight = Tensor::kaiming(
            &[
                geo.out_channels,
                geo.in_channels,
                geo.kernel_h,
                geo.kernel_w,
            ],
            fan_in,
            rng,
        );
        let bias = bias.then(|| Param::new(Tensor::zeros(&[geo.out_channels]), false));
        Self {
            geo,
            weight: Param::new(weight, true),
            bias,
            precision: None,
            cache: None,
        }
    }

    /// The convolution geometry.
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geo
    }

    fn weight_matrix(&self) -> Tensor {
        let k = self.geo.out_channels;
        let f = self.geo.in_channels * self.geo.kernel_h * self.geo.kernel_w;
        let w = self.weight.value.reshape(&[k, f]);
        match self.precision {
            Some(p) => fake_quant_symmetric(&w, p),
            None => w,
        }
    }
}

impl Layer for Conv2d {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward(&mut self, x: &Tensor, _mode: Mode) -> Tensor {
        assert_eq!(x.shape().len(), 4, "Conv2d expects NCHW input");
        let (n, _c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = self.geo.output_hw(h, w);
        let k = self.geo.out_channels;
        let f = self.geo.in_channels * self.geo.kernel_h * self.geo.kernel_w;
        let wq = self.weight_matrix();
        let mut out = Tensor::zeros(&[n, k, oh, ow]);
        let mut cols_cache = Vec::with_capacity(n);
        for ni in 0..n {
            let img = x.index_axis0(ni);
            let img_q = match self.precision {
                Some(p) => fake_quant_affine(&img, p).0,
                None => img,
            };
            let cols = im2col(&img_q, &self.geo);
            // out[ni] = wq [k,f] x cols [f, oh*ow]
            let mut o = vec![0.0f32; k * oh * ow];
            tia_tensor::gemm(k, f, oh * ow, wq.data(), cols.data(), &mut o);
            if let Some(b) = &self.bias {
                for ki in 0..k {
                    let bv = b.value.data()[ki];
                    for v in &mut o[ki * oh * ow..(ki + 1) * oh * ow] {
                        *v += bv;
                    }
                }
            }
            out.set_axis0(ni, &Tensor::from_vec(o, &[k, oh, ow]));
            cols_cache.push(cols);
        }
        self.cache = Some(Cache {
            cols: cols_cache,
            wq,
            input_h: h,
            input_w: w,
            batch: n,
        });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("Conv2d::backward before forward");
        let (n, k) = (grad_out.shape()[0], grad_out.shape()[1]);
        assert_eq!(
            n, cache.batch,
            "batch mismatch between forward and backward"
        );
        let (oh, ow) = (grad_out.shape()[2], grad_out.shape()[3]);
        let f = self.geo.in_channels * self.geo.kernel_h * self.geo.kernel_w;
        let mut grad_in = Tensor::zeros(&[n, self.geo.in_channels, cache.input_h, cache.input_w]);
        let mut dw = vec![0.0f32; k * f];
        for ni in 0..n {
            let go = grad_out.index_axis0(ni); // [k, oh, ow]
            let cols = &cache.cols[ni]; // [f, oh*ow]
                                        // dW += go [k, oh*ow] x cols^T [oh*ow, f]  => matmul_a_bt(k, oh*ow, f)
            matmul_a_bt(k, oh * ow, f, go.data(), cols.data(), &mut dw);
            // dcols = wq^T [f,k] x go [k, oh*ow]  => matmul_at_b(k, f, oh*ow)
            let mut dcols = vec![0.0f32; f * oh * ow];
            matmul_at_b(k, f, oh * ow, cache.wq.data(), go.data(), &mut dcols);
            let dimg = col2im(
                &Tensor::from_vec(dcols, &[f, oh * ow]),
                &self.geo,
                cache.input_h,
                cache.input_w,
            );
            grad_in.set_axis0(ni, &dimg);
            if let Some(b) = &mut self.bias {
                for ki in 0..k {
                    let s: f32 = go.data()[ki * oh * ow..(ki + 1) * oh * ow].iter().sum();
                    b.grad.data_mut()[ki] += s;
                }
            }
        }
        // Straight-through: gradient w.r.t. the fp32 master weights equals the
        // gradient w.r.t. the quantized weights.
        let dwt = Tensor::from_vec(dw, self.weight.value.shape());
        self.weight.grad.add_assign(&dwt);
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }

    fn set_precision(&mut self, p: Option<Precision>) {
        self.precision = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_input_grad() -> (f32, f32) {
        // Compare analytic input gradient against finite differences on a
        // scalar loss sum(conv(x)).
        let mut rng = SeededRng::new(10);
        let geo = Conv2dGeometry::new(2, 3, 3, 1, 1);
        let mut conv = Conv2d::new(geo, true, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train);
        let g = Tensor::ones(y.shape());
        let gx = conv.backward(&g);
        // finite diff at a fixed coordinate
        let idx = 7;
        let eps = 1e-3;
        let mut xp = x.clone();
        xp.data_mut()[idx] += eps;
        let mut xm = x.clone();
        xm.data_mut()[idx] -= eps;
        let yp = conv.forward(&xp, Mode::Train).sum();
        let ym = conv.forward(&xm, Mode::Train).sum();
        ((yp - ym) / (2.0 * eps), gx.data()[idx])
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let (fd, an) = finite_diff_input_grad();
        assert!((fd - an).abs() < 1e-2, "fd {} vs analytic {}", fd, an);
    }

    #[test]
    fn weight_gradient_matches_finite_difference() {
        let mut rng = SeededRng::new(11);
        let geo = Conv2dGeometry::new(1, 2, 3, 1, 1);
        let mut conv = Conv2d::new(geo, false, &mut rng);
        let x = Tensor::randn(&[2, 1, 4, 4], 1.0, &mut rng);
        let y = conv.forward(&x, Mode::Train);
        conv.zero_grad();
        let g = Tensor::ones(y.shape());
        let _ = conv.backward(&g);
        let mut analytic = 0.0;
        conv.visit_params(&mut |p| {
            if p.decay {
                analytic = p.grad.data()[3];
            }
        });
        let eps = 1e-3;
        let get_loss = |delta: f32, conv: &mut Conv2d| {
            conv.visit_params(&mut |p| {
                if p.decay {
                    p.value.data_mut()[3] += delta;
                }
            });
            let l = conv.forward(&x, Mode::Train).sum();
            conv.visit_params(&mut |p| {
                if p.decay {
                    p.value.data_mut()[3] -= delta;
                }
            });
            l
        };
        let fd = (get_loss(eps, &mut conv) - get_loss(-eps, &mut conv)) / (2.0 * eps);
        assert!(
            (fd - analytic).abs() < 5e-2,
            "fd {} vs analytic {}",
            fd,
            analytic
        );
    }

    #[test]
    fn output_shape() {
        let mut rng = SeededRng::new(1);
        let geo = Conv2dGeometry::new(3, 8, 3, 2, 1);
        let mut conv = Conv2d::new(geo, true, &mut rng);
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 8, 4, 4]);
    }

    #[test]
    fn quantized_forward_differs_from_full_precision() {
        let mut rng = SeededRng::new(5);
        let geo = Conv2dGeometry::new(3, 4, 3, 1, 1);
        let mut conv = Conv2d::new(geo, false, &mut rng);
        let x = Tensor::rand_uniform(&[1, 3, 6, 6], 0.0, 1.0, &mut rng);
        let y_fp = conv.forward(&x, Mode::Eval);
        conv.set_precision(Some(Precision::new(4)));
        let y_q4 = conv.forward(&x, Mode::Eval);
        conv.set_precision(Some(Precision::new(8)));
        let y_q8 = conv.forward(&x, Mode::Eval);
        let d4 = y_fp.sub(&y_q4).norm();
        let d8 = y_fp.sub(&y_q8).norm();
        assert!(
            d4 > d8,
            "lower precision should deviate more: {} vs {}",
            d4,
            d8
        );
        assert!(d8 > 0.0);
    }

    #[test]
    fn bias_gradient_sums_spatial() {
        let mut rng = SeededRng::new(2);
        let geo = Conv2dGeometry::new(1, 1, 1, 1, 0);
        let mut conv = Conv2d::new(geo, true, &mut rng);
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv.forward(&x, Mode::Train);
        let _ = conv.backward(&Tensor::ones(y.shape()));
        let mut bias_grad = 0.0;
        conv.visit_params(&mut |p| {
            if !p.decay {
                bias_grad = p.grad.data()[0];
            }
        });
        assert_eq!(bias_grad, 4.0);
    }
}
