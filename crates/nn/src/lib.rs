//! # tia-nn
//!
//! From-scratch neural-network substrate for the 2-in-1 Accelerator
//! reproduction: layers with explicit forward/backward, quantization-aware
//! convolution/linear layers (straight-through estimator), **switchable
//! batch normalization** (the SBN of the paper's §2.4), residual model zoo
//! (PreActResNet-18, WideResNet-32, ResNet-50, AlexNet, VGG-16), SGD, and
//! full-size layer-shape workload tables consumed by the accelerator
//! simulator.
//!
//! The design is layer-graph (not tape autograd): each layer caches what its
//! backward needs, and [`Network::backward`] returns the gradient with
//! respect to the *input*, which is exactly what gradient-based adversarial
//! attacks (FGSM/PGD/CW) consume.
//!
//! # Example
//!
//! ```
//! use tia_nn::{Mode, zoo};
//! use tia_tensor::{Tensor, SeededRng};
//!
//! let mut rng = SeededRng::new(0);
//! let mut net = zoo::preact_resnet18_lite(3, 8, 4, &mut rng);
//! let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
//! let logits = net.forward(&x, Mode::Eval);
//! assert_eq!(logits.shape(), &[2, 4]);
//! ```

#![deny(missing_docs)]

mod act;
mod bn;
mod conv_layer;
mod flatten;
mod fold;
mod layer;
mod linear;
mod loss;
mod network;
mod pack_memo;
mod pool_layer;
mod residual;
mod sgd;
pub mod workload;
pub mod zoo;

pub use act::ReLU;
pub use bn::{BatchNorm2d, SwitchableBatchNorm};
pub use conv_layer::Conv2d;
pub use flatten::Flatten;
pub use fold::FoldedBn;
pub use layer::{Layer, Mode, Param};
pub use linear::Linear;
pub use loss::{cross_entropy, cw_margin_loss, LossGrad};
pub use network::Network;
pub use pool_layer::{AvgPool2d, GlobalAvgPool, MaxPool2d};
pub use residual::PreActBlock;
pub use sgd::Sgd;
pub use workload::{LayerKind, LayerSpec, NetworkSpec};
