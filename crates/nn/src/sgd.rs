//! Stochastic gradient descent with momentum and decoupled weight decay.

use crate::network::Network;

/// SGD optimizer configuration. Follows the training setups of Madry et al.
/// and Wong et al. used in the paper (momentum 0.9, weight decay on conv/fc
/// weights only).
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay applied to parameters flagged `decay`.
    pub weight_decay: f32,
}

impl Sgd {
    /// Creates an optimizer with the common defaults (momentum 0.9,
    /// weight decay 5e-4).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.9,
            weight_decay: 5e-4,
        }
    }

    /// Applies one update step to every parameter of `net` using the
    /// currently accumulated gradients, then zeroes the gradients.
    pub fn step(&self, net: &mut Network) {
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        net.visit_params(&mut |p| {
            let n = p.value.len();
            for i in 0..n {
                let mut g = p.grad.data()[i];
                if p.decay {
                    g += wd * p.value.data()[i];
                }
                let v = mu * p.velocity.data()[i] + g;
                p.velocity.data_mut()[i] = v;
                p.value.data_mut()[i] -= lr * v;
            }
        });
        net.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::Flatten;
    use crate::layer::Mode;
    use crate::linear::Linear;
    use tia_tensor::{SeededRng, Tensor};

    #[test]
    fn sgd_trains_linear_classifier() {
        let mut rng = SeededRng::new(7);
        let mut net = Network::new();
        net.push(Box::new(Flatten::new()));
        net.push(Box::new(Linear::new(4, 2, true, &mut rng)));
        // Two separable clusters.
        let mut xs = vec![];
        let mut labels = vec![];
        for i in 0..16 {
            let cls = i % 2;
            let base = if cls == 0 { 1.0 } else { -1.0 };
            xs.push(Tensor::from_vec(
                (0..4).map(|_| base + 0.1 * rng.normal()).collect(),
                &[1, 4, 1, 1],
            ));
            labels.push(cls);
        }
        let x = Tensor::stack(&xs).reshape(&[16, 4, 1, 1]);
        let opt = Sgd::new(0.1);
        let (loss0, _) = net.loss_and_input_grad(&x, &labels, Mode::Train);
        net.zero_grad();
        for _ in 0..40 {
            let _ = net.loss_and_input_grad(&x, &labels, Mode::Train);
            opt.step(&mut net);
        }
        let (loss1, _) = net.loss_and_input_grad(&x, &labels, Mode::Train);
        assert!(loss1 < loss0 * 0.2, "{} -> {}", loss0, loss1);
        assert_eq!(net.correct_count(&x, &labels), 16);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut rng = SeededRng::new(8);
        let mut net = Network::new();
        net.push(Box::new(Flatten::new()));
        net.push(Box::new(Linear::new(2, 2, false, &mut rng)));
        let x = Tensor::ones(&[1, 2, 1, 1]);
        let _ = net.loss_and_input_grad(&x, &[0], Mode::Train);
        Sgd::new(0.01).step(&mut net);
        let mut g = 0.0;
        net.visit_params(&mut |p| g += p.grad.norm());
        assert_eq!(g, 0.0);
    }
}
