//! Pre-activation residual block (He et al., ECCV'16), the building block of
//! PreActResNet-18 and WideResNet used throughout the paper's algorithm
//! experiments.

use crate::act::ReLU;
use crate::conv_layer::Conv2d;
use crate::layer::{Layer, Mode, Param};
use tia_quant::Precision;
use tia_tensor::{Conv2dGeometry, SeededRng, Tensor, Workspace};

/// A pre-activation residual block:
///
/// ```text
/// y = conv2(relu(bn2(conv1(relu(bn1(x)))))) + shortcut
/// ```
///
/// where `shortcut` is the identity when shapes match, or a strided 1×1
/// convolution applied to the pre-activated input when downsampling /
/// widening (the PreActResNet convention).
#[derive(Debug, Clone)]
pub struct PreActBlock {
    bn1: Box<dyn Layer>,
    relu1: ReLU,
    conv1: Conv2d,
    bn2: Box<dyn Layer>,
    relu2: ReLU,
    conv2: Conv2d,
    shortcut: Option<Conv2d>,
}

impl PreActBlock {
    /// Creates a block mapping `in_ch -> out_ch` with the given stride.
    /// `bn` constructs the normalization layers (plain BN or SBN).
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        bn: &dyn Fn(usize) -> Box<dyn Layer>,
        rng: &mut SeededRng,
    ) -> Self {
        let conv1 = Conv2d::new(Conv2dGeometry::new(in_ch, out_ch, 3, stride, 1), false, rng);
        let conv2 = Conv2d::new(Conv2dGeometry::new(out_ch, out_ch, 3, 1, 1), false, rng);
        let shortcut = (stride != 1 || in_ch != out_ch)
            .then(|| Conv2d::new(Conv2dGeometry::new(in_ch, out_ch, 1, stride, 0), false, rng));
        Self {
            bn1: bn(in_ch),
            relu1: ReLU::new(),
            conv1,
            bn2: bn(out_ch),
            relu2: ReLU::new(),
            conv2,
            shortcut,
        }
    }

    /// Whether the block has a projection shortcut.
    pub fn has_projection(&self) -> bool {
        self.shortcut.is_some()
    }
}

impl Layer for PreActBlock {
    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn forward_ws(&mut self, x: &Tensor, mode: Mode, ws: &mut Workspace) -> Tensor {
        let out1 = self.bn1.forward_ws(x, mode, ws);
        let a1 = self.relu1.forward_ws(&out1, mode, ws);
        ws.recycle_tensor(out1);
        let sc = self
            .shortcut
            .as_mut()
            .map(|conv_sc| conv_sc.forward_ws(&a1, mode, ws));
        let h = self.conv1.forward_ws(&a1, mode, ws);
        ws.recycle_tensor(a1);
        let out2 = self.bn2.forward_ws(&h, mode, ws);
        ws.recycle_tensor(h);
        let a2 = self.relu2.forward_ws(&out2, mode, ws);
        ws.recycle_tensor(out2);
        let mut main = self.conv2.forward_ws(&a2, mode, ws);
        ws.recycle_tensor(a2);
        match sc {
            Some(sc) => {
                main.add_assign(&sc);
                ws.recycle_tensor(sc);
            }
            None => main.add_assign(x), // identity shortcut, no clone
        }
        main
    }

    fn backward_ws(&mut self, grad_out: &Tensor, ws: &mut Workspace) -> Tensor {
        // Main path.
        let d_a2 = self.conv2.backward_ws(grad_out, ws);
        let d_out2 = self.relu2.backward_ws(&d_a2, ws);
        ws.recycle_tensor(d_a2);
        let d_h = self.bn2.backward_ws(&d_out2, ws);
        ws.recycle_tensor(d_out2);
        let d_a1_main = self.conv1.backward_ws(&d_h, ws);
        ws.recycle_tensor(d_h);
        match &mut self.shortcut {
            Some(conv_sc) => {
                let mut d_a1 = conv_sc.backward_ws(grad_out, ws);
                d_a1.add_assign(&d_a1_main);
                ws.recycle_tensor(d_a1_main);
                let d_out1 = self.relu1.backward_ws(&d_a1, ws);
                ws.recycle_tensor(d_a1);
                let out = self.bn1.backward_ws(&d_out1, ws);
                ws.recycle_tensor(d_out1);
                out
            }
            None => {
                let d_out1 = self.relu1.backward_ws(&d_a1_main, ws);
                ws.recycle_tensor(d_a1_main);
                let mut dx = self.bn1.backward_ws(&d_out1, ws);
                ws.recycle_tensor(d_out1);
                dx.add_assign(grad_out); // identity shortcut
                dx
            }
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.bn1.visit_params(f);
        self.conv1.visit_params(f);
        self.bn2.visit_params(f);
        self.conv2.visit_params(f);
        if let Some(sc) = &mut self.shortcut {
            sc.visit_params(f);
        }
    }

    fn set_precision(&mut self, p: Option<Precision>) {
        self.bn1.set_precision(p);
        self.conv1.set_precision(p);
        self.bn2.set_precision(p);
        self.conv2.set_precision(p);
        if let Some(sc) = &mut self.shortcut {
            sc.set_precision(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bn::BatchNorm2d;

    fn plain_bn(c: usize) -> Box<dyn Layer> {
        Box::new(BatchNorm2d::new(c))
    }

    #[test]
    fn identity_block_shapes() {
        let mut rng = SeededRng::new(1);
        let mut b = PreActBlock::new(4, 4, 1, &plain_bn, &mut rng);
        assert!(!b.has_projection());
        let x = Tensor::randn(&[2, 4, 6, 6], 1.0, &mut rng);
        let y = b.forward(&x, Mode::Train);
        assert_eq!(y.shape(), x.shape());
        let gx = b.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn downsample_block_shapes() {
        let mut rng = SeededRng::new(2);
        let mut b = PreActBlock::new(4, 8, 2, &plain_bn, &mut rng);
        assert!(b.has_projection());
        let x = Tensor::randn(&[1, 4, 8, 8], 1.0, &mut rng);
        let y = b.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 8, 4, 4]);
        let gx = b.backward(&Tensor::ones(y.shape()));
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = SeededRng::new(3);
        let mut b = PreActBlock::new(2, 2, 1, &plain_bn, &mut rng);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        // Use eval mode so BN is a per-sample-independent linear map and
        // finite differences are clean.
        let _ = b.forward(&x, Mode::Eval);
        let gx = b.backward(&w);
        let eps = 1e-3;
        for idx in [0usize, 9, 21] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lp = b.forward(&xp, Mode::Eval).mul(&w).sum();
            let lm = b.forward(&xm, Mode::Eval).mul(&w).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - gx.data()[idx]).abs() < 3e-2,
                "idx {}: fd {} vs analytic {}",
                idx,
                fd,
                gx.data()[idx]
            );
        }
    }

    #[test]
    fn precision_propagates_to_subconvs() {
        let mut rng = SeededRng::new(4);
        let mut b = PreActBlock::new(2, 2, 1, &plain_bn, &mut rng);
        let x = Tensor::rand_uniform(&[1, 2, 4, 4], 0.0, 1.0, &mut rng);
        let y_fp = b.forward(&x, Mode::Eval);
        b.set_precision(Some(Precision::new(3)));
        let y_q = b.forward(&x, Mode::Eval);
        assert!(
            y_fp.sub(&y_q).norm() > 0.0,
            "quantization must change output"
        );
    }
}
