//! The attack-facing model abstraction, now a thin view over the engine's
//! [`Backend`].

use tia_engine::Backend;
use tia_quant::Precision;
use tia_tensor::Tensor;

pub use tia_engine::LossKind;

/// A model that attacks can query: logits, input gradients, and an in-situ
/// precision switch.
///
/// Since the `tia-engine` redesign this trait is implemented *blanket* for
/// every [`Backend`] — `tia_nn::Network`, `tia_engine::SimBacked`, and any
/// future sharded/remote executor — so attacks automatically target
/// whatever the serving engine runs. All queries run in evaluation mode
/// (frozen BN statistics), as attacks do at inference time.
pub trait TargetModel {
    /// Class logits for a batch at the model's current precision.
    fn logits(&mut self, x: &Tensor) -> Tensor;

    /// `(loss, d loss / d x)` for the given loss kind.
    fn loss_and_input_grad(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        loss: LossKind,
    ) -> (f32, Tensor);

    /// Loss only (black-box attacks). Default routes through the gradient
    /// path; implementations may override with something cheaper.
    fn loss_value(&mut self, x: &Tensor, labels: &[usize], loss: LossKind) -> f32 {
        self.loss_and_input_grad(x, labels, loss).0
    }

    /// Switches the execution precision (None = full precision).
    fn set_precision(&mut self, p: Option<Precision>);

    /// The currently active precision.
    fn precision(&self) -> Option<Precision>;

    /// Top-1 correct count on a batch (convenience for robust accuracy).
    fn correct_count(&mut self, x: &Tensor, labels: &[usize]) -> usize {
        let logits = self.logits(x);
        tia_tensor::count_top1_correct(&logits, labels)
    }
}

impl<B: Backend> TargetModel for B {
    fn logits(&mut self, x: &Tensor) -> Tensor {
        let p = Backend::precision(self);
        self.infer_batch(x, p)
    }

    fn loss_and_input_grad(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        loss: LossKind,
    ) -> (f32, Tensor) {
        Backend::loss_and_input_grad(self, x, labels, loss)
    }

    fn loss_value(&mut self, x: &Tensor, labels: &[usize], loss: LossKind) -> f32 {
        Backend::loss_value(self, x, labels, loss)
    }

    fn set_precision(&mut self, p: Option<Precision>) {
        Backend::set_precision(self, p);
    }

    fn precision(&self) -> Option<Precision> {
        Backend::precision(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_nn::zoo;
    use tia_tensor::SeededRng;

    #[test]
    fn network_implements_target_model() {
        let mut rng = SeededRng::new(1);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let m: &mut dyn TargetModel = &mut net;
        let logits = m.logits(&x);
        assert_eq!(logits.shape(), &[2, 3]);
        let (loss, gx) = m.loss_and_input_grad(&x, &[0, 1], LossKind::CrossEntropy);
        assert!(loss.is_finite());
        assert_eq!(gx.shape(), x.shape());
        assert!(m.correct_count(&x, &[0, 1]) <= 2);
    }

    #[test]
    fn attack_grad_queries_leave_param_grads_clean() {
        let mut rng = SeededRng::new(2);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let x = Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, &mut rng);
        let _ = TargetModel::loss_and_input_grad(&mut net, &x, &[0], LossKind::CrossEntropy);
        let mut g = 0.0;
        net.visit_params(&mut |p| g += p.grad.norm());
        assert_eq!(g, 0.0, "attack queries must not leave parameter gradients");
    }

    #[test]
    fn precision_switch_via_trait() {
        let mut rng = SeededRng::new(3);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let m: &mut dyn TargetModel = &mut net;
        m.set_precision(Some(Precision::new(4)));
        assert_eq!(m.precision(), Some(Precision::new(4)));
    }

    #[test]
    fn sim_backed_is_attackable() {
        use tia_engine::SimBacked;
        use tia_nn::workload::NetworkSpec;
        use tia_sim::Accelerator;
        let mut rng = SeededRng::new(4);
        let net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let mut sim = SimBacked::new(net, Accelerator::ours(), NetworkSpec::resnet18_cifar());
        let x = Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, &mut rng);
        let m: &mut dyn TargetModel = &mut sim;
        let (loss, gx) = m.loss_and_input_grad(&x, &[0], LossKind::CwMargin);
        assert!(loss.is_finite());
        assert_eq!(gx.shape(), x.shape());
    }
}
