//! The attack-facing model abstraction.

use tia_nn::{cross_entropy, cw_margin_loss, Mode, Network};
use tia_quant::Precision;
use tia_tensor::Tensor;

/// Which scalar loss an attack climbs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossKind {
    /// Cross-entropy (FGSM/PGD/APGD/Bandits/E-PGD).
    CrossEntropy,
    /// Carlini-Wagner margin `max_{j≠y} z_j − z_y` (CW-∞).
    CwMargin,
}

/// A model that attacks can query: logits, input gradients, and an in-situ
/// precision switch.
///
/// Implemented for [`tia_nn::Network`]; the RPS harness in `tia-core` wraps
/// networks through this trait so attacks never see training internals.
/// All queries run in evaluation mode (frozen BN statistics), as attacks do
/// at inference time.
pub trait TargetModel {
    /// Class logits for a batch.
    fn logits(&mut self, x: &Tensor) -> Tensor;

    /// `(loss, d loss / d x)` for the given loss kind.
    fn loss_and_input_grad(&mut self, x: &Tensor, labels: &[usize], loss: LossKind)
        -> (f32, Tensor);

    /// Loss only (black-box attacks). Default routes through the gradient
    /// path; implementations may override with something cheaper.
    fn loss_value(&mut self, x: &Tensor, labels: &[usize], loss: LossKind) -> f32 {
        self.loss_and_input_grad(x, labels, loss).0
    }

    /// Switches the execution precision (None = full precision).
    fn set_precision(&mut self, p: Option<Precision>);

    /// The currently active precision.
    fn precision(&self) -> Option<Precision>;

    /// Top-1 correct count on a batch (convenience for robust accuracy).
    fn correct_count(&mut self, x: &Tensor, labels: &[usize]) -> usize {
        let logits = self.logits(x);
        let c = logits.shape()[1];
        labels
            .iter()
            .enumerate()
            .filter(|&(i, &y)| tia_tensor::argmax(&logits.data()[i * c..(i + 1) * c]) == y)
            .count()
    }
}

impl TargetModel for Network {
    fn logits(&mut self, x: &Tensor) -> Tensor {
        self.forward(x, Mode::Eval)
    }

    fn loss_and_input_grad(
        &mut self,
        x: &Tensor,
        labels: &[usize],
        loss: LossKind,
    ) -> (f32, Tensor) {
        // Attacks must not pollute parameter gradients used by training.
        self.zero_grad();
        let logits = self.forward(x, Mode::Eval);
        let lg = match loss {
            LossKind::CrossEntropy => cross_entropy(&logits, labels),
            LossKind::CwMargin => cw_margin_loss(&logits, labels),
        };
        let gx = self.backward(&lg.grad);
        self.zero_grad();
        (lg.loss, gx)
    }

    fn loss_value(&mut self, x: &Tensor, labels: &[usize], loss: LossKind) -> f32 {
        let logits = self.forward(x, Mode::Eval);
        match loss {
            LossKind::CrossEntropy => cross_entropy(&logits, labels).loss,
            LossKind::CwMargin => cw_margin_loss(&logits, labels).loss,
        }
    }

    fn set_precision(&mut self, p: Option<Precision>) {
        Network::set_precision(self, p);
    }

    fn precision(&self) -> Option<Precision> {
        Network::precision(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_nn::zoo;
    use tia_tensor::SeededRng;

    #[test]
    fn network_implements_target_model() {
        let mut rng = SeededRng::new(1);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let m: &mut dyn TargetModel = &mut net;
        let logits = m.logits(&x);
        assert_eq!(logits.shape(), &[2, 3]);
        let (loss, gx) = m.loss_and_input_grad(&x, &[0, 1], LossKind::CrossEntropy);
        assert!(loss.is_finite());
        assert_eq!(gx.shape(), x.shape());
        assert!(m.correct_count(&x, &[0, 1]) <= 2);
    }

    #[test]
    fn attack_grad_queries_leave_param_grads_clean() {
        let mut rng = SeededRng::new(2);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let x = Tensor::rand_uniform(&[1, 3, 8, 8], 0.0, 1.0, &mut rng);
        let _ = TargetModel::loss_and_input_grad(&mut net, &x, &[0], LossKind::CrossEntropy);
        let mut g = 0.0;
        net.visit_params(&mut |p| g += p.grad.norm());
        assert_eq!(g, 0.0, "attack queries must not leave parameter gradients");
    }

    #[test]
    fn precision_switch_via_trait() {
        let mut rng = SeededRng::new(3);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let m: &mut dyn TargetModel = &mut net;
        m.set_precision(Some(Precision::new(4)));
        assert_eq!(m.precision(), Some(Precision::new(4)));
    }
}
