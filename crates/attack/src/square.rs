//! Square attack (Andriushchenko et al., ECCV 2020): the score-based
//! random-search component of AutoAttack.
//!
//! At each round a random square patch is set to `±ε` per channel; the
//! change is kept only if it raises the margin loss. Entirely loss-based, so
//! — like Bandits — it is immune to gradient masking, and together with
//! [`crate::Apgd`] it gives this reproduction both halves of the AutoAttack
//! recipe (white-box APGD + black-box Square).

use crate::model::{LossKind, TargetModel};
use crate::{project, Attack};
use tia_tensor::{SeededRng, Tensor};

/// The Square random-search attack.
#[derive(Debug, Clone, Copy)]
pub struct Square {
    eps: f32,
    queries: usize,
    /// Initial fraction of the image side used for the square patch.
    p_init: f32,
}

impl Square {
    /// Creates a Square attack with the given loss-query budget.
    pub fn new(eps: f32, queries: usize) -> Self {
        Self {
            eps,
            queries,
            p_init: 0.8,
        }
    }

    fn attack_single(
        &self,
        model: &mut dyn TargetModel,
        x: &Tensor,
        label: usize,
        rng: &mut SeededRng,
    ) -> Tensor {
        let labels = [label];
        let (c, h, w) = (x.shape()[1], x.shape()[2], x.shape()[3]);
        // Initialize with vertical ±ε stripes (the paper's init).
        let mut adv = x.clone();
        for ci in 0..c {
            for xi in 0..w {
                let sign = rng.sign();
                for yi in 0..h {
                    *adv.at4_mut(0, ci, yi, xi) += sign * self.eps;
                }
            }
        }
        adv = project(x, &adv, self.eps);
        let mut best_loss = model.loss_value(&adv, &labels, LossKind::CwMargin);
        for q in 0..self.queries {
            // Square side shrinks over the budget (piecewise schedule).
            let frac = self.p_init * (1.0 - q as f32 / self.queries.max(1) as f32);
            let side = ((frac * h.min(w) as f32).sqrt().round() as usize).clamp(1, h.min(w));
            let oy = rng.below(h - side + 1);
            let ox = rng.below(w - side + 1);
            let mut cand = adv.clone();
            for ci in 0..c {
                let delta = rng.sign() * self.eps;
                for yi in oy..oy + side {
                    for xi in ox..ox + side {
                        *cand.at4_mut(0, ci, yi, xi) = x.at4(0, ci, yi, xi) + delta;
                    }
                }
            }
            let cand = project(x, &cand, self.eps);
            let l = model.loss_value(&cand, &labels, LossKind::CwMargin);
            if l > best_loss {
                best_loss = l;
                adv = cand;
            }
        }
        adv
    }
}

impl Attack for Square {
    fn name(&self) -> String {
        format!("Square-{}", self.queries)
    }

    fn epsilon(&self) -> f32 {
        self.eps
    }

    fn perturb(
        &self,
        model: &mut dyn TargetModel,
        x: &Tensor,
        labels: &[usize],
        rng: &mut SeededRng,
    ) -> Tensor {
        let n = x.shape()[0];
        assert_eq!(n, labels.len(), "label count mismatch");
        let mut out = Tensor::zeros(x.shape());
        #[allow(clippy::needless_range_loop)] // i indexes x, labels and out together
        for i in 0..n {
            let xi = x.index_axis0(i);
            let mut shape = vec![1usize];
            shape.extend_from_slice(xi.shape());
            let xi = xi.reshape(&shape);
            let adv = self.attack_single(model, &xi, labels[i], rng);
            out.set_axis0(i, &adv.index_axis0(0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_nn::zoo;

    const EPS: f32 = 16.0 / 255.0;

    #[test]
    fn square_stays_in_ball() {
        let mut rng = SeededRng::new(1);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let adv = Square::new(EPS, 10).perturb(&mut net, &x, &[0, 1], &mut rng);
        assert!(x.sub(&adv).abs_max() <= EPS + 1e-5);
        assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn square_raises_margin_loss_without_gradients() {
        let mut rng = SeededRng::new(2);
        let mut net = zoo::preact_resnet18_lite(3, 6, 3, &mut rng);
        let x = Tensor::rand_uniform(&[3, 3, 8, 8], 0.0, 1.0, &mut rng);
        let labels = vec![0, 1, 2];
        let clean = TargetModel::loss_value(&mut net, &x, &labels, LossKind::CwMargin);
        let adv = Square::new(EPS, 40).perturb(&mut net, &x, &labels, &mut rng);
        let attacked = TargetModel::loss_value(&mut net, &adv, &labels, LossKind::CwMargin);
        assert!(
            attacked > clean,
            "Square should raise margin loss: {} -> {}",
            clean,
            attacked
        );
    }

    #[test]
    fn name_and_eps() {
        let s = Square::new(EPS, 100);
        assert_eq!(s.name(), "Square-100");
        assert_eq!(s.epsilon(), EPS);
    }
}
