//! E-PGD: the paper's customized adaptive attack (§4.2.3).
//!
//! The adversary is assumed to *know the candidate precision set* of the RPS
//! defense and attacks the ensemble: at every PGD step the input gradient is
//! averaged over the model quantized to **every** precision in the set, so
//! the perturbation is aware of all precisions at once. This is the standard
//! "expectation over transformation" adaptive-attack recipe of Tramer et al.
//! 2020 applied to RPS.

use crate::model::{LossKind, TargetModel};
use crate::{project, Attack};
use tia_quant::PrecisionSet;
use tia_tensor::{SeededRng, Tensor};

/// Ensemble-PGD over a candidate precision set.
#[derive(Debug, Clone)]
pub struct EPgd {
    eps: f32,
    alpha: f32,
    steps: usize,
    set: PrecisionSet,
}

impl EPgd {
    /// Creates E-PGD-`steps` aware of `set`.
    pub fn new(eps: f32, steps: usize, set: PrecisionSet) -> Self {
        Self {
            eps,
            alpha: 2.5 * eps / steps.max(1) as f32,
            steps,
            set,
        }
    }

    /// The precision set the attack ensembles over.
    pub fn precision_set(&self) -> &PrecisionSet {
        &self.set
    }
}

impl Attack for EPgd {
    fn name(&self) -> String {
        format!("E-PGD-{}", self.steps)
    }

    fn epsilon(&self) -> f32 {
        self.eps
    }

    fn perturb(
        &self,
        model: &mut dyn TargetModel,
        x: &Tensor,
        labels: &[usize],
        rng: &mut SeededRng,
    ) -> Tensor {
        let saved = model.precision();
        let init = Tensor::rand_uniform(x.shape(), -self.eps, self.eps, rng);
        let mut adv = project(x, &x.add(&init), self.eps);
        let inv = 1.0 / self.set.len() as f32;
        for _ in 0..self.steps {
            let mut g = Tensor::zeros(x.shape());
            for p in self.set.iter() {
                model.set_precision(Some(p));
                let (_, gi) = model.loss_and_input_grad(&adv, labels, LossKind::CrossEntropy);
                g.axpy(inv, &gi);
            }
            let step = g.map(|v| self.alpha * v.signum());
            adv = project(x, &adv.add(&step), self.eps);
        }
        model.set_precision(saved);
        adv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_nn::zoo;
    use tia_quant::Precision;

    const EPS: f32 = 8.0 / 255.0;

    #[test]
    fn epgd_stays_in_ball_and_restores_precision() {
        let mut rng = SeededRng::new(5);
        let set = PrecisionSet::new(&[4, 8]);
        let mut net = zoo::preact_resnet18_rps(3, 4, 3, set.clone(), &mut rng);
        net.set_precision(Some(Precision::new(8)));
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let adv = EPgd::new(EPS, 5, set).perturb(&mut net, &x, &[0, 1], &mut rng);
        assert!(x.sub(&adv).abs_max() <= EPS + 1e-6);
        assert_eq!(
            net.precision(),
            Some(Precision::new(8)),
            "precision must be restored"
        );
    }

    #[test]
    fn epgd_raises_loss_across_precisions() {
        let mut rng = SeededRng::new(6);
        let set = PrecisionSet::new(&[4, 6, 8]);
        let mut net = zoo::preact_resnet18_rps(3, 6, 3, set.clone(), &mut rng);
        let x = Tensor::rand_uniform(&[3, 3, 8, 8], 0.0, 1.0, &mut rng);
        let labels = vec![0, 1, 2];
        let adv = EPgd::new(EPS, 10, set.clone()).perturb(&mut net, &x, &labels, &mut rng);
        // Averaged over the set, the adversarial loss must exceed clean loss.
        let mut clean = 0.0;
        let mut attacked = 0.0;
        for p in set.iter() {
            net.set_precision(Some(p));
            clean += TargetModel::loss_value(&mut net, &x, &labels, LossKind::CrossEntropy);
            attacked += TargetModel::loss_value(&mut net, &adv, &labels, LossKind::CrossEntropy);
        }
        assert!(
            attacked > clean,
            "E-PGD should raise ensemble loss: {} -> {}",
            clean,
            attacked
        );
    }

    #[test]
    fn name() {
        let set = PrecisionSet::new(&[4, 8]);
        assert_eq!(EPgd::new(EPS, 20, set).name(), "E-PGD-20");
    }
}
