//! Bandits: gradient-free (black-box) attack with a learned gradient prior
//! (Ilyas, Engstrom & Madry, 2018 — "Prior convictions").
//!
//! The attacker never queries gradients — only loss values — so it is immune
//! to gradient masking. The paper uses it (§4.2.2) to show RPS does not rely
//! on obfuscated gradients. We implement the time-prior variant: a running
//! prior `v` is refined by two-point finite-difference estimates along random
//! exploration directions, and the adversarial example steps along
//! `sign(v)`.

use crate::model::{LossKind, TargetModel};
use crate::{project, Attack};
use tia_tensor::{SeededRng, Tensor};

/// The Bandits-T black-box attack.
#[derive(Debug, Clone, Copy)]
pub struct Bandits {
    eps: f32,
    steps: usize,
    /// Image step size.
    alpha: f32,
    /// Prior learning rate.
    prior_lr: f32,
    /// Finite-difference probe length.
    fd_eta: f32,
    /// Exploration magnitude around the prior.
    delta: f32,
}

impl Bandits {
    /// Creates a Bandits attack with `steps` loss-query rounds (two queries
    /// per round) and defaults following the original paper's ℓ∞ settings.
    pub fn new(eps: f32, steps: usize) -> Self {
        Self {
            eps,
            steps,
            alpha: eps / 8.0,
            prior_lr: 0.1,
            fd_eta: 0.1,
            delta: 0.1,
        }
    }

    fn attack_single(
        &self,
        model: &mut dyn TargetModel,
        x: &Tensor,
        label: usize,
        rng: &mut SeededRng,
    ) -> Tensor {
        let labels = [label];
        let mut adv = x.clone();
        let mut prior = Tensor::zeros(x.shape());
        for _ in 0..self.steps {
            // Exploration direction.
            let u = Tensor::randn(x.shape(), 1.0, rng);
            let un = u.norm().max(1e-8);
            let q1 = prior.zip_with(&u, |p, uu| p + self.delta * uu / un);
            let q2 = prior.zip_with(&u, |p, uu| p - self.delta * uu / un);
            let probe = |q: &Tensor, adv: &Tensor| -> Tensor {
                let qn = q.norm().max(1e-8);
                let moved = adv.zip_with(q, |a, qv| a + self.fd_eta * qv / qn);
                project(x, &moved, self.eps)
            };
            let l1 = model.loss_value(&probe(&q1, &adv), &labels, LossKind::CrossEntropy);
            let l2 = model.loss_value(&probe(&q2, &adv), &labels, LossKind::CrossEntropy);
            // Finite-difference estimate along u updates the prior.
            let est = (l1 - l2) / (self.fd_eta * self.delta).max(1e-8);
            prior = prior.zip_with(&u, |p, uu| p + self.prior_lr * est * uu / un);
            // Step the image along the prior's sign.
            let stepped = adv.zip_with(&prior, |a, p| a + self.alpha * p.signum());
            adv = project(x, &stepped, self.eps);
        }
        adv
    }
}

impl Attack for Bandits {
    fn name(&self) -> String {
        format!("Bandits-{}", self.steps)
    }

    fn epsilon(&self) -> f32 {
        self.eps
    }

    fn perturb(
        &self,
        model: &mut dyn TargetModel,
        x: &Tensor,
        labels: &[usize],
        rng: &mut SeededRng,
    ) -> Tensor {
        let n = x.shape()[0];
        assert_eq!(n, labels.len(), "label count mismatch");
        let mut out = Tensor::zeros(x.shape());
        #[allow(clippy::needless_range_loop)] // i indexes x, labels and out together
        for i in 0..n {
            let xi = x.index_axis0(i);
            let mut shape = vec![1usize];
            shape.extend_from_slice(xi.shape());
            let xi = xi.reshape(&shape);
            let adv = self.attack_single(model, &xi, labels[i], rng);
            out.set_axis0(i, &adv.index_axis0(0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_nn::zoo;

    const EPS: f32 = 16.0 / 255.0;

    #[test]
    fn bandits_stays_in_ball() {
        let mut rng = SeededRng::new(3);
        let mut net = zoo::preact_resnet18_lite(3, 4, 3, &mut rng);
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let adv = Bandits::new(EPS, 8).perturb(&mut net, &x, &[0, 1], &mut rng);
        assert!(x.sub(&adv).abs_max() <= EPS + 1e-5);
        assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn bandits_increases_loss_without_gradients() {
        let mut rng = SeededRng::new(4);
        let mut net = zoo::preact_resnet18_lite(3, 6, 3, &mut rng);
        let x = Tensor::rand_uniform(&[3, 3, 8, 8], 0.0, 1.0, &mut rng);
        let labels = vec![0, 1, 2];
        let clean = TargetModel::loss_value(&mut net, &x, &labels, LossKind::CrossEntropy);
        let adv = Bandits::new(EPS, 30).perturb(&mut net, &x, &labels, &mut rng);
        let attacked = TargetModel::loss_value(&mut net, &adv, &labels, LossKind::CrossEntropy);
        assert!(
            attacked > clean,
            "Bandits should raise loss: {} -> {}",
            clean,
            attacked
        );
    }

    #[test]
    fn name_includes_steps() {
        assert_eq!(Bandits::new(EPS, 100).name(), "Bandits-100");
    }
}
