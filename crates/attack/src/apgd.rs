//! APGD: Auto-PGD with momentum and adaptive step halving (Croce & Hein,
//! 2020) — the core white-box component of AutoAttack.
//!
//! This reproduction implements APGD-CE with the paper's momentum rule
//! `z = adv + α·sign(g); adv' = adv + 0.75(z − adv) + 0.25(adv − adv_prev)`
//! and halves the step size whenever a checkpoint window fails to improve
//! the best loss, restarting from the best-so-far point. Multiple random
//! restarts keep the strongest example (per batch). The full AutoAttack
//! suite additionally runs APGD-T/FAB/Square; APGD-CE with restarts is the
//! dominant component against undefended gradients and serves the same
//! "strong adaptive attack" role here (substitution documented in DESIGN.md).

use crate::model::{LossKind, TargetModel};
use crate::{project, Attack};
use tia_tensor::{SeededRng, Tensor};

/// Auto-PGD with cross-entropy loss.
#[derive(Debug, Clone, Copy)]
pub struct Apgd {
    eps: f32,
    steps: usize,
    restarts: usize,
}

impl Apgd {
    /// Creates APGD-CE with the given budget and iteration count.
    pub fn new(eps: f32, steps: usize) -> Self {
        Self {
            eps,
            steps,
            restarts: 1,
        }
    }

    /// Sets the number of random restarts.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    fn run_once(
        &self,
        model: &mut dyn TargetModel,
        x: &Tensor,
        labels: &[usize],
        rng: &mut SeededRng,
    ) -> Tensor {
        let mut alpha = 2.0 * self.eps;
        let init = Tensor::rand_uniform(x.shape(), -self.eps, self.eps, rng);
        let mut adv = project(x, &x.add(&init), self.eps);
        let mut adv_prev = adv.clone();
        let mut best = adv.clone();
        let mut best_loss = model.loss_value(&adv, labels, LossKind::CrossEntropy);
        // Checkpoint bookkeeping for step halving.
        let window = (self.steps / 5).max(2);
        let mut improved_in_window = 0usize;
        let mut since_checkpoint = 0usize;
        for _ in 0..self.steps {
            let (_, g) = model.loss_and_input_grad(&adv, labels, LossKind::CrossEntropy);
            let z = project(x, &adv.add(&g.map(|v| alpha * v.signum())), self.eps);
            // Momentum combination.
            let mut next = Tensor::zeros(adv.shape());
            for i in 0..next.len() {
                next.data_mut()[i] = adv.data()[i]
                    + 0.75 * (z.data()[i] - adv.data()[i])
                    + 0.25 * (adv.data()[i] - adv_prev.data()[i]);
            }
            let next = project(x, &next, self.eps);
            adv_prev = adv;
            adv = next;
            let l = model.loss_value(&adv, labels, LossKind::CrossEntropy);
            if l > best_loss {
                best_loss = l;
                best = adv.clone();
                improved_in_window += 1;
            }
            since_checkpoint += 1;
            if since_checkpoint >= window {
                // Condition: too few improvements in the window -> halve α and
                // restart from the best point.
                if improved_in_window * 4 < window {
                    alpha *= 0.5;
                    adv = best.clone();
                    adv_prev = best.clone();
                }
                improved_in_window = 0;
                since_checkpoint = 0;
            }
        }
        best
    }
}

impl Attack for Apgd {
    fn name(&self) -> String {
        if self.restarts > 1 {
            format!("AutoAttack(APGD-{}x{})", self.steps, self.restarts)
        } else {
            format!("AutoAttack(APGD-{})", self.steps)
        }
    }

    fn epsilon(&self) -> f32 {
        self.eps
    }

    fn perturb(
        &self,
        model: &mut dyn TargetModel,
        x: &Tensor,
        labels: &[usize],
        rng: &mut SeededRng,
    ) -> Tensor {
        let mut best = self.run_once(model, x, labels, rng);
        let mut best_loss = model.loss_value(&best, labels, LossKind::CrossEntropy);
        for _ in 1..self.restarts {
            let cand = self.run_once(model, x, labels, rng);
            let l = model.loss_value(&cand, labels, LossKind::CrossEntropy);
            if l > best_loss {
                best_loss = l;
                best = cand;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::Fgsm;
    use tia_nn::zoo;

    const EPS: f32 = 8.0 / 255.0;

    #[test]
    fn apgd_stays_in_ball() {
        let mut rng = SeededRng::new(1);
        let mut net = zoo::preact_resnet18_lite(3, 4, 4, &mut rng);
        let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
        let adv = Apgd::new(EPS, 10).perturb(&mut net, &x, &[0, 1], &mut rng);
        assert!(x.sub(&adv).abs_max() <= EPS + 1e-6);
        assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn apgd_at_least_as_strong_as_fgsm() {
        let mut rng = SeededRng::new(2);
        let mut net = zoo::preact_resnet18_lite(3, 4, 4, &mut rng);
        let x = Tensor::rand_uniform(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let labels = vec![0, 1, 2, 3];
        let a_fgsm = Fgsm::new(EPS).perturb(&mut net, &x, &labels, &mut rng);
        let a_apgd = Apgd::new(EPS, 20).perturb(&mut net, &x, &labels, &mut rng);
        let lf = TargetModel::loss_value(&mut net, &a_fgsm, &labels, LossKind::CrossEntropy);
        let la = TargetModel::loss_value(&mut net, &a_apgd, &labels, LossKind::CrossEntropy);
        assert!(
            la >= lf * 0.9,
            "APGD should match or beat FGSM: {} vs {}",
            la,
            lf
        );
    }

    #[test]
    fn names() {
        assert_eq!(Apgd::new(EPS, 50).name(), "AutoAttack(APGD-50)");
        assert_eq!(
            Apgd::new(EPS, 50).with_restarts(3).name(),
            "AutoAttack(APGD-50x3)"
        );
    }
}
