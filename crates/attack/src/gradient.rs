//! First-order white-box attacks: FGSM, FGSM-RS, PGD-k, CW-∞.

use crate::model::{LossKind, TargetModel};
use crate::{project, Attack};
use tia_tensor::{SeededRng, Tensor};

/// Fast Gradient Sign Method (Goodfellow et al., 2014): one signed-gradient
/// step of size ε.
#[derive(Debug, Clone, Copy)]
pub struct Fgsm {
    eps: f32,
}

impl Fgsm {
    /// Creates an FGSM attack with budget `eps`.
    pub fn new(eps: f32) -> Self {
        Self { eps }
    }
}

impl Attack for Fgsm {
    fn name(&self) -> String {
        "FGSM".into()
    }

    fn epsilon(&self) -> f32 {
        self.eps
    }

    fn perturb(
        &self,
        model: &mut dyn TargetModel,
        x: &Tensor,
        labels: &[usize],
        _rng: &mut SeededRng,
    ) -> Tensor {
        let (_, g) = model.loss_and_input_grad(x, labels, LossKind::CrossEntropy);
        let step = g.map(|v| self.eps * v.signum());
        project(x, &x.add(&step), self.eps)
    }
}

/// FGSM with random start (Wong et al., "Fast is better than free", 2020):
/// uniform init in the ε-ball, then one step of size α = 1.25ε.
#[derive(Debug, Clone, Copy)]
pub struct FgsmRs {
    eps: f32,
    alpha: f32,
}

impl FgsmRs {
    /// Creates FGSM-RS with the paper's α = 1.25 ε.
    pub fn new(eps: f32) -> Self {
        Self {
            eps,
            alpha: 1.25 * eps,
        }
    }
}

impl Attack for FgsmRs {
    fn name(&self) -> String {
        "FGSM-RS".into()
    }

    fn epsilon(&self) -> f32 {
        self.eps
    }

    fn perturb(
        &self,
        model: &mut dyn TargetModel,
        x: &Tensor,
        labels: &[usize],
        rng: &mut SeededRng,
    ) -> Tensor {
        let init = Tensor::rand_uniform(x.shape(), -self.eps, self.eps, rng);
        let start = project(x, &x.add(&init), self.eps);
        let (_, g) = model.loss_and_input_grad(&start, labels, LossKind::CrossEntropy);
        let step = g.map(|v| self.alpha * v.signum());
        project(x, &start.add(&step), self.eps)
    }
}

/// Projected Gradient Descent (Madry et al., 2017): `steps` signed-gradient
/// steps with per-step size α, random start, optional restarts keeping the
/// strongest example per restart.
#[derive(Debug, Clone, Copy)]
pub struct Pgd {
    eps: f32,
    alpha: f32,
    steps: usize,
    restarts: usize,
    loss: LossKind,
}

impl Pgd {
    /// PGD-`steps` with the conventional α = 2.5 ε / steps and 1 restart.
    pub fn new(eps: f32, steps: usize) -> Self {
        Self {
            eps,
            alpha: 2.5 * eps / steps.max(1) as f32,
            steps,
            restarts: 1,
            loss: LossKind::CrossEntropy,
        }
    }

    /// Overrides the step size.
    pub fn with_alpha(mut self, alpha: f32) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the number of random restarts.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Switches the loss the attack climbs (used by CW-∞).
    pub fn with_loss(mut self, loss: LossKind) -> Self {
        self.loss = loss;
        self
    }

    /// Number of gradient steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    fn run_once(
        &self,
        model: &mut dyn TargetModel,
        x: &Tensor,
        labels: &[usize],
        rng: &mut SeededRng,
    ) -> Tensor {
        let init = Tensor::rand_uniform(x.shape(), -self.eps, self.eps, rng);
        let mut adv = project(x, &x.add(&init), self.eps);
        for _ in 0..self.steps {
            let (_, g) = model.loss_and_input_grad(&adv, labels, self.loss);
            let step = g.map(|v| self.alpha * v.signum());
            adv = project(x, &adv.add(&step), self.eps);
        }
        adv
    }
}

impl Attack for Pgd {
    fn name(&self) -> String {
        match self.loss {
            LossKind::CrossEntropy => format!("PGD-{}", self.steps),
            LossKind::CwMargin => format!("CW-Inf-{}", self.steps),
        }
    }

    fn epsilon(&self) -> f32 {
        self.eps
    }

    fn perturb(
        &self,
        model: &mut dyn TargetModel,
        x: &Tensor,
        labels: &[usize],
        rng: &mut SeededRng,
    ) -> Tensor {
        let mut best = self.run_once(model, x, labels, rng);
        if self.restarts > 1 {
            let mut best_loss = model.loss_value(&best, labels, self.loss);
            for _ in 1..self.restarts {
                let cand = self.run_once(model, x, labels, rng);
                let l = model.loss_value(&cand, labels, self.loss);
                if l > best_loss {
                    best_loss = l;
                    best = cand;
                }
            }
        }
        best
    }
}

/// Carlini-Wagner ℓ∞ attack implemented as PGD on the CW margin loss, the
/// formulation the robustness literature (and the paper) uses for "CW-Inf".
#[derive(Debug, Clone, Copy)]
pub struct CwInf {
    inner: Pgd,
}

impl CwInf {
    /// CW-∞ with the given budget and step count.
    pub fn new(eps: f32, steps: usize) -> Self {
        Self {
            inner: Pgd::new(eps, steps).with_loss(LossKind::CwMargin),
        }
    }
}

impl Attack for CwInf {
    fn name(&self) -> String {
        format!("CW-Inf-{}", self.inner.steps())
    }

    fn epsilon(&self) -> f32 {
        self.inner.epsilon()
    }

    fn perturb(
        &self,
        model: &mut dyn TargetModel,
        x: &Tensor,
        labels: &[usize],
        rng: &mut SeededRng,
    ) -> Tensor {
        self.inner.perturb(model, x, labels, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tia_nn::zoo;

    const EPS: f32 = 8.0 / 255.0;

    fn setup() -> (tia_nn::Network, Tensor, Vec<usize>, SeededRng) {
        let mut rng = SeededRng::new(7);
        let net = zoo::preact_resnet18_lite(3, 4, 4, &mut rng);
        let x = Tensor::rand_uniform(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let labels = vec![0, 1, 2, 3];
        (net, x, labels, rng)
    }

    #[test]
    fn fgsm_stays_in_ball() {
        let (mut net, x, labels, mut rng) = setup();
        let adv = Fgsm::new(EPS).perturb(&mut net, &x, &labels, &mut rng);
        assert!(x.sub(&adv).abs_max() <= EPS + 1e-6);
        assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn fgsm_rs_stays_in_ball() {
        let (mut net, x, labels, mut rng) = setup();
        let adv = FgsmRs::new(EPS).perturb(&mut net, &x, &labels, &mut rng);
        assert!(x.sub(&adv).abs_max() <= EPS + 1e-6);
    }

    #[test]
    fn pgd_increases_loss() {
        let (mut net, x, labels, mut rng) = setup();
        let clean_loss = TargetModel::loss_value(&mut net, &x, &labels, LossKind::CrossEntropy);
        let adv = Pgd::new(EPS, 10).perturb(&mut net, &x, &labels, &mut rng);
        let adv_loss = TargetModel::loss_value(&mut net, &adv, &labels, LossKind::CrossEntropy);
        assert!(
            adv_loss > clean_loss,
            "PGD must increase loss: {} -> {}",
            clean_loss,
            adv_loss
        );
    }

    #[test]
    fn pgd_stronger_than_fgsm() {
        let (mut net, x, labels, mut rng) = setup();
        let fgsm_adv = Fgsm::new(EPS).perturb(&mut net, &x, &labels, &mut rng);
        let pgd_adv = Pgd::new(EPS, 20).perturb(&mut net, &x, &labels, &mut rng);
        let lf = TargetModel::loss_value(&mut net, &fgsm_adv, &labels, LossKind::CrossEntropy);
        let lp = TargetModel::loss_value(&mut net, &pgd_adv, &labels, LossKind::CrossEntropy);
        assert!(
            lp >= lf * 0.9,
            "PGD-20 should be at least as strong: {} vs {}",
            lp,
            lf
        );
    }

    #[test]
    fn cw_uses_margin_name() {
        assert_eq!(CwInf::new(EPS, 30).name(), "CW-Inf-30");
        assert_eq!(Pgd::new(EPS, 20).name(), "PGD-20");
    }

    #[test]
    fn restarts_keep_strongest() {
        let (mut net, x, labels, mut rng) = setup();
        let adv1 = Pgd::new(EPS, 5).perturb(&mut net, &x, &labels, &mut rng);
        let adv3 = Pgd::new(EPS, 5)
            .with_restarts(3)
            .perturb(&mut net, &x, &labels, &mut rng);
        let l1 = TargetModel::loss_value(&mut net, &adv1, &labels, LossKind::CrossEntropy);
        let l3 = TargetModel::loss_value(&mut net, &adv3, &labels, LossKind::CrossEntropy);
        assert!(
            l3 >= l1 * 0.8,
            "restarts should not be much weaker: {} vs {}",
            l3,
            l1
        );
    }

    #[test]
    fn zero_eps_is_identity() {
        let (mut net, x, labels, mut rng) = setup();
        let adv = Pgd::new(0.0, 5).perturb(&mut net, &x, &labels, &mut rng);
        assert!(x.sub(&adv).abs_max() < 1e-6);
    }
}
