//! # tia-attack
//!
//! Adversarial attacks used in the paper's evaluation: FGSM, FGSM-RS, PGD-k,
//! CW-∞, APGD (the AutoAttack-lite white-box component), the Bandits
//! gradient-free attack, and the paper's customized adaptive attack E-PGD
//! (§4.2.3), which ensembles gradients over every candidate precision.
//!
//! All attacks operate under an ℓ∞ budget `ε` on inputs clamped to `[0, 1]`,
//! matching the paper's `ε ∈ {8, 12, 16}/255` CIFAR settings and `4/255` for
//! ImageNet.
//!
//! Attacks are generic over a [`TargetModel`], which exposes logits and input
//! gradients (plus a precision switch so E-PGD and the RPS evaluation
//! harness can re-quantize the model in place).
//!
//! # Example
//!
//! ```
//! use tia_attack::{Attack, Pgd, TargetModel};
//! use tia_nn::zoo;
//! use tia_tensor::{SeededRng, Tensor};
//!
//! let mut rng = SeededRng::new(0);
//! let mut net = zoo::preact_resnet18_lite(3, 4, 4, &mut rng);
//! let x = Tensor::rand_uniform(&[2, 3, 8, 8], 0.0, 1.0, &mut rng);
//! let attack = Pgd::new(8.0 / 255.0, 20);
//! let x_adv = attack.perturb(&mut net, &x, &[0, 1], &mut rng);
//! assert!(x.sub(&x_adv).abs_max() <= 8.0 / 255.0 + 1e-6);
//! ```

#![deny(missing_docs)]

mod apgd;
mod bandits;
mod epgd;
mod gradient;
mod model;
mod square;

pub use apgd::Apgd;
pub use bandits::Bandits;
pub use epgd::EPgd;
pub use gradient::{CwInf, Fgsm, FgsmRs, Pgd};
pub use model::{LossKind, TargetModel};
pub use square::Square;

use tia_tensor::{SeededRng, Tensor};

/// A white-box or black-box adversarial attack under an ℓ∞ budget.
pub trait Attack {
    /// Human-readable name used in printed tables (e.g. `"PGD-20"`).
    fn name(&self) -> String;

    /// The ℓ∞ budget ε (in `[0,1]` pixel units).
    fn epsilon(&self) -> f32;

    /// Crafts adversarial examples for a batch `x` with true `labels`.
    /// The result stays within `ε` of `x` in ℓ∞ and within `[0, 1]`.
    fn perturb(
        &self,
        model: &mut dyn TargetModel,
        x: &Tensor,
        labels: &[usize],
        rng: &mut SeededRng,
    ) -> Tensor;
}

/// Projects `adv` onto the ℓ∞ ball of radius `eps` around `x`, then into
/// `[0, 1]`.
pub(crate) fn project(x: &Tensor, adv: &Tensor, eps: f32) -> Tensor {
    let mut out = adv.clone();
    for ((o, &xv), &av) in out.data_mut().iter_mut().zip(x.data()).zip(adv.data()) {
        *o = av.clamp(xv - eps, xv + eps).clamp(0.0, 1.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_respects_ball_and_range() {
        let x = Tensor::from_vec(vec![0.0, 0.5, 1.0], &[3]);
        let adv = Tensor::from_vec(vec![0.4, 0.9, 0.2], &[3]);
        let p = project(&x, &adv, 0.1);
        assert_eq!(p.data(), &[0.1, 0.6, 0.9]);
    }

    #[test]
    fn project_clamps_to_unit_interval() {
        let x = Tensor::from_vec(vec![0.01, 0.99], &[2]);
        let adv = Tensor::from_vec(vec![-0.5, 1.5], &[2]);
        let p = project(&x, &adv, 1.0);
        assert_eq!(p.data(), &[0.0, 1.0]);
    }
}
