//! DNNGuard (Wang et al., ASPLOS'20) baseline model for §4.3.2.
//!
//! DNNGuard is a robustness-aware accelerator that co-executes the target
//! DNN with a *detection network* on an elastic heterogeneous array,
//! catching adversarial inputs at inference time. Its cost is structural:
//! the detector steals PE and buffer resources from the target network and
//! the elastic orchestration adds control overhead — while the datapath is a
//! conventional fixed-precision (8-bit) accelerator, so it gains nothing
//! from RPS's low-precision execution.
//!
//! We model exactly those three published characteristics: fixed 8-bit
//! execution on a standard MAC array, a detector workload sharing the array
//! (the DNNGuard paper co-schedules detectors comparable to a ResNet-18
//! head), and an orchestration area tax.

/// Analytical DNNGuard throughput model.
#[derive(Debug, Clone, Copy)]
pub struct DnnGuardModel {
    /// Fraction of PE resources consumed by the detection network while the
    /// target DNN runs (elastic co-execution).
    pub detector_share: f64,
    /// Area overhead of the elastic management logic (fraction of the MAC
    /// array area unavailable for MACs).
    pub orchestration_tax: f64,
}

impl Default for DnnGuardModel {
    fn default() -> Self {
        // The DNNGuard paper co-runs detectors sized at a large fraction of
        // the target network; half the array for the detector plus ~10%
        // orchestration reproduces its published throughput class.
        Self {
            detector_share: 0.5,
            orchestration_tax: 0.1,
        }
    }
}

impl DnnGuardModel {
    /// Effective MAC throughput (products/cycle) of a DNNGuard array with
    /// `units` standard 8-bit MAC units (1 product/cycle each).
    pub fn products_per_cycle(&self, units: usize) -> f64 {
        units as f64 * (1.0 - self.detector_share) * (1.0 - self.orchestration_tax)
    }

    /// Units affordable under an area budget (standard MAC = 1.0 area).
    pub fn units_for_area(&self, area_budget: f64) -> usize {
        area_budget.max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_halves_throughput() {
        let m = DnnGuardModel::default();
        let t = m.products_per_cycle(1000);
        assert!((t - 450.0).abs() < 1e-9); // 1000 * 0.5 * 0.9
    }

    #[test]
    fn zero_overheads_recover_baseline() {
        let m = DnnGuardModel {
            detector_share: 0.0,
            orchestration_tax: 0.0,
        };
        assert_eq!(m.products_per_cycle(64), 64.0);
    }

    #[test]
    fn units_for_area_floor() {
        let m = DnnGuardModel::default();
        assert_eq!(m.units_for_area(4505.6), 4505);
    }
}
