//! Shared memory-hierarchy energy model.
//!
//! Eyeriss-style relative access energies, expressed per *bit* so that
//! precision scaling falls out naturally (an 8-bit access moves half the
//! bits of a 16-bit access). Normalization matches `mac.rs`: a Bit Fusion
//! 8×8-bit MAC op = 1.0 energy unit. DRAM access is ~200× a MAC at matched
//! width, consistent with the DRAM-dominant energy breakdowns of Fig. 9.

/// A level of the accelerator memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MemLevel {
    /// Off-chip DRAM.
    Dram,
    /// On-chip global buffer (SRAM).
    GlobalBuffer,
    /// Network-on-chip transfer (global buffer ↔ PE array).
    Noc,
    /// Per-PE register file.
    Rf,
}

/// All levels, outermost first.
pub const MEM_LEVELS: [MemLevel; 4] = [
    MemLevel::Dram,
    MemLevel::GlobalBuffer,
    MemLevel::Noc,
    MemLevel::Rf,
];

impl MemLevel {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            MemLevel::Dram => "DRAM",
            MemLevel::GlobalBuffer => "SRAM",
            MemLevel::Noc => "NoC",
            MemLevel::Rf => "RF",
        }
    }
}

/// Energy per bit moved at a memory level (normalized units).
pub fn mem_energy_per_bit(level: MemLevel) -> f64 {
    match level {
        MemLevel::Dram => 1.6,
        MemLevel::GlobalBuffer => 0.048,
        MemLevel::Noc => 0.016,
        MemLevel::Rf => 0.008,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_energy_is_monotone() {
        let e: Vec<f64> = MEM_LEVELS.iter().map(|&l| mem_energy_per_bit(l)).collect();
        for w in e.windows(2) {
            assert!(w[0] > w[1], "outer levels must cost more per bit");
        }
    }

    #[test]
    fn dram_dominates_mac_energy() {
        // A 16-bit DRAM word ~ 25.6 units >> 1.0 MAC unit, consistent with
        // Eyeriss's ~200x at matched operand width.
        assert!(mem_energy_per_bit(MemLevel::Dram) * 16.0 > 20.0);
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<&str> = MEM_LEVELS.iter().map(|l| l.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
