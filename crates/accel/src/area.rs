//! MAC-unit area breakdown (paper Fig. 3).

/// Area of one MAC unit split into the three components Fig. 3 reports.
/// Units are normalized (standard 8-bit MAC = 1.0 total).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// Multiplier (AND array / adder tree) area.
    pub multiplier: f64,
    /// Shift-add logic for precision configurability.
    pub shift_add: f64,
    /// Pipeline/accumulator registers.
    pub register: f64,
}

impl AreaBreakdown {
    /// Builds a breakdown from a total and three fractions.
    ///
    /// # Panics
    ///
    /// Panics if the fractions do not sum to ~1.
    pub fn from_fractions(total: f64, mult: f64, shift_add: f64, register: f64) -> Self {
        assert!(
            (mult + shift_add + register - 1.0).abs() < 1e-6,
            "fractions must sum to 1"
        );
        Self {
            multiplier: total * mult,
            shift_add: total * shift_add,
            register: total * register,
        }
    }

    /// Total unit area.
    pub fn total(&self) -> f64 {
        self.multiplier + self.shift_add + self.register
    }

    /// Fraction of area spent on shift-add logic (the paper's headline
    /// bottleneck metric).
    pub fn shift_add_fraction(&self) -> f64 {
        self.shift_add / self.total()
    }

    /// Fraction of area spent on multipliers.
    pub fn multiplier_fraction(&self) -> f64 {
        self.multiplier / self.total()
    }

    /// Fraction of area spent on registers.
    pub fn register_fraction(&self) -> f64 {
        self.register / self.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_roundtrip() {
        let b = AreaBreakdown::from_fractions(2.0, 0.25, 0.5, 0.25);
        assert!((b.total() - 2.0).abs() < 1e-9);
        assert!((b.shift_add_fraction() - 0.5).abs() < 1e-9);
        assert!((b.multiplier_fraction() - 0.25).abs() < 1e-9);
        assert!((b.register_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "fractions must sum to 1")]
    fn fractions_validated() {
        let _ = AreaBreakdown::from_fractions(1.0, 0.5, 0.5, 0.5);
    }
}
