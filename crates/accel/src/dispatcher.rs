//! The data dispatcher (paper Fig. 6, left).
//!
//! The 2-in-1 Accelerator's dispatcher is a multiplexer that packs data for
//! the MAC array, supporting 1/2/4/8-bit access granularities into the data
//! buffer. Operands whose precision is not a supported granularity ride in
//! the next wider lane (3-bit in a 4-bit lane, 5/6/7-bit in an 8-bit lane,
//! >8-bit across two 8-bit lanes), wasting the difference. This module
//! > quantifies that packing efficiency; the cycle/energy predictor charges
//! > tightly packed traffic (charitable to every design equally), so the
//! > dispatcher figures here bound the extra cost of odd precisions.

/// Buffer access granularities supported by the dispatcher multiplexer.
pub const GRANULARITIES: [u8; 4] = [1, 2, 4, 8];

/// A dispatcher configuration (lane granularities + buffer word width).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatcher {
    /// Buffer word width in bits (one access moves this many bits).
    pub word_bits: u32,
}

impl Default for Dispatcher {
    fn default() -> Self {
        // 64-bit buffer words, as a Bit Fusion-class global buffer port.
        Self { word_bits: 64 }
    }
}

impl Dispatcher {
    /// The lane width used to store a `bits`-wide operand: the smallest
    /// supported granularity (or pair of 8-bit lanes) that fits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    pub fn lane_bits(&self, bits: u8) -> u8 {
        assert!(
            (1..=16).contains(&bits),
            "operand width 1..=16, got {}",
            bits
        );
        for g in GRANULARITIES {
            if bits <= g {
                return g;
            }
        }
        16 // two chained 8-bit lanes
    }

    /// Fraction of fetched bits that carry payload for a `bits`-wide
    /// operand: `bits / lane_bits`.
    pub fn packing_efficiency(&self, bits: u8) -> f64 {
        bits as f64 / self.lane_bits(bits) as f64
    }

    /// Buffer accesses needed to stream `n` operands of `bits` width.
    pub fn accesses(&self, n: u64, bits: u8) -> u64 {
        let lane = self.lane_bits(bits) as u64;
        let per_word = (self.word_bits as u64 / lane).max(1);
        n.div_ceil(per_word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_selection_matches_fig6() {
        let d = Dispatcher::default();
        assert_eq!(d.lane_bits(1), 1);
        assert_eq!(d.lane_bits(2), 2);
        assert_eq!(d.lane_bits(3), 4);
        assert_eq!(d.lane_bits(4), 4);
        assert_eq!(d.lane_bits(5), 8);
        assert_eq!(d.lane_bits(8), 8);
        assert_eq!(d.lane_bits(12), 16);
        assert_eq!(d.lane_bits(16), 16);
    }

    #[test]
    fn packing_efficiency_bounds() {
        let d = Dispatcher::default();
        for b in 1..=16u8 {
            let e = d.packing_efficiency(b);
            assert!(e > 0.0 && e <= 1.0, "{}-bit efficiency {}", b, e);
        }
        // Native granularities pack perfectly.
        for b in GRANULARITIES {
            assert_eq!(d.packing_efficiency(b), 1.0);
        }
        // 3-bit is the worst sub-8 case: 75%.
        assert!((d.packing_efficiency(3) - 0.75).abs() < 1e-9);
        assert!((d.packing_efficiency(5) - 0.625).abs() < 1e-9);
    }

    #[test]
    fn access_counts() {
        let d = Dispatcher { word_bits: 64 };
        // 64 bits / 8-bit lanes = 8 operands per access.
        assert_eq!(d.accesses(16, 8), 2);
        assert_eq!(d.accesses(17, 8), 3);
        // 2-bit lanes: 32 per access.
        assert_eq!(d.accesses(64, 2), 2);
        // 16-bit (two 8-bit lanes): 4 per access.
        assert_eq!(d.accesses(8, 16), 2);
        assert_eq!(d.accesses(0, 4), 0);
    }

    #[test]
    #[should_panic(expected = "operand width 1..=16")]
    fn lane_validates() {
        let _ = Dispatcher::default().lane_bits(0);
    }
}
