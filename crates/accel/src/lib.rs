//! # tia-accel
//!
//! Analytical models of precision-scalable MAC-unit architectures — the
//! hardware half of the 2-in-1 Accelerator paper (§3):
//!
//! * **Temporal** (Stripes-style): bit-serial units; any precision, but
//!   shifter/accumulator area is set by the highest supported precision.
//! * **Spatial** (Bit Fusion-style): 16 composable 2-bit BitBricks; native
//!   2/4/8-bit, four temporal passes above 8-bit, unsupported precisions
//!   round up.
//! * **Spatial-temporal** (the paper's proposal, §3.2): four bit-serial
//!   units of ≤4×4 bit spatially tiled and dynamically composed, with
//!   **Opt-1** (reorganized bit-level split/allocation: partial sums of the
//!   *same* output share one accumulator, removing 1/n of the inter-unit
//!   shifters) and **Opt-2** (group shift-add fusion: all intra-group
//!   shifters fused into one, removing another 1/n) available as ablation
//!   switches.
//!
//! Calibration: cycle counts follow the paper's §3.2.1 scheduling exactly;
//! area/energy scalars are anchored to the published numbers — the Fig. 3
//! area fractions, "2.3× throughput/area and 4.88× energy-efficiency/op vs
//! Bit Fusion at 8-bit×8-bit" (§3.2.3) and "shifter+accumulator ≈ 90 % of a
//! 16-bit bit-serial unit" (§3.1.2). We cannot re-run 28 nm synthesis, so
//! these scalars stand in for the gate-level netlists (see DESIGN.md).
//!
//! The crate also provides the shared memory-energy model and the DNNGuard
//! robustness-aware baseline used in §4.3.2.
//!
//! # Example
//!
//! ```
//! use tia_accel::{MacKind, MacUnit, PrecisionPair};
//!
//! let ours = MacUnit::new(MacKind::spatial_temporal());
//! let bf = MacUnit::new(MacKind::Spatial);
//! let p8 = PrecisionPair::symmetric(8);
//! let ratio = (ours.products_per_cycle(p8) / ours.area())
//!     / (bf.products_per_cycle(p8) / bf.area());
//! assert!(ratio > 2.2 && ratio < 2.4); // the paper's 2.3x
//! ```

#![deny(missing_docs)]

mod area;
mod dispatcher;
mod dnnguard;
mod energy;
mod mac;

pub use area::AreaBreakdown;
pub use dispatcher::{Dispatcher, GRANULARITIES};
pub use dnnguard::DnnGuardModel;
pub use energy::{mem_energy_per_bit, MemLevel, MEM_LEVELS};
pub use mac::{MacKind, MacUnit, PrecisionPair};
