//! MAC-unit cycle/area/energy models.

use crate::area::AreaBreakdown;

/// A (weight bits, activation bits) execution precision, each in `1..=16`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrecisionPair {
    /// Weight bit-width.
    pub w: u8,
    /// Activation bit-width.
    pub a: u8,
}

impl PrecisionPair {
    /// Creates a pair, validating both widths.
    ///
    /// # Panics
    ///
    /// Panics if either width is outside `1..=16`.
    pub fn new(w: u8, a: u8) -> Self {
        assert!(
            (1..=16).contains(&w) && (1..=16).contains(&a),
            "precision out of 1..=16"
        );
        Self { w, a }
    }

    /// Same precision for weights and activations (the paper's default).
    pub fn symmetric(bits: u8) -> Self {
        Self::new(bits, bits)
    }
}

impl std::fmt::Display for PrecisionPair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}-bit", self.w, self.a)
    }
}

/// Which MAC-unit architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacKind {
    /// Bit-serial temporal design (Stripes).
    Temporal,
    /// Composable 2-bit-brick spatial design (Bit Fusion).
    Spatial,
    /// The paper's spatially tiled bit-serial design.
    SpatialTemporal {
        /// Opt-1: reorganized bit-level split/allocation (§3.2.2).
        opt1: bool,
        /// Opt-2: fused group shift-add (§3.2.3).
        opt2: bool,
    },
}

impl MacKind {
    /// The full proposed design (both optimizations on).
    pub fn spatial_temporal() -> Self {
        MacKind::SpatialTemporal {
            opt1: true,
            opt2: true,
        }
    }

    /// Display name used in figures.
    pub fn name(&self) -> String {
        match self {
            MacKind::Temporal => "Stripes".into(),
            MacKind::Spatial => "Bit Fusion".into(),
            MacKind::SpatialTemporal {
                opt1: true,
                opt2: true,
            } => "Ours".into(),
            MacKind::SpatialTemporal { opt1, opt2 } => {
                format!("Ours(opt1={},opt2={})", opt1, opt2)
            }
        }
    }
}

/// An analytical MAC-unit model.
///
/// Areas are normalized so a standard (non-scalable) 8-bit MAC unit is 1.0;
/// energies so a Bit Fusion 8×8-bit MAC operation is 1.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacUnit {
    kind: MacKind,
}

impl MacUnit {
    /// Creates the model for a MAC-unit architecture.
    pub fn new(kind: MacKind) -> Self {
        Self { kind }
    }

    /// The architecture this unit models.
    pub fn kind(&self) -> MacKind {
        self.kind
    }

    /// The *effective* precision the unit executes at, accounting for
    /// limited native support (Bit Fusion rounds 3→4 and 5/6/7→8, §3.1.1).
    pub fn effective(&self, p: PrecisionPair) -> PrecisionPair {
        match self.kind {
            MacKind::Spatial => PrecisionPair::new(round_bitfusion(p.w), round_bitfusion(p.a)),
            _ => p,
        }
    }

    /// Products completed per cycle by one MAC unit at precision `p`.
    pub fn products_per_cycle(&self, p: PrecisionPair) -> f64 {
        let e = self.effective(p);
        match self.kind {
            // Bit-serial over activations, weights held in parallel; one
            // 16-window unit modelled as one product per `a` cycles.
            MacKind::Temporal => 1.0 / e.a as f64,
            // 16 BitBricks of 2x2; <=8-bit composes spatially, >8-bit takes
            // four temporal passes of the 8-bit configuration.
            MacKind::Spatial => {
                let passes = (div_ceil(e.w as usize, 8) * div_ceil(e.a as usize, 8)) as f64;
                let wb = div_ceil(e.w.min(8) as usize, 2);
                let ab = div_ceil(e.a.min(8) as usize, 2);
                (16.0 / (wb * ab) as f64) / passes
            }
            // Four <=4x4 bit-serial units, paper §3.2.1 scheduling.
            MacKind::SpatialTemporal { .. } => spatial_temporal_tput(e.w as usize, e.a as usize),
        }
    }

    /// Cycles for one output product (inverse throughput), useful in tests.
    pub fn cycles_per_product(&self, p: PrecisionPair) -> f64 {
        1.0 / self.products_per_cycle(p)
    }

    /// Unit area, normalized to a standard 8-bit MAC = 1.0.
    ///
    /// Anchors: spatial scalable MACs cost up to 4.4× a standard MAC
    /// (Camus et al. 2019, cited in §3.1.2); the proposed unit reaches 2.3×
    /// Bit Fusion's throughput/area at 8-bit (§3.2.3), and Stripes' unit is
    /// sized so the proposed design holds a 1.15× edge at 16-bit (§4.3.1).
    pub fn area(&self) -> f64 {
        match self.kind {
            MacKind::Temporal => 0.55,
            MacKind::Spatial => 4.4,
            MacKind::SpatialTemporal { opt1, opt2 } => {
                // Vanilla spatial-temporal tiling before shift-add reduction;
                // Opt-1 removes 1/n of the inter-unit shifters, Opt-2 fuses
                // the intra-unit shifters of each group (n = 4 partial sums).
                let mult = 0.205;
                let reg = 0.082;
                let mut shift_add = 0.52;
                if opt1 {
                    shift_add -= 0.20; // inter-unit composition shifters
                }
                if opt2 {
                    shift_add -= 0.13; // fused group shift-add
                }
                mult + reg + shift_add
            }
        }
    }

    /// Area breakdown (multiplier / shift-add / register), matching Fig. 3's
    /// fractions for the three published designs.
    pub fn area_breakdown(&self) -> AreaBreakdown {
        let total = self.area();
        match self.kind {
            MacKind::Temporal => AreaBreakdown::from_fractions(total, 0.094, 0.609, 0.297),
            MacKind::Spatial => AreaBreakdown::from_fractions(total, 0.265, 0.670, 0.065),
            MacKind::SpatialTemporal { opt1, opt2 } => {
                let mult = 0.205;
                let reg = 0.082;
                let mut shift_add = 0.52;
                if opt1 {
                    shift_add -= 0.20;
                }
                if opt2 {
                    shift_add -= 0.13;
                }
                AreaBreakdown {
                    multiplier: mult,
                    shift_add,
                    register: reg,
                }
            }
        }
    }

    /// Energy per MAC operation at precision `p`, normalized to Bit Fusion
    /// at 8×8-bit = 1.0.
    ///
    /// Model: `k · w_eff · a_eff + c`, a bit-work term plus a
    /// precision-independent shift-add/control overhead. Constants are
    /// calibrated so the proposed unit is 4.88× more energy-efficient per op
    /// than Bit Fusion at 8-bit (§3.2.3) and shift-add dominates the
    /// baselines' power (79 % for Bit Fusion, per BitBlade's analysis cited
    /// in §3.1.2).
    pub fn energy_per_mac(&self, p: PrecisionPair) -> f64 {
        let e = self.effective(p);
        let work = (e.w as f64) * (e.a as f64);
        let (k, c) = match self.kind {
            MacKind::Temporal => (0.2 / 64.0, 0.30),
            MacKind::Spatial => (0.21 / 64.0, 0.79),
            MacKind::SpatialTemporal { opt1, opt2 } => {
                let mut c = 0.205; // vanilla overhead before optimizations
                if opt1 {
                    c -= 0.08;
                }
                if opt2 {
                    c -= 0.043;
                }
                (0.123 / 64.0, c)
            }
        };
        k * work + c
    }
}

/// Bit Fusion's native precision rounding: supports 2/4/8/16.
fn round_bitfusion(b: u8) -> u8 {
    match b {
        1..=2 => 2,
        3..=4 => 4,
        5..=8 => 8,
        _ => 16,
    }
}

fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Throughput of the proposed spatial-temporal unit (§3.2.1 scheduling).
///
/// * `max(w,a) ≤ 4`: each of the 4 bit-serial units computes independent
///   products, serial over one operand while the other occupies the 4-bit
///   parallel datapath; operands narrower than 4 bits pack
///   `⌊4/parallel_bits⌋` products side by side (this keeps the unit's
///   throughput/area edge constant across low precisions, as in Fig. 7).
///   4×2-bit takes two cycles per unit, exactly as §3.2.1 states.
/// * `4 < max(w,a) ≤ 8`: operands split into ≤4-bit halves; the
///   `⌈w/4⌉·⌈a/4⌉` cross-products map onto the units, finishing together in
///   `max-part min(w_part, a_part)` cycles (6-bit → 3 cycles, 8-bit → 4,
///   5-bit → (3+2)-split → 3, exactly as the paper lists).
/// * `> 8`: four temporal passes over ≤8-bit halves (12-bit = 4 × 6-bit).
fn spatial_temporal_tput(w: usize, a: usize) -> f64 {
    if w.max(a) <= 4 {
        // Two orientations: serialize w with a parallel, or vice versa.
        let per_bsu = f64::max(
            (4 / w) as f64 / a as f64, // w on the parallel path, a serial
            (4 / a) as f64 / w as f64, // a on the parallel path, w serial
        );
        return 4.0 * per_bsu;
    }
    if w.max(a) <= 8 {
        let (parts, cycles) = split_le8(w, a);
        return (4.0 / parts as f64) / cycles as f64;
    }
    // >8-bit: temporal passes of <=8-bit chunks over the whole MAC unit.
    let pw = div_ceil(w, 8);
    let pa = div_ceil(a, 8);
    let wc = div_ceil(w, pw);
    let ac = div_ceil(a, pa);
    let pass_cycles = if wc.max(ac) <= 4 {
        wc.min(ac)
    } else {
        split_le8(wc, ac).1
    };
    // All four units work on one product per pass; pw*pa passes total.
    1.0 / (pw * pa * pass_cycles) as f64
}

/// For `4 < max(w,a) <= 8`: number of cross-product parts and the cycle
/// count of the slowest part.
fn split_le8(w: usize, a: usize) -> (usize, usize) {
    let wp = operand_parts(w);
    let ap = operand_parts(a);
    let mut max_cycles = 0;
    for &wpart in &wp {
        for &apart in &ap {
            max_cycles = max_cycles.max(wpart.min(apart));
        }
    }
    (wp.len() * ap.len(), max_cycles)
}

/// Splits an operand into ≤4-bit parts, high part first (7 → [4,3]).
fn operand_parts(bits: usize) -> Vec<usize> {
    if bits <= 4 {
        vec![bits]
    } else {
        let hi = div_ceil(bits, 2);
        vec![hi, bits - hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ours() -> MacUnit {
        MacUnit::new(MacKind::spatial_temporal())
    }

    #[test]
    fn paper_cycle_counts_fig4() {
        // Fig. 4: 8-bit x 8-bit takes 8 / 1 / 4 cycles for temporal /
        // spatial / ours.
        let p8 = PrecisionPair::symmetric(8);
        assert_eq!(MacUnit::new(MacKind::Temporal).cycles_per_product(p8), 8.0);
        assert_eq!(MacUnit::new(MacKind::Spatial).cycles_per_product(p8), 1.0);
        assert_eq!(ours().cycles_per_product(p8), 4.0);
    }

    #[test]
    fn paper_scheduling_section_321() {
        // "each of the four bit-serial units can take three cycles to
        // calculate ... one 6-bit x 6-bit product".
        assert_eq!(ours().cycles_per_product(PrecisionPair::symmetric(6)), 3.0);
        // 5-bit splits (3+2)x(3+2) -> 3 cycles.
        assert_eq!(ours().cycles_per_product(PrecisionPair::symmetric(5)), 3.0);
        // 7-bit splits (4+3) -> 4 cycles.
        assert_eq!(ours().cycles_per_product(PrecisionPair::symmetric(7)), 4.0);
        // 12-bit = four sequential 6-bit products -> 12 cycles.
        assert_eq!(
            ours().cycles_per_product(PrecisionPair::symmetric(12)),
            12.0
        );
        // 16-bit = four sequential 8-bit products -> 16 cycles.
        assert_eq!(
            ours().cycles_per_product(PrecisionPair::symmetric(16)),
            16.0
        );
        // Asymmetric 4x2 takes two cycles per unit -> 4 products / 2 cycles.
        assert_eq!(ours().products_per_cycle(PrecisionPair::new(4, 2)), 2.0);
    }

    #[test]
    fn low_precision_parallelism() {
        // p<=4: four bit-serial units, packing along the 4-bit parallel path.
        assert_eq!(ours().products_per_cycle(PrecisionPair::symmetric(2)), 4.0);
        assert_eq!(ours().products_per_cycle(PrecisionPair::symmetric(4)), 1.0);
        assert_eq!(ours().products_per_cycle(PrecisionPair::symmetric(1)), 16.0);
        // Packing keeps the edge over Bit Fusion constant at low precision.
        let bf = MacUnit::new(MacKind::Spatial);
        for b in [2u8, 4] {
            let p = PrecisionPair::symmetric(b);
            let r = (ours().products_per_cycle(p) / ours().area())
                / (bf.products_per_cycle(p) / bf.area());
            assert!((r - 2.3).abs() < 0.1, "{}-bit ratio {}", b, r);
        }
    }

    #[test]
    fn bitfusion_rounds_unsupported_precisions() {
        let bf = MacUnit::new(MacKind::Spatial);
        assert_eq!(
            bf.effective(PrecisionPair::symmetric(3)),
            PrecisionPair::symmetric(4)
        );
        assert_eq!(
            bf.effective(PrecisionPair::symmetric(5)),
            PrecisionPair::symmetric(8)
        );
        assert_eq!(
            bf.effective(PrecisionPair::symmetric(7)),
            PrecisionPair::symmetric(8)
        );
        // So 5/6/7-bit run no faster than 8-bit.
        assert_eq!(
            bf.products_per_cycle(PrecisionPair::symmetric(6)),
            bf.products_per_cycle(PrecisionPair::symmetric(8))
        );
    }

    #[test]
    fn bitfusion_above_8bit_needs_four_passes() {
        let bf = MacUnit::new(MacKind::Spatial);
        assert_eq!(bf.cycles_per_product(PrecisionPair::symmetric(16)), 4.0);
    }

    #[test]
    fn stripes_scales_linearly_with_precision() {
        let st = MacUnit::new(MacKind::Temporal);
        for b in 1..=16u8 {
            assert_eq!(st.cycles_per_product(PrecisionPair::symmetric(b)), b as f64);
        }
    }

    #[test]
    fn throughput_per_area_anchor_2_3x_at_8bit() {
        let p8 = PrecisionPair::symmetric(8);
        let o = ours();
        let bf = MacUnit::new(MacKind::Spatial);
        let ratio = (o.products_per_cycle(p8) / o.area()) / (bf.products_per_cycle(p8) / bf.area());
        assert!((ratio - 2.3).abs() < 0.1, "throughput/area ratio {}", ratio);
    }

    #[test]
    fn energy_anchor_4_88x_at_8bit() {
        let p8 = PrecisionPair::symmetric(8);
        let ratio = MacUnit::new(MacKind::Spatial).energy_per_mac(p8) / ours().energy_per_mac(p8);
        assert!((ratio - 4.88).abs() < 0.3, "energy ratio {}", ratio);
    }

    #[test]
    fn sixteen_bit_edge_over_stripes() {
        // §4.3.1: ours keeps a ~1.15x throughput/area edge at 16-bit.
        let p16 = PrecisionPair::symmetric(16);
        let o = ours();
        let st = MacUnit::new(MacKind::Temporal);
        let ratio =
            (o.products_per_cycle(p16) / o.area()) / (st.products_per_cycle(p16) / st.area());
        assert!((ratio - 1.15).abs() < 0.05, "ratio {}", ratio);
    }

    #[test]
    fn optimizations_shrink_area_and_energy() {
        let p8 = PrecisionPair::symmetric(8);
        let vanilla = MacUnit::new(MacKind::SpatialTemporal {
            opt1: false,
            opt2: false,
        });
        let o1 = MacUnit::new(MacKind::SpatialTemporal {
            opt1: true,
            opt2: false,
        });
        let full = ours();
        assert!(vanilla.area() > o1.area());
        assert!(o1.area() > full.area());
        assert!(vanilla.energy_per_mac(p8) > o1.energy_per_mac(p8));
        assert!(o1.energy_per_mac(p8) > full.energy_per_mac(p8));
        // Cycles unchanged: the optimizations remove shifters, not compute.
        assert_eq!(vanilla.products_per_cycle(p8), full.products_per_cycle(p8));
    }

    #[test]
    fn area_breakdown_fractions_match_fig3() {
        let o = ours().area_breakdown();
        // Ours: shift-add ~39.7%, multiplier ~43.0%, register ~17.2%.
        assert!(
            (o.shift_add_fraction() - 0.397).abs() < 0.03,
            "{}",
            o.shift_add_fraction()
        );
        let t = MacUnit::new(MacKind::Temporal).area_breakdown();
        assert!((t.shift_add_fraction() - 0.609).abs() < 0.01);
        let s = MacUnit::new(MacKind::Spatial).area_breakdown();
        assert!((s.shift_add_fraction() - 0.670).abs() < 0.01);
    }

    #[test]
    fn throughput_improves_monotonically_as_precision_drops_ours() {
        let o = ours();
        let mut prev = 0.0;
        for b in (1..=16u8).rev() {
            let t = o.products_per_cycle(PrecisionPair::symmetric(b));
            assert!(
                t >= prev,
                "throughput must not drop as precision falls: {}-bit",
                b
            );
            prev = t;
        }
    }

    #[test]
    fn names() {
        assert_eq!(MacKind::Temporal.name(), "Stripes");
        assert_eq!(MacKind::Spatial.name(), "Bit Fusion");
        assert_eq!(MacKind::spatial_temporal().name(), "Ours");
    }

    #[test]
    #[should_panic(expected = "precision out of 1..=16")]
    fn precision_pair_validates() {
        let _ = PrecisionPair::new(0, 8);
    }
}
