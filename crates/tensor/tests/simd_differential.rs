//! Differential suite: every dispatched SIMD backend vs the pinned scalar
//! reference, kernel by kernel, across odd shapes straddling each vector
//! width and blocking boundary.
//!
//! Contract (see `tia_tensor::simd`): integer kernels and the f32
//! micro-kernel/pack/BN kernels must be **bitwise** equal to scalar on every
//! backend; only the transcendental tail (`exp_sub_sum`) is tolerance-tier,
//! bounded in ULPs.

use tia_tensor::simd::{self, KernelMode, SimdOps, MR, NR};
use tia_tensor::{gemm_ws, softmax_rows, SeededRng, Tensor, Workspace};

/// The backends under test: the pinned reference plus whatever `native`
/// resolves to on this host (possibly scalar again — still a valid run).
fn backends() -> Vec<&'static dyn SimdOps> {
    vec![
        simd::backend(KernelMode::Scalar),
        simd::backend(KernelMode::Native),
    ]
}

fn ulp_distance(a: f32, b: f32) -> u32 {
    // Monotone map of finite floats onto a signed integer line.
    fn key(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        (if bits < 0 { i32::MIN - bits } else { bits }) as i64
    }
    (key(a) - key(b)).unsigned_abs() as u32
}

/// Lengths that straddle the 8/16/32-lane widths and leave ragged tails.
const LENS: &[usize] = &[
    1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100, 257,
];

#[test]
fn micro_kernel_is_bitwise_equal_across_backends() {
    let mut rng = SeededRng::new(101);
    for &kc in &[1usize, 2, 3, 7, 16, 37, 255, 256] {
        let ap: Vec<f32> = (0..kc * MR).map(|_| rng.normal()).collect();
        let bp: Vec<f32> = (0..kc * NR).map(|_| rng.normal()).collect();
        // Accumulators start non-zero: the kernel must add into them.
        let mut want = [[0.5f32; NR]; MR];
        simd::SCALAR.micro_kernel_f32(kc, &ap, &bp, &mut want);
        for ops in backends() {
            let mut acc = [[0.5f32; NR]; MR];
            ops.micro_kernel_f32(kc, &ap, &bp, &mut acc);
            for i in 0..MR {
                for j in 0..NR {
                    assert_eq!(
                        acc[i][j].to_bits(),
                        want[i][j].to_bits(),
                        "{}: micro_kernel kc={} acc[{}][{}]",
                        ops.name(),
                        kc,
                        i,
                        j
                    );
                }
            }
        }
    }
}

#[test]
fn pack_row_is_bitwise_equal_across_backends() {
    let mut rng = SeededRng::new(102);
    for &n in LENS {
        let src: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mut want = vec![0.0f32; n];
        simd::SCALAR.pack_row_f32(&src, &mut want);
        for ops in backends() {
            let mut dst = vec![-1.0f32; n];
            ops.pack_row_f32(&src, &mut dst);
            assert_eq!(
                dst.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{}: pack_row n={}",
                ops.name(),
                n
            );
        }
    }
}

#[test]
fn integer_dot_products_are_exact_across_backends() {
    let mut rng = SeededRng::new(103);
    for &k in LENS {
        // u8 levels against full-range i8 weights (as raw two's-complement
        // bytes), including the extremes 255 and -128.
        let a: Vec<u8> = (0..k).map(|_| rng.below(256) as u8).collect();
        let w: Vec<u8> = (0..k).map(|_| rng.below(256) as u8).collect();
        let want8 = simd::SCALAR.dot_u8i8(&a, &w);
        // 4-bit: levels 0..=15, weights packed two per byte over -8..=7.
        let a4: Vec<u8> = (0..k).map(|_| rng.below(16) as u8).collect();
        let wp: Vec<u8> = (0..k.div_ceil(2)).map(|_| rng.below(256) as u8).collect();
        let want4 = simd::SCALAR.dot_u4i4(k, &a4, &wp);
        // Quad form: four weight rows sharing the activation row must give
        // exactly the four single-dot answers on every backend.
        let ws: Vec<Vec<u8>> = (0..4)
            .map(|_| (0..k).map(|_| rng.below(256) as u8).collect())
            .collect();
        let want_x4: Vec<i32> = ws.iter().map(|wr| simd::SCALAR.dot_u8i8(&a, wr)).collect();
        let wps: Vec<Vec<u8>> = (0..4)
            .map(|_| (0..k.div_ceil(2)).map(|_| rng.below(256) as u8).collect())
            .collect();
        let want4_x4: Vec<i32> = wps
            .iter()
            .map(|wr| simd::SCALAR.dot_u4i4(k, &a4, wr))
            .collect();
        for ops in backends() {
            assert_eq!(
                ops.dot_u8i8(&a, &w),
                want8,
                "{}: dot_u8i8 k={}",
                ops.name(),
                k
            );
            assert_eq!(
                ops.dot_u4i4(k, &a4, &wp),
                want4,
                "{}: dot_u4i4 k={}",
                ops.name(),
                k
            );
            assert_eq!(
                ops.dot_u8i8_x4(&a, &ws[0], &ws[1], &ws[2], &ws[3]).to_vec(),
                want_x4,
                "{}: dot_u8i8_x4 k={}",
                ops.name(),
                k
            );
            assert_eq!(
                ops.dot_u4i4_x4(k, &a4, &wps[0], &wps[1], &wps[2], &wps[3])
                    .to_vec(),
                want4_x4,
                "{}: dot_u4i4_x4 k={}",
                ops.name(),
                k
            );
        }
    }
}

#[test]
fn odd_k_i4_padding_nibble_is_inert_on_every_backend() {
    // For odd k the final packed byte's high nibble is padding; no backend
    // may read it, whatever its value.
    for k in [1usize, 7, 17, 31, 33] {
        let a: Vec<u8> = (0..k).map(|i| (i * 7 % 16) as u8).collect();
        let mut wp: Vec<u8> = (0..k.div_ceil(2)).map(|i| (i * 13) as u8).collect();
        wp[k / 2] &= 0x0F; // clean padding nibble
        let mut dirty = wp.clone();
        dirty[k / 2] |= 0xF0; // worst-case padding nibble (-1)
        for ops in backends() {
            assert_eq!(
                ops.dot_u4i4(k, &a, &wp),
                ops.dot_u4i4(k, &a, &dirty),
                "{}: padding nibble leaked at k={}",
                ops.name(),
                k
            );
            assert_eq!(
                ops.dot_u4i4_x4(k, &a, &wp, &dirty, &wp, &dirty),
                ops.dot_u4i4_x4(k, &a, &wp, &wp, &wp, &wp),
                "{}: quad padding nibble leaked at k={}",
                ops.name(),
                k
            );
        }
    }
}

#[test]
fn bn_row_is_bitwise_equal_across_backends() {
    let mut rng = SeededRng::new(104);
    for &n in LENS {
        let x: Vec<f32> = (0..n).map(|_| rng.normal() * 3.0).collect();
        let (mean, inv_std, g, b) = (
            rng.normal(),
            rng.normal().abs() + 0.1,
            rng.normal(),
            rng.normal(),
        );
        let mut want = vec![0.0f32; n];
        simd::SCALAR.bn_row(&x, &mut want, mean, inv_std, g, b);
        for ops in backends() {
            let mut y = vec![0.0f32; n];
            ops.bn_row(&x, &mut y, mean, inv_std, g, b);
            assert_eq!(
                y.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{}: bn_row n={}",
                ops.name(),
                n
            );
        }
    }
}

#[test]
fn max_is_exact_and_exp_is_ulp_bounded() {
    let mut rng = SeededRng::new(105);
    for &n in LENS {
        // Post-max softmax inputs: x - m lands in [-80, 0].
        let x: Vec<f32> = (0..n).map(|_| -(rng.below(8000) as f32) / 100.0).collect();
        let m = 0.0f32;
        let mut want = vec![0.0f32; n];
        let want_denom = simd::SCALAR.exp_sub_sum(&x, m, &mut want);
        for ops in backends() {
            assert_eq!(
                ops.max_f32(&x).to_bits(),
                simd::SCALAR.max_f32(&x).to_bits(),
                "{}: max n={}",
                ops.name(),
                n
            );
            let mut out = vec![0.0f32; n];
            let denom = ops.exp_sub_sum(&x, m, &mut out);
            for (i, (got, want)) in out.iter().zip(&want).enumerate() {
                assert!(
                    ulp_distance(*got, *want) <= 8,
                    "{}: exp n={} elem {}: {} vs {} ({} ulp)",
                    ops.name(),
                    n,
                    i,
                    got,
                    want,
                    ulp_distance(*got, *want)
                );
            }
            let rel = (denom - want_denom).abs() / want_denom.max(f32::MIN_POSITIVE);
            assert!(
                rel <= 1e-5 * (n as f32).sqrt().max(1.0),
                "{}: denom n={}: {} vs {}",
                ops.name(),
                n,
                denom,
                want_denom
            );
        }
    }
}

#[test]
fn full_gemm_is_bitwise_equal_native_vs_scalar() {
    // The end-to-end check the engine's determinism rests on: an entire
    // blocked GEMM through the native workspace reproduces the scalar
    // workspace bit for bit, across fringe-heavy shapes.
    let mut rng = SeededRng::new(106);
    let mut ws_scalar = Workspace::new();
    ws_scalar.set_kernel(KernelMode::Scalar);
    let mut ws_native = Workspace::new();
    ws_native.set_kernel(KernelMode::Native);
    for (m, k, n) in [
        (1usize, 1usize, 1usize),
        (MR + 1, 3, NR + 1),
        (5, 257, 13),
        (17, 300, 33),
        (130, 259, 258),
    ] {
        let a: Vec<f32> = (0..m * k).map(|_| rng.normal()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.normal()).collect();
        let mut want = vec![0.0f32; m * n];
        gemm_ws(m, k, n, &a, &b, &mut want, &mut ws_scalar);
        let mut got = vec![0.0f32; m * n];
        gemm_ws(m, k, n, &a, &b, &mut got, &mut ws_native);
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "native gemm diverged from scalar at {}x{}x{}",
            m,
            k,
            n
        );
    }
}

#[test]
fn softmax_rows_native_within_tolerance_of_reference() {
    // softmax_rows dispatches via the process default; rather than fight
    // env ordering, compare directly against a hand-rolled scalar softmax.
    let mut rng = SeededRng::new(107);
    let (n, c) = (5, 37);
    let x = Tensor::rand_uniform(&[n, c], -10.0, 10.0, &mut rng);
    let s = softmax_rows(&x);
    for i in 0..n {
        let row = &x.data()[i * c..(i + 1) * c];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - m).exp()).collect();
        let denom: f32 = exps.iter().sum();
        for (j, e) in exps.iter().enumerate() {
            let want = e / denom;
            assert!(
                (s.at2(i, j) - want).abs() <= 1e-5,
                "row {} col {}: {} vs {}",
                i,
                j,
                s.at2(i, j),
                want
            );
        }
    }
}
