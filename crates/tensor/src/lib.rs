//! # tia-tensor
//!
//! Dense `f32` tensor substrate for the 2-in-1 Accelerator reproduction.
//!
//! This crate provides the numerical kernels every other crate builds on:
//! n-dimensional row-major tensors, a blocked/tiled SGEMM (register-blocked
//! micro-kernel over packed cache-sized panels), im2col/col2im convolution
//! lowering, elementwise and reduction ops, and seeded random
//! initialisation.
//!
//! It is deliberately small and fully dependency-free: the paper's
//! algorithm side (Random Precision Switch adversarial training) only needs
//! forward/backward passes over moderately sized convolutional networks, and a
//! transparent from-scratch substrate keeps every code path inspectable.
//! The GEMM accumulates every output element in a fixed increasing-`k`
//! order, independent of the batch dimension — the foundation of the
//! serving engine's bitwise batched-vs-per-sample identity (see
//! `docs/ARCHITECTURE.md`).
//!
//! # Example
//!
//! ```
//! use tia_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

#![deny(missing_docs)]

mod buf;
mod conv;
mod gemm;
mod ops;
mod pool;
mod rng;
pub mod simd;
mod tensor;
mod workspace;

pub use buf::{AlignedBuf, AlignedBytes, AlignedInts};
pub use conv::{
    col2im, col2im_add_into, conv2d_output_hw, im2col, im2col_into, im2col_levels_rows,
    Conv2dGeometry,
};
pub use gemm::{
    gemm, gemm_ws, matmul_a_bt, matmul_a_bt_ws, matmul_at_b, matmul_at_b_ws, PackedMatrix,
};
pub use ops::{argmax, argmax_rows, count_top1_correct, log_softmax_rows, softmax_rows};
pub use pool::{avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward};
pub use rng::SeededRng;
pub use simd::KernelMode;
pub use tensor::Tensor;
pub use workspace::Workspace;

/// Error type for shape mismatches and invalid tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    msg: String,
}

impl ShapeError {
    /// Creates a shape error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shape error: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}
