//! im2col / col2im convolution lowering.
//!
//! Convolutions are lowered to GEMM: the input patch matrix (`im2col`) is
//! multiplied by the flattened weight matrix. The backward pass uses the
//! transposed products plus `col2im` scatter-add. This mirrors how the paper's
//! accelerator views a conv layer — as a 7-dimensional loop nest over
//! (N, K, C, R, S, Y, X) — so the same layer geometry type is shared with the
//! dataflow crate's workload descriptions.

use crate::Tensor;

/// Geometry of a 2-D convolution: shapes, stride and padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Input channels (C).
    pub in_channels: usize,
    /// Output channels (K).
    pub out_channels: usize,
    /// Kernel height (R).
    pub kernel_h: usize,
    /// Kernel width (S).
    pub kernel_w: usize,
    /// Stride (same both dims).
    pub stride: usize,
    /// Zero padding (same both dims).
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Convenience constructor for square kernels.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Self {
            in_channels,
            out_channels,
            kernel_h: kernel,
            kernel_w: kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an input of `h x w`.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        conv2d_output_hw(
            h,
            w,
            self.kernel_h,
            self.kernel_w,
            self.stride,
            self.padding,
        )
    }

    /// Number of multiply-accumulates for a batch-1 forward pass on `h x w`.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.output_hw(h, w);
        (self.out_channels * self.in_channels * self.kernel_h * self.kernel_w * oh * ow) as u64
    }
}

/// Output spatial dims of a convolution.
pub fn conv2d_output_hw(
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> (usize, usize) {
    let oh = (h + 2 * pad - kh) / stride + 1;
    let ow = (w + 2 * pad - kw) / stride + 1;
    (oh, ow)
}

/// Lowers one image `[C, H, W]` to the patch matrix `[C*KH*KW, OH*OW]`.
///
/// # Panics
///
/// Panics if `x` is not 3-D with `C` channels.
pub fn im2col(x: &Tensor, geo: &Conv2dGeometry) -> Tensor {
    assert_eq!(x.shape().len(), 3, "im2col expects [C,H,W]");
    let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    assert_eq!(c, geo.in_channels, "im2col channel mismatch");
    let (kh, kw) = (geo.kernel_h, geo.kernel_w);
    let (oh, ow) = geo.output_hw(h, w);
    let rows = c * kh * kw;
    let cols = oh * ow;
    let mut out = Tensor::zeros(&[rows, cols]);
    im2col_into(x.data(), geo, h, w, out.data_mut(), cols, 0);
    out
}

/// Lowers one image (flat `[C, H, W]` slice) into a *strided* destination:
/// patch row `r` lands at `dst[r * dst_stride + col_offset ..][.. oh*ow]`.
///
/// This is the batched-conv workhorse: every image of a batch writes its
/// `oh*ow` column block into one shared `[C*KH*KW, N*OH*OW]` matrix so the
/// whole batch runs as a single GEMM. The destination region must be
/// pre-zeroed — padded taps are *skipped*, not written.
///
/// # Panics
///
/// Panics if `img` does not match the geometry's channel count times
/// `h * w`, or (implicitly, via slice indexing) if `dst` is too small.
// tia-lint: hot-path(begin)
pub fn im2col_into(
    img: &[f32],
    geo: &Conv2dGeometry,
    h: usize,
    w: usize,
    dst: &mut [f32],
    dst_stride: usize,
    col_offset: usize,
) {
    let c = geo.in_channels;
    assert_eq!(img.len(), c * h * w, "im2col_into image size mismatch");
    let (kh, kw, stride, pad) = (geo.kernel_h, geo.kernel_w, geo.stride, geo.padding);
    let (oh, ow) = geo.output_hw(h, w);
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let start = row * dst_stride + col_offset;
                let orow = &mut dst[start..start + oh * ow];
                for oy in 0..oh {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        orow[oy * ow + ox] = img[(ci * h + iy) * w + ix as usize];
                    }
                }
            }
        }
    }
}
// tia-lint: hot-path(end)

/// Lowers one image of quantized *levels* (flat `[C, H, W]` of `u8`) to the
/// transposed patch matrix `[OH*OW, C*KH*KW]` — one patch per **row**, so an
/// integer GEMM can take each row as a contiguous dot-product operand
/// against a quantized weight row (see `tia-quant`).
///
/// Feature order within a row is `(ci * kh + ki) * kw + kj`, matching the
/// weight-matrix row layout used by [`im2col_into`]'s patch rows. Padded
/// taps are written as `zero_point` — the level that dequantizes to `0.0`,
/// exactly what the f32 path's zero-filled padding contributes.
///
/// `dst` must hold `oh * ow * c * kh * kw` bytes.
///
/// # Panics
///
/// Panics if `img` or `dst` disagree with the geometry.
// tia-lint: hot-path(begin)
pub fn im2col_levels_rows(
    img: &[u8],
    geo: &Conv2dGeometry,
    h: usize,
    w: usize,
    zero_point: u8,
    dst: &mut [u8],
) {
    let c = geo.in_channels;
    assert_eq!(
        img.len(),
        c * h * w,
        "im2col_levels_rows image size mismatch"
    );
    let (kh, kw, stride, pad) = (geo.kernel_h, geo.kernel_w, geo.stride, geo.padding);
    let (oh, ow) = geo.output_hw(h, w);
    let f = c * kh * kw;
    assert_eq!(
        dst.len(),
        oh * ow * f,
        "im2col_levels_rows dst size mismatch"
    );
    for oy in 0..oh {
        for ox in 0..ow {
            let prow = &mut dst[(oy * ow + ox) * f..(oy * ow + ox + 1) * f];
            for ci in 0..c {
                for ki in 0..kh {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    let base = (ci * kh + ki) * kw;
                    if iy < 0 || iy >= h as isize {
                        prow[base..base + kw].fill(zero_point);
                        continue;
                    }
                    let irow = &img[(ci * h + iy as usize) * w..(ci * h + iy as usize + 1) * w];
                    for kj in 0..kw {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        prow[base + kj] = if ix < 0 || ix >= w as isize {
                            zero_point
                        } else {
                            irow[ix as usize]
                        };
                    }
                }
            }
        }
    }
}
// tia-lint: hot-path(end)

/// Scatter-adds a patch-matrix gradient `[C*KH*KW, OH*OW]` back to an image
/// gradient `[C, H, W]` (the adjoint of [`im2col`]).
///
/// # Panics
///
/// Panics if shapes are inconsistent with the geometry.
pub fn col2im(cols: &Tensor, geo: &Conv2dGeometry, h: usize, w: usize) -> Tensor {
    let c = geo.in_channels;
    let (kh, kw) = (geo.kernel_h, geo.kernel_w);
    let (oh, ow) = geo.output_hw(h, w);
    assert_eq!(
        cols.shape(),
        &[c * kh * kw, oh * ow],
        "col2im shape mismatch"
    );
    let mut out = Tensor::zeros(&[c, h, w]);
    col2im_add_into(cols.data(), oh * ow, 0, geo, h, w, out.data_mut());
    out
}

/// Scatter-adds one image's patch-gradient columns from a *strided* source
/// (the adjoint of [`im2col_into`]): patch row `r` is read from
/// `cols[r * col_stride + col_offset ..][.. oh*ow]` and accumulated into the
/// flat `[C, H, W]` image gradient `out`.
///
/// # Panics
///
/// Panics if `out` does not match the geometry's channel count times
/// `h * w`, or (implicitly, via slice indexing) if `cols` is too small.
// tia-lint: hot-path(begin)
pub fn col2im_add_into(
    cols: &[f32],
    col_stride: usize,
    col_offset: usize,
    geo: &Conv2dGeometry,
    h: usize,
    w: usize,
    out: &mut [f32],
) {
    let c = geo.in_channels;
    assert_eq!(out.len(), c * h * w, "col2im_add_into image size mismatch");
    let (kh, kw, stride, pad) = (geo.kernel_h, geo.kernel_w, geo.stride, geo.padding);
    let (oh, ow) = geo.output_hw(h, w);
    for ci in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let start = row * col_stride + col_offset;
                let crow = &cols[start..start + oh * ow];
                for oy in 0..oh {
                    let iy = (oy * stride + ki) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * stride + kj) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out[(ci * h + iy) * w + ix as usize] += crow[oy * ow + ox];
                    }
                }
            }
        }
    }
}
// tia-lint: hot-path(end)

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;

    #[test]
    fn output_hw_basic() {
        assert_eq!(conv2d_output_hw(32, 32, 3, 3, 1, 1), (32, 32));
        assert_eq!(conv2d_output_hw(32, 32, 3, 3, 2, 1), (16, 16));
        assert_eq!(conv2d_output_hw(224, 224, 7, 7, 2, 3), (112, 112));
    }

    #[test]
    fn im2col_identity_kernel() {
        // A 1x1 kernel with stride 1 and no padding is a reshape.
        let x = Tensor::from_vec((0..2 * 3 * 3).map(|v| v as f32).collect(), &[2, 3, 3]);
        let geo = Conv2dGeometry::new(2, 4, 1, 1, 0);
        let cols = im2col(&x, &geo);
        assert_eq!(cols.shape(), &[2, 9]);
        assert_eq!(cols.data(), x.data());
    }

    #[test]
    fn im2col_padding_zeroes_border() {
        let x = Tensor::ones(&[1, 2, 2]);
        let geo = Conv2dGeometry::new(1, 1, 3, 1, 1);
        let cols = im2col(&x, &geo);
        // Center tap row (ki=1, kj=1) should be all ones.
        let row = 3 + 1;
        let ncols = 4;
        assert!(cols.data()[row * ncols..(row + 1) * ncols]
            .iter()
            .all(|&v| v == 1.0));
        // Top-left tap at output (0,0) reads padding -> zero.
        assert_eq!(cols.data()[0], 0.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y (adjoint test).
        let mut rng = SeededRng::new(42);
        let geo = Conv2dGeometry::new(3, 2, 3, 2, 1);
        let (h, w) = (5, 5);
        let x = Tensor::randn(&[3, h, w], 1.0, &mut rng);
        let cols = im2col(&x, &geo);
        let y = Tensor::randn(cols.shape(), 1.0, &mut rng);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &geo, h, w);
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{} vs {}", lhs, rhs);
    }

    #[test]
    fn im2col_levels_rows_is_transposed_im2col() {
        // With levels equal to the f32 values and zero_point 0, the level
        // patch matrix must be exactly im2col's transpose.
        let mut rng = SeededRng::new(9);
        let geo = Conv2dGeometry::new(2, 1, 3, 2, 1);
        let (h, w) = (5, 4);
        let levels: Vec<u8> = (0..2 * h * w).map(|_| rng.below(200) as u8).collect();
        let x = Tensor::from_vec(levels.iter().map(|&v| v as f32).collect(), &[2, h, w]);
        let cols = im2col(&x, &geo);
        let (oh, ow) = geo.output_hw(h, w);
        let f = 2 * 3 * 3;
        let mut rows = vec![0u8; oh * ow * f];
        im2col_levels_rows(&levels, &geo, h, w, 0, &mut rows);
        for r in 0..f {
            for col in 0..oh * ow {
                assert_eq!(
                    rows[col * f + r] as f32,
                    cols.data()[r * (oh * ow) + col],
                    "feature {} patch {}",
                    r,
                    col
                );
            }
        }
        // A nonzero zero_point must land on every padded tap.
        let mut rows_zp = vec![0u8; oh * ow * f];
        im2col_levels_rows(&levels, &geo, h, w, 7, &mut rows_zp);
        for (a, b) in rows.iter().zip(&rows_zp) {
            assert!(*b == *a || (*a == 0 && *b == 7));
        }
    }

    #[test]
    fn macs_count() {
        let geo = Conv2dGeometry::new(3, 8, 3, 1, 1);
        // 8*3*3*3*4*4 for a 4x4 input with same padding
        assert_eq!(geo.macs(4, 4), 8 * 3 * 9 * 16);
    }
}
