//! Pooling kernels (forward + backward) over NCHW tensors.

use crate::Tensor;

/// Average pooling with a square window and equal stride, no padding.
/// Input `[N, C, H, W]` -> output `[N, C, H/k, W/k]` (floor division).
///
/// # Panics
///
/// Panics if `x` is not 4-D or `k` is zero.
pub fn avg_pool2d(x: &Tensor, k: usize) -> Tensor {
    assert!(k > 0, "pool window must be positive");
    assert_eq!(x.shape().len(), 4, "avg_pool2d expects NCHW");
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oh, ow) = (h / k, w / k);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let inv = 1.0 / (k * k) as f32;
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for dy in 0..k {
                        for dx in 0..k {
                            acc += x.at4(ni, ci, oy * k + dy, ox * k + dx);
                        }
                    }
                    *out.at4_mut(ni, ci, oy, ox) = acc * inv;
                }
            }
        }
    }
    out
}

/// Backward of [`avg_pool2d`]: distributes each output gradient uniformly
/// over its window.
pub fn avg_pool2d_backward(grad_out: &Tensor, k: usize, h: usize, w: usize) -> Tensor {
    let (n, c, oh, ow) = (
        grad_out.shape()[0],
        grad_out.shape()[1],
        grad_out.shape()[2],
        grad_out.shape()[3],
    );
    let mut gx = Tensor::zeros(&[n, c, h, w]);
    let inv = 1.0 / (k * k) as f32;
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_out.at4(ni, ci, oy, ox) * inv;
                    for dy in 0..k {
                        for dx in 0..k {
                            *gx.at4_mut(ni, ci, oy * k + dy, ox * k + dx) += g;
                        }
                    }
                }
            }
        }
    }
    gx
}

/// Max pooling with a square window and equal stride, no padding.
/// Returns the pooled tensor and the flat argmax indices (into the input)
/// needed by the backward pass.
///
/// # Panics
///
/// Panics if `x` is not 4-D or `k` is zero.
pub fn max_pool2d(x: &Tensor, k: usize) -> (Tensor, Vec<usize>) {
    assert!(k > 0, "pool window must be positive");
    assert_eq!(x.shape().len(), 4, "max_pool2d expects NCHW");
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oh, ow) = (h / k, w / k);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut idx = vec![0usize; n * c * oh * ow];
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_flat = 0;
                    for dy in 0..k {
                        for dx in 0..k {
                            let (iy, ix) = (oy * k + dy, ox * k + dx);
                            let v = x.at4(ni, ci, iy, ix);
                            if v > best {
                                best = v;
                                best_flat = ((ni * c + ci) * h + iy) * w + ix;
                            }
                        }
                    }
                    *out.at4_mut(ni, ci, oy, ox) = best;
                    idx[((ni * c + ci) * oh + oy) * ow + ox] = best_flat;
                }
            }
        }
    }
    (out, idx)
}

/// Backward of [`max_pool2d`]: routes gradients to the argmax positions.
pub fn max_pool2d_backward(grad_out: &Tensor, idx: &[usize], input_shape: &[usize]) -> Tensor {
    let mut gx = Tensor::zeros(input_shape);
    let gxd = gx.data_mut();
    for (g, &i) in grad_out.data().iter().zip(idx) {
        gxd[i] += g;
    }
    gx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_basic() {
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = avg_pool2d(&x, 2);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        // window [0,1,4,5] -> 2.5
        assert_eq!(y.at4(0, 0, 0, 0), 2.5);
        assert_eq!(y.at4(0, 0, 1, 1), 12.5);
    }

    #[test]
    fn avg_pool_backward_conserves_gradient() {
        let g = Tensor::ones(&[1, 1, 2, 2]);
        let gx = avg_pool2d_backward(&g, 2, 4, 4);
        assert!((gx.sum() - g.sum()).abs() < 1e-6);
        assert!((gx.at4(0, 0, 0, 0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn max_pool_selects_max_and_routes_grad() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 9.0], &[1, 1, 2, 2]);
        let (y, idx) = max_pool2d(&x, 2);
        assert_eq!(y.data(), &[9.0]);
        let g = Tensor::ones(&[1, 1, 1, 1]);
        let gx = max_pool2d_backward(&g, &idx, &[1, 1, 2, 2]);
        assert_eq!(gx.data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn global_avg_pool_matches_mean() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]);
        let y = avg_pool2d(&x, 2);
        assert_eq!(y.shape(), &[1, 2, 1, 1]);
        assert_eq!(y.data()[0], 1.5); // mean of 0..3
        assert_eq!(y.data()[1], 5.5); // mean of 4..7
    }
}
